#!/usr/bin/env python3
"""Perf-regression gate: diff fresh bench-smoke output against the
committed BENCH_*.json baselines at the repository root.

Usage (what the bench-smoke CI job runs):

    python3 tools/bench_compare.py --fresh bench-output [--baseline .]

Every baseline BENCH_*.json must have a fresh counterpart, and every
gated metric must stay within tolerance of the committed number, or the
script exits 1 and the job fails.

Metric classes, because CI runners differ from the machine that wrote a
baseline:

  * ratio metrics (lpa_kernel kernel_speedup / stealing_speedup) are
    within-run A/B ratios — machine-independent by construction — and
    quality metrics (phi, rho) are bit-deterministic for a fixed seed.
    Both gate hard at --tolerance (default 20%).
  * wall-clock metrics (fig6 real_time, stream_ingest events_per_sec)
    shift with the host, so each is first normalized by the best value
    in its own file (shape, not speed) and the shape gates at
    --wall-tolerance (default 50%).
  * fig6's timings are single-shot (`iterations:1` manual timing), so a
    scheduler hiccup on a shared runner can double one entry while its
    siblings are unaffected; those gate at the wider
    --single-shot-tolerance (default 150%), which still catches the
    asymptotic regressions the bench exists to guard (a super-linear
    shape blowup, a lane suddenly costing several times its siblings).
  * the fig8 elastic replay is clock-injected and seeded end to end, so
    its integer outcomes (final_k, rescales, windows, evaluations,
    rho_violations) must match the baseline exactly; its quality floats
    gate at --tolerance and replay_wall_seconds is never gated.

Baselines are refreshed by re-running the benches with --smoke and
committing the new JSON in the same PR that changes performance.
"""

import argparse
import json
import os
import sys


class Gate:
    """Collects per-metric verdicts and renders the final report."""

    def __init__(self):
        self.rows = []  # (file, metric, base, fresh, limit, ok)
        self.errors = []

    def check(self, file, metric, base, fresh, tolerance, higher_is_better):
        if higher_is_better:
            limit = base * (1.0 - tolerance)
            ok = fresh >= limit
        else:
            limit = base * (1.0 + tolerance)
            ok = fresh <= limit
        self.rows.append((file, metric, base, fresh, limit, ok))

    def error(self, message):
        self.errors.append(message)

    def report(self):
        width = max((len(m) for _, m, *_ in self.rows), default=10)
        current = None
        for file, metric, base, fresh, limit, ok in self.rows:
            if file != current:
                print(f"== {file}")
                current = file
            verdict = "ok" if ok else "REGRESSION"
            print(
                f"  {metric:<{width}}  base={base:<10.4f}"
                f" fresh={fresh:<10.4f} limit={limit:<10.4f} {verdict}"
            )
        for message in self.errors:
            print(f"ERROR: {message}")
        failed = [r for r in self.rows if not r[5]]
        if failed or self.errors:
            print(
                f"bench_compare: FAIL ({len(failed)} regression(s),"
                f" {len(self.errors)} error(s))"
            )
            return 1
        print(f"bench_compare: OK ({len(self.rows)} metrics within tolerance)")
        return 0


def load_pair(gate, baseline_dir, fresh_dir, name):
    base_path = os.path.join(baseline_dir, name)
    fresh_path = os.path.join(fresh_dir, name)
    if not os.path.exists(base_path):
        return None, None  # no baseline committed -> nothing to gate
    if not os.path.exists(fresh_path):
        gate.error(f"{name}: baseline committed but no fresh output produced")
        return None, None
    with open(base_path) as f:
        base = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    if base.get("smoke") != fresh.get("smoke"):
        gate.error(
            f"{name}: smoke flag mismatch (baseline {base.get('smoke')},"
            f" fresh {fresh.get('smoke')}) — refresh the baseline in"
            " smoke mode"
        )
        return None, None
    return base, fresh


def index_rows(rows, key):
    return {row[key]: row for row in rows}


def compare_lpa_kernel(gate, base, fresh, tolerance):
    name = "BENCH_lpa_kernel.json"
    fresh_cases = index_rows(fresh.get("cases", []), "case")
    for case in base.get("cases", []):
        label = case["case"]
        got = fresh_cases.get(label)
        if got is None:
            gate.error(f"{name}: case '{label}' missing from fresh output")
            continue
        for metric in ("kernel_speedup", "stealing_speedup"):
            gate.check(
                name,
                f"{label}.{metric}",
                case[metric],
                got[metric],
                tolerance,
                higher_is_better=True,
            )


def compare_table1(gate, base, fresh, tolerance):
    name = "BENCH_table1_comparison.json"
    fresh_rows = index_rows(fresh.get("rows", []), "partitioner")
    ks = base.get("k", [])
    for row in base.get("rows", []):
        label = row["partitioner"]
        got = fresh_rows.get(label)
        if got is None:
            gate.error(f"{name}: partitioner '{label}' missing from fresh")
            continue
        for i, k in enumerate(ks):
            gate.check(name, f"{label}.phi.k{k}", row["phi"][i],
                       got["phi"][i], tolerance, higher_is_better=True)
            gate.check(name, f"{label}.rho.k{k}", row["rho"][i],
                       got["rho"][i], tolerance, higher_is_better=False)


def compare_stream_ingest(gate, base, fresh, tolerance, wall_tolerance):
    name = "BENCH_stream_ingest.json"
    fresh_rows = index_rows(fresh.get("rows", []), "watermark")

    def shape(rows):
        best = max((r["events_per_sec"] for r in rows), default=0.0)
        return {r["watermark"]: r["events_per_sec"] / best if best else 0.0
                for r in rows}

    base_shape = shape(base.get("rows", []))
    fresh_shape = shape(fresh.get("rows", []))
    for row in base.get("rows", []):
        watermark = row["watermark"]
        got = fresh_rows.get(watermark)
        if got is None:
            gate.error(f"{name}: watermark {watermark} missing from fresh")
            continue
        gate.check(name, f"w{watermark}.phi", row["phi"], got["phi"],
                   tolerance, higher_is_better=True)
        gate.check(name, f"w{watermark}.rho", row["rho"], got["rho"],
                   tolerance, higher_is_better=False)
        gate.check(name, f"w{watermark}.events_per_sec(norm)",
                   base_shape[watermark], fresh_shape[watermark],
                   wall_tolerance, higher_is_better=True)


def compare_fig6(gate, base, fresh, single_shot_tolerance):
    name = "BENCH_fig6_scalability.json"

    def shape(doc):
        rows = [b for b in doc.get("benchmarks", [])
                if b.get("run_type", "iteration") == "iteration"]
        best = min((b["real_time"] for b in rows), default=0.0)
        return {b["name"]: b["real_time"] / best if best else 0.0
                for b in rows}

    base_shape = shape(base)
    fresh_shape = shape(fresh)
    for bench, norm in base_shape.items():
        if bench not in fresh_shape:
            gate.error(f"{name}: benchmark '{bench}' missing from fresh")
            continue
        gate.check(name, f"{bench}(norm)", norm, fresh_shape[bench],
                   single_shot_tolerance, higher_is_better=False)


def compare_fig8_elastic(gate, base, fresh, tolerance):
    name = "BENCH_fig8_elastic.json"
    fresh_rows = index_rows(fresh.get("rows", []), "policy")
    for row in base.get("rows", []):
        label = row["policy"]
        got = fresh_rows.get(label)
        if got is None:
            gate.error(f"{name}: policy '{label}' missing from fresh output")
            continue
        # The policy-lab replay is clock-injected and seeded end to end, so
        # every decision the controller takes is deterministic: the integer
        # outcomes must match the baseline exactly. A mismatch means the
        # replay took a different path, not that a runner was slow.
        for metric in ("final_k", "rescales", "windows", "evaluations",
                       "rho_violations"):
            if row[metric] != got[metric]:
                gate.error(
                    f"{name}: {label}.{metric} changed (baseline"
                    f" {row[metric]}, fresh {got[metric]}) — the"
                    " deterministic replay took a different path"
                )
        for metric, higher in (("phi_final", True), ("phi_min", True),
                               ("rho_max", False), ("moved_pct", False),
                               ("migration_seconds", False)):
            gate.check(name, f"{label}.{metric}", row[metric], got[metric],
                       tolerance, higher_is_better=higher)
        # replay_wall_seconds is host wall clock — informational, not gated.


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--baseline", default=".",
                        help="directory holding committed baselines"
                             " (default: repo root)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression for ratio and"
                             " quality metrics (default 0.20)")
    parser.add_argument("--wall-tolerance", type=float, default=0.50,
                        help="allowed relative drift for shape-normalized"
                             " wall-clock metrics (default 0.50)")
    parser.add_argument("--single-shot-tolerance", type=float, default=1.50,
                        help="allowed relative drift for shape-normalized"
                             " single-shot timings (fig6; default 1.50)")
    args = parser.parse_args()

    gate = Gate()
    comparators = [
        ("BENCH_lpa_kernel.json",
         lambda b, f: compare_lpa_kernel(gate, b, f, args.tolerance)),
        ("BENCH_table1_comparison.json",
         lambda b, f: compare_table1(gate, b, f, args.tolerance)),
        ("BENCH_stream_ingest.json",
         lambda b, f: compare_stream_ingest(gate, b, f, args.tolerance,
                                            args.wall_tolerance)),
        ("BENCH_fig6_scalability.json",
         lambda b, f: compare_fig6(gate, b, f, args.single_shot_tolerance)),
        ("BENCH_fig8_elastic.json",
         lambda b, f: compare_fig8_elastic(gate, b, f, args.tolerance)),
    ]
    known = {name for name, _ in comparators}
    for entry in sorted(os.listdir(args.baseline)):
        if entry.startswith("BENCH_") and entry.endswith(".json") \
                and entry not in known:
            print(f"warning: no comparator for {entry}; not gated")
    for name, run in comparators:
        base, fresh = load_pair(gate, args.baseline, args.fresh, name)
        if base is not None:
            run(base, fresh)
    return gate.report()


if __name__ == "__main__":
    sys.exit(main())
