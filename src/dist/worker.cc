#include "dist/worker.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "dist/shard_store.h"
#include "dist/tcp_transport.h"
#include "dist/transport.h"
#include "dist/wire_format.h"
#include "graph/binary_io.h"
#include "spinner/shard_superstep.h"

namespace spinner::dist {

Result<WorkerLayout> BuildWorkerLayout(
    std::span<const ShardedGraphStore::Shard> shards, int64_t num_vertices) {
  WorkerLayout layout;
  if (shards.empty()) return layout;  // a shardless worker idles validly
  layout.owned_begin = shards.front().begin;
  layout.owned_end = shards.back().end;
  if (layout.owned_begin < 0 || layout.owned_end > num_vertices ||
      layout.owned_begin % ShardedGraphStore::kBlockSize != 0) {
    return Status::InvalidArgument(
        "worker shard range is outside the graph or not block-aligned");
  }
  VertexId previous_end = layout.owned_begin;
  for (const ShardedGraphStore::Shard& shard : shards) {
    // Contiguity is load-bearing, not just tidy: Owns() is a single
    // interval test and the compact label array has one slot per owned
    // vertex with no holes.
    if (shard.begin != previous_end || shard.end < shard.begin) {
      return Status::InvalidArgument(
          "worker shard slices are not contiguous ascending ranges");
    }
    previous_end = shard.end;
    for (const VertexId t : shard.targets) {
      if (t < 0 || t >= num_vertices) {
        return Status::InvalidArgument(
            "shard slice target outside the vertex range");
      }
      if (!layout.Owns(t)) layout.subscription.push_back(t);
    }
  }
  std::sort(layout.subscription.begin(), layout.subscription.end());
  layout.subscription.erase(
      std::unique(layout.subscription.begin(), layout.subscription.end()),
      layout.subscription.end());
  return layout;
}

Status RemapTargetsToSlots(const WorkerLayout& layout,
                           ShardedGraphStore::Shard* shard) {
  for (VertexId& t : shard->targets) {
    if (layout.Owns(t)) {
      t -= layout.owned_begin;
      continue;
    }
    const auto it = std::lower_bound(layout.subscription.begin(),
                                     layout.subscription.end(), t);
    if (it == layout.subscription.end() || *it != t) {
      return Status::InvalidArgument(StrFormat(
          "target %lld is neither owned nor subscribed",
          static_cast<long long>(t)));
    }
    t = layout.owned_count() +
        static_cast<VertexId>(it - layout.subscription.begin());
  }
  return Status::OK();
}

namespace {

/// Per-connection worker state machine. Lives for as many runs as the
/// coordinator drives over this connection (Assign ... Teardown, repeat);
/// every handler re-validates payloads against the Assign/Setup topology.
class ShardWorker {
 public:
  ShardWorker(int fd, const TransportOptions& options,
              const WorkerLoopOptions& loop)
      : fd_(fd),
        options_(options),
        capacity_(loop.capacity),
        loop_fail_after_score_steps_(loop.fail_after_score_steps),
        fail_after_score_steps_(loop.fail_after_score_steps) {
    if (!loop.store_dir.empty()) store_.emplace(loop.store_dir);
  }

  /// Protocol loop; see RunShardWorkerLoop for the exit-code contract.
  int Run() {
    {
      HelloMessage hello;
      hello.capacity = capacity_;
      if (!Send(MessageType::kHello, hello.Encode()).ok()) return 2;
    }
    for (;;) {
      Result<Frame> frame = RecvMessage(fd_, options_);
      if (!frame.ok()) {
        // EOF between runs is the release path (the registry or a closing
        // coordinator dropped an idle connection); mid-run it means the
        // coordinator died.
        return assign_done_ ? 2 : 0;
      }
      Status status = Status::OK();
      switch (static_cast<MessageType>(frame->type)) {
        case MessageType::kAssign:
          status = HandleAssign(frame->payload);
          break;
        case MessageType::kSetup:
          status = HandleSetup(frame->payload);
          break;
        case MessageType::kInit:
          status = HandleInit(frame->payload);
          break;
        case MessageType::kLabels:
          status = HandleLabels(frame->payload);
          break;
        case MessageType::kScores:
          status = HandleScores(frame->payload);
          break;
        case MessageType::kMigrate:
          status = HandleMigrate(frame->payload);
          break;
        case MessageType::kApplyDeltas:
          status = HandleApplyDeltas(frame->payload);
          break;
        case MessageType::kSnapshot:
          status = HandleSnapshot();
          break;
        case MessageType::kTeardown:
          status = Send(MessageType::kTeardownAck, {});
          // The run is over but the connection is not: reset and await
          // the next Assign (the pooled-connection fast path).
          ResetRun();
          break;
        default:
          status = Status::InvalidArgument(StrFormat(
              "worker received unexpected frame type %u", frame->type));
          break;
      }
      if (!status.ok()) {
        // Best-effort error report; the coordinator may already be gone.
        (void)Send(MessageType::kError,
                   ErrorMessage::FromStatus(status).Encode());
        return 1;
      }
    }
  }

 private:
  void ResetRun() {
    assign_done_ = false;
    setup_done_ = false;
    config_ = SpinnerConfig();
    n_ = 0;
    owned_shards_.clear();
    assigned_fingerprints_.clear();
    loaded_.clear();
    shards_.clear();
    layout_ = WorkerLayout();
    labels_.clear();
    candidate_.clear();
    block_score_.clear();
    block_candidates_.clear();
    scratch_.clear();
    fail_after_score_steps_ = loop_fail_after_score_steps_;
    scores_seen_ = 0;
  }

  Status Send(MessageType type, std::span<const uint8_t> payload) {
    return SendMessage(fd_, static_cast<uint32_t>(type), payload, options_,
                       next_message_id_++);
  }

  Status CheckSetup() const {
    if (!setup_done_) {
      return Status::FailedPrecondition(
          "worker received a run message before Setup");
    }
    return Status::OK();
  }

  Status CheckPerPartition(const std::vector<int64_t>& v,
                           const char* what) const {
    if (static_cast<int>(v.size()) != config_.num_partitions) {
      return Status::InvalidArgument(
          StrFormat("%s carries %zu entries for k=%d", what, v.size(),
                    config_.num_partitions));
    }
    return Status::OK();
  }

  bool Subscribed(VertexId v) const {
    return std::binary_search(layout_.subscription.begin(),
                              layout_.subscription.end(), v);
  }

  /// Local slot of subscribed vertex v (callers check Subscribed first).
  size_t MirrorSlot(VertexId v) const {
    const auto it = std::lower_bound(layout_.subscription.begin(),
                                     layout_.subscription.end(), v);
    return static_cast<size_t>(layout_.owned_count()) +
           static_cast<size_t>(it - layout_.subscription.begin());
  }

  /// The DeltasAck gate digest. The compact label array IS the checksum
  /// layout — owned slices in ascending order, then the mirror in
  /// subscription order — so the fold is simply the whole array, and it
  /// equals the coordinator's fold over its authoritative global labels.
  uint64_t StateChecksum() const {
    LabelChecksum sum;
    sum.Update(std::span<const PartitionId>(labels_));
    return sum.digest();
  }

  Status HandleAssign(std::span<const uint8_t> payload) {
    if (assign_done_) {
      return Status::FailedPrecondition(
          "worker received Assign mid-run (no Teardown between runs)");
    }
    SPINNER_ASSIGN_OR_RETURN(AssignMessage assign,
                             AssignMessage::Decode(payload));
    if (assign.num_partitions < 1 || assign.num_vertices < 0 ||
        assign.num_shards_total < 1) {
      return Status::InvalidArgument("Assign: nonsensical topology counts");
    }
    int32_t previous = -1;
    for (const int32_t s : assign.owned_shards) {
      if (s < 0 || s >= assign.num_shards_total || s <= previous) {
        return Status::InvalidArgument(
            "Assign: owned shard ids are not ascending in-range");
      }
      previous = s;
    }
    ResetRun();
    config_ = assign.ToConfig();
    n_ = assign.num_vertices;
    owned_shards_ = std::move(assign.owned_shards);
    assigned_fingerprints_ = std::move(assign.slice_fingerprints);
    if (assign.fail_after_score_steps >= 0) {
      fail_after_score_steps_ = assign.fail_after_score_steps;
    }
    assign_done_ = true;

    // Probe the local store and report what this worker already hosts.
    // The coordinator compares against its own fingerprints and sends
    // only the slices that missed — fingerprint 0 means "absent".
    ResumeMessage resume;
    resume.fingerprints.assign(owned_shards_.size(), 0);
    loaded_.resize(owned_shards_.size());
    if (store_.has_value()) {
      for (size_t i = 0; i < owned_shards_.size(); ++i) {
        auto slice = store_->Load(owned_shards_[i]);
        if (slice.ok() && slice->has_value()) {
          resume.fingerprints[i] = (*slice)->fingerprint;
          loaded_[i] = std::move(**slice);
        }
      }
    }
    return Send(MessageType::kResume, resume.Encode());
  }

  Status HandleSetup(std::span<const uint8_t> payload) {
    if (!assign_done_) {
      return Status::FailedPrecondition("worker received Setup before Assign");
    }
    if (setup_done_) {
      return Status::FailedPrecondition("worker already set up");
    }
    SPINNER_ASSIGN_OR_RETURN(SetupMessage setup,
                             SetupMessage::Decode(payload));
    // The Setup header repeats the run config; it must agree with the
    // Assign this run started with — a mismatch means crossed runs.
    const SpinnerConfig from_setup = setup.ToConfig();
    if (from_setup.num_partitions != config_.num_partitions ||
        from_setup.seed != config_.seed ||
        from_setup.balance_mode != config_.balance_mode ||
        from_setup.per_worker_async != config_.per_worker_async ||
        setup.num_vertices != n_) {
      return Status::InvalidArgument("Setup contradicts the Assign header");
    }

    // Merge: Setup carries only the slices whose Resume fingerprint
    // missed; everything else must come from the local store with a
    // fingerprint equal to the assigned one.
    std::vector<ShardedGraphStore::Shard> merged(owned_shards_.size());
    std::vector<bool> downloaded(owned_shards_.size(), false);
    for (size_t i = 0; i < setup.owned_shards.size(); ++i) {
      const auto it = std::lower_bound(owned_shards_.begin(),
                                       owned_shards_.end(),
                                       setup.owned_shards[i]);
      if (it == owned_shards_.end() || *it != setup.owned_shards[i]) {
        return Status::InvalidArgument(StrFormat(
            "Setup carries shard %d this worker was not assigned",
            static_cast<int>(setup.owned_shards[i])));
      }
      const size_t j = static_cast<size_t>(it - owned_shards_.begin());
      merged[j] = std::move(setup.shards[i]);
      downloaded[j] = true;
    }
    for (size_t j = 0; j < merged.size(); ++j) {
      if (downloaded[j]) continue;
      if (!loaded_[j].has_value() ||
          loaded_[j]->fingerprint != assigned_fingerprints_[j]) {
        return Status::InvalidArgument(StrFormat(
            "Setup omitted shard %d but the local store cannot supply it",
            static_cast<int>(owned_shards_[j])));
      }
      merged[j] = std::move(loaded_[j]->shard);
    }
    loaded_.clear();

    // Persist downloads before the target remap below rewrites them in
    // place — the store must hold the canonical global-id encoding, the
    // bytes whose fingerprint the coordinator computes.
    if (store_.has_value()) {
      std::vector<uint8_t> bytes;
      for (size_t j = 0; j < merged.size(); ++j) {
        if (!downloaded[j]) continue;
        bytes.clear();
        bytes.reserve(graph_io::EncodedShardSliceSize(merged[j]));
        graph_io::AppendShardSlice(merged[j], &bytes);
        SPINNER_RETURN_IF_ERROR(store_->Put(owned_shards_[j], bytes));
      }
    }

    SPINNER_ASSIGN_OR_RETURN(layout_, BuildWorkerLayout(merged, n_));
    for (ShardedGraphStore::Shard& shard : merged) {
      SPINNER_RETURN_IF_ERROR(RemapTargetsToSlots(layout_, &shard));
    }
    shards_ = std::move(merged);
    labels_.assign(static_cast<size_t>(layout_.num_slots()), kNoPartition);
    candidate_.assign(static_cast<size_t>(layout_.owned_count()),
                      kNoPartition);
    block_score_.assign(static_cast<size_t>(layout_.num_blocks()), 0.0);
    block_candidates_.assign(static_cast<size_t>(layout_.num_blocks()), 0);
    scratch_.resize(shards_.size());
    for (ShardScratch& sc : scratch_) sc.Prepare(config_.num_partitions);
    setup_done_ = true;

    SubscribeMessage subscribe;
    subscribe.vertices = layout_.subscription;
    return Send(MessageType::kSubscribe, subscribe.Encode());
  }

  Status HandleInit(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(InitRequest request,
                             InitRequest::Decode(payload));
    // The coordinator sends each worker exactly its owned slice of the
    // initial labels, based at owned_begin — the slice index IS the local
    // index the kernel uses.
    if (request.base != layout_.owned_begin ||
        static_cast<int64_t>(request.initial_labels.size()) >
            layout_.owned_count()) {
      return Status::InvalidArgument(
          "Init: label slice does not cover this worker's owned range");
    }
    ShardStateReply reply;
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardedGraphStore::Shard& shard = shards_[i];
      const int64_t messages =
          ShardInitialize(config_, &shard, labels_, request.initial_labels,
                          layout_.owned_begin);
      ShardState state;
      state.shard = owned_shards_[i];
      state.labels.assign(
          labels_.begin() + (shard.begin - layout_.owned_begin),
          labels_.begin() + (shard.end - layout_.owned_begin));
      state.loads = shard.loads;
      state.messages = messages;
      reply.shards.push_back(std::move(state));
    }
    return Send(MessageType::kInitReply, reply.Encode());
  }

  Status HandleLabels(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(LabelValues message,
                             LabelValues::Decode(payload));
    if (message.values.size() != layout_.subscription.size()) {
      return Status::InvalidArgument(
          StrFormat("Labels: %zu values for %zu subscribed vertices",
                    message.values.size(), layout_.subscription.size()));
    }
    const size_t mirror_base = static_cast<size_t>(layout_.owned_count());
    for (size_t i = 0; i < message.values.size(); ++i) {
      labels_[mirror_base + i] = message.values[i];
    }
    return Status::OK();
  }

  Status HandleScores(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(ScoresRequest request,
                             ScoresRequest::Decode(payload));
    SPINNER_RETURN_IF_ERROR(
        CheckPerPartition(request.global_loads, "Scores loads"));
    if (static_cast<int>(request.capacities.size()) !=
        config_.num_partitions) {
      return Status::InvalidArgument("Scores: capacity vector size");
    }
    if (fail_after_score_steps_ >= 0 &&
        scores_seen_ == fail_after_score_steps_) {
      // Test hook: simulate a worker crash mid-superstep — after the
      // request was consumed, before any reply reaches the coordinator.
      _exit(3);
    }
    ++scores_seen_;
    ScoresReply reply;
    reply.local_weight = 0;
    reply.migration_counts.assign(
        static_cast<size_t>(config_.num_partitions), 0);
    for (size_t i = 0; i < shards_.size(); ++i) {
      const ShardedGraphStore::Shard& shard = shards_[i];
      ShardComputeScores(config_, shard, labels_, request.global_loads,
                         request.capacities, request.superstep, candidate_,
                         block_score_, block_candidates_, &scratch_[i],
                         layout_.owned_begin);
      const int64_t block_begin = (shard.begin - layout_.owned_begin) /
                                  ShardedGraphStore::kBlockSize;
      const int64_t block_end =
          (shard.end - layout_.owned_begin +
           ShardedGraphStore::kBlockSize - 1) /
          ShardedGraphStore::kBlockSize;
      reply.block_score.insert(reply.block_score.end(),
                               block_score_.begin() + block_begin,
                               block_score_.begin() + block_end);
      reply.local_weight += scratch_[i].local_weight;
      for (size_t l = 0; l < reply.migration_counts.size(); ++l) {
        reply.migration_counts[l] += scratch_[i].migrations[l];
      }
    }
    return Send(MessageType::kScoresReply, reply.Encode());
  }

  Status HandleMigrate(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(MigrateRequest request,
                             MigrateRequest::Decode(payload));
    SPINNER_RETURN_IF_ERROR(
        CheckPerPartition(request.global_loads, "Migrate loads"));
    SPINNER_RETURN_IF_ERROR(
        CheckPerPartition(request.migration_counts, "Migrate counters"));
    if (static_cast<int>(request.capacities.size()) !=
        config_.num_partitions) {
      return Status::InvalidArgument("Migrate: capacity vector size");
    }
    MigrateReply reply;
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardMigrateResult result;
      result.shard = owned_shards_[i];
      ShardComputeMigrations(config_, &shards_[i], labels_,
                             request.global_loads, request.capacities,
                             request.migration_counts, request.superstep,
                             candidate_, block_candidates_, &result.moves,
                             &scratch_[i], layout_.owned_begin);
      result.loads = shards_[i].loads;
      result.migrated = scratch_[i].migrated;
      result.messages = scratch_[i].messages;
      reply.shards.push_back(std::move(result));
    }
    return Send(MessageType::kMigrateReply, reply.Encode());
  }

  Status HandleApplyDeltas(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(ApplyDeltasMessage deltas,
                             ApplyDeltasMessage::Decode(payload));
    // Own moves were already applied by HandleMigrate; the coordinator
    // sends only the subscription-filtered remainder, so anything outside
    // the mirror set is a protocol violation.
    for (const LabelDelta& move : deltas.moves) {
      if (move.vertex < 0 || move.vertex >= n_ || move.label < 0 ||
          move.label >= config_.num_partitions) {
        return Status::InvalidArgument("ApplyDeltas: move out of range");
      }
      if (!Subscribed(move.vertex)) {
        return Status::InvalidArgument(StrFormat(
            "ApplyDeltas: move for unsubscribed vertex %lld",
            static_cast<long long>(move.vertex)));
      }
      labels_[MirrorSlot(move.vertex)] = move.label;
    }
    DeltasAck ack;
    ack.labels_checksum = StateChecksum();
    return Send(MessageType::kDeltasAck, ack.Encode());
  }

  Status HandleSnapshot() {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    ShardStateReply reply;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const ShardedGraphStore::Shard& shard = shards_[i];
      ShardState state;
      state.shard = owned_shards_[i];
      state.labels.assign(
          labels_.begin() + (shard.begin - layout_.owned_begin),
          labels_.begin() + (shard.end - layout_.owned_begin));
      state.loads = shard.loads;
      reply.shards.push_back(std::move(state));
    }
    return Send(MessageType::kSnapshotReply, reply.Encode());
  }

  int fd_;
  TransportOptions options_;
  int64_t capacity_;
  std::optional<PersistentShardStore> store_;
  uint64_t next_message_id_ = 1;
  bool assign_done_ = false;
  bool setup_done_ = false;
  SpinnerConfig config_;
  int64_t n_ = 0;
  std::vector<int32_t> owned_shards_;
  std::vector<uint64_t> assigned_fingerprints_;
  /// Store slices probed at Assign, consumed (or discarded) at Setup.
  std::vector<std::optional<PersistentShardStore::LoadedSlice>> loaded_;
  /// Owned slices with targets remapped to compact local slots.
  std::vector<ShardedGraphStore::Shard> shards_;
  WorkerLayout layout_;
  std::vector<PartitionId> labels_;     // [owned ascending][mirror]
  std::vector<PartitionId> candidate_;  // owned entries only
  std::vector<double> block_score_;     // owned blocks only
  std::vector<int32_t> block_candidates_;  // owned blocks only
  std::vector<ShardScratch> scratch_;   // one per owned shard
  /// The process-wide kill knob (WorkerLoopOptions); survives ResetRun.
  int32_t loop_fail_after_score_steps_ = -1;
  /// The effective per-run kill knob (loop value, or the Assign override).
  int32_t fail_after_score_steps_ = -1;
  int32_t scores_seen_ = 0;
};

}  // namespace

int RunShardWorkerLoop(int fd, const TransportOptions& options,
                       const WorkerLoopOptions& loop) {
  return ShardWorker(fd, options, loop).Run();
}

int RunTcpWorker(const std::string& connect_address,
                 const TransportOptions& options,
                 const WorkerLoopOptions& loop) {
  auto socket = TcpDial(connect_address, loop.dial_timeout_ms);
  if (!socket.ok()) {
    std::fprintf(stderr, "worker: %s\n",
                 socket.status().ToString().c_str());
    return 1;
  }
  return ShardWorker(socket->fd(), options, loop).Run();
}

}  // namespace spinner::dist
