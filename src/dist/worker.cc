#include "dist/worker.h"

#include <unistd.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "dist/transport.h"
#include "dist/wire_format.h"
#include "spinner/shard_superstep.h"

namespace spinner::dist {

namespace {

/// Per-connection worker state machine. One instance per process lifetime;
/// the coordinator speaks the protocol in a fixed order (Setup first), and
/// every handler re-validates payloads against the Setup topology.
class ShardWorker {
 public:
  ShardWorker(int fd, const TransportOptions& options)
      : fd_(fd), options_(options) {}

  /// Protocol loop; see RunShardWorkerLoop for the exit-code contract.
  int Run() {
    for (;;) {
      Result<Frame> frame = RecvMessage(fd_, options_);
      if (!frame.ok()) return 2;  // coordinator died or stream corrupt
      Status status = Status::OK();
      bool teardown = false;
      switch (static_cast<MessageType>(frame->type)) {
        case MessageType::kSetup:
          status = HandleSetup(frame->payload);
          break;
        case MessageType::kInit:
          status = HandleInit(frame->payload);
          break;
        case MessageType::kLabels:
          status = HandleLabels(frame->payload);
          break;
        case MessageType::kScores:
          status = HandleScores(frame->payload);
          break;
        case MessageType::kMigrate:
          status = HandleMigrate(frame->payload);
          break;
        case MessageType::kApplyDeltas:
          status = HandleApplyDeltas(frame->payload);
          break;
        case MessageType::kSnapshot:
          status = HandleSnapshot();
          break;
        case MessageType::kTeardown:
          status = Send(MessageType::kTeardownAck, {});
          teardown = true;
          break;
        default:
          status = Status::InvalidArgument(StrFormat(
              "worker received unexpected frame type %u", frame->type));
          break;
      }
      if (!status.ok()) {
        // Best-effort error report; the coordinator may already be gone.
        (void)Send(MessageType::kError,
                   ErrorMessage::FromStatus(status).Encode());
        return 1;
      }
      if (teardown) return 0;
    }
  }

 private:
  Status Send(MessageType type, std::span<const uint8_t> payload) {
    return SendMessage(fd_, static_cast<uint32_t>(type), payload, options_,
                       next_message_id_++);
  }

  Status CheckSetup() const {
    if (!setup_done_) {
      return Status::FailedPrecondition(
          "worker received a run message before Setup");
    }
    return Status::OK();
  }

  Status CheckPerPartition(const std::vector<int64_t>& v,
                           const char* what) const {
    if (static_cast<int>(v.size()) != config_.num_partitions) {
      return Status::InvalidArgument(
          StrFormat("%s carries %zu entries for k=%d", what, v.size(),
                    config_.num_partitions));
    }
    return Status::OK();
  }

  /// True iff a shard of this worker owns vertex v. Owned shards arrive in
  /// ascending range order (validated in HandleSetup).
  bool Owns(VertexId v) const {
    auto it = std::upper_bound(
        shards_.begin(), shards_.end(), v,
        [](VertexId value, const ShardedGraphStore::Shard& shard) {
          return value < shard.begin;
        });
    return it != shards_.begin() && v < std::prev(it)->end;
  }

  bool Subscribed(VertexId v) const {
    return std::binary_search(subscription_.begin(), subscription_.end(), v);
  }

  /// The DeltasAck gate digest: owned label slices in ascending shard
  /// order, then subscribed mirror values in subscription order. The
  /// coordinator computes the same from its authoritative label array.
  uint64_t StateChecksum() const {
    LabelChecksum sum;
    for (const ShardedGraphStore::Shard& shard : shards_) {
      sum.Update(std::span<const PartitionId>(labels_).subspan(
          static_cast<size_t>(shard.begin),
          static_cast<size_t>(shard.end - shard.begin)));
    }
    for (const VertexId v : subscription_) sum.UpdateOne(labels_[v]);
    return sum.digest();
  }

  Status HandleSetup(std::span<const uint8_t> payload) {
    if (setup_done_) {
      return Status::FailedPrecondition("worker already set up");
    }
    SPINNER_ASSIGN_OR_RETURN(SetupMessage setup,
                             SetupMessage::Decode(payload));
    if (setup.num_partitions < 1 || setup.num_vertices < 0 ||
        setup.num_shards_total < 1) {
      return Status::InvalidArgument("Setup: nonsensical topology counts");
    }
    VertexId previous_end = 0;
    for (size_t i = 0; i < setup.shards.size(); ++i) {
      const ShardedGraphStore::Shard& shard = setup.shards[i];
      if (setup.owned_shards[i] < 0 ||
          setup.owned_shards[i] >= setup.num_shards_total ||
          shard.end > setup.num_vertices) {
        return Status::InvalidArgument(
            "Setup: shard slice outside the declared topology");
      }
      if (i > 0 && shard.begin < previous_end) {
        // Owns() and the checksum gate rely on ascending ranges.
        return Status::InvalidArgument(
            "Setup: shard slices are not in ascending range order");
      }
      previous_end = shard.end;
      for (const VertexId t : shard.targets) {
        if (t < 0 || t >= setup.num_vertices) {
          return Status::InvalidArgument(
              "Setup: shard slice target outside the vertex range");
        }
      }
    }
    config_ = setup.ToConfig();
    n_ = setup.num_vertices;
    owned_shards_ = std::move(setup.owned_shards);
    shards_ = std::move(setup.shards);
    fail_after_score_steps_ = setup.fail_after_score_steps;
    labels_.assign(static_cast<size_t>(n_), kNoPartition);
    candidate_.assign(static_cast<size_t>(n_), kNoPartition);
    const int64_t blocks =
        (n_ + ShardedGraphStore::kBlockSize - 1) /
        ShardedGraphStore::kBlockSize;
    block_score_.assign(static_cast<size_t>(blocks), 0.0);
    scratch_.resize(shards_.size());
    for (ShardScratch& sc : scratch_) sc.Prepare(config_.num_partitions);

    // The boundary mirror set: every out-of-range neighbor of an owned
    // vertex, subscribed exactly once. This is the full set of labels the
    // shard kernels can ever read outside the owned ranges, so
    // subscription-filtered updates keep the worker bit-identical to the
    // in-process substrate.
    for (const ShardedGraphStore::Shard& shard : shards_) {
      for (const VertexId t : shard.targets) {
        if (!Owns(t)) subscription_.push_back(t);
      }
    }
    std::sort(subscription_.begin(), subscription_.end());
    subscription_.erase(
        std::unique(subscription_.begin(), subscription_.end()),
        subscription_.end());
    setup_done_ = true;

    SubscribeMessage subscribe;
    subscribe.vertices = subscription_;
    return Send(MessageType::kSubscribe, subscribe.Encode());
  }

  Status HandleInit(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(InitRequest request,
                             InitRequest::Decode(payload));
    if (static_cast<int64_t>(request.initial_labels.size()) > n_) {
      return Status::InvalidArgument(
          "Init: more initial labels than vertices");
    }
    ShardStateReply reply;
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardedGraphStore::Shard& shard = shards_[i];
      const int64_t messages = ShardInitialize(config_, &shard, labels_,
                                               request.initial_labels);
      ShardState state;
      state.shard = owned_shards_[i];
      state.labels.assign(labels_.begin() + shard.begin,
                          labels_.begin() + shard.end);
      state.loads = shard.loads;
      state.messages = messages;
      reply.shards.push_back(std::move(state));
    }
    return Send(MessageType::kInitReply, reply.Encode());
  }

  Status HandleLabels(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(LabelValues message,
                             LabelValues::Decode(payload));
    if (message.values.size() != subscription_.size()) {
      return Status::InvalidArgument(
          StrFormat("Labels: %zu values for %zu subscribed vertices",
                    message.values.size(), subscription_.size()));
    }
    for (size_t i = 0; i < subscription_.size(); ++i) {
      labels_[subscription_[i]] = message.values[i];
    }
    return Status::OK();
  }

  Status HandleScores(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(ScoresRequest request,
                             ScoresRequest::Decode(payload));
    SPINNER_RETURN_IF_ERROR(
        CheckPerPartition(request.global_loads, "Scores loads"));
    if (static_cast<int>(request.capacities.size()) !=
        config_.num_partitions) {
      return Status::InvalidArgument("Scores: capacity vector size");
    }
    if (fail_after_score_steps_ >= 0 &&
        scores_seen_ == fail_after_score_steps_) {
      // Test hook: simulate a worker crash mid-superstep — after the
      // request was consumed, before any reply reaches the coordinator.
      _exit(3);
    }
    ++scores_seen_;
    ScoresReply reply;
    reply.local_weight = 0;
    reply.migration_counts.assign(
        static_cast<size_t>(config_.num_partitions), 0);
    for (size_t i = 0; i < shards_.size(); ++i) {
      const ShardedGraphStore::Shard& shard = shards_[i];
      ShardComputeScores(config_, shard, labels_, request.global_loads,
                         request.capacities, request.superstep, candidate_,
                         block_score_, &scratch_[i]);
      const int64_t block_begin =
          shard.begin / ShardedGraphStore::kBlockSize;
      const int64_t block_end =
          (shard.end + ShardedGraphStore::kBlockSize - 1) /
          ShardedGraphStore::kBlockSize;
      reply.block_score.insert(reply.block_score.end(),
                               block_score_.begin() + block_begin,
                               block_score_.begin() + block_end);
      reply.local_weight += scratch_[i].local_weight;
      for (size_t l = 0; l < reply.migration_counts.size(); ++l) {
        reply.migration_counts[l] += scratch_[i].migrations[l];
      }
    }
    return Send(MessageType::kScoresReply, reply.Encode());
  }

  Status HandleMigrate(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(MigrateRequest request,
                             MigrateRequest::Decode(payload));
    SPINNER_RETURN_IF_ERROR(
        CheckPerPartition(request.global_loads, "Migrate loads"));
    SPINNER_RETURN_IF_ERROR(
        CheckPerPartition(request.migration_counts, "Migrate counters"));
    if (static_cast<int>(request.capacities.size()) !=
        config_.num_partitions) {
      return Status::InvalidArgument("Migrate: capacity vector size");
    }
    MigrateReply reply;
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardMigrateResult result;
      result.shard = owned_shards_[i];
      ShardComputeMigrations(config_, &shards_[i], labels_,
                             request.global_loads, request.capacities,
                             request.migration_counts, request.superstep,
                             candidate_, &result.moves, &scratch_[i]);
      result.loads = shards_[i].loads;
      result.migrated = scratch_[i].migrated;
      result.messages = scratch_[i].messages;
      reply.shards.push_back(std::move(result));
    }
    return Send(MessageType::kMigrateReply, reply.Encode());
  }

  Status HandleApplyDeltas(std::span<const uint8_t> payload) {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    SPINNER_ASSIGN_OR_RETURN(ApplyDeltasMessage deltas,
                             ApplyDeltasMessage::Decode(payload));
    // Own moves were already applied by HandleMigrate; the coordinator
    // sends only the subscription-filtered remainder, so anything outside
    // the mirror set is a protocol violation.
    for (const LabelDelta& move : deltas.moves) {
      if (move.vertex < 0 || move.vertex >= n_ || move.label < 0 ||
          move.label >= config_.num_partitions) {
        return Status::InvalidArgument("ApplyDeltas: move out of range");
      }
      if (!Subscribed(move.vertex)) {
        return Status::InvalidArgument(StrFormat(
            "ApplyDeltas: move for unsubscribed vertex %lld",
            static_cast<long long>(move.vertex)));
      }
      labels_[move.vertex] = move.label;
    }
    DeltasAck ack;
    ack.labels_checksum = StateChecksum();
    return Send(MessageType::kDeltasAck, ack.Encode());
  }

  Status HandleSnapshot() {
    SPINNER_RETURN_IF_ERROR(CheckSetup());
    ShardStateReply reply;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const ShardedGraphStore::Shard& shard = shards_[i];
      ShardState state;
      state.shard = owned_shards_[i];
      state.labels.assign(labels_.begin() + shard.begin,
                          labels_.begin() + shard.end);
      state.loads = shard.loads;
      reply.shards.push_back(std::move(state));
    }
    return Send(MessageType::kSnapshotReply, reply.Encode());
  }

  int fd_;
  TransportOptions options_;
  uint64_t next_message_id_ = 1;
  bool setup_done_ = false;
  SpinnerConfig config_;
  int64_t n_ = 0;
  std::vector<int32_t> owned_shards_;
  std::vector<ShardedGraphStore::Shard> shards_;
  /// Out-of-range neighbors of the owned shards, ascending: the only
  /// vertices beyond the owned ranges whose labels_ entries are ever
  /// written (or read by the shard kernels).
  std::vector<VertexId> subscription_;
  std::vector<PartitionId> labels_;     // owned ranges + subscribed mirror
  std::vector<PartitionId> candidate_;  // full-sized, own ranges written
  std::vector<double> block_score_;     // full-sized, own blocks written
  std::vector<ShardScratch> scratch_;   // one per owned shard
  int32_t fail_after_score_steps_ = -1;
  int32_t scores_seen_ = 0;
};

}  // namespace

int RunShardWorkerLoop(int fd, const TransportOptions& options) {
  return ShardWorker(fd, options).Run();
}

}  // namespace spinner::dist
