// Coordinator: the master side of the cross-process execution mode. It
// acquires worker connections from a Transport (dist/registry.h) — forked
// children over socketpairs, or dial-in TCP workers from the
// WorkerRegistry — assigns each a contiguous, capacity-weighted range of
// store shards (Assign), learns what each worker already hosts (Resume),
// downloads only the stale/missing shard slices (Setup, streamed across
// chunk frames for graphs of any size), collects each worker's boundary
// subscription, and implements the SuperstepBackend interface by turning
// every superstep phase into one lockstep RPC round — so
// DriveSpinnerSupersteps runs the exact same master schedule over
// processes as it does over ThreadPool tasks, and RunMultiProcessSpinner
// is bit-identical to RunShardedSpinner for every {num_shards,
// num_workers, transport} (the invariance tests assert assignments AND
// float φ/ρ/score histories).
//
// Label traffic is cut-proportional: after Init each worker receives the
// labels of exactly its subscribed (out-of-range neighbor) vertices, and
// each iteration's delta broadcast is filtered per worker to its
// subscription — O(boundary) bytes per superstep instead of O(V·workers).
// Initial labels are likewise sliced per worker to its owned range. The
// WireCounters and the slice download counters expose this for tests and
// the bench wire report.
//
// Failure contract: a worker that dies mid-superstep (EOF/EPIPE on its
// socket) or sends a malformed reply surfaces as a non-OK Status from the
// run — never a hang — and every remaining worker is destroyed through
// the transport before the error returns. Cross-process state is
// verified, not assumed: each iteration's delta broadcast is acknowledged
// with a checksum over the worker's owned slices and subscribed mirror,
// and a final Snapshot round checks every worker's shard state against
// the coordinator's merged view bit-for-bit.
#ifndef SPINNER_DIST_COORDINATOR_H_
#define SPINNER_DIST_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/registry.h"
#include "dist/transport.h"
#include "dist/wire_format.h"
#include "graph/sharded_store.h"
#include "spinner/config.h"
#include "spinner/observer.h"
#include "spinner/sharded_program.h"

namespace spinner::dist {

/// Execution-shape and test options of a multi-process run.
struct MultiProcessOptions {
  /// Worker processes to drive (0 = min(num_shards, hardware threads)).
  int num_workers = 0;

  /// Transport knobs (frame payload ceiling, reassembly guard), shared
  /// with every worker. Defaults honor SPINNER_WIRE_MAX_PAYLOAD.
  TransportOptions transport = TransportOptions::FromEnv();

  /// Where worker connections come from. Null = a private
  /// UnixSocketTransport (fork-per-run, the single-host default); point
  /// it at a WorkerRegistry to drive dial-in TCP workers. Not owned.
  Transport* worker_transport = nullptr;

  /// PersistentShardStore root for forked workers (UnixSocketTransport
  /// only; dial-in workers configure their own store). Empty = in-memory.
  std::string worker_store_dir;

  /// Read deadline of every coordinator recv: a worker that stays
  /// connected but sends nothing for this long is declared hung
  /// (DeadlineExceeded, distinct from the dead-peer IOError). The
  /// deadline renews on every byte of progress, so a slow-but-alive
  /// worker streaming a large reply is never falsely declared hung.
  int64_t rpc_timeout_ms = 120'000;
  /// Liveness poll granularity of those deadlines, and the base unit of
  /// the exponential backoff between recovery attempts.
  int64_t heartbeat_period_ms = 1'000;
  /// Superstep-phase retries after a worker failure before the run
  /// surfaces the error. 0 (the default) disables recovery: the first
  /// failure aborts the run, the pre-recovery behavior. Each retry
  /// pauses at the failed phase, rebuilds the fleet (probing survivors,
  /// destroying the dead, topping up from the transport), replays the
  /// checkpointed label state, and re-runs the phase — the recovered
  /// run's assignments and float histories stay bit-identical to a
  /// failure-free run.
  int max_recovery_attempts = 0;

  /// Test hooks: worker `fail_worker` calls _exit(3) right before replying
  /// to its (fail_after_score_steps+1)-th ComputeScores request — a
  /// deterministic mid-superstep crash. -1 = never (the default). Injected
  /// only by the initial Spawn, never by a recovery re-assign.
  int fail_after_score_steps = -1;
  int fail_worker = 0;
};

/// The worker-process count a run should use; never affects results.
int ResolveNumWorkers(int requested, int num_shards);

/// Owns the worker endpoints of one multi-process run. Not thread-safe.
class Coordinator {
 public:
  Coordinator() = default;
  ~Coordinator();  // destroys anything still attached

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Acquires `num_workers` endpoints from the transport, assigns each a
  /// contiguous ascending range of store shards (sized by the capacity it
  /// advertised in Hello), and runs the Assign/Resume/Setup handshake:
  /// each worker receives the full run config and its slice fingerprints,
  /// reports what it already hosts, and downloads only the remainder. On
  /// failure every acquired endpoint is destroyed.
  Status Spawn(const SpinnerConfig& config, const ShardedGraphStore& store,
               int num_workers, const MultiProcessOptions& options);

  /// Receives every worker's Subscribe message (its out-of-range neighbor
  /// set, sent right after Setup) and builds the per-worker subscription
  /// index, validating each set against `store` (strictly ascending,
  /// in-range, none owned by the sender). Must run once, before Init.
  Status CollectSubscriptions(const ShardedGraphStore& store);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Global shard ids owned by worker `w`, ascending.
  const std::vector<int32_t>& owned_shards(int w) const {
    return workers_[static_cast<size_t>(w)].shards;
  }

  /// Vertices worker `w` subscribed to (ascending); empty until
  /// CollectSubscriptions succeeds.
  const std::vector<VertexId>& subscription(int w) const {
    return workers_[static_cast<size_t>(w)].subscription;
  }

  /// Sends one message to worker `w` / to every worker (chunked across
  /// frames when it exceeds the transport's payload ceiling).
  Status SendTo(int w, MessageType type, std::span<const uint8_t> payload);
  Status SendToAll(MessageType type, std::span<const uint8_t> payload);

  /// Receives the next message from worker `w` and checks its type,
  /// bounded by the rpc_timeout_ms read deadline. An Error frame decodes
  /// into the worker's Status; EOF (a dead worker) becomes an IOError
  /// and an elapsed deadline (connected but silent) a DeadlineExceeded,
  /// each naming the worker — callers never hang on a failed process.
  Result<Frame> RecvFrom(int w, MessageType expected);

  /// Rebuilds the fleet after a worker failure: probes every attached
  /// endpoint with the Teardown handshake (survivors reset to the
  /// Assign-await state; the dead and the hung are destroyed), tops the
  /// fleet back up from the transport best-effort (a replacement gets one
  /// rpc timeout to materialize, otherwise survivors absorb the missing
  /// range), and re-runs the Assign/Resume/Setup handshake over the new
  /// roster — re-carving ALL shard ranges capacity-weighted, with
  /// matching PersistentShardStore fingerprints downloading nothing.
  /// Callers must re-run CollectSubscriptions afterwards. Fails when no
  /// worker survives.
  Status RebuildFleet(const ShardedGraphStore& store);

  /// Bytes/frames moved through this coordinator, all workers combined.
  const WireCounters& counters() const { return counters_; }

  /// Slice download accounting of the Spawn/RebuildFleet handshakes.
  int64_t slices_downloaded() const { return slices_downloaded_; }
  int64_t slice_bytes_downloaded() const { return slice_bytes_downloaded_; }
  int64_t slices_resumed() const { return slices_resumed_; }

  /// Endpoints newly acquired by RebuildFleet top-ups.
  int64_t workers_replaced() const { return workers_replaced_; }

  /// Clean teardown handshake, then releases every endpoint back to the
  /// transport (a registry pools the live connections for the next run).
  /// Destroys every worker if any step fails, then returns the first
  /// error.
  Status Shutdown();

  /// Graceful abort for error paths: probes every attached endpoint with
  /// the Teardown handshake, Releases the ones that ack (a registry gets
  /// its pooled connection back in a defined, Assign-await state — not
  /// mid-run), and Destroys the rest. Idempotent.
  void Abort();

  /// Destroys every attached endpoint through the transport (last-resort
  /// paths; idempotent). Forked children are SIGKILLed and reaped.
  void ForceKill();

 private:
  struct Worker {
    WorkerEndpoint endpoint;
    std::vector<int32_t> shards;
    /// Ascending out-of-range neighbor set the worker subscribed to.
    std::vector<VertexId> subscription;
  };

  /// Carves contiguous capacity-weighted shard ranges over `endpoints`
  /// and runs the Assign/Resume/Setup handshake (the body shared by
  /// Spawn and RebuildFleet). Repopulates workers_; on failure every
  /// endpoint is destroyed. `inject_fail_hook` arms the crash test hook
  /// (initial Spawn only).
  Status AssignFleet(const ShardedGraphStore& store,
                     std::vector<WorkerEndpoint> endpoints,
                     bool inject_fail_hook);

  /// Returns a mid-run endpoint to the Assign-await state: sends
  /// Teardown, then drains in-flight replies (bounded) until the
  /// TeardownAck. Non-OK means the worker is dead, hung, or babbling —
  /// destroy it.
  Status ResetEndpoint(WorkerEndpoint& endpoint);

  std::vector<Worker> workers_;
  Transport* transport_impl_ = nullptr;
  std::unique_ptr<UnixSocketTransport> owned_transport_;
  std::unique_ptr<Transport> fault_transport_;
  TransportOptions transport_;
  SpinnerConfig config_;
  int64_t rpc_timeout_ms_ = 120'000;
  int64_t heartbeat_period_ms_ = 1'000;
  int fail_after_score_steps_ = -1;
  int fail_worker_ = 0;
  WireCounters counters_;
  int64_t slices_downloaded_ = 0;
  int64_t slice_bytes_downloaded_ = 0;
  int64_t slices_resumed_ = 0;
  int64_t workers_replaced_ = 0;
  uint64_t next_message_id_ = 1;
};

/// Runs Spinner label propagation over `store` across worker processes —
/// the cross-process sibling of RunShardedSpinner with the same contract:
/// on success store->labels() holds the final assignment and every
/// shard's load counters are consistent with it, and the result
/// (assignment and float history) is bit-identical to the in-process path
/// for every {num_shards, num_workers, transport}. The result's `wire`
/// field reports the run's wire traffic. `observer` runs coordinator-side
/// and may be null.
Result<ShardedRunResult> RunMultiProcessSpinner(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels,
    const MultiProcessOptions& options, const ProgressObserver* observer);

}  // namespace spinner::dist

#endif  // SPINNER_DIST_COORDINATOR_H_
