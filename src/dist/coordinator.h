// Coordinator: the master side of the cross-process execution mode. It
// forks ShardWorker processes connected by Unix-domain socket pairs,
// downloads each worker's shard slices (Setup, streamed across chunk
// frames for graphs of any size), collects each worker's boundary
// subscription, and implements the SuperstepBackend interface by turning
// every superstep phase into one lockstep RPC round — so
// DriveSpinnerSupersteps runs the exact same master schedule over
// processes as it does over ThreadPool tasks, and RunMultiProcessSpinner
// is bit-identical to RunShardedSpinner for every {num_shards,
// num_workers} (the invariance tests assert assignments AND float
// φ/ρ/score histories).
//
// Label traffic is cut-proportional: after Init each worker receives the
// labels of exactly its subscribed (out-of-range neighbor) vertices, and
// each iteration's delta broadcast is filtered per worker to its
// subscription — O(boundary) bytes per superstep instead of O(V·workers).
// The WireCounters expose this for tests and the bench wire report.
//
// Failure contract: a worker that dies mid-superstep (EOF/EPIPE on its
// socket) or sends a malformed reply surfaces as a non-OK Status from the
// run — never a hang — and every remaining worker is force-killed and
// reaped before the error returns. Cross-process state is verified, not
// assumed: each iteration's delta broadcast is acknowledged with a
// checksum over the worker's owned slices and subscribed mirror, and a
// final Snapshot round checks every worker's shard state against the
// coordinator's merged view bit-for-bit.
#ifndef SPINNER_DIST_COORDINATOR_H_
#define SPINNER_DIST_COORDINATOR_H_

#include <sys/types.h>

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dist/transport.h"
#include "dist/wire_format.h"
#include "graph/sharded_store.h"
#include "spinner/config.h"
#include "spinner/observer.h"
#include "spinner/sharded_program.h"

namespace spinner::dist {

/// Execution-shape and test options of a multi-process run.
struct MultiProcessOptions {
  /// Worker processes to fork (0 = min(num_shards, hardware threads)).
  int num_workers = 0;

  /// Transport knobs (frame payload ceiling, reassembly guard), shared
  /// with every forked worker. Defaults honor SPINNER_WIRE_MAX_PAYLOAD.
  TransportOptions transport = TransportOptions::FromEnv();

  /// Test hooks: worker `fail_worker` calls _exit(3) right before replying
  /// to its (fail_after_score_steps+1)-th ComputeScores request — a
  /// deterministic mid-superstep crash. -1 = never (the default).
  int fail_after_score_steps = -1;
  int fail_worker = 0;
};

/// The worker-process count a run should use; never affects results.
int ResolveNumWorkers(int requested, int num_shards);

/// Owns the worker processes of one multi-process run. Not thread-safe.
class Coordinator {
 public:
  Coordinator() = default;
  ~Coordinator();  // force-kills anything still alive

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Forks `num_workers` workers, assigns each a contiguous ascending
  /// range of store shards, and sends each its Setup frame (config +
  /// owned shard slices). On failure every already-forked worker is
  /// killed and reaped.
  Status Spawn(const SpinnerConfig& config, const ShardedGraphStore& store,
               int num_workers, const MultiProcessOptions& options);

  /// Receives every worker's Subscribe message (its out-of-range neighbor
  /// set, sent right after Setup) and builds the per-worker subscription
  /// index, validating each set against `store` (strictly ascending,
  /// in-range, none owned by the sender). Must run once, before Init.
  Status CollectSubscriptions(const ShardedGraphStore& store);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Global shard ids owned by worker `w`, ascending.
  const std::vector<int32_t>& owned_shards(int w) const {
    return workers_[static_cast<size_t>(w)].shards;
  }

  /// Vertices worker `w` subscribed to (ascending); empty until
  /// CollectSubscriptions succeeds.
  const std::vector<VertexId>& subscription(int w) const {
    return workers_[static_cast<size_t>(w)].subscription;
  }

  /// Sends one message to worker `w` / to every worker (chunked across
  /// frames when it exceeds the transport's payload ceiling).
  Status SendTo(int w, MessageType type, std::span<const uint8_t> payload);
  Status SendToAll(MessageType type, std::span<const uint8_t> payload);

  /// Receives the next message from worker `w` and checks its type. An
  /// Error frame decodes into the worker's Status; EOF (a dead worker)
  /// becomes an IOError naming the worker — callers never hang on a
  /// crashed process.
  Result<Frame> RecvFrom(int w, MessageType expected);

  /// Bytes/frames moved through this coordinator, all workers combined.
  const WireCounters& counters() const { return counters_; }

  /// Clean teardown handshake + reap. Force-kills (and still reaps) every
  /// worker if any step fails, then returns the first error.
  Status Shutdown();

  /// SIGKILLs and reaps every live worker (error paths; idempotent).
  void ForceKill();

 private:
  struct Worker {
    pid_t pid = -1;
    UnixSocket socket;
    std::vector<int32_t> shards;
    /// Ascending out-of-range neighbor set the worker subscribed to.
    std::vector<VertexId> subscription;
  };

  std::vector<Worker> workers_;
  TransportOptions transport_;
  WireCounters counters_;
  uint64_t next_message_id_ = 1;
};

/// Runs Spinner label propagation over `store` across forked worker
/// processes — the cross-process sibling of RunShardedSpinner with the
/// same contract: on success store->labels() holds the final assignment
/// and every shard's load counters are consistent with it, and the result
/// (assignment and float history) is bit-identical to the in-process path
/// for every {num_shards, num_workers}. The result's `wire` field reports
/// the run's wire traffic. `observer` runs coordinator-side and may be
/// null.
Result<ShardedRunResult> RunMultiProcessSpinner(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels,
    const MultiProcessOptions& options, const ProgressObserver* observer);

}  // namespace spinner::dist

#endif  // SPINNER_DIST_COORDINATOR_H_
