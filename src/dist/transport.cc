#include "dist/transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace spinner::dist {

namespace {

/// Header layout: magic u32 | type u32 | payload_size u64 (little-endian).
constexpr size_t kHeaderSize = 16;

Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of SIGPIPE, so a
    // crashed worker surfaces as a Status the coordinator can act on.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("send failed: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `*got_any` reports whether at least one byte
/// arrived, distinguishing a clean peer close (EOF at a frame boundary)
/// from a torn frame.
Status RecvAll(int fd, uint8_t* data, size_t size, bool* got_any) {
  size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("recv failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError(
          received == 0 && !*got_any
              ? "peer closed the connection"
              : StrFormat("truncated frame: peer closed after %zu of %zu "
                          "bytes",
                          received, size));
    }
    *got_any = true;
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

void UnixSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::pair<UnixSocket, UnixSocket>> CreateSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(
        StrFormat("socketpair failed: %s", std::strerror(errno)));
  }
  return std::make_pair(UnixSocket(fds[0]), UnixSocket(fds[1]));
}

Status SendFrame(int fd, uint32_t type, std::span<const uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %zu bytes exceeds the %llu-byte limit",
                  payload.size(),
                  static_cast<unsigned long long>(kMaxFramePayload)));
  }
  uint8_t header[kHeaderSize];
  const uint32_t magic = kFrameMagic;
  const uint64_t size = payload.size();
  std::memcpy(header, &magic, sizeof(magic));
  std::memcpy(header + 4, &type, sizeof(type));
  std::memcpy(header + 8, &size, sizeof(size));
  SPINNER_RETURN_IF_ERROR(SendAll(fd, header, sizeof(header)));
  return SendAll(fd, payload.data(), payload.size());
}

Result<Frame> RecvFrame(int fd) {
  uint8_t header[kHeaderSize];
  bool got_any = false;
  SPINNER_RETURN_IF_ERROR(
      RecvAll(fd, header, sizeof(header), &got_any));
  uint32_t magic = 0;
  uint64_t size = 0;
  Frame frame;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&frame.type, header + 4, sizeof(frame.type));
  std::memcpy(&size, header + 8, sizeof(size));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic (stream desync?)");
  }
  if (size > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("oversized frame: header announces %llu bytes (limit "
                  "%llu)",
                  static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(kMaxFramePayload)));
  }
  frame.payload.resize(static_cast<size_t>(size));
  SPINNER_RETURN_IF_ERROR(
      RecvAll(fd, frame.payload.data(), frame.payload.size(), &got_any));
  return frame;
}

}  // namespace spinner::dist
