#include "dist/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/string_util.h"

namespace spinner::dist {

namespace {

/// Header layout: magic u32 | type u32 | payload_size u64 (little-endian).
constexpr size_t kHeaderSize = kFrameHeaderSize;

/// Chunk envelope layout (little-endian, packed):
///   message_id u64 | inner_type u32 | chunk_index u32 | chunk_count u32 |
///   total_size u64 | checksum u64
constexpr size_t kChunkEnvelopeSize = 36;

// SpinnerConfig::Validate repeats kMinFramePayload as a literal (the
// spinner/ layer cannot include dist/); keep them in sync here.
static_assert(kMinFramePayload == 64,
              "update SpinnerConfig::Validate's wire_max_payload bound");
static_assert(kMinFramePayload > kChunkEnvelopeSize,
              "every legal frame must fit the chunk envelope plus bytes");

struct ChunkEnvelope {
  uint64_t message_id = 0;
  uint32_t inner_type = 0;
  uint32_t chunk_index = 0;
  uint32_t chunk_count = 0;
  uint64_t total_size = 0;
  uint64_t checksum = 0;
};

void PutEnvelope(const ChunkEnvelope& env, uint8_t* out) {
  std::memcpy(out, &env.message_id, 8);
  std::memcpy(out + 8, &env.inner_type, 4);
  std::memcpy(out + 12, &env.chunk_index, 4);
  std::memcpy(out + 16, &env.chunk_count, 4);
  std::memcpy(out + 20, &env.total_size, 8);
  std::memcpy(out + 28, &env.checksum, 8);
}

Result<ChunkEnvelope> ParseEnvelope(std::span<const uint8_t> payload) {
  if (payload.size() < kChunkEnvelopeSize) {
    return Status::InvalidArgument(
        StrFormat("chunk frame of %zu bytes is smaller than the %zu-byte "
                  "envelope",
                  payload.size(), kChunkEnvelopeSize));
  }
  ChunkEnvelope env;
  std::memcpy(&env.message_id, payload.data(), 8);
  std::memcpy(&env.inner_type, payload.data() + 8, 4);
  std::memcpy(&env.chunk_index, payload.data() + 12, 4);
  std::memcpy(&env.chunk_count, payload.data() + 16, 4);
  std::memcpy(&env.total_size, payload.data() + 20, 8);
  std::memcpy(&env.checksum, payload.data() + 28, 8);
  return env;
}

Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of SIGPIPE, so a
    // crashed worker surfaces as a Status the coordinator can act on.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("send failed: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

int64_t NowMs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

/// Blocks until `fd` is readable (or hung up — the following recv reports
/// EOF/reset as its own IOError) or `deadline_ms` (absolute CLOCK_MONOTONIC,
/// < 0 = none) passes. The wait wakes every `poll_period_ms` to re-check
/// the clock, so a deadline is honored even across spurious wakeups. A
/// peer that stays connected but sends nothing surfaces DeadlineExceeded —
/// deliberately distinct from a dead peer's IOError.
Status AwaitReadable(int fd, int64_t deadline_ms, int64_t poll_period_ms,
                     size_t received, size_t size) {
  for (;;) {
    const int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return Status::DeadlineExceeded(
          StrFormat("read deadline exceeded: peer connected but silent "
                    "after %zu of %zu bytes",
                    received, size));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int slice = static_cast<int>(
        std::min<int64_t>(remaining, std::max<int64_t>(poll_period_ms, 1)));
    const int rc = ::poll(&pfd, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("poll failed: %s", std::strerror(errno)));
    }
    if (rc > 0) return Status::OK();
  }
}

/// Reads exactly `size` bytes. `*got_any` reports whether at least one byte
/// arrived, distinguishing a clean peer close (EOF at a frame boundary)
/// from a torn frame. `timeout_ms` (< 0 = none) bounds every wait for more
/// bytes; the deadline renews on progress, so only a peer that stops
/// sending entirely for a full timeout is declared hung.
Status RecvAll(int fd, uint8_t* data, size_t size, bool* got_any,
               int64_t timeout_ms = -1,
               int64_t poll_period_ms = kDefaultPollPeriodMs) {
  size_t received = 0;
  int64_t deadline_ms = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  while (received < size) {
    if (deadline_ms >= 0) {
      SPINNER_RETURN_IF_ERROR(AwaitReadable(fd, deadline_ms, poll_period_ms,
                                            received, size));
    }
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("recv failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError(
          received == 0 && !*got_any
              ? "peer closed the connection"
              : StrFormat("truncated frame: peer closed after %zu of %zu "
                          "bytes",
                          received, size));
    }
    *got_any = true;
    received += static_cast<size_t>(n);
    if (deadline_ms >= 0) deadline_ms = NowMs() + timeout_ms;
  }
  return Status::OK();
}

uint64_t ClampFramePayload(uint64_t value) {
  return std::clamp(value, kMinFramePayload, kMaxFramePayload);
}

void CountFrame(WireCounters* counters, int64_t WireCounters::* bytes,
                int64_t WireCounters::* frames, size_t payload_size) {
  if (counters == nullptr) return;
  counters->*bytes += static_cast<int64_t>(kHeaderSize + payload_size);
  counters->*frames += 1;
}

}  // namespace

void UnixSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::pair<UnixSocket, UnixSocket>> CreateSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(
        StrFormat("socketpair failed: %s", std::strerror(errno)));
  }
  return std::make_pair(UnixSocket(fds[0]), UnixSocket(fds[1]));
}

TransportOptions TransportOptions::FromEnv() {
  TransportOptions options;
  if (const char* env = std::getenv("SPINNER_WIRE_MAX_PAYLOAD");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      options.max_frame_payload = ClampFramePayload(parsed);
    }
  }
  return options;
}

TransportOptions TransportOptions::Resolve(
    uint64_t max_frame_payload_override) {
  TransportOptions options = FromEnv();
  if (max_frame_payload_override != 0) {
    options.max_frame_payload = ClampFramePayload(max_frame_payload_override);
  }
  return options;
}

Status SendFrame(int fd, uint32_t type, std::span<const uint8_t> payload,
                 const TransportOptions& options) {
  if (payload.size() > options.max_frame_payload) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %zu bytes exceeds the %llu-byte limit",
                  payload.size(),
                  static_cast<unsigned long long>(
                      options.max_frame_payload)));
  }
  uint8_t header[kHeaderSize];
  const uint32_t magic = kFrameMagic;
  const uint64_t size = payload.size();
  std::memcpy(header, &magic, sizeof(magic));
  std::memcpy(header + 4, &type, sizeof(type));
  std::memcpy(header + 8, &size, sizeof(size));
  SPINNER_RETURN_IF_ERROR(SendAll(fd, header, sizeof(header)));
  return SendAll(fd, payload.data(), payload.size());
}

Result<Frame> RecvFrame(int fd, const TransportOptions& options,
                        int64_t timeout_ms, int64_t poll_period_ms) {
  uint8_t header[kHeaderSize];
  bool got_any = false;
  SPINNER_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header), &got_any,
                                  timeout_ms, poll_period_ms));
  uint32_t magic = 0;
  uint64_t size = 0;
  Frame frame;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&frame.type, header + 4, sizeof(frame.type));
  std::memcpy(&size, header + 8, sizeof(size));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic (stream desync?)");
  }
  if (size > options.max_frame_payload) {
    return Status::InvalidArgument(
        StrFormat("oversized frame: header announces %llu bytes (limit "
                  "%llu)",
                  static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(
                      options.max_frame_payload)));
  }
  frame.payload.resize(static_cast<size_t>(size));
  SPINNER_RETURN_IF_ERROR(RecvAll(fd, frame.payload.data(),
                                  frame.payload.size(), &got_any, timeout_ms,
                                  poll_period_ms));
  return frame;
}

Status SendMessage(int fd, uint32_t type, std::span<const uint8_t> payload,
                   const TransportOptions& options, uint64_t message_id,
                   WireCounters* counters) {
  if (type == kChunkFrameType) {
    return Status::InvalidArgument(
        "message type collides with the reserved chunk frame type");
  }
  if (options.max_frame_payload < kMinFramePayload) {
    return Status::InvalidArgument(
        StrFormat("max_frame_payload %llu is below the %llu-byte minimum",
                  static_cast<unsigned long long>(options.max_frame_payload),
                  static_cast<unsigned long long>(kMinFramePayload)));
  }
  if (payload.size() <= options.max_frame_payload) {
    SPINNER_RETURN_IF_ERROR(SendFrame(fd, type, payload, options));
    CountFrame(counters, &WireCounters::bytes_sent,
               &WireCounters::frames_sent, payload.size());
    return Status::OK();
  }

  const uint64_t capacity = options.max_frame_payload - kChunkEnvelopeSize;
  const uint64_t total = payload.size();
  const uint64_t count = (total + capacity - 1) / capacity;
  if (count > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        StrFormat("message of %llu bytes needs more than 2^32 chunks at a "
                  "%llu-byte frame limit",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(
                      options.max_frame_payload)));
  }
  ChunkEnvelope env;
  env.message_id = message_id;
  env.inner_type = type;
  env.chunk_count = static_cast<uint32_t>(count);
  env.total_size = total;
  env.checksum = ChecksumBytes(payload);
  std::vector<uint8_t> buf;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t begin = i * capacity;
    const uint64_t size = std::min(capacity, total - begin);
    env.chunk_index = static_cast<uint32_t>(i);
    buf.resize(kChunkEnvelopeSize + size);
    PutEnvelope(env, buf.data());
    std::memcpy(buf.data() + kChunkEnvelopeSize, payload.data() + begin,
                static_cast<size_t>(size));
    SPINNER_RETURN_IF_ERROR(SendFrame(fd, kChunkFrameType, buf, options));
    CountFrame(counters, &WireCounters::bytes_sent,
               &WireCounters::frames_sent, buf.size());
  }
  if (counters != nullptr) ++counters->chunked_messages_sent;
  return Status::OK();
}

Result<Frame> RecvMessage(int fd, const TransportOptions& options,
                          WireCounters* counters, int64_t timeout_ms,
                          int64_t poll_period_ms) {
  SPINNER_ASSIGN_OR_RETURN(
      Frame first, RecvFrame(fd, options, timeout_ms, poll_period_ms));
  CountFrame(counters, &WireCounters::bytes_received,
             &WireCounters::frames_received, first.payload.size());
  if (first.type != kChunkFrameType) return first;

  SPINNER_ASSIGN_OR_RETURN(const ChunkEnvelope head,
                           ParseEnvelope(first.payload));
  // Every reassembly bound is validated against the first envelope BEFORE
  // the message buffer is allocated; later chunks must repeat the envelope
  // verbatim, so a corrupt or reordered stream fails on the first
  // inconsistent frame instead of hanging or over-allocating.
  if (head.chunk_count < 2) {
    return Status::InvalidArgument(
        StrFormat("chunked message %llu announces %u chunks (minimum 2)",
                  static_cast<unsigned long long>(head.message_id),
                  head.chunk_count));
  }
  if (head.chunk_index != 0) {
    return Status::InvalidArgument(
        StrFormat("chunked message %llu started at chunk %u, not 0 "
                  "(out-of-order or missing chunks)",
                  static_cast<unsigned long long>(head.message_id),
                  head.chunk_index));
  }
  if (head.inner_type == kChunkFrameType) {
    return Status::InvalidArgument("chunk envelope nests a chunk frame");
  }
  if (head.total_size > options.max_message_size) {
    return Status::InvalidArgument(
        StrFormat("chunked message announces %llu bytes (limit %llu)",
                  static_cast<unsigned long long>(head.total_size),
                  static_cast<unsigned long long>(options.max_message_size)));
  }
  if (head.chunk_count > head.total_size) {
    // Every chunk must carry at least one byte, so a count above the total
    // can never be satisfied — reject the overflow up front.
    return Status::InvalidArgument(
        StrFormat("chunked message of %llu bytes announces %u chunks — "
                  "more chunks than bytes",
                  static_cast<unsigned long long>(head.total_size),
                  head.chunk_count));
  }
  if (options.max_frame_payload > kChunkEnvelopeSize &&
      head.total_size > static_cast<uint64_t>(head.chunk_count) *
                            (options.max_frame_payload -
                             kChunkEnvelopeSize)) {
    // Both sides share one TransportOptions, so a sane sender's chunks can
    // carry at most count × per-chunk capacity bytes. Requiring the two
    // header fields to be mutually consistent means a corrupted
    // total_size (or count) is rejected here — BEFORE the total is
    // allocated — instead of slipping a huge resize under the
    // max_message_size ceiling.
    return Status::InvalidArgument(
        StrFormat("chunked message announces %llu bytes in %u chunks — "
                  "more than its chunks can carry at a %llu-byte frame "
                  "limit",
                  static_cast<unsigned long long>(head.total_size),
                  head.chunk_count,
                  static_cast<unsigned long long>(
                      options.max_frame_payload)));
  }

  Frame message;
  message.type = head.inner_type;
  message.payload.resize(static_cast<size_t>(head.total_size));
  uint64_t received = 0;
  for (uint32_t index = 0;; ++index) {
    ChunkEnvelope env;
    std::span<const uint8_t> bytes;
    if (index == 0) {
      env = head;
      bytes = std::span<const uint8_t>(first.payload)
                  .subspan(kChunkEnvelopeSize);
    } else {
      SPINNER_ASSIGN_OR_RETURN(
          Frame frame, RecvFrame(fd, options, timeout_ms, poll_period_ms));
      CountFrame(counters, &WireCounters::bytes_received,
                 &WireCounters::frames_received, frame.payload.size());
      if (frame.type != kChunkFrameType) {
        return Status::InvalidArgument(
            StrFormat("expected chunk %u/%u of message %llu, got a frame "
                      "of type %u (missing chunks)",
                      index, head.chunk_count,
                      static_cast<unsigned long long>(head.message_id),
                      frame.type));
      }
      SPINNER_ASSIGN_OR_RETURN(env, ParseEnvelope(frame.payload));
      if (env.message_id != head.message_id ||
          env.inner_type != head.inner_type ||
          env.chunk_count != head.chunk_count ||
          env.total_size != head.total_size ||
          env.checksum != head.checksum) {
        return Status::InvalidArgument(
            StrFormat("chunk envelope of message %llu changed mid-message "
                      "(interleaved or corrupt stream)",
                      static_cast<unsigned long long>(head.message_id)));
      }
      if (env.chunk_index != index) {
        return Status::InvalidArgument(
            StrFormat("message %llu: expected chunk %u, got chunk %u "
                      "(duplicate or out-of-order)",
                      static_cast<unsigned long long>(head.message_id),
                      index, env.chunk_index));
      }
      // The frame's payload outlives this iteration only through the copy
      // below, so viewing it via `first` keeps one code path.
      first.payload = std::move(frame.payload);
      bytes = std::span<const uint8_t>(first.payload)
                  .subspan(kChunkEnvelopeSize);
    }
    if (bytes.empty()) {
      return Status::InvalidArgument(
          StrFormat("message %llu chunk %u is zero-length",
                    static_cast<unsigned long long>(head.message_id),
                    index));
    }
    if (bytes.size() > head.total_size - received) {
      return Status::InvalidArgument(
          StrFormat("message %llu chunk %u carries %zu bytes but only "
                    "%llu remain (oversized chunk)",
                    static_cast<unsigned long long>(head.message_id), index,
                    bytes.size(),
                    static_cast<unsigned long long>(
                        head.total_size - received)));
    }
    std::memcpy(message.payload.data() + received, bytes.data(),
                bytes.size());
    received += bytes.size();
    if (index + 1 == head.chunk_count) break;
  }
  if (received != head.total_size) {
    return Status::InvalidArgument(
        StrFormat("message %llu reassembled to %llu of %llu bytes "
                  "(truncated chunked message)",
                  static_cast<unsigned long long>(head.message_id),
                  static_cast<unsigned long long>(received),
                  static_cast<unsigned long long>(head.total_size)));
  }
  if (ChecksumBytes(message.payload) != head.checksum) {
    return Status::InvalidArgument(
        StrFormat("message %llu failed its reassembly checksum",
                  static_cast<unsigned long long>(head.message_id)));
  }
  if (counters != nullptr) ++counters->chunked_messages_received;
  return message;
}

uint64_t ChecksumBytes(std::span<const uint8_t> bytes, uint64_t seed) {
  uint64_t h = seed;
  for (const uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace spinner::dist
