// Message layer of the cross-process wire protocol: typed payload codecs
// for every frame the coordinator and ShardWorker processes exchange
// (dist/transport.h moves the bytes). The protocol is a strict lockstep
// RPC per superstep phase, mirroring the SuperstepBackend interface
// (spinner/superstep_driver.h) on the wire:
//
//   Hello          w→c   protocol version + capacity (first message on
//                        every connection; the registry validates it)
//   Assign         c→w   run config + contiguous shard-range assignment +
//                        per-shard slice fingerprints
//   Resume         w→c   fingerprints of the assigned shards the worker
//                        already holds (persistent store), 0 = absent
//   Setup          c→w   the stale/missing shard slices only (binary_io
//                        SPSL); empty when every fingerprint matched
//   Subscribe      w→c   the out-of-range neighbor set of the worker's
//                        shards — the only vertices whose labels it will
//                        ever be sent (its boundary mirror)
//   Init           c→w   initial/restart labels
//   InitReply      w→c   per-shard label slices + load vectors + messages
//   Labels         c→w   subscribed label values, subscription order
//                        (once, after Init — seeds the boundary mirror)
//   Scores         c→w   superstep, frozen global loads, capacities
//   ScoresReply    w→c   per-block score partials, φ partial, migration
//                        counters
//   Migrate        c→w   superstep, frozen loads, capacities, merged
//                        migration counters
//   MigrateReply   w→c   label deltas + per-shard load vectors + counters
//   ApplyDeltas    c→w   label deltas filtered to the worker's
//                        subscription (its own moves were applied locally)
//   DeltasAck      w→c   checksum over owned slices + subscribed mirror
//                        (cross-process consistency gate, verified every
//                        iteration)
//   Snapshot       c→w   final state request
//   SnapshotReply  w→c   per-shard label slices + load vectors
//   Teardown       c→w   clean shutdown request
//   TeardownAck    w→c   worker is about to exit 0
//   Error          w→c   Status code + message (decode/validation failure)
//
// Everything is little-endian; vectors are u64-count-prefixed and counts
// are validated against the remaining payload before any allocation.
// Messages of any size stream across frames via the transport's chunk
// layer (dist/transport.h SendMessage/RecvMessage), so none of these
// payloads is bounded by the frame limit. See docs/WIRE_FORMAT.md for the
// full byte-level layout.
#ifndef SPINNER_DIST_WIRE_FORMAT_H_
#define SPINNER_DIST_WIRE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "dist/transport.h"
#include "graph/sharded_store.h"
#include "graph/types.h"
#include "spinner/config.h"
#include "spinner/shard_superstep.h"

namespace spinner::dist {

/// Frame type tags (the u32 `type` of dist/transport.h frames; the value
/// kChunkFrameType is reserved by the transport's chunk layer).
enum class MessageType : uint32_t {
  kError = 0,
  kSetup = 1,
  kInit = 2,
  kInitReply = 3,
  kLabels = 4,
  kScores = 5,
  kScoresReply = 6,
  kMigrate = 7,
  kMigrateReply = 8,
  kApplyDeltas = 9,
  kDeltasAck = 10,
  kSnapshot = 11,
  kSnapshotReply = 12,
  kTeardown = 13,
  kTeardownAck = 14,
  kSubscribe = 15,
  kHello = 16,
  kAssign = 17,
  kResume = 18,
};

/// Version of the Hello/Assign/Resume handshake. A worker advertising a
/// different version is rejected at the registry before it can join a run.
inline constexpr uint32_t kProtocolVersion = 1;

/// Appends primitive values and count-prefixed vectors to a payload buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v) { PutRaw(v); }
  void PutU32(uint32_t v) { PutRaw(v); }
  void PutU64(uint64_t v) { PutRaw(v); }
  void PutI32(int32_t v) { PutRaw(v); }
  void PutI64(int64_t v) { PutRaw(v); }
  void PutDouble(double v) { PutRaw(v); }

  template <typename T>
  void PutVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(values.size());
    Append(values.data(), values.size() * sizeof(T));
  }

  void PutString(const std::string& s) {
    PutU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Appends pre-encoded bytes verbatim (e.g. a binary_io shard slice).
  void PutBytes(std::span<const uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  std::vector<uint8_t> Take() { return std::move(buf_); }
  std::vector<uint8_t>& buffer() { return buf_; }

 private:
  template <typename T>
  void PutRaw(const T& value) {
    Append(&value, sizeof(T));
  }

  /// resize + memcpy rather than insert(iter, ptr, ptr): identical
  /// behavior without tripping GCC's stringop-overflow false positive on
  /// reinterpret_cast'ed ranges. The size == 0 guard keeps memcpy away
  /// from the null data() of empty vectors (UB even for zero bytes).
  void Append(const void* data, size_t size) {
    if (size == 0) return;
    const size_t old_size = buf_.size();
    buf_.resize(old_size + size);
    std::memcpy(buf_.data() + old_size, data, size);
  }

  std::vector<uint8_t> buf_;
};

/// Truncation-checked reader over a payload. Every Get returns false on a
/// short or malformed buffer; vector counts are validated against the
/// remaining bytes BEFORE allocating, so a corrupt count cannot OOM.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) { return GetRaw(v); }
  bool GetU32(uint32_t* v) { return GetRaw(v); }
  bool GetU64(uint64_t* v) { return GetRaw(v); }
  bool GetI32(int32_t* v) { return GetRaw(v); }
  bool GetI64(int64_t* v) { return GetRaw(v); }
  bool GetDouble(double* v) { return GetRaw(v); }

  template <typename T>
  bool GetVector(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!GetU64(&count)) return false;
    if (count > (bytes_.size() - pos_) / sizeof(T)) return false;
    values->resize(static_cast<size_t>(count));
    if (count == 0) return true;  // empty data() may be null; skip memcpy
    std::memcpy(values->data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return true;
  }

  bool GetString(std::string* s) {
    uint64_t count = 0;
    if (!GetU64(&count)) return false;
    if (count > bytes_.size() - pos_) return false;
    s->assign(reinterpret_cast<const char*>(bytes_.data() + pos_),
              static_cast<size_t>(count));
    pos_ += count;
    return true;
  }

  std::span<const uint8_t> remaining_bytes() const {
    return bytes_.subspan(pos_);
  }
  size_t position() const { return pos_; }
  void Advance(size_t n) { pos_ += n; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  template <typename T>
  bool GetRaw(T* value) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// --- Message payloads ----------------------------------------------------

/// Hello (w→c): the first message on every worker connection — version
/// check plus the worker's advertised capacity, which the coordinator
/// weighs when carving contiguous shard ranges (equal capacities reduce to
/// an even split).
struct HelloMessage {
  uint32_t protocol_version = kProtocolVersion;
  /// Relative shard-hosting capacity (>= 1); a host advertising 2 is
  /// assigned roughly twice the shards of a host advertising 1.
  int64_t capacity = 1;
  /// Reserved capability bits (zero today; lets future workers advertise
  /// optional features without a version bump).
  uint32_t flags = 0;

  std::vector<uint8_t> Encode() const;
  static Result<HelloMessage> Decode(std::span<const uint8_t> payload);
};

/// Assign (c→w): the run configuration and this worker's contiguous shard
/// assignment, with the coordinator-side fingerprint (FNV-1a over the SPSL
/// slice bytes) of every assigned shard. The worker compares these against
/// its PersistentShardStore and reports what it already holds (Resume);
/// the coordinator then downloads only the stale or missing slices in the
/// subsequent Setup.
struct AssignMessage {
  int32_t num_partitions = 0;
  uint64_t seed = 0;
  uint8_t balance_on_vertices = 0;  // BalanceMode::kVertices
  uint8_t per_worker_async = 1;
  int64_t num_vertices = 0;
  int32_t num_shards_total = 0;
  /// Global shard ids assigned to this worker, ascending, contiguous
  /// vertex ranges.
  std::vector<int32_t> owned_shards;
  /// FNV-1a over the current SPSL slice bytes, one per owned shard.
  std::vector<uint64_t> slice_fingerprints;
  /// Test hook: _exit(3) right before replying to the
  /// (fail_after_score_steps+1)-th Scores request; -1 = never.
  int32_t fail_after_score_steps = -1;

  std::vector<uint8_t> Encode() const;
  static Result<AssignMessage> Decode(std::span<const uint8_t> payload);

  /// The SpinnerConfig subset the shard superstep kernels read.
  SpinnerConfig ToConfig() const;
};

/// Resume (w→c): the worker's answer to Assign — the fingerprint of every
/// assigned shard as loaded from its PersistentShardStore (base + replayed
/// delta log), 0 where the store holds nothing usable. A fingerprint
/// matching the Assign value means the coordinator skips that slice in
/// Setup entirely: the zero-download restart path.
struct ResumeMessage {
  std::vector<uint64_t> fingerprints;  // one per assigned shard, in order

  std::vector<uint8_t> Encode() const;
  static Result<ResumeMessage> Decode(std::span<const uint8_t> payload);
};

/// Setup: shard slices for a worker (binary_io SPSL encoding). Since the
/// Hello/Assign/Resume handshake the authoritative run config and full
/// assignment travel in Assign; a Setup carries only the slices whose
/// Resume fingerprint missed (its owned_shards list the shards of the
/// slices actually present — a subset of the Assign list, possibly empty).
/// The config header fields are retained for self-containedness and
/// cross-checked against Assign by the worker.
struct SetupMessage {
  int32_t num_partitions = 0;
  uint64_t seed = 0;
  uint8_t balance_on_vertices = 0;  // BalanceMode::kVertices
  uint8_t per_worker_async = 1;
  int64_t num_vertices = 0;
  int32_t num_shards_total = 0;
  /// Global shard ids of the slices below, ascending.
  std::vector<int32_t> owned_shards;
  std::vector<ShardedGraphStore::Shard> shards;
  /// Test hook: _exit(3) right before replying to the
  /// (fail_after_score_steps+1)-th Scores request; -1 = never.
  int32_t fail_after_score_steps = -1;

  std::vector<uint8_t> Encode() const;
  static Result<SetupMessage> Decode(std::span<const uint8_t> payload);

  /// The SpinnerConfig subset the shard superstep kernels read.
  SpinnerConfig ToConfig() const;

 private:
  friend std::vector<uint8_t> EncodeSetupFromStore(
      const SetupMessage& header, const ShardedGraphStore& store);
  /// The fixed fields + owned_shards + `slice_count`, everything up to
  /// the slices themselves.
  void EncodeHeader(WireWriter* w, uint64_t slice_count) const;
};

/// Encodes a Setup payload whose slices are appended straight from
/// `store` for `header.owned_shards` (header.shards stays empty) — the
/// coordinator's send path, which must not deep-copy every CSR slice
/// into an intermediate SetupMessage first.
std::vector<uint8_t> EncodeSetupFromStore(const SetupMessage& header,
                                          const ShardedGraphStore& store);

struct InitRequest {
  /// Global vertex id of initial_labels[0]. The coordinator sends each
  /// worker only the slice covering its owned range (base = first owned
  /// vertex), so Init traffic and worker memory are O(owned), not O(V).
  VertexId base = 0;
  /// SpinnerProgram initial-label contract: entries whose *global* id
  /// (base + index) falls below the caller's initial-label count and that
  /// are not kNoPartition are fixed restart labels; everything else
  /// hash-draws.
  std::vector<PartitionId> initial_labels;

  std::vector<uint8_t> Encode() const;
  static Result<InitRequest> Decode(std::span<const uint8_t> payload);
};

/// One shard's mutable run state: its label slice and load counters. Used
/// by InitReply and SnapshotReply (messages = label-advertisement count for
/// Init, 0 for snapshots).
struct ShardState {
  int32_t shard = 0;
  std::vector<PartitionId> labels;  // [begin, end) slice
  std::vector<int64_t> loads;       // k entries
  int64_t messages = 0;
};

struct ShardStateReply {
  std::vector<ShardState> shards;

  std::vector<uint8_t> Encode() const;
  static Result<ShardStateReply> Decode(std::span<const uint8_t> payload);
};

/// Subscribe (w→c): the sorted, unique out-of-range neighbor set of the
/// worker's shards — the PowerGraph-style mirror set. The coordinator
/// indexes it once and thereafter sends the worker labels for exactly
/// these vertices, so steady-state label traffic is proportional to the
/// edge cut, not the vertex count.
struct SubscribeMessage {
  std::vector<VertexId> vertices;  // strictly ascending, none owned

  std::vector<uint8_t> Encode() const;
  static Result<SubscribeMessage> Decode(std::span<const uint8_t> payload);
};

/// Labels (c→w): label values for the receiving worker's subscribed
/// vertices, in subscription order — sent once after Init to seed the
/// boundary mirror (afterwards only subscription-filtered deltas flow).
struct LabelValues {
  std::vector<PartitionId> values;  // one per subscribed vertex, in order

  std::vector<uint8_t> Encode() const;
  static Result<LabelValues> Decode(std::span<const uint8_t> payload);
};

struct ScoresRequest {
  int64_t superstep = 0;
  std::vector<int64_t> global_loads;
  std::vector<double> capacities;

  std::vector<uint8_t> Encode() const;
  static Result<ScoresRequest> Decode(std::span<const uint8_t> payload);
};

struct ScoresReply {
  /// Per-block score partials of the worker's owned blocks, concatenated
  /// over owned shards in ascending shard order (block ranges are implied
  /// by the shard ranges the coordinator assigned).
  std::vector<double> block_score;
  int64_t local_weight = 0;
  /// Migration counters merged over the worker's shards (integer adds are
  /// order-free, so per-worker merging cannot perturb determinism).
  std::vector<int64_t> migration_counts;

  std::vector<uint8_t> Encode() const;
  static Result<ScoresReply> Decode(std::span<const uint8_t> payload);
};

struct MigrateRequest {
  int64_t superstep = 0;
  std::vector<int64_t> global_loads;
  std::vector<double> capacities;
  std::vector<int64_t> migration_counts;

  std::vector<uint8_t> Encode() const;
  static Result<MigrateRequest> Decode(std::span<const uint8_t> payload);
};

/// One shard's migration outcome: the label deltas it applied (ascending
/// vertex order), its post-migration load vector, and counters.
struct ShardMigrateResult {
  int32_t shard = 0;
  std::vector<LabelDelta> moves;
  std::vector<int64_t> loads;
  int64_t migrated = 0;
  int64_t messages = 0;
};

struct MigrateReply {
  std::vector<ShardMigrateResult> shards;

  std::vector<uint8_t> Encode() const;
  static Result<MigrateReply> Decode(std::span<const uint8_t> payload);
};

struct ApplyDeltasMessage {
  /// Label deltas of ALL shards this superstep, in fixed shard order.
  std::vector<LabelDelta> moves;

  std::vector<uint8_t> Encode() const;
  static Result<ApplyDeltasMessage> Decode(std::span<const uint8_t> payload);
};

struct DeltasAck {
  /// FNV-1a over the worker's owned label slices (ascending shard order)
  /// followed by its subscribed mirror values (subscription order) after
  /// applying the deltas; must equal the checksum the coordinator computes
  /// from its authoritative label array for that worker.
  uint64_t labels_checksum = 0;

  std::vector<uint8_t> Encode() const;
  static Result<DeltasAck> Decode(std::span<const uint8_t> payload);
};

struct ErrorMessage {
  int32_t code = 0;  // StatusCode
  std::string message;

  std::vector<uint8_t> Encode() const;
  static Result<ErrorMessage> Decode(std::span<const uint8_t> payload);

  static ErrorMessage FromStatus(const Status& status);
  Status ToStatus() const;
};

/// FNV-1a over the raw label bytes — the per-iteration cross-process
/// consistency checksum carried by DeltasAck.
uint64_t ChecksumLabels(std::span<const PartitionId> labels);

/// Incremental FNV-1a over label values: both sides of the DeltasAck gate
/// fold a worker's owned slices and subscribed mirror values through one
/// of these in the same order, so the digests agree iff the states do.
/// Update(all labels).digest() == ChecksumLabels(all labels) by
/// construction — every fold chains through transport.h's ChecksumBytes.
class LabelChecksum {
 public:
  LabelChecksum& Update(std::span<const PartitionId> labels) {
    h_ = ChecksumBytes(
        {reinterpret_cast<const uint8_t*>(labels.data()),
         labels.size() * sizeof(PartitionId)},
        h_);
    return *this;
  }

  LabelChecksum& UpdateOne(PartitionId label) {
    uint8_t bytes[sizeof(PartitionId)];
    std::memcpy(bytes, &label, sizeof(label));
    h_ = ChecksumBytes(bytes, h_);
    return *this;
  }

  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = kFnvOffsetBasis;
};

}  // namespace spinner::dist

#endif  // SPINNER_DIST_WIRE_FORMAT_H_
