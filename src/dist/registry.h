// Worker supply for the cross-process coordinator: the Transport
// interface abstracts *where worker connections come from*, so the
// Coordinator (dist/coordinator.h) speaks one protocol over fds it is
// handed, regardless of whether the peer is a forked child on this host
// or a process that dialed in over TCP from anywhere.
//
//   UnixSocketTransport  fork()s ShardWorker children connected by
//                        socketpair — the single-host mode, one fleet per
//                        run (Release reaps the child).
//   WorkerRegistry       the "in the cloud" mode: a TCP listener where
//                        workers dial in and complete the versioned
//                        Hello/capacity handshake. Endpoints persist
//                        ACROSS runs: Release parks the live connection
//                        in a pool and the next Acquire hands it out
//                        again — which is what lets a worker keep its
//                        shard slices hot (PersistentShardStore) and
//                        resume with zero download.
//
// The server/worker split follows the parameter-server architecture
// (scheduler hands ranges to dial-in nodes); here the coordinator doubles
// as the scheduler and assignment is contiguous shard ranges weighted by
// the capacity each worker advertised in its Hello.
#ifndef SPINNER_DIST_REGISTRY_H_
#define SPINNER_DIST_REGISTRY_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/tcp_transport.h"
#include "dist/transport.h"

namespace spinner::dist {

/// One live, Hello-validated worker connection.
struct WorkerEndpoint {
  UnixSocket socket;
  /// Child pid for forked workers; -1 for dial-in (remote) workers.
  pid_t pid = -1;
  /// Capacity the worker advertised in its Hello (>= 1).
  int64_t capacity = 1;
  /// Monotonic connection id assigned by the transport (diagnostics).
  uint64_t id = 0;
};

/// Supplies and retires worker connections. Implementations own the
/// lifecycle (fork/reap, accept/pool); the Coordinator owns the protocol.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;

  /// Produces `num_workers` live endpoints whose Hello handshake has been
  /// consumed and validated. `options` are the frame-transport options
  /// both sides of every connection must share.
  virtual Result<std::vector<WorkerEndpoint>> Acquire(
      int num_workers, const TransportOptions& options) = 0;

  /// Bounded acquisition for the fleet-recovery path: like Acquire but
  /// waits at most `timeout_ms` for endpoints to materialize, so a
  /// coordinator topping up a fleet mid-recovery can fall back to the
  /// surviving workers instead of stalling a run on a replacement that may
  /// never dial in. The default forwards to Acquire — correct for
  /// transports whose Acquire cannot block indefinitely (fork-based).
  virtual Result<std::vector<WorkerEndpoint>> TryAcquire(
      int num_workers, const TransportOptions& options, int64_t timeout_ms) {
    (void)timeout_ms;
    return Acquire(num_workers, options);
  }

  /// Returns an endpoint after a clean run (TeardownAck received).
  /// UnixSocketTransport closes and reaps; WorkerRegistry parks the live
  /// connection for the next Acquire.
  virtual void Release(WorkerEndpoint endpoint) = 0;

  /// Retires an endpoint on the error path: the connection is closed
  /// unconditionally (and a forked child is SIGKILLed and reaped), so a
  /// wedged worker can never block coordinator shutdown.
  virtual void Destroy(WorkerEndpoint endpoint) = 0;
};

/// The single-host transport: Acquire forks one ShardWorker child per
/// endpoint, connected by AF_UNIX socketpair (the pre-TCP behavior).
class UnixSocketTransport final : public Transport {
 public:
  /// `worker_store_dir`: when non-empty, children host their slices in a
  /// PersistentShardStore rooted there (restart/resume works across
  /// fleets because the files outlive the forked processes).
  explicit UnixSocketTransport(std::string worker_store_dir = "");

  const char* name() const override { return "unix"; }
  Result<std::vector<WorkerEndpoint>> Acquire(
      int num_workers, const TransportOptions& options) override;
  void Release(WorkerEndpoint endpoint) override;
  void Destroy(WorkerEndpoint endpoint) override;

 private:
  std::string worker_store_dir_;
  uint64_t next_id_ = 1;
};

struct RegistryOptions {
  /// "host:port" to listen on; port 0 binds an ephemeral port (read it
  /// back via address()).
  std::string listen_address = "127.0.0.1:0";
  /// Total time Acquire waits for the fleet to dial in and complete the
  /// Hello handshake.
  int64_t handshake_timeout_ms = 30'000;
};

/// The TCP transport: a listener plus a pool of handshaken connections.
/// Thread-compatible, not thread-safe (one coordinator drives it).
class WorkerRegistry final : public Transport {
 public:
  /// Binds the listener; fails fast on an unusable address.
  static Result<std::unique_ptr<WorkerRegistry>> Listen(
      RegistryOptions options);

  const char* name() const override { return "tcp"; }

  /// The bound "host:port" workers dial.
  const std::string& address() const { return listener_.address(); }

  /// Pooled (idle, previously released) connections right now.
  int num_pooled() const { return static_cast<int>(pool_.size()); }
  /// Hello handshakes completed over this registry's lifetime.
  int64_t handshakes_completed() const { return handshakes_completed_; }
  /// Dial-ins rejected (bad version / malformed Hello).
  int64_t handshakes_rejected() const { return handshakes_rejected_; }

  /// Hands out pooled connections first (dropping any that died since
  /// release), then accepts new dial-ins until `num_workers` endpoints
  /// are ready or the handshake timeout elapses (IOError naming how many
  /// arrived). A rejected handshake (version mismatch) gets an Error
  /// frame and its connection closed, and does not count.
  Result<std::vector<WorkerEndpoint>> Acquire(
      int num_workers, const TransportOptions& options) override;

  /// Acquire with an explicit wait bound instead of the registry-wide
  /// handshake timeout — the recovery top-up path.
  Result<std::vector<WorkerEndpoint>> TryAcquire(
      int num_workers, const TransportOptions& options,
      int64_t timeout_ms) override;

  void Release(WorkerEndpoint endpoint) override;
  void Destroy(WorkerEndpoint endpoint) override;

  /// Elastic scale-in: closes pooled connections until at most `keep`
  /// remain (newest releases drained first) and returns how many were
  /// closed. A drained dial-in worker sees EOF on its coordinator
  /// connection and exits cleanly (RunTcpWorker returns 0) — the
  /// registry-side half of a controller shrinking the fleet. Connections
  /// currently checked out by a run are untouched; scale-*out* needs no
  /// registry call at all, the next Acquire simply waits for more
  /// dial-ins.
  int DrainPooled(int keep);

 private:
  WorkerRegistry() = default;

  Result<std::vector<WorkerEndpoint>> AcquireWithin(
      int num_workers, const TransportOptions& options, int64_t timeout_ms);

  TcpListener listener_;
  RegistryOptions options_;
  std::vector<WorkerEndpoint> pool_;
  uint64_t next_id_ = 1;
  int64_t handshakes_completed_ = 0;
  int64_t handshakes_rejected_ = 0;
};

/// The issue-facing name for the coordinator-side TCP transport: the
/// registry IS the transport implementation.
using TcpTransport = WorkerRegistry;

}  // namespace spinner::dist

#endif  // SPINNER_DIST_REGISTRY_H_
