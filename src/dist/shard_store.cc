#include "dist/shard_store.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/string_util.h"
#include "dist/transport.h"
#include "graph/binary_io.h"

namespace spinner::dist {

namespace {

constexpr char kBaseMagic[4] = {'S', 'P', 'S', 'B'};
constexpr char kLogMagic[4] = {'S', 'P', 'S', 'D'};
constexpr uint32_t kStoreVersion = 1;

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open: " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IOError("short read: " + path);
  }
  return bytes;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return stat(path.c_str(), &st) == 0;
}

template <typename T>
void PutRaw(std::ofstream* out, const T& value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(std::span<const uint8_t> bytes, size_t* pos, T* value) {
  if (bytes.size() - *pos < sizeof(T)) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

uint64_t ShardSliceFingerprint(std::span<const uint8_t> slice_bytes) {
  return ChecksumBytes(slice_bytes);
}

uint64_t ShardSliceFingerprint(const ShardedGraphStore::Shard& shard) {
  std::vector<uint8_t> bytes;
  bytes.reserve(graph_io::EncodedShardSliceSize(shard));
  graph_io::AppendShardSlice(shard, &bytes);
  return ChecksumBytes(bytes);
}

PersistentShardStore::PersistentShardStore(std::string root, Options options)
    : root_(std::move(root)), options_(options) {
  if (options_.compact_after_records < 1) options_.compact_after_records = 1;
}

std::string PersistentShardStore::BasePath(int32_t shard_id) const {
  return StrFormat("%s/shard_%d.base", root_.c_str(), shard_id);
}

std::string PersistentShardStore::LogPath(int32_t shard_id) const {
  return StrFormat("%s/shard_%d.dlog", root_.c_str(), shard_id);
}

Result<std::optional<std::vector<uint8_t>>> PersistentShardStore::
    CurrentBytes(int32_t shard_id, int64_t* records_out) {
  *records_out = 0;
  const std::string base_path = BasePath(shard_id);
  if (!FileExists(base_path)) return std::optional<std::vector<uint8_t>>();
  auto base_file = ReadFileBytes(base_path);
  if (!base_file.ok()) return std::optional<std::vector<uint8_t>>();

  // Base: magic | version | slice bytes | fnv(slice bytes).
  size_t pos = 0;
  char magic[4];
  uint32_t version = 0;
  if (base_file->size() < sizeof(magic) + sizeof(version) + sizeof(uint64_t))
    return std::optional<std::vector<uint8_t>>();
  std::memcpy(magic, base_file->data(), sizeof(magic));
  pos += sizeof(magic);
  if (std::memcmp(magic, kBaseMagic, sizeof(magic)) != 0 ||
      !GetRaw(*base_file, &pos, &version) || version != kStoreVersion) {
    return std::optional<std::vector<uint8_t>>();
  }
  const size_t slice_size =
      base_file->size() - pos - sizeof(uint64_t);
  std::span<const uint8_t> slice(base_file->data() + pos, slice_size);
  uint64_t stored_fnv = 0;
  size_t fnv_pos = pos + slice_size;
  if (!GetRaw(*base_file, &fnv_pos, &stored_fnv) ||
      stored_fnv != ChecksumBytes(slice)) {
    // A torn or rewritten base is unusable — and so is any log bound to
    // it. Report absent; the coordinator re-downloads.
    return std::optional<std::vector<uint8_t>>();
  }
  std::vector<uint8_t> current(slice.begin(), slice.end());
  const uint64_t base_fnv = stored_fnv;

  // Log: magic | version | base_fnv | (size | slice | fnv)*. Valid
  // records replace the slice wholesale, last one wins; the first invalid
  // record truncates the replay (crash-tail tolerance).
  const std::string log_path = LogPath(shard_id);
  if (!FileExists(log_path)) return std::optional(std::move(current));
  auto log_file = ReadFileBytes(log_path);
  if (!log_file.ok()) return std::optional(std::move(current));
  pos = 0;
  uint64_t bound_fnv = 0;
  if (log_file->size() < sizeof(magic) + sizeof(version) ||
      std::memcmp(log_file->data(), kLogMagic, sizeof(magic)) != 0) {
    ++corrupt_tails_ignored_;
    return std::optional(std::move(current));
  }
  pos = sizeof(magic);
  if (!GetRaw(*log_file, &pos, &version) || version != kStoreVersion ||
      !GetRaw(*log_file, &pos, &bound_fnv)) {
    ++corrupt_tails_ignored_;
    return std::optional(std::move(current));
  }
  if (bound_fnv != base_fnv) {
    // Log written against a different base (e.g. the base was replaced
    // out from under it): ignore it entirely.
    ++corrupt_tails_ignored_;
    return std::optional(std::move(current));
  }
  while (pos < log_file->size()) {
    uint64_t size = 0;
    if (!GetRaw(*log_file, &pos, &size) ||
        size > log_file->size() - pos ||
        sizeof(uint64_t) > log_file->size() - pos - size) {
      ++corrupt_tails_ignored_;
      break;
    }
    std::span<const uint8_t> record(log_file->data() + pos,
                                    static_cast<size_t>(size));
    pos += static_cast<size_t>(size);
    uint64_t record_fnv = 0;
    if (!GetRaw(*log_file, &pos, &record_fnv) ||
        record_fnv != ChecksumBytes(record)) {
      ++corrupt_tails_ignored_;
      break;
    }
    current.assign(record.begin(), record.end());
    ++*records_out;
  }
  return std::optional(std::move(current));
}

Result<std::optional<PersistentShardStore::LoadedSlice>>
PersistentShardStore::Load(int32_t shard_id) {
  int64_t records = 0;
  SPINNER_ASSIGN_OR_RETURN(auto bytes, CurrentBytes(shard_id, &records));
  if (!bytes.has_value()) {
    return std::optional<LoadedSlice>();
  }
  size_t consumed = 0;
  auto shard = graph_io::DecodeShardSlice(*bytes, &consumed);
  if (!shard.ok() || consumed != bytes->size()) {
    // The stored bytes checksummed but do not decode (foreign content or
    // partial write that happened to checksum): treat as absent.
    return std::optional<LoadedSlice>();
  }
  LoadedSlice loaded;
  loaded.shard = std::move(*shard);
  loaded.fingerprint = ChecksumBytes(*bytes);
  return std::optional(std::move(loaded));
}

Status PersistentShardStore::WriteBase(int32_t shard_id,
                                       std::span<const uint8_t> slice_bytes) {
  const std::string path = BasePath(shard_id);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for writing: " + tmp);
    out.write(kBaseMagic, sizeof(kBaseMagic));
    PutRaw(&out, kStoreVersion);
    out.write(reinterpret_cast<const char*>(slice_bytes.data()),
              static_cast<std::streamsize>(slice_bytes.size()));
    PutRaw(&out, ChecksumBytes(slice_bytes));
    out.flush();
    if (!out) return Status::IOError("write error on: " + tmp);
  }
  // Atomic replace, then rebind the log: an interrupted sequence leaves
  // either the old base with its old log or the new base with a log bound
  // to the old fingerprint (which Load ignores) — never a torn base.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename into place: " + path);
  }
  std::ofstream log(LogPath(shard_id), std::ios::binary | std::ios::trunc);
  if (!log) {
    return Status::IOError("cannot open for writing: " + LogPath(shard_id));
  }
  log.write(kLogMagic, sizeof(kLogMagic));
  PutRaw(&log, kStoreVersion);
  PutRaw(&log, ChecksumBytes(slice_bytes));
  log.flush();
  if (!log) return Status::IOError("write error on: " + LogPath(shard_id));
  ++bases_written_;
  return Status::OK();
}

Status PersistentShardStore::Put(int32_t shard_id,
                                 std::span<const uint8_t> slice_bytes) {
  if (!root_created_) {
    // Best-effort single-level mkdir; a failure surfaces as the open
    // error below with the path in the message.
    (void)mkdir(root_.c_str(), 0777);
    root_created_ = true;
  }
  int64_t records = 0;
  const int64_t corrupt_before = corrupt_tails_ignored_;
  SPINNER_ASSIGN_OR_RETURN(auto current, CurrentBytes(shard_id, &records));
  const bool log_damaged = corrupt_tails_ignored_ > corrupt_before;
  if (current.has_value() && !log_damaged &&
      ChecksumBytes(*current) == ChecksumBytes(slice_bytes)) {
    return Status::OK();  // already hosting exactly these bytes
  }
  // A damaged log forces a fresh base: appending after garbage would put
  // the new record where replay never reaches (it stops at the first
  // invalid record), leaving the store permanently stale.
  if (!current.has_value() || log_damaged ||
      records + 1 >= options_.compact_after_records) {
    if (current.has_value()) ++compactions_;
    return WriteBase(shard_id, slice_bytes);
  }
  std::ofstream log(LogPath(shard_id),
                    std::ios::binary | std::ios::app);
  if (!log) {
    return Status::IOError("cannot open for append: " + LogPath(shard_id));
  }
  PutRaw(&log, static_cast<uint64_t>(slice_bytes.size()));
  log.write(reinterpret_cast<const char*>(slice_bytes.data()),
            static_cast<std::streamsize>(slice_bytes.size()));
  PutRaw(&log, ChecksumBytes(slice_bytes));
  log.flush();
  if (!log) return Status::IOError("write error on: " + LogPath(shard_id));
  ++records_appended_;
  return Status::OK();
}

}  // namespace spinner::dist
