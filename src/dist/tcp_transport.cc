#include "dist/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cstdlib>

#include "common/string_util.h"

namespace spinner::dist {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, strerror(errno)));
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

int64_t NowMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

void SleepMs(int64_t ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1'000'000;
  nanosleep(&ts, nullptr);
}

}  // namespace

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& address) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument(
        StrFormat("address '%s' is not host:port", address.c_str()));
  }
  const std::string host = address.substr(0, colon);
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 0 ||
      port > 65535) {
    return Status::InvalidArgument(
        StrFormat("address '%s' has an invalid port", address.c_str()));
  }
  in_addr probe{};
  if (inet_pton(AF_INET, host.c_str(), &probe) != 1) {
    return Status::InvalidArgument(StrFormat(
        "address '%s' host is not an IPv4 dotted quad", address.c_str()));
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

Result<TcpListener> TcpListener::Bind(const std::string& address) {
  SPINNER_ASSIGN_OR_RETURN(auto host_port, ParseHostPort(address));
  UnixSocket fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (setsockopt(fd.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(host_port.second);
  inet_pton(AF_INET, host_port.first.c_str(), &addr.sin_addr);
  if (bind(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(fd.fd(), SOMAXCONN) != 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(bound.sin_port);
  listener.address_ =
      StrFormat("%s:%u", host_port.first.c_str(),
                static_cast<unsigned>(listener.port_));
  return listener;
}

Result<UnixSocket> TcpListener::AcceptWithin(int64_t timeout_ms) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("listener is not bound");
  }
  pollfd p{};
  p.fd = fd_.fd();
  p.events = POLLIN;
  const int ready = poll(&p, 1, static_cast<int>(
                                    timeout_ms < 0 ? 0 : timeout_ms));
  if (ready < 0) return Errno("poll(listener)");
  if (ready == 0) {
    return Status::IOError(
        StrFormat("no worker dialed in within %lld ms",
                  static_cast<long long>(timeout_ms)));
  }
  UnixSocket conn(accept4(fd_.fd(), nullptr, nullptr, SOCK_CLOEXEC));
  if (!conn.valid()) return Errno("accept");
  SPINNER_RETURN_IF_ERROR(SetNoDelay(conn.fd()));
  return conn;
}

Result<UnixSocket> TcpDial(const std::string& address, int64_t timeout_ms) {
  SPINNER_ASSIGN_OR_RETURN(auto host_port, ParseHostPort(address));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(host_port.second);
  inet_pton(AF_INET, host_port.first.c_str(), &addr.sin_addr);
  const int64_t deadline = NowMs() + (timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    UnixSocket fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) return Errno("socket");
    if (connect(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
      SPINNER_RETURN_IF_ERROR(SetNoDelay(fd.fd()));
      return fd;
    }
    // Refused/unreachable just means the coordinator has not bound yet
    // (workers may start first); back off and retry until the deadline.
    if (errno != ECONNREFUSED && errno != ENETUNREACH &&
        errno != EHOSTUNREACH && errno != ETIMEDOUT) {
      return Errno("connect");
    }
    if (NowMs() >= deadline) {
      return Status::IOError(StrFormat(
          "could not connect to %s within %lld ms", address.c_str(),
          static_cast<long long>(timeout_ms)));
    }
    SleepMs(50);
  }
}

}  // namespace spinner::dist
