// Fault injection for the cross-process transport: a Transport decorator
// that interposes a frame-granular proxy on every worker connection it
// hands out, and perturbs traffic according to a scripted, seeded plan —
// dropping, delaying, corrupting, or closing at exact frame ordinals or
// with deterministic pseudo-random probability. This is the chaos
// harness behind the recovery tests and the `ci.sh --mode=chaos` lane:
// the coordinator and workers run unmodified production code while the
// proxy misbehaves between them.
//
// Determinism: a probabilistic rule fires iff
//   hash(seed, worker ordinal, direction, frame index) < probability,
// so a given plan perturbs the exact same frames on every run — which is
// what lets tests assert bit-identical recovered output.
//
// Activation paths: unit tests construct FaultInjectingTransport
// directly around a real transport; release binaries are wrapped by
// Coordinator::Spawn when the SPINNER_FAULT_PLAN environment variable
// holds a parseable plan (see FaultPlan::Parse) — no dedicated flag on
// any entry point.
#ifndef SPINNER_DIST_FAULT_INJECTION_H_
#define SPINNER_DIST_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/registry.h"
#include "dist/transport.h"

namespace spinner::dist {

enum class FaultAction {
  /// Swallow the frame. The receiver sees silence — with a read deadline
  /// armed this surfaces as DeadlineExceeded (a "hung" peer).
  kDrop,
  /// Forward the frame after delay_ms. Benign: bytes are preserved, so a
  /// run under pure-delay faults must still be bit-identical — the chaos
  /// smoke's cheap invariant.
  kDelay,
  /// Flip one payload byte (frames with empty payloads pass untouched).
  /// Surfaces as a checksum/decode failure — a "corrupt stream" peer.
  kCorrupt,
  /// Shut down both directions of the connection. Both sides see EOF —
  /// a "dead" peer, indistinguishable from a crashed process.
  kClose,
};

enum class FaultDirection {
  kCoordinatorToWorker,
  kWorkerToCoordinator,
  kBoth,
};

/// One scripted perturbation. Either exact (`frame_index` >= 0: fire on
/// that per-connection, per-direction frame ordinal, 0-based) or
/// probabilistic (`frame_index` < 0: fire per frame with `probability`,
/// derived deterministically from the plan seed).
struct FaultRule {
  FaultAction action = FaultAction::kDelay;
  FaultDirection direction = FaultDirection::kBoth;
  /// Acquisition ordinal of the connection this rule targets (the order
  /// endpoints were wrapped, counting across Acquire and recovery
  /// top-ups); -1 = every connection.
  int worker = -1;
  int64_t frame_index = -1;
  double probability = 0.0;
  int64_t delay_ms = 0;
};

/// A seeded list of rules; the first matching rule per frame fires.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// Parses the compact plan syntax used by SPINNER_FAULT_PLAN:
  /// semicolon-separated tokens, each either `seed=N` or
  ///   action[:key=value]*
  /// with action in {drop, delay, corrupt, close} and keys
  ///   dir=c2w|w2c|both   worker=N|all   frame=N   p=FLOAT   ms=N
  /// e.g. "seed=7;delay:dir=w2c:p=0.25:ms=3" or "drop:worker=1:frame=12".
  static Result<FaultPlan> Parse(const std::string& spec);
};

/// What the proxies actually did — asserted by tests ("the drop rule
/// fired exactly once") and printed by the chaos lane.
struct FaultCounters {
  std::atomic<int64_t> frames_forwarded{0};
  std::atomic<int64_t> frames_dropped{0};
  std::atomic<int64_t> frames_delayed{0};
  std::atomic<int64_t> frames_corrupted{0};
  std::atomic<int64_t> connections_closed{0};
};

/// Decorates a real Transport: every endpoint the inner transport
/// produces is re-terminated on a local socketpair with two pump threads
/// shuttling frames between the coordinator and the real connection,
/// applying the plan's faults in both directions. Release/Destroy stop
/// the pumps and forward the REAL endpoint to the inner transport (so a
/// registry pools the genuine connection, not the proxy). Not
/// thread-safe, like every Transport — one coordinator drives it.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(Transport* inner, FaultPlan plan);
  ~FaultInjectingTransport() override;

  const char* name() const override { return "fault"; }

  Result<std::vector<WorkerEndpoint>> Acquire(
      int num_workers, const TransportOptions& options) override;
  Result<std::vector<WorkerEndpoint>> TryAcquire(
      int num_workers, const TransportOptions& options,
      int64_t timeout_ms) override;
  void Release(WorkerEndpoint endpoint) override;
  void Destroy(WorkerEndpoint endpoint) override;

  const FaultCounters& counters() const { return counters_; }

 private:
  struct Proxy;

  /// Re-terminates `real` on a proxy socketpair and starts its pumps;
  /// returns the endpoint the coordinator should use.
  Result<WorkerEndpoint> WrapEndpoint(WorkerEndpoint real);
  /// Stops and removes the proxy whose coordinator-side fd is
  /// `coordinator_fd`; returns it (null if the fd is not one of ours).
  std::unique_ptr<Proxy> DetachProxy(int coordinator_fd);

  Transport* inner_;
  FaultPlan plan_;
  FaultCounters counters_;
  int next_ordinal_ = 0;
  std::vector<std::unique_ptr<Proxy>> proxies_;
};

}  // namespace spinner::dist

#endif  // SPINNER_DIST_FAULT_INJECTION_H_
