// TCP primitives of the off-box execution mode: an IPv4 listener for the
// coordinator's WorkerRegistry (dist/registry.h) and a dialer for workers.
//
// The frame/chunk layer (dist/transport.h) is byte-stream agnostic — the
// same SendMessage/RecvMessage run unchanged over a socketpair fd or a TCP
// fd. What this header adds is connection establishment: bind/listen with
// an ephemeral-port option, accept with a deadline (the registry's
// handshake timeout), and dial with bounded retry so workers can start
// before the coordinator finishes binding.
//
// Sockets are blocking with TCP_NODELAY set (the protocol is lockstep
// request/reply; Nagle would serialize every superstep on a delayed ACK).
// IPv4 only — the deployment story is "addresses you configure", not name
// resolution; "127.0.0.1:0" is the loopback default everywhere.
#ifndef SPINNER_DIST_TCP_TRANSPORT_H_
#define SPINNER_DIST_TCP_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "dist/transport.h"

namespace spinner::dist {

/// Splits "host:port" (host an IPv4 dotted quad, port 0..65535).
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& address);

/// A bound, listening IPv4 socket. Move-only (owns the fd).
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&&) = default;
  TcpListener& operator=(TcpListener&&) = default;

  /// Binds and listens on `address` ("host:port"; port 0 picks an
  /// ephemeral port — read the result back via address()).
  static Result<TcpListener> Bind(const std::string& address);

  /// The bound address "host:port" with the resolved port — what dial-in
  /// workers connect to.
  const std::string& address() const { return address_; }
  uint16_t port() const { return port_; }
  bool listening() const { return fd_.valid(); }

  /// Accepts one connection, waiting at most `timeout_ms` (<= 0 = only
  /// already-pending connections). IOError when nothing dialed in; the
  /// accepted socket has TCP_NODELAY set.
  Result<UnixSocket> AcceptWithin(int64_t timeout_ms);

 private:
  UnixSocket fd_;
  std::string address_;
  uint16_t port_ = 0;
};

/// Connects to `address`, retrying refused connections until `timeout_ms`
/// elapses (the coordinator may still be binding). The connected socket
/// has TCP_NODELAY set.
Result<UnixSocket> TcpDial(const std::string& address, int64_t timeout_ms);

}  // namespace spinner::dist

#endif  // SPINNER_DIST_TCP_TRANSPORT_H_
