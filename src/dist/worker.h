// ShardWorker: the per-process executor of the cross-process execution
// mode. One worker process owns a contiguous run of shard slices and
// mirrors the labels of exactly its boundary — the out-of-range neighbors
// of its shards, which it subscribes to right after Setup. It answers the
// coordinator's lockstep superstep RPCs by running exactly the same shard
// phase bodies as the in-process substrate (spinner/shard_superstep.h) —
// which is what makes the two execution modes bit-identical by
// construction.
//
// Connection protocol (same over socketpair and TCP): the worker opens
// with Hello{protocol version, capacity}; each run is then
//   Assign -> Resume -> Setup(stale slices only) -> Subscribe -> supersteps
//   -> Teardown/TeardownAck
// and after TeardownAck the worker loops back to await the next Assign on
// the SAME connection. A worker given a PersistentShardStore root
// (WorkerLoopOptions::store_dir) hosts its slices on disk and reports
// their fingerprints in Resume, so a matching re-Assign downloads nothing.
//
// Memory is compact: the label array covers owned vertices plus the
// subscribed boundary (not all of V), candidate/block-score scratch covers
// owned entries only, and every CSR target is remapped to a slot in that
// compact array at Setup. The shard kernels keep hashing GLOBAL vertex
// ids (via their index_base parameter), so compaction cannot perturb
// results.
//
// A worker is single-threaded: its parallelism unit is the process, and
// within a process shards execute in ascending shard order. It trusts
// nothing from the wire — every payload is decoded with truncation checks
// and cross-validated against the Assign/Setup topology; a violation is
// reported back as an Error frame before the process exits nonzero.
#ifndef SPINNER_DIST_WORKER_H_
#define SPINNER_DIST_WORKER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/transport.h"
#include "graph/sharded_store.h"

namespace spinner::dist {

/// The compact index layout of one worker: a contiguous owned vertex
/// range plus the ascending boundary (subscription) set. Local slot `i`
/// holds vertex `owned_begin + i` for i < owned_count(), and
/// `subscription[i - owned_count()]` beyond — owned slices first, mirror
/// in subscription order, which is exactly the fold order of the
/// coordinator's state-checksum gate.
struct WorkerLayout {
  VertexId owned_begin = 0;
  VertexId owned_end = 0;
  /// Out-of-range neighbors of the owned shards, strictly ascending.
  std::vector<VertexId> subscription;

  int64_t owned_count() const { return owned_end - owned_begin; }
  /// Label-array size: owned + subscribed — the whole point of the remap.
  int64_t num_slots() const {
    return owned_count() + static_cast<int64_t>(subscription.size());
  }
  /// Score blocks covering the owned range (owned_begin is block-aligned).
  int64_t num_blocks() const {
    return (owned_count() + ShardedGraphStore::kBlockSize - 1) /
           ShardedGraphStore::kBlockSize;
  }
  bool Owns(VertexId v) const { return v >= owned_begin && v < owned_end; }
};

/// Builds the layout of a worker owning `shards` (ascending, contiguous,
/// block-aligned begin — the coordinator's assignment invariants, here
/// re-validated since slices arrive over the wire) within a graph of
/// `num_vertices`. Every target must lie in [0, num_vertices).
Result<WorkerLayout> BuildWorkerLayout(
    std::span<const ShardedGraphStore::Shard> shards, int64_t num_vertices);

/// Rewrites `shard`'s targets from global vertex ids to compact slots of
/// `layout` (owned v -> v - owned_begin; subscribed v -> owned_count +
/// subscription index). Fails on a target that is neither — such a vertex
/// could never be read consistently.
Status RemapTargetsToSlots(const WorkerLayout& layout,
                           ShardedGraphStore::Shard* shard);

/// Per-process knobs of a worker loop (both transports).
struct WorkerLoopOptions {
  /// PersistentShardStore root; empty = in-memory only (every Assign
  /// downloads all owned slices).
  std::string store_dir;
  /// Capacity advertised in Hello; the coordinator sizes this worker's
  /// shard range proportionally. Must be >= 1.
  int64_t capacity = 1;
  /// TCP dial budget of RunTcpWorker (the coordinator may bind late).
  int64_t dial_timeout_ms = 30'000;
  /// Fault-injection hook for chaos testing dial-in fleets: >= 0 makes
  /// the worker _exit(3) while handling its Nth Scores request — after
  /// consuming the request, before replying — exactly the worst spot for
  /// the coordinator. The Assign-carried hook (coordinator-injected, used
  /// by the forked-transport tests) overrides this per run when set.
  int32_t fail_after_score_steps = -1;
};

/// Runs the worker protocol loop over the coordinator connection `fd`
/// until the peer closes the connection while the worker is idle (returns
/// 0 — the clean release path), the peer disappears mid-run (returns 2),
/// or a protocol/validation error occurs (reported as an Error frame,
/// returns 1). `options` must match the coordinator's transport options.
/// The caller — a forked child or RunTcpWorker — passes the returned
/// value to _exit()/main's return.
int RunShardWorkerLoop(int fd, const TransportOptions& options,
                       const WorkerLoopOptions& loop = {});

/// Dials `connect_address` ("host:port", retrying until
/// `loop.dial_timeout_ms`) and runs the worker loop over the resulting
/// connection. Returns the loop's exit code; a failed dial prints the
/// error to stderr and returns 1. This is `partition_tool worker`.
int RunTcpWorker(const std::string& connect_address,
                 const TransportOptions& options,
                 const WorkerLoopOptions& loop = {});

}  // namespace spinner::dist

#endif  // SPINNER_DIST_WORKER_H_
