// ShardWorker: the per-process executor of the cross-process execution
// mode. One worker process owns one or more shard-local CSR slices
// (downloaded from the coordinator at Setup) and mirrors the labels of
// exactly its boundary — the out-of-range neighbors of its shards, which
// it subscribes to right after Setup. It answers the coordinator's
// lockstep superstep RPCs by running exactly the same shard phase bodies
// as the in-process substrate (spinner/shard_superstep.h) — which is what
// makes the two execution modes bit-identical by construction.
//
// A worker is single-threaded: its parallelism unit is the process, and
// within a process shards execute in ascending shard order. It trusts
// nothing from the wire — every payload is decoded with truncation checks
// and cross-validated against the Setup topology (label updates must
// target subscribed vertices); a violation is reported back as an Error
// frame before the process exits nonzero.
#ifndef SPINNER_DIST_WORKER_H_
#define SPINNER_DIST_WORKER_H_

#include "dist/transport.h"

namespace spinner::dist {

/// Runs the worker protocol loop over the coordinator connection `fd`
/// until Teardown (returns 0), the peer closes the connection (returns 2),
/// or a protocol/validation error occurs (reported as an Error frame,
/// returns 1). `options` must match the coordinator's transport options
/// (the forked child inherits them). The caller — the forked child in
/// dist/coordinator.cc — passes the returned value to _exit().
int RunShardWorkerLoop(int fd, const TransportOptions& options);

}  // namespace spinner::dist

#endif  // SPINNER_DIST_WORKER_H_
