#include "dist/fault_injection.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace spinner::dist {

namespace {

/// SplitMix64 — the deterministic per-frame coin of probabilistic rules.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) from (seed, connection ordinal, direction, frame index).
double FrameCoin(uint64_t seed, int ordinal, int direction,
                 int64_t frame_index) {
  uint64_t h = Mix64(seed ^ 0x5350464cull);  // "SPFL"
  h = Mix64(h ^ static_cast<uint64_t>(ordinal));
  h = Mix64(h ^ (static_cast<uint64_t>(direction) << 32));
  h = Mix64(h ^ static_cast<uint64_t>(frame_index));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Strict numeric field parsers: the whole value must be a number. A
/// typo'd plan must be rejected, not silently read as 0 (which would
/// perturb frame 0 instead of the intended one).
bool ParseI64(const std::string& value, int64_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

bool ParseU64(const std::string& value, uint64_t* out) {
  if (value.empty() || value[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

bool ParseF64(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

bool RuleMatchesDirection(const FaultRule& rule, bool coordinator_to_worker) {
  switch (rule.direction) {
    case FaultDirection::kCoordinatorToWorker:
      return coordinator_to_worker;
    case FaultDirection::kWorkerToCoordinator:
      return !coordinator_to_worker;
    case FaultDirection::kBoth:
      return true;
  }
  return false;
}

/// Writes all of `data` to `fd` (MSG_NOSIGNAL: a dead peer is a false
/// return, never a SIGPIPE). Returns false on any error.
bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    written += static_cast<size_t>(n);
  }
  return true;
}

/// Reads exactly `size` bytes; false on EOF/error. Assumes the caller
/// poll()ed readability for the first byte (later bytes may block
/// briefly mid-frame, which is fine for a proxy).
bool ReadAll(int fd, uint8_t* data, size_t size) {
  size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    received += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultPlan::Parse
// ---------------------------------------------------------------------------

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t end = std::min(spec.find(';', pos), spec.size());
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    if (token.rfind("seed=", 0) == 0) {
      if (!ParseU64(token.substr(5), &plan.seed)) {
        return Status::InvalidArgument(StrFormat(
            "fault plan: seed '%s' is not a number", token.c_str() + 5));
      }
      continue;
    }
    FaultRule rule;
    size_t field_pos = 0;
    bool first_field = true;
    while (field_pos <= token.size()) {
      const size_t field_end = std::min(token.find(':', field_pos),
                                        token.size());
      const std::string field = token.substr(field_pos,
                                             field_end - field_pos);
      field_pos = field_end + 1;
      if (field.empty()) continue;
      if (first_field) {
        first_field = false;
        if (field == "drop") {
          rule.action = FaultAction::kDrop;
        } else if (field == "delay") {
          rule.action = FaultAction::kDelay;
        } else if (field == "corrupt") {
          rule.action = FaultAction::kCorrupt;
        } else if (field == "close") {
          rule.action = FaultAction::kClose;
        } else {
          return Status::InvalidArgument(StrFormat(
              "fault plan: unknown action '%s' (want "
              "drop|delay|corrupt|close)",
              field.c_str()));
        }
        continue;
      }
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(StrFormat(
            "fault plan: field '%s' is not key=value", field.c_str()));
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "dir") {
        if (value == "c2w") {
          rule.direction = FaultDirection::kCoordinatorToWorker;
        } else if (value == "w2c") {
          rule.direction = FaultDirection::kWorkerToCoordinator;
        } else if (value == "both") {
          rule.direction = FaultDirection::kBoth;
        } else {
          return Status::InvalidArgument(StrFormat(
              "fault plan: dir=%s (want c2w|w2c|both)", value.c_str()));
        }
      } else if (key == "worker") {
        int64_t worker = -1;
        if (value != "all" && !ParseI64(value, &worker)) {
          return Status::InvalidArgument(StrFormat(
              "fault plan: worker=%s (want N or all)", value.c_str()));
        }
        rule.worker = static_cast<int>(worker);
      } else if (key == "frame") {
        if (!ParseI64(value, &rule.frame_index)) {
          return Status::InvalidArgument(StrFormat(
              "fault plan: frame=%s is not a number", value.c_str()));
        }
      } else if (key == "p") {
        if (!ParseF64(value, &rule.probability) ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          return Status::InvalidArgument(StrFormat(
              "fault plan: p=%s is not a probability in [0, 1]",
              value.c_str()));
        }
      } else if (key == "ms") {
        if (!ParseI64(value, &rule.delay_ms) || rule.delay_ms < 0) {
          return Status::InvalidArgument(StrFormat(
              "fault plan: ms=%s is not a non-negative number",
              value.c_str()));
        }
      } else {
        return Status::InvalidArgument(StrFormat(
            "fault plan: unknown key '%s'", key.c_str()));
      }
    }
    if (first_field) {
      return Status::InvalidArgument("fault plan: empty rule");
    }
    if (rule.frame_index < 0 && rule.probability <= 0.0) {
      return Status::InvalidArgument(
          "fault plan: rule needs frame=N or p>0 to ever fire");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Proxy
// ---------------------------------------------------------------------------

struct FaultInjectingTransport::Proxy {
  WorkerEndpoint real;
  /// Our end of the socketpair whose other end the coordinator holds.
  UnixSocket proxy_side;
  int coordinator_fd = -1;
  int ordinal = 0;
  int stop_pipe[2] = {-1, -1};
  std::thread to_worker;
  std::thread to_coordinator;
  /// Set by a kClose fault: the real connection is dead, never pool it.
  std::atomic<bool> closed{false};

  ~Proxy() {
    Stop();
    if (stop_pipe[0] >= 0) ::close(stop_pipe[0]);
    if (stop_pipe[1] >= 0) ::close(stop_pipe[1]);
  }

  void Stop() {
    if (stop_pipe[1] >= 0) {
      // Closing the write end makes the read end readable (EOF) — the
      // pumps' poll() wakes and they exit.
      ::close(stop_pipe[1]);
      stop_pipe[1] = -1;
    }
    if (to_worker.joinable()) to_worker.join();
    if (to_coordinator.joinable()) to_coordinator.join();
  }
};

namespace {

/// One direction of a proxy: frames from `src` are perturbed per the plan
/// and forwarded to `dst` until EOF, a close fault, or a stop signal.
/// A stream this pump cannot frame (bad magic / absurd size — never
/// produced by our own faults) degrades to skipping frame-granular
/// perturbation for the rest of the connection via raw passthrough.
void PumpFrames(int src, int dst, int real_fd, int proxy_fd, int stop_fd,
                bool coordinator_to_worker, int ordinal,
                const FaultPlan& plan, FaultCounters* counters,
                std::atomic<bool>* closed) {
  const int direction = coordinator_to_worker ? 0 : 1;
  int64_t frame_index = 0;
  bool raw_passthrough = false;
  std::vector<uint8_t> buffer;
  for (;;) {
    pollfd fds[2];
    fds[0] = {src, POLLIN, 0};
    fds[1] = {stop_fd, POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Stop requested (Release/Destroy): exit without touching either
    // side — the real connection may be on its way to a registry pool,
    // and a half-close here would make the idle worker read EOF and die.
    if (fds[1].revents != 0) return;
    if (fds[0].revents == 0) continue;

    if (raw_passthrough) {
      uint8_t chunk[4096];
      const ssize_t n = ::recv(src, chunk, sizeof chunk, 0);
      if (n <= 0 || !WriteAll(dst, chunk, static_cast<size_t>(n))) break;
      continue;
    }

    uint8_t header[kFrameHeaderSize];
    if (!ReadAll(src, header, sizeof header)) break;
    uint32_t magic = 0;
    uint64_t payload_size = 0;
    std::memcpy(&magic, header, sizeof magic);
    std::memcpy(&payload_size, header + 8, sizeof payload_size);
    if (magic != kFrameMagic || payload_size > kMaxFramePayload) {
      raw_passthrough = true;
      if (!WriteAll(dst, header, sizeof header)) break;
      continue;
    }
    buffer.resize(static_cast<size_t>(payload_size));
    if (payload_size > 0 && !ReadAll(src, buffer.data(), buffer.size())) {
      break;
    }

    const FaultRule* fired = nullptr;
    for (const FaultRule& rule : plan.rules) {
      if (!RuleMatchesDirection(rule, coordinator_to_worker)) continue;
      if (rule.worker >= 0 && rule.worker != ordinal) continue;
      const bool fires =
          rule.frame_index >= 0
              ? rule.frame_index == frame_index
              : FrameCoin(plan.seed, ordinal, direction, frame_index) <
                    rule.probability;
      if (fires) {
        fired = &rule;
        break;
      }
    }
    ++frame_index;

    if (fired != nullptr) {
      switch (fired->action) {
        case FaultAction::kDrop:
          counters->frames_dropped.fetch_add(1);
          continue;  // swallowed
        case FaultAction::kDelay:
          counters->frames_delayed.fetch_add(1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fired->delay_ms));
          break;
        case FaultAction::kCorrupt:
          if (!buffer.empty()) {
            buffer.back() ^= 0x5a;
            counters->frames_corrupted.fetch_add(1);
          }
          break;
        case FaultAction::kClose:
          counters->connections_closed.fetch_add(1);
          closed->store(true);
          ::shutdown(real_fd, SHUT_RDWR);
          ::shutdown(proxy_fd, SHUT_RDWR);
          return;
      }
    }
    if (!WriteAll(dst, header, sizeof header)) break;
    if (!buffer.empty() && !WriteAll(dst, buffer.data(), buffer.size())) {
      break;
    }
    counters->frames_forwarded.fetch_add(1);
  }
  // Source finished (peer EOF/error): propagate a half-close so the
  // destination's reader sees EOF exactly like a direct connection.
  ::shutdown(dst, SHUT_WR);
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                 FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

FaultInjectingTransport::~FaultInjectingTransport() {
  // Anything still attached belongs to a coordinator being torn down;
  // stop the pumps and destroy the real connections.
  for (std::unique_ptr<Proxy>& proxy : proxies_) {
    proxy->Stop();
    inner_->Destroy(std::move(proxy->real));
  }
  proxies_.clear();
}

Result<WorkerEndpoint> FaultInjectingTransport::WrapEndpoint(
    WorkerEndpoint real) {
  auto pair = CreateSocketPair();
  if (!pair.ok()) {
    inner_->Destroy(std::move(real));
    return pair.status();
  }
  auto proxy = std::make_unique<Proxy>();
  if (::pipe(proxy->stop_pipe) != 0) {
    inner_->Destroy(std::move(real));
    return Status::IOError(
        StrFormat("pipe(fault proxy): %s", strerror(errno)));
  }
  proxy->ordinal = next_ordinal_++;
  WorkerEndpoint wrapped;
  wrapped.socket = std::move(pair->first);
  wrapped.pid = real.pid;
  wrapped.capacity = real.capacity;
  wrapped.id = real.id;
  proxy->coordinator_fd = wrapped.socket.fd();
  proxy->proxy_side = std::move(pair->second);
  proxy->real = std::move(real);

  const int real_fd = proxy->real.socket.fd();
  const int side_fd = proxy->proxy_side.fd();
  const int stop_fd = proxy->stop_pipe[0];
  Proxy* p = proxy.get();
  proxy->to_worker = std::thread([=, this] {
    PumpFrames(side_fd, real_fd, real_fd, side_fd, stop_fd,
               /*coordinator_to_worker=*/true, p->ordinal, plan_,
               &counters_, &p->closed);
  });
  proxy->to_coordinator = std::thread([=, this] {
    PumpFrames(real_fd, side_fd, real_fd, side_fd, stop_fd,
               /*coordinator_to_worker=*/false, p->ordinal, plan_,
               &counters_, &p->closed);
  });
  proxies_.push_back(std::move(proxy));
  return wrapped;
}

std::unique_ptr<FaultInjectingTransport::Proxy>
FaultInjectingTransport::DetachProxy(int coordinator_fd) {
  for (size_t i = 0; i < proxies_.size(); ++i) {
    if (proxies_[i]->coordinator_fd == coordinator_fd) {
      std::unique_ptr<Proxy> proxy = std::move(proxies_[i]);
      proxies_.erase(proxies_.begin() + static_cast<ptrdiff_t>(i));
      return proxy;
    }
  }
  return nullptr;
}

Result<std::vector<WorkerEndpoint>> FaultInjectingTransport::Acquire(
    int num_workers, const TransportOptions& options) {
  SPINNER_ASSIGN_OR_RETURN(std::vector<WorkerEndpoint> real,
                           inner_->Acquire(num_workers, options));
  std::vector<WorkerEndpoint> wrapped;
  wrapped.reserve(real.size());
  for (WorkerEndpoint& ep : real) {
    auto proxied = WrapEndpoint(std::move(ep));
    if (!proxied.ok()) {
      for (WorkerEndpoint& done : wrapped) Destroy(std::move(done));
      return proxied.status();
    }
    wrapped.push_back(std::move(*proxied));
  }
  return wrapped;
}

Result<std::vector<WorkerEndpoint>> FaultInjectingTransport::TryAcquire(
    int num_workers, const TransportOptions& options, int64_t timeout_ms) {
  SPINNER_ASSIGN_OR_RETURN(
      std::vector<WorkerEndpoint> real,
      inner_->TryAcquire(num_workers, options, timeout_ms));
  std::vector<WorkerEndpoint> wrapped;
  wrapped.reserve(real.size());
  for (WorkerEndpoint& ep : real) {
    auto proxied = WrapEndpoint(std::move(ep));
    if (!proxied.ok()) {
      for (WorkerEndpoint& done : wrapped) Destroy(std::move(done));
      return proxied.status();
    }
    wrapped.push_back(std::move(*proxied));
  }
  return wrapped;
}

void FaultInjectingTransport::Release(WorkerEndpoint endpoint) {
  std::unique_ptr<Proxy> proxy = DetachProxy(endpoint.socket.fd());
  if (proxy == nullptr) {
    inner_->Release(std::move(endpoint));
    return;
  }
  // Stop the pumps BEFORE closing our proxy end: closing first would wake
  // the to-worker pump with a genuine source EOF, which it would propagate
  // onto the real connection — killing the worker we are about to pool.
  proxy->Stop();
  endpoint.socket.Close();
  if (proxy->closed.load()) {
    // A close fault killed the real connection — never pool a corpse.
    inner_->Destroy(std::move(proxy->real));
  } else {
    inner_->Release(std::move(proxy->real));
  }
}

void FaultInjectingTransport::Destroy(WorkerEndpoint endpoint) {
  std::unique_ptr<Proxy> proxy = DetachProxy(endpoint.socket.fd());
  if (proxy == nullptr) {
    inner_->Destroy(std::move(endpoint));
    return;
  }
  proxy->Stop();
  endpoint.socket.Close();
  inner_->Destroy(std::move(proxy->real));
}

}  // namespace spinner::dist
