// PersistentShardStore: worker-side on-disk shard hosting, the piece that
// lets a dial-in worker keep its shard slices across runs (and process
// restarts) instead of re-downloading the graph every time.
//
// Layout, rooted at a directory (one store may be shared by every worker
// on a host — workers own disjoint shards, so they touch disjoint files):
//   shard_<id>.base   magic "SPSB" | version u32 | SPSL slice bytes |
//                     fnv u64 over the slice bytes
//   shard_<id>.dlog   magic "SPSD" | version u32 | base_fnv u64 |
//                     record*  where record =
//                       size u64 | SPSL slice bytes | fnv u64
//
// The delta-log idiom mirrors stream/checkpoint_log: the log is bound to
// its base by the base's slice fingerprint, records are individually
// checksummed, and a truncated or corrupt tail is *ignored* (the slice
// rolls back to the last valid record) rather than fatal — a crash
// mid-append must never wedge a worker; at worst the coordinator
// re-downloads one slice. Record granularity is the whole shard slice:
// topology deltas re-slice entire shards (ShardedGraphStore::Update), so
// the natural delta unit on the worker side is the replacement slice.
// Put() appends a record while the log is short and folds everything back
// into a fresh base past `compact_after_records` (bounding replay time).
//
// The fingerprint a worker reports in its Resume message is the FNV-1a
// digest of the *current* slice bytes (base + replayed log); it matches
// the coordinator's Assign fingerprint iff the hosted slice is
// byte-identical to the coordinator's — the zero-download resume gate.
#ifndef SPINNER_DIST_SHARD_STORE_H_
#define SPINNER_DIST_SHARD_STORE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/sharded_store.h"

namespace spinner::dist {

/// FNV-1a digest of a shard's canonical SPSL slice encoding — the resume
/// fingerprint both sides of the Assign/Resume handshake compute.
uint64_t ShardSliceFingerprint(std::span<const uint8_t> slice_bytes);
uint64_t ShardSliceFingerprint(const ShardedGraphStore::Shard& shard);

class PersistentShardStore {
 public:
  struct Options {
    /// Fold the delta log into a fresh base once it holds this many
    /// records. Replay cost is bounded by compact_after_records slice
    /// decodes; between compactions every Put is one append.
    int64_t compact_after_records = 8;
  };

  /// A slice loaded back from disk: the decoded shard plus the
  /// fingerprint of its current bytes.
  struct LoadedSlice {
    ShardedGraphStore::Shard shard;
    uint64_t fingerprint = 0;
  };

  /// Hosts shards under `root` (created on first Put). Nothing touches
  /// the filesystem until Put()/Load().
  explicit PersistentShardStore(std::string root)
      : PersistentShardStore(std::move(root), Options()) {}
  PersistentShardStore(std::string root, Options options);

  /// Loads shard `id`: base + replayed delta log, last valid record wins.
  /// Returns nullopt when the shard is absent or unusable (missing base,
  /// checksum mismatch, log bound to a different base) — callers treat
  /// that as "re-download", never as fatal. Corrupt log *tails* roll back
  /// to the last valid record and count in corrupt_tails_ignored().
  Result<std::optional<LoadedSlice>> Load(int32_t shard_id);

  /// Makes `slice_bytes` (canonical SPSL encoding) the current content of
  /// shard `id`: writes the base when none exists (or compaction is due),
  /// otherwise appends one delta record. Put of bytes whose fingerprint
  /// already matches the current content is a no-op.
  Status Put(int32_t shard_id, std::span<const uint8_t> slice_bytes);

  const std::string& root() const { return root_; }
  std::string BasePath(int32_t shard_id) const;
  std::string LogPath(int32_t shard_id) const;

  // Observability for the restart/resume tests.
  int64_t bases_written() const { return bases_written_; }
  int64_t records_appended() const { return records_appended_; }
  int64_t compactions() const { return compactions_; }
  int64_t corrupt_tails_ignored() const { return corrupt_tails_ignored_; }

 private:
  /// Reads the current slice bytes of shard `id` (base + log replay)
  /// without decoding; nullopt when absent/unusable. `records_out` gets
  /// the number of valid log records replayed.
  Result<std::optional<std::vector<uint8_t>>> CurrentBytes(
      int32_t shard_id, int64_t* records_out);

  Status WriteBase(int32_t shard_id, std::span<const uint8_t> slice_bytes);

  std::string root_;
  Options options_;
  bool root_created_ = false;
  int64_t bases_written_ = 0;
  int64_t records_appended_ = 0;
  int64_t compactions_ = 0;
  int64_t corrupt_tails_ignored_ = 0;
};

}  // namespace spinner::dist

#endif  // SPINNER_DIST_SHARD_STORE_H_
