// Frame transport for the cross-process execution mode: length-prefixed
// binary frames over Unix-domain stream sockets. This is the lowest layer
// of the dist subsystem — it moves opaque byte payloads reliably (full
// frames or a clean Status error, never a torn read) and knows nothing
// about Spinner; message payload layouts live in dist/wire_format.h.
//
// Failure semantics are load-bearing for the coordinator's no-hang
// guarantee: a peer that dies mid-superstep surfaces as an IOError from
// RecvFrame (EOF / ECONNRESET) or SendFrame (EPIPE — sends use
// MSG_NOSIGNAL, so a dead peer never raises SIGPIPE), and oversized or
// truncated frames are rejected with a descriptive Status instead of
// blocking on bytes that will never arrive.
#ifndef SPINNER_DIST_TRANSPORT_H_
#define SPINNER_DIST_TRANSPORT_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"

namespace spinner::dist {

/// Owning wrapper for one end of an AF_UNIX stream socket (or any fd).
class UnixSocket {
 public:
  UnixSocket() = default;
  explicit UnixSocket(int fd) : fd_(fd) {}
  ~UnixSocket() { Close(); }

  UnixSocket(UnixSocket&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  UnixSocket& operator=(UnixSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  void Close();

  /// Gives up ownership of the fd without closing it (used by the forked
  /// worker child, which inherits the descriptor across fork()).
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// A connected AF_UNIX SOCK_STREAM pair: .first stays with the
/// coordinator, .second goes to the forked worker.
Result<std::pair<UnixSocket, UnixSocket>> CreateSocketPair();

/// Frame header magic ("SPMF" little-endian) — rejects desynchronized or
/// foreign byte streams immediately.
inline constexpr uint32_t kFrameMagic = 0x464d5053u;

/// Hard ceiling on a frame payload. A header announcing more than this is
/// rejected as malformed before any allocation, so a corrupt length field
/// cannot OOM the receiver or stall it waiting for absent bytes.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

/// One decoded frame: a type tag (dist/wire_format.h's MessageType) and an
/// opaque payload.
struct Frame {
  uint32_t type = 0;
  std::vector<uint8_t> payload;
};

/// Writes one frame: { magic u32 | type u32 | payload_size u64 | payload }.
/// Blocks until fully written; IOError on a closed/dead peer.
Status SendFrame(int fd, uint32_t type, std::span<const uint8_t> payload);

/// Reads exactly one frame. IOError on EOF or a short read (peer died,
/// truncated frame), InvalidArgument on bad magic or an oversized
/// announced payload.
Result<Frame> RecvFrame(int fd);

}  // namespace spinner::dist

#endif  // SPINNER_DIST_TRANSPORT_H_
