// Frame transport for the cross-process execution mode: length-prefixed
// binary frames over Unix-domain stream sockets, plus a chunked message
// layer that streams payloads of any size across many frames. This is the
// lowest layer of the dist subsystem — it moves opaque byte payloads
// reliably (full messages or a clean Status error, never a torn read) and
// knows nothing about Spinner; message payload layouts live in
// dist/wire_format.h.
//
// The effective per-frame payload ceiling is a runtime knob
// (TransportOptions::max_frame_payload, default 1 GiB). SendMessage splits
// anything larger into chunk frames carrying a fixed envelope (message id,
// chunk index/count, total size, per-message checksum); RecvMessage
// reassembles them, rejecting out-of-order, duplicate, missing, zero-length
// and oversized chunks — and any total above max_message_size — BEFORE
// allocating, so no corrupt header can OOM or stall the receiver. Forcing
// max_frame_payload tiny (the wire-stress CI lane uses 4 KiB via
// SPINNER_WIRE_MAX_PAYLOAD) drives every chunk path on ordinary graphs.
//
// Failure semantics are load-bearing for the coordinator's no-hang
// guarantee: a peer that dies mid-superstep surfaces as an IOError from
// RecvFrame (EOF / ECONNRESET) or SendFrame (EPIPE — sends use
// MSG_NOSIGNAL, so a dead peer never raises SIGPIPE), and oversized or
// truncated frames are rejected with a descriptive Status instead of
// blocking on bytes that will never arrive.
#ifndef SPINNER_DIST_TRANSPORT_H_
#define SPINNER_DIST_TRANSPORT_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"

namespace spinner::dist {

/// Owning wrapper for one end of an AF_UNIX stream socket (or any fd).
class UnixSocket {
 public:
  UnixSocket() = default;
  explicit UnixSocket(int fd) : fd_(fd) {}
  ~UnixSocket() { Close(); }

  UnixSocket(UnixSocket&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  UnixSocket& operator=(UnixSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  void Close();

  /// Gives up ownership of the fd without closing it (used by the forked
  /// worker child, which inherits the descriptor across fork()).
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// A connected AF_UNIX SOCK_STREAM pair: .first stays with the
/// coordinator, .second goes to the forked worker.
Result<std::pair<UnixSocket, UnixSocket>> CreateSocketPair();

/// Frame header magic ("SPMF" little-endian) — rejects desynchronized or
/// foreign byte streams immediately.
inline constexpr uint32_t kFrameMagic = 0x464d5053u;

/// Frame header size: magic u32 | type u32 | payload_size u64. Exported so
/// frame-granular middleboxes (dist/fault_injection.h pumps frames through
/// a proxy) can parse the stream without re-deriving the layout.
inline constexpr size_t kFrameHeaderSize = 16;

/// Default liveness-poll period of deadline-bounded receives: while a
/// deadline is armed the receiver wakes at this granularity to re-check the
/// clock. Overridden by ExecutionOptions::heartbeat_period_ms plumbing.
inline constexpr int64_t kDefaultPollPeriodMs = 1'000;

/// Absolute ceiling on a single frame payload (1 GiB) and the default of
/// TransportOptions::max_frame_payload. A header announcing more than the
/// effective limit is rejected as malformed before any allocation, so a
/// corrupt length field cannot OOM the receiver or stall it waiting for
/// absent bytes.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

/// Smallest configurable frame payload: the chunk envelope plus some
/// actual bytes must fit in every frame. SpinnerConfig::Validate repeats
/// this bound as a literal (spinner/ cannot include dist/); a static_assert
/// in transport.cc keeps the two in sync.
inline constexpr uint64_t kMinFramePayload = 64;

/// Default ceiling on a reassembled chunked message (1 TiB): the
/// allocation guard of the chunk layer, far above any realistic transfer
/// but finite so a corrupt total_size still fails cleanly.
inline constexpr uint64_t kMaxMessageSize = 1ull << 40;

/// Frame type reserved for chunk-envelope frames; dist/wire_format.h's
/// MessageType values must stay clear of it.
inline constexpr uint32_t kChunkFrameType = 0xffffffffu;

/// Runtime knobs of the transport. Both sides of a connection must use
/// the same options; the coordinator passes its options into the forked
/// worker, so one MultiProcessOptions is the single source of truth.
struct TransportOptions {
  /// Effective per-frame payload ceiling. Messages larger than this are
  /// chunked by SendMessage. Clamped to [kMinFramePayload,
  /// kMaxFramePayload] by FromEnv/Resolve.
  uint64_t max_frame_payload = kMaxFramePayload;

  /// Reassembly allocation guard: a chunked message announcing a larger
  /// total is rejected before allocation.
  uint64_t max_message_size = kMaxMessageSize;

  /// Default options, honoring the SPINNER_WIRE_MAX_PAYLOAD environment
  /// variable (bytes; clamped into the valid range) when set — how the
  /// wire-stress CI lane forces every chunk path without touching call
  /// sites.
  static TransportOptions FromEnv();

  /// FromEnv(), with `max_frame_payload_override` (when non-zero, e.g.
  /// SpinnerConfig::wire_max_payload) winning over the environment.
  static TransportOptions Resolve(uint64_t max_frame_payload_override);
};

/// Byte/frame counters of one connection endpoint, updated by
/// SendMessage/RecvMessage (header + payload bytes). The coordinator
/// aggregates these across workers — the observability hook behind the
/// O(boundary) wire-traffic assertions and the bench-smoke wire report.
struct WireCounters {
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  /// Messages that crossed the wire in more than one frame.
  int64_t chunked_messages_sent = 0;
  int64_t chunked_messages_received = 0;
};

/// One decoded frame: a type tag (dist/wire_format.h's MessageType) and an
/// opaque payload.
struct Frame {
  uint32_t type = 0;
  std::vector<uint8_t> payload;
};

/// Writes one frame: { magic u32 | type u32 | payload_size u64 | payload }.
/// Fails (InvalidArgument) if the payload exceeds
/// `options.max_frame_payload` — callers with larger messages use
/// SendMessage. Blocks until fully written; IOError on a closed/dead peer.
Status SendFrame(int fd, uint32_t type, std::span<const uint8_t> payload,
                 const TransportOptions& options = {});

/// Reads exactly one frame. IOError on EOF or a short read (peer died,
/// truncated frame), InvalidArgument on bad magic or an announced payload
/// above `options.max_frame_payload`.
///
/// `timeout_ms` arms a read deadline: < 0 blocks forever (the idle-worker
/// default — a pooled worker legitimately waits days for its next Assign);
/// >= 0 bounds the wait for this frame's bytes and surfaces
/// DeadlineExceeded when the peer stays connected but silent — distinct
/// from the IOError of a dead peer, which the recovery layer treats
/// differently (a hung worker still needs its connection torn down). The
/// wait polls at `poll_period_ms` granularity.
Result<Frame> RecvFrame(int fd, const TransportOptions& options = {},
                        int64_t timeout_ms = -1,
                        int64_t poll_period_ms = kDefaultPollPeriodMs);

/// Sends one message of any size: payloads within the frame limit travel
/// as one plain frame; larger payloads are split into chunk frames whose
/// envelope carries `message_id` (unique per sender), the original `type`,
/// chunk index/count, the total size and an FNV-1a checksum over the whole
/// payload. `counters` (optional) accrues bytes/frames sent.
Status SendMessage(int fd, uint32_t type, std::span<const uint8_t> payload,
                   const TransportOptions& options, uint64_t message_id,
                   WireCounters* counters = nullptr);

/// Receives one message: a plain frame is returned as-is; a chunk frame
/// triggers reassembly of the full message, validating the envelope of
/// every chunk (same message id/type/count/total/checksum, strictly
/// sequential indices, no zero-length or oversized chunks) and the total
/// size against `options.max_message_size` BEFORE allocating, then the
/// per-message checksum after the last chunk. Every violation is a
/// descriptive InvalidArgument — never a hang or an unbounded allocation.
///
/// `timeout_ms` / `poll_period_ms` arm the per-frame read deadline of
/// RecvFrame on every frame of the message: a peer streaming a large
/// chunked message stays alive as long as it makes frame-level progress,
/// but one that stalls mid-message surfaces DeadlineExceeded within one
/// timeout.
Result<Frame> RecvMessage(int fd, const TransportOptions& options = {},
                          WireCounters* counters = nullptr,
                          int64_t timeout_ms = -1,
                          int64_t poll_period_ms = kDefaultPollPeriodMs);

/// FNV-1a offset basis — the seed of an empty ChecksumBytes fold.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/// FNV-1a over raw bytes, continuing from `seed` — the per-message
/// integrity checksum of the chunk layer, and the single FNV
/// implementation behind dist/wire_format.h's label checksums
/// (incremental folds chain the previous digest as the seed).
uint64_t ChecksumBytes(std::span<const uint8_t> bytes,
                       uint64_t seed = kFnvOffsetBasis);

}  // namespace spinner::dist

#endif  // SPINNER_DIST_TRANSPORT_H_
