#include "dist/registry.h"

#include <poll.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "dist/wire_format.h"
#include "dist/worker.h"

namespace spinner::dist {

namespace {

int64_t NowMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

/// Waits for bytes on `fd` within `timeout_ms`, so a dial-in that never
/// sends its Hello cannot park the registry forever.
Status PollReadable(int fd, int64_t timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  const int ready =
      poll(&p, 1, static_cast<int>(timeout_ms < 0 ? 0 : timeout_ms));
  if (ready < 0) {
    return Status::IOError(StrFormat("poll(handshake): %s", strerror(errno)));
  }
  if (ready == 0) {
    return Status::IOError(
        StrFormat("no Hello received within %lld ms",
                  static_cast<long long>(timeout_ms)));
  }
  return Status::OK();
}

/// Consumes the Hello a freshly connected worker must send first, and
/// validates it. A version mismatch is answered with an Error frame (the
/// worker prints it and exits) before the failure is returned.
Result<HelloMessage> RecvHello(int fd, const TransportOptions& options,
                               int64_t timeout_ms) {
  const int64_t deadline = NowMs() + (timeout_ms < 0 ? 0 : timeout_ms);
  SPINNER_RETURN_IF_ERROR(PollReadable(fd, timeout_ms));
  // The remaining budget bounds the Hello bytes themselves: a dial-in that
  // sends half a frame and stalls is rejected (DeadlineExceeded from the
  // transport), not allowed to park the registry.
  SPINNER_ASSIGN_OR_RETURN(
      Frame frame,
      RecvMessage(fd, options, /*counters=*/nullptr,
                  /*timeout_ms=*/std::max<int64_t>(deadline - NowMs(), 1)));
  if (frame.type != static_cast<uint32_t>(MessageType::kHello)) {
    return Status::InvalidArgument(StrFormat(
        "expected Hello as the first message, got frame type %u",
        frame.type));
  }
  SPINNER_ASSIGN_OR_RETURN(HelloMessage hello,
                           HelloMessage::Decode(frame.payload));
  if (hello.protocol_version != kProtocolVersion) {
    const std::string reason = StrFormat(
        "protocol version mismatch: worker speaks %u, coordinator speaks %u",
        hello.protocol_version, kProtocolVersion);
    std::span<const uint8_t> payload(
        reinterpret_cast<const uint8_t*>(reason.data()), reason.size());
    (void)SendMessage(fd, static_cast<uint32_t>(MessageType::kError),
                      payload, options, /*message_id=*/0);
    return Status::InvalidArgument(reason);
  }
  if (hello.capacity < 1) {
    return Status::InvalidArgument(StrFormat(
        "worker advertised capacity %lld; must be >= 1",
        static_cast<long long>(hello.capacity)));
  }
  return hello;
}

/// Closes every fd except stdio and `keep`, in a freshly forked child.
/// Uses the close_range syscall — a pure syscall is safe after forking a
/// multithreaded parent (fault-proxy pumps may be running), where
/// opendir("/proc/self/fd") is not.
void CloseAllFdsExcept(int keep) {
  bool ok = true;
  if (keep > 3) {
    ok = syscall(SYS_close_range, 3u, static_cast<unsigned>(keep) - 1,
                 0u) == 0;
  }
  ok = syscall(SYS_close_range, static_cast<unsigned>(keep) + 1, ~0u,
               0u) == 0 &&
       ok;
  if (!ok) {
    // Pre-5.9 kernel: bounded brute force.
    for (int fd = 3; fd < 4096; ++fd) {
      if (fd != keep) ::close(fd);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// UnixSocketTransport
// ---------------------------------------------------------------------------

UnixSocketTransport::UnixSocketTransport(std::string worker_store_dir)
    : worker_store_dir_(std::move(worker_store_dir)) {}

Result<std::vector<WorkerEndpoint>> UnixSocketTransport::Acquire(
    int num_workers, const TransportOptions& options) {
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  std::vector<WorkerEndpoint> endpoints;
  endpoints.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    auto pair = CreateSocketPair();
    if (!pair.ok()) {
      for (auto& ep : endpoints) Destroy(std::move(ep));
      return pair.status();
    }
    const pid_t pid = fork();
    if (pid < 0) {
      for (auto& ep : endpoints) Destroy(std::move(ep));
      return Status::IOError(StrFormat("fork: %s", strerror(errno)));
    }
    if (pid == 0) {
      // Child: keep only our end of our pair. fork() copied every fd the
      // coordinator holds — earlier workers' sockets, and (when this is a
      // recovery top-up mid-run) the surviving workers' connections and
      // any fault-proxy fds. A stray duplicate of another connection's
      // write end would keep its peer from ever reading EOF, so a worker
      // release (or a coordinator crash) could hang the fleet.
      CloseAllFdsExcept(pair->second.fd());
      WorkerLoopOptions loop;
      loop.store_dir = worker_store_dir_;
      _exit(RunShardWorkerLoop(pair->second.fd(), options, loop));
    }
    pair->second.Close();
    auto hello = RecvHello(pair->first.fd(), options,
                           /*timeout_ms=*/30'000);
    if (!hello.ok()) {
      WorkerEndpoint broken;
      broken.socket = std::move(pair->first);
      broken.pid = pid;
      Destroy(std::move(broken));
      for (auto& ep : endpoints) Destroy(std::move(ep));
      return hello.status();
    }
    WorkerEndpoint ep;
    ep.socket = std::move(pair->first);
    ep.pid = pid;
    ep.capacity = hello->capacity;
    ep.id = next_id_++;
    endpoints.push_back(std::move(ep));
  }
  return endpoints;
}

void UnixSocketTransport::Release(WorkerEndpoint endpoint) {
  // Closing our end is the child's signal to finish: an idle worker reads
  // EOF and exits 0.
  endpoint.socket.Close();
  if (endpoint.pid > 0) {
    int wstatus = 0;
    (void)waitpid(endpoint.pid, &wstatus, 0);
  }
}

void UnixSocketTransport::Destroy(WorkerEndpoint endpoint) {
  endpoint.socket.Close();
  if (endpoint.pid > 0) {
    (void)kill(endpoint.pid, SIGKILL);
    int wstatus = 0;
    (void)waitpid(endpoint.pid, &wstatus, 0);
  }
}

// ---------------------------------------------------------------------------
// WorkerRegistry
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WorkerRegistry>> WorkerRegistry::Listen(
    RegistryOptions options) {
  if (options.handshake_timeout_ms < 1) {
    return Status::InvalidArgument("handshake_timeout_ms must be >= 1");
  }
  SPINNER_ASSIGN_OR_RETURN(TcpListener listener,
                           TcpListener::Bind(options.listen_address));
  std::unique_ptr<WorkerRegistry> registry(new WorkerRegistry());
  registry->listener_ = std::move(listener);
  registry->options_ = std::move(options);
  return registry;
}

Result<std::vector<WorkerEndpoint>> WorkerRegistry::Acquire(
    int num_workers, const TransportOptions& options) {
  return AcquireWithin(num_workers, options, options_.handshake_timeout_ms);
}

Result<std::vector<WorkerEndpoint>> WorkerRegistry::TryAcquire(
    int num_workers, const TransportOptions& options, int64_t timeout_ms) {
  return AcquireWithin(num_workers, options,
                       std::max<int64_t>(timeout_ms, 1));
}

Result<std::vector<WorkerEndpoint>> WorkerRegistry::AcquireWithin(
    int num_workers, const TransportOptions& options, int64_t timeout_ms) {
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  std::vector<WorkerEndpoint> endpoints;
  endpoints.reserve(static_cast<size_t>(num_workers));

  // Pooled connections first. An idle worker sends nothing, so a readable
  // pooled socket means EOF or a stray byte — either way the worker is
  // not reusable; drop it and let a fresh dial-in take the slot.
  while (!pool_.empty() &&
         endpoints.size() < static_cast<size_t>(num_workers)) {
    WorkerEndpoint ep = std::move(pool_.front());
    pool_.erase(pool_.begin());
    pollfd p{};
    p.fd = ep.socket.fd();
    p.events = POLLIN;
    const int ready = poll(&p, 1, 0);
    if (ready != 0) {
      ep.socket.Close();
      continue;
    }
    endpoints.push_back(std::move(ep));
  }

  const int64_t deadline = NowMs() + timeout_ms;
  while (endpoints.size() < static_cast<size_t>(num_workers)) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      return Status::IOError(StrFormat(
          "only %d of %d workers dialed in within %lld ms",
          static_cast<int>(endpoints.size()), num_workers,
          static_cast<long long>(timeout_ms)));
    }
    auto conn = listener_.AcceptWithin(remaining);
    if (!conn.ok()) {
      return Status::IOError(StrFormat(
          "only %d of %d workers dialed in within %lld ms (%s)",
          static_cast<int>(endpoints.size()), num_workers,
          static_cast<long long>(timeout_ms),
          conn.status().message().c_str()));
    }
    auto hello =
        RecvHello(conn->fd(), options, deadline - NowMs());
    if (!hello.ok()) {
      // A bad dial-in (wrong version, garbage, silent) is not fatal to
      // the fleet: close it and keep waiting for real workers.
      ++handshakes_rejected_;
      conn->Close();
      continue;
    }
    WorkerEndpoint ep;
    ep.socket = std::move(*conn);
    ep.capacity = hello->capacity;
    ep.id = next_id_++;
    ++handshakes_completed_;
    endpoints.push_back(std::move(ep));
  }
  return endpoints;
}

void WorkerRegistry::Release(WorkerEndpoint endpoint) {
  if (!endpoint.socket.valid()) return;
  pool_.push_back(std::move(endpoint));
}

void WorkerRegistry::Destroy(WorkerEndpoint endpoint) {
  endpoint.socket.Close();
}

int WorkerRegistry::DrainPooled(int keep) {
  if (keep < 0) keep = 0;
  int drained = 0;
  while (static_cast<int>(pool_.size()) > keep) {
    // Closing the coordinator side is the whole drain protocol: the
    // dial-in worker's serve loop reads EOF and exits 0.
    pool_.back().socket.Close();
    pool_.pop_back();
    ++drained;
  }
  return drained;
}

}  // namespace spinner::dist
