#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "dist/fault_injection.h"
#include "dist/shard_store.h"
#include "graph/binary_io.h"
#include "spinner/superstep_driver.h"

namespace spinner::dist {

namespace {

int HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

int ResolveNumWorkers(int requested, int num_shards) {
  if (requested > 0) return requested;
  return std::max(1, std::min(num_shards, HardwareThreads()));
}

Coordinator::~Coordinator() { ForceKill(); }

Status Coordinator::Spawn(const SpinnerConfig& config,
                          const ShardedGraphStore& store, int num_workers,
                          const MultiProcessOptions& options) {
  if (!workers_.empty()) {
    return Status::FailedPrecondition("coordinator already spawned");
  }
  if (num_workers < 1) {
    return Status::InvalidArgument(
        StrFormat("num_workers must be >= 1 (got %d)", num_workers));
  }
  if (options.rpc_timeout_ms <= 0 || options.heartbeat_period_ms <= 0) {
    return Status::InvalidArgument(StrFormat(
        "rpc_timeout_ms/heartbeat_period_ms must be > 0 (got %lld/%lld)",
        static_cast<long long>(options.rpc_timeout_ms),
        static_cast<long long>(options.heartbeat_period_ms)));
  }
  if (options.max_recovery_attempts < 0) {
    return Status::InvalidArgument(StrFormat(
        "max_recovery_attempts must be >= 0 (got %d)",
        options.max_recovery_attempts));
  }
  transport_ = options.transport;
  config_ = config;
  rpc_timeout_ms_ = options.rpc_timeout_ms;
  heartbeat_period_ms_ = options.heartbeat_period_ms;
  fail_after_score_steps_ = options.fail_after_score_steps;
  fail_worker_ = options.fail_worker;
  if (options.worker_transport != nullptr) {
    transport_impl_ = options.worker_transport;
  } else {
    owned_transport_ =
        std::make_unique<UnixSocketTransport>(options.worker_store_dir);
    transport_impl_ = owned_transport_.get();
  }
  // SPINNER_FAULT_PLAN wraps whichever transport was chosen in the frame
  // fault proxy — how the chaos CI lane injects wire faults into release
  // binaries without a dedicated flag on every entry point.
  const char* fault_spec = std::getenv("SPINNER_FAULT_PLAN");
  if (fault_spec != nullptr && fault_spec[0] != '\0') {
    SPINNER_ASSIGN_OR_RETURN(FaultPlan plan, FaultPlan::Parse(fault_spec));
    fault_transport_ = std::make_unique<FaultInjectingTransport>(
        transport_impl_, std::move(plan));
    transport_impl_ = fault_transport_.get();
  }
  SPINNER_ASSIGN_OR_RETURN(std::vector<WorkerEndpoint> endpoints,
                           transport_impl_->Acquire(num_workers, transport_));
  return AssignFleet(store, std::move(endpoints),
                     /*inject_fail_hook=*/true);
}

Status Coordinator::AssignFleet(const ShardedGraphStore& store,
                                std::vector<WorkerEndpoint> endpoints,
                                bool inject_fail_hook) {
  const int num_workers = static_cast<int>(endpoints.size());
  // Contiguous ascending shard ranges per worker, sized proportionally to
  // the capacity each advertised in its Hello (equal capacities reduce to
  // the classic S·w/W split). Contiguity keeps replies received in worker
  // order in global shard order, so every merge stays trivially in the
  // fixed order the determinism contract requires.
  const int S = store.num_shards();
  int64_t total_capacity = 0;
  for (const WorkerEndpoint& ep : endpoints) {
    total_capacity += std::max<int64_t>(1, ep.capacity);
  }
  int64_t prefix_capacity = 0;
  for (WorkerEndpoint& ep : endpoints) {
    const int begin = static_cast<int>(
        static_cast<int64_t>(S) * prefix_capacity / total_capacity);
    prefix_capacity += std::max<int64_t>(1, ep.capacity);
    const int end = static_cast<int>(
        static_cast<int64_t>(S) * prefix_capacity / total_capacity);
    Worker worker;
    worker.endpoint = std::move(ep);
    for (int s = begin; s < end; ++s) {
      worker.shards.push_back(static_cast<int32_t>(s));
    }
    workers_.push_back(std::move(worker));
  }

  // Assign first (full config + fingerprints, so every worker can probe
  // its store concurrently), then per worker consume the Resume and send
  // a Setup carrying only the slices whose fingerprint missed.
  std::vector<std::vector<uint64_t>> fingerprints(workers_.size());
  for (int w = 0; w < num_workers; ++w) {
    AssignMessage assign;
    assign.num_partitions = config_.num_partitions;
    assign.seed = config_.seed;
    assign.balance_on_vertices =
        config_.balance_mode == BalanceMode::kVertices ? 1 : 0;
    assign.per_worker_async = config_.per_worker_async ? 1 : 0;
    assign.num_vertices = store.NumVertices();
    assign.num_shards_total = S;
    assign.owned_shards = workers_[w].shards;
    for (const int32_t s : workers_[w].shards) {
      assign.slice_fingerprints.push_back(
          ShardSliceFingerprint(store.shard(s)));
    }
    fingerprints[w] = assign.slice_fingerprints;
    if (inject_fail_hook && w == fail_worker_) {
      assign.fail_after_score_steps = fail_after_score_steps_;
    }
    const Status sent = SendTo(w, MessageType::kAssign, assign.Encode());
    if (!sent.ok()) {
      ForceKill();
      return sent;
    }
  }
  for (int w = 0; w < num_workers; ++w) {
    Result<Frame> frame = RecvFrom(w, MessageType::kResume);
    Status status = frame.status();
    ResumeMessage resume;
    if (status.ok()) {
      auto decoded = ResumeMessage::Decode(frame->payload);
      status = decoded.status();
      if (status.ok()) resume = std::move(*decoded);
    }
    if (status.ok() &&
        resume.fingerprints.size() != workers_[w].shards.size()) {
      status = Status::Internal(StrFormat(
          "worker %d Resume carries %zu fingerprints for %zu shards", w,
          resume.fingerprints.size(), workers_[w].shards.size()));
    }
    if (status.ok()) {
      SetupMessage setup;
      setup.num_partitions = config_.num_partitions;
      setup.seed = config_.seed;
      setup.balance_on_vertices =
          config_.balance_mode == BalanceMode::kVertices ? 1 : 0;
      setup.per_worker_async = config_.per_worker_async ? 1 : 0;
      setup.num_vertices = store.NumVertices();
      setup.num_shards_total = S;
      for (size_t i = 0; i < workers_[w].shards.size(); ++i) {
        const int32_t s = workers_[w].shards[i];
        if (resume.fingerprints[i] != 0 &&
            resume.fingerprints[i] == fingerprints[w][i]) {
          ++slices_resumed_;
          continue;
        }
        setup.owned_shards.push_back(s);
        ++slices_downloaded_;
        slice_bytes_downloaded_ += static_cast<int64_t>(
            graph_io::EncodedShardSliceSize(store.shard(s)));
      }
      // Slices are appended straight from the store — no intermediate
      // per-shard CSR copies on the download path. An all-hit Resume
      // still gets its (slice-free) Setup: the worker always awaits one.
      status = SendTo(w, MessageType::kSetup,
                      EncodeSetupFromStore(setup, store));
    }
    if (!status.ok()) {
      ForceKill();
      return status;
    }
  }
  return Status::OK();
}

Status Coordinator::CollectSubscriptions(const ShardedGraphStore& store) {
  const int64_t n = store.NumVertices();
  for (int w = 0; w < num_workers(); ++w) {
    SPINNER_ASSIGN_OR_RETURN(Frame frame,
                             RecvFrom(w, MessageType::kSubscribe));
    SPINNER_ASSIGN_OR_RETURN(SubscribeMessage subscribe,
                             SubscribeMessage::Decode(frame.payload));
    // A worker's shards are one contiguous ascending range (assigned in
    // Spawn), so ownership is a single interval test per vertex — the
    // boundary can approach V, this loop must not be O(shards) per entry.
    const std::vector<int32_t>& shards = workers_[w].shards;
    const VertexId owned_begin =
        shards.empty() ? 0 : store.shard(shards.front()).begin;
    const VertexId owned_end =
        shards.empty() ? 0 : store.shard(shards.back()).end;
    VertexId previous = -1;
    for (const VertexId v : subscribe.vertices) {
      if (v < 0 || v >= n) {
        return Status::Internal(StrFormat(
            "worker %d subscribed to out-of-range vertex %lld", w,
            static_cast<long long>(v)));
      }
      if (v <= previous) {
        return Status::Internal(StrFormat(
            "worker %d subscription is not strictly ascending", w));
      }
      previous = v;
      if (v >= owned_begin && v < owned_end) {
        return Status::Internal(StrFormat(
            "worker %d subscribed to vertex %lld it owns", w,
            static_cast<long long>(v)));
      }
    }
    workers_[w].subscription = std::move(subscribe.vertices);
  }
  return Status::OK();
}

Status Coordinator::SendTo(int w, MessageType type,
                           std::span<const uint8_t> payload) {
  const Status status = SendMessage(
      workers_[static_cast<size_t>(w)].endpoint.socket.fd(),
      static_cast<uint32_t>(type), payload, transport_, next_message_id_++,
      &counters_);
  if (!status.ok()) {
    return Status::IOError(StrFormat(
        "worker %d (pid %d) unreachable: %s", w,
        static_cast<int>(workers_[static_cast<size_t>(w)].endpoint.pid),
        status.message().c_str()));
  }
  return status;
}

Status Coordinator::SendToAll(MessageType type,
                              std::span<const uint8_t> payload) {
  for (int w = 0; w < num_workers(); ++w) {
    SPINNER_RETURN_IF_ERROR(SendTo(w, type, payload));
  }
  return Status::OK();
}

Result<Frame> Coordinator::RecvFrom(int w, MessageType expected) {
  Result<Frame> frame = RecvMessage(
      workers_[static_cast<size_t>(w)].endpoint.socket.fd(), transport_,
      &counters_, rpc_timeout_ms_, heartbeat_period_ms_);
  if (!frame.ok()) {
    // EOF/EPIPE means the worker process is gone; an elapsed deadline a
    // worker that is connected but silent; anything else (chunk
    // reassembly rejections are InvalidArgument) is a live worker with a
    // corrupt stream — keep the code so operators chase the right bug.
    const StatusCode code = frame.status().code();
    const char* what =
        code == StatusCode::kIOError
            ? "worker %d (pid %d) died mid-superstep: %s"
            : (code == StatusCode::kDeadlineExceeded
                   ? "worker %d (pid %d) hung mid-superstep: %s"
                   : "worker %d (pid %d) sent a corrupt stream: %s");
    return Status(
        code,
        StrFormat(
            what, w,
            static_cast<int>(
                workers_[static_cast<size_t>(w)].endpoint.pid),
            frame.status().message().c_str()));
  }
  if (frame->type == static_cast<uint32_t>(MessageType::kError)) {
    auto error = ErrorMessage::Decode(frame->payload);
    const std::string detail =
        error.ok() ? error->ToStatus().ToString() : "unreadable error frame";
    return Status::Internal(
        StrFormat("worker %d reported: %s", w, detail.c_str()));
  }
  if (frame->type != static_cast<uint32_t>(expected)) {
    return Status::Internal(StrFormat(
        "worker %d sent frame type %u where %u was expected", w,
        frame->type, static_cast<uint32_t>(expected)));
  }
  return frame;
}

Status Coordinator::ResetEndpoint(WorkerEndpoint& endpoint) {
  SPINNER_RETURN_IF_ERROR(SendMessage(
      endpoint.socket.fd(), static_cast<uint32_t>(MessageType::kTeardown),
      {}, transport_, next_message_id_++, &counters_));
  // A live worker may still owe replies from the interrupted round; skip
  // them until its TeardownAck arrives (after which it has reset its run
  // state and awaits the next Assign). The cap bounds a babbling stream.
  for (int i = 0; i < 64; ++i) {
    SPINNER_ASSIGN_OR_RETURN(
        Frame frame,
        RecvMessage(endpoint.socket.fd(), transport_, &counters_,
                    rpc_timeout_ms_, heartbeat_period_ms_));
    if (frame.type == static_cast<uint32_t>(MessageType::kTeardownAck)) {
      return Status::OK();
    }
    if (frame.type == static_cast<uint32_t>(MessageType::kError)) {
      auto error = ErrorMessage::Decode(frame.payload);
      return Status::Internal(StrFormat(
          "worker failed while resetting: %s",
          error.ok() ? error->ToStatus().ToString().c_str()
                     : "unreadable error frame"));
    }
  }
  return Status::Internal("worker did not ack Teardown within 64 messages");
}

Status Coordinator::RebuildFleet(const ShardedGraphStore& store) {
  if (workers_.empty()) {
    return Status::FailedPrecondition("no fleet to rebuild");
  }
  const int previous = num_workers();
  std::vector<WorkerEndpoint> survivors;
  for (Worker& worker : workers_) {
    if (!worker.endpoint.socket.valid()) continue;
    if (ResetEndpoint(worker.endpoint).ok()) {
      survivors.push_back(std::move(worker.endpoint));
    } else {
      transport_impl_->Destroy(std::move(worker.endpoint));
    }
  }
  workers_.clear();
  const int missing = previous - static_cast<int>(survivors.size());
  if (missing > 0) {
    // Best-effort top-up: a replacement gets one rpc timeout to
    // materialize (a fresh fork, or a spare dialing into the registry);
    // otherwise the survivors absorb the dead worker's shards, and their
    // stores re-download exactly the slices that changed hands.
    auto replacements =
        transport_impl_->TryAcquire(missing, transport_, rpc_timeout_ms_);
    if (replacements.ok()) {
      workers_replaced_ += static_cast<int64_t>(replacements->size());
      for (WorkerEndpoint& ep : *replacements) {
        survivors.push_back(std::move(ep));
      }
    }
  }
  if (survivors.empty()) {
    return Status::IOError(
        "fleet rebuild found no surviving workers and no replacement "
        "arrived in time");
  }
  return AssignFleet(store, std::move(survivors),
                     /*inject_fail_hook=*/false);
}

Status Coordinator::Shutdown() {
  Status first_error;
  for (int w = 0; w < num_workers(); ++w) {
    if (!workers_[static_cast<size_t>(w)].endpoint.socket.valid()) continue;
    Status status = SendTo(w, MessageType::kTeardown, {});
    if (status.ok()) {
      status = RecvFrom(w, MessageType::kTeardownAck).status();
    }
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  if (!first_error.ok()) {
    ForceKill();
    return first_error;
  }
  // Ack received: the worker reset its run state and is awaiting the next
  // Assign; hand the live connection back to the transport (the registry
  // pools it, the fork transport closes and reaps).
  for (Worker& worker : workers_) {
    transport_impl_->Release(std::move(worker.endpoint));
  }
  workers_.clear();
  return Status::OK();
}

void Coordinator::Abort() {
  for (Worker& worker : workers_) {
    if (!worker.endpoint.socket.valid()) continue;
    if (transport_impl_ == nullptr) {
      worker.endpoint.socket.Close();
      continue;
    }
    // A survivor that acks the Teardown probe is back in the defined
    // Assign-await state and safe to pool; anything else is destroyed so
    // a half-run connection can never be handed to the next run.
    if (ResetEndpoint(worker.endpoint).ok()) {
      transport_impl_->Release(std::move(worker.endpoint));
    } else {
      transport_impl_->Destroy(std::move(worker.endpoint));
    }
  }
  workers_.clear();
}

void Coordinator::ForceKill() {
  for (Worker& worker : workers_) {
    if (transport_impl_ != nullptr) {
      transport_impl_->Destroy(std::move(worker.endpoint));
    } else {
      worker.endpoint.socket.Close();
    }
  }
  workers_.clear();
}

namespace {

/// Folds the coordinator's connection counters into a run's WireTraffic
/// totals (the per-message/entry counters are the backend's own).
void CopyCounters(const Coordinator& coordinator, WireTraffic* out) {
  const WireCounters& counters = coordinator.counters();
  out->bytes_sent = counters.bytes_sent;
  out->bytes_received = counters.bytes_received;
  out->frames_sent = counters.frames_sent;
  out->frames_received = counters.frames_received;
  out->chunked_messages =
      counters.chunked_messages_sent + counters.chunked_messages_received;
  out->slices_downloaded = coordinator.slices_downloaded();
  out->slice_bytes_downloaded = coordinator.slice_bytes_downloaded();
  out->slices_resumed = coordinator.slices_resumed();
  out->workers_replaced = coordinator.workers_replaced();
}

/// The cross-process SuperstepBackend: each phase is one lockstep RPC
/// round. The coordinator-side store is kept authoritative after every
/// round (labels via slices/deltas, loads via the replies' vectors), so
/// the driver's MergedLoads and history computations are untouched.
class MultiProcessBackend final : public SuperstepBackend {
 public:
  MultiProcessBackend(const SpinnerConfig& config, ShardedGraphStore* store,
                      Coordinator* coordinator,
                      const MultiProcessOptions& options)
      : config_(config),
        store_(store),
        coordinator_(coordinator),
        max_recovery_attempts_(options.max_recovery_attempts),
        heartbeat_period_ms_(options.heartbeat_period_ms) {}

  Status SetupSubscriptions() override {
    SPINNER_RETURN_IF_ERROR(coordinator_->CollectSubscriptions(*store_));
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      wire_.subscribed_vertices +=
          static_cast<int64_t>(coordinator_->subscription(w).size());
    }
    return Status::OK();
  }

  void CollectWireTraffic(WireTraffic* out) override {
    CopyCounters(*coordinator_, &wire_);
    *out = wire_;
  }

  Status Initialize(const std::vector<PartitionId>& initial_labels,
                    InitOutcome* out) override {
    const int64_t step_start = coordinator_->counters().bytes_sent;
    // No replay before an Initialize retry: the phase body IS the full
    // state (re)construction from `initial_labels`.
    SPINNER_RETURN_IF_ERROR(RunPhase(
        /*replay=*/false, [&] { return InitializeOnce(initial_labels, out); }));
    SaveCheckpoint();
    FinishStep(step_start);
    return Status::OK();
  }

  Status ComputeScores(int64_t superstep,
                       const std::vector<int64_t>& global_loads,
                       const std::vector<double>& capacities,
                       ScoreOutcome* out) override {
    const int64_t step_start = coordinator_->counters().bytes_sent;
    SPINNER_RETURN_IF_ERROR(RunPhase(/*replay=*/true, [&] {
      return ComputeScoresOnce(superstep, global_loads, capacities, out);
    }));
    FinishStep(step_start);
    return Status::OK();
  }

  Status ComputeMigrations(int64_t superstep,
                           const std::vector<int64_t>& global_loads,
                           const std::vector<double>& capacities,
                           const std::vector<int64_t>& migration_counts,
                           MigrateOutcome* out) override {
    const int64_t step_start = coordinator_->counters().bytes_sent;
    bool replayed = false;
    SPINNER_RETURN_IF_ERROR(RunPhase(/*replay=*/true, [&]() -> Status {
      if (replayed) {
        // A retried migrate needs the per-vertex candidate state its
        // workers lost with the fleet. The preceding score superstep is
        // index superstep - 1 and ran on exactly these frozen
        // global_loads/capacities (the driver updates loads only after a
        // migrate), so silently re-running it rebuilds that state
        // bit-identically; its outcome is scratch.
        ScoreOutcome scores;
        SPINNER_RETURN_IF_ERROR(ComputeScoresOnce(
            superstep - 1, global_loads, capacities, &scores));
      }
      replayed = true;
      return ComputeMigrationsOnce(superstep, global_loads, capacities,
                                   migration_counts, out);
    }));
    SaveCheckpoint();
    FinishStep(step_start);
    return Status::OK();
  }

  Status InitializeOnce(const std::vector<PartitionId>& initial_labels,
                        InitOutcome* out) {
    // Each worker gets exactly its owned slice of the initial labels,
    // based at its owned range begin — O(V) total, not O(V·workers).
    const int64_t init_size = static_cast<int64_t>(initial_labels.size());
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      const std::vector<int32_t>& owned = coordinator_->owned_shards(w);
      const VertexId begin =
          owned.empty() ? 0 : store_->shard(owned.front()).begin;
      const VertexId end =
          owned.empty() ? 0 : store_->shard(owned.back()).end;
      InitRequest request;
      request.base = begin;
      const int64_t lo = std::min<int64_t>(begin, init_size);
      const int64_t hi = std::min<int64_t>(end, init_size);
      if (hi > lo) {
        request.initial_labels.assign(initial_labels.begin() + lo,
                                      initial_labels.begin() + hi);
      }
      SPINNER_RETURN_IF_ERROR(
          coordinator_->SendTo(w, MessageType::kInit, request.Encode()));
    }
    out->messages_out.assign(static_cast<size_t>(store_->num_shards()), 0);
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      SPINNER_ASSIGN_OR_RETURN(Frame frame,
                               coordinator_->RecvFrom(
                                   w, MessageType::kInitReply));
      SPINNER_ASSIGN_OR_RETURN(ShardStateReply reply,
                               ShardStateReply::Decode(frame.payload));
      SPINNER_RETURN_IF_ERROR(ApplyShardStates(w, reply, out));
    }
    // Seed each worker's boundary mirror: the labels of exactly its
    // subscribed vertices, in subscription order — the cut-proportional
    // replacement of the full-array broadcast. Afterwards only
    // subscription-filtered deltas flow.
    const std::vector<PartitionId>& labels = store_->labels();
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      const std::vector<VertexId>& subscription =
          coordinator_->subscription(w);
      LabelValues values;
      values.values.reserve(subscription.size());
      for (const VertexId v : subscription) {
        values.values.push_back(labels[v]);
      }
      wire_.label_values_sent +=
          static_cast<int64_t>(values.values.size());
      SPINNER_RETURN_IF_ERROR(
          coordinator_->SendTo(w, MessageType::kLabels, values.Encode()));
    }
    return Status::OK();
  }

  Status ComputeScoresOnce(int64_t superstep,
                           const std::vector<int64_t>& global_loads,
                           const std::vector<double>& capacities,
                           ScoreOutcome* out) {
    ScoresRequest request;
    request.superstep = superstep;
    request.global_loads = global_loads;
    request.capacities = capacities;
    SPINNER_RETURN_IF_ERROR(
        coordinator_->SendToAll(MessageType::kScores, request.Encode()));
    out->block_score.assign(static_cast<size_t>(store_->NumBlocks()), 0.0);
    out->local_weight = 0;
    out->migration_counts.assign(
        static_cast<size_t>(config_.num_partitions), 0);
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      SPINNER_ASSIGN_OR_RETURN(Frame frame,
                               coordinator_->RecvFrom(
                                   w, MessageType::kScoresReply));
      SPINNER_ASSIGN_OR_RETURN(ScoresReply reply,
                               ScoresReply::Decode(frame.payload));
      if (static_cast<int>(reply.migration_counts.size()) !=
          config_.num_partitions) {
        return MalformedReply(w, "ScoresReply migration counters");
      }
      // Place the worker's per-block partials at their global block
      // offsets (owned shards ascending — the order the worker wrote).
      size_t cursor = 0;
      for (const int32_t s : coordinator_->owned_shards(w)) {
        const ShardedGraphStore::Shard& shard = store_->shard(s);
        const int64_t block_begin =
            shard.begin / ShardedGraphStore::kBlockSize;
        const int64_t block_end =
            (shard.end + ShardedGraphStore::kBlockSize - 1) /
            ShardedGraphStore::kBlockSize;
        const size_t count = static_cast<size_t>(block_end - block_begin);
        if (cursor + count > reply.block_score.size()) {
          return MalformedReply(w, "ScoresReply block scores");
        }
        std::copy(reply.block_score.begin() + cursor,
                  reply.block_score.begin() + cursor + count,
                  out->block_score.begin() + block_begin);
        cursor += count;
      }
      if (cursor != reply.block_score.size()) {
        return MalformedReply(w, "ScoresReply block scores");
      }
      out->local_weight += reply.local_weight;
      for (size_t l = 0; l < out->migration_counts.size(); ++l) {
        out->migration_counts[l] += reply.migration_counts[l];
      }
    }
    return Status::OK();
  }

  Status ComputeMigrationsOnce(int64_t superstep,
                               const std::vector<int64_t>& global_loads,
                               const std::vector<double>& capacities,
                               const std::vector<int64_t>& migration_counts,
                               MigrateOutcome* out) {
    MigrateRequest request;
    request.superstep = superstep;
    request.global_loads = global_loads;
    request.capacities = capacities;
    request.migration_counts = migration_counts;
    SPINNER_RETURN_IF_ERROR(
        coordinator_->SendToAll(MessageType::kMigrate, request.Encode()));
    out->migrated = 0;
    out->messages_out.assign(static_cast<size_t>(store_->num_shards()), 0);
    // Workers own contiguous ascending ranges, replies are read in worker
    // order and each shard's moves are ascending, so `moves` stays
    // globally ascending by vertex — the invariant the per-worker
    // subscription filter's merge walk relies on.
    std::vector<LabelDelta> moves;
    std::vector<PartitionId>& labels = store_->labels();
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      SPINNER_ASSIGN_OR_RETURN(Frame frame,
                               coordinator_->RecvFrom(
                                   w, MessageType::kMigrateReply));
      SPINNER_ASSIGN_OR_RETURN(MigrateReply reply,
                               MigrateReply::Decode(frame.payload));
      SPINNER_RETURN_IF_ERROR(CheckReplyShards(w, reply));
      for (const ShardMigrateResult& result : reply.shards) {
        const ShardedGraphStore::Shard& shard =
            store_->shard(result.shard);
        for (const LabelDelta& move : result.moves) {
          if (move.vertex < shard.begin || move.vertex >= shard.end ||
              move.label < 0 || move.label >= config_.num_partitions) {
            return MalformedReply(w, "MigrateReply move");
          }
          labels[move.vertex] = move.label;
        }
        store_->mutable_shard(result.shard).loads = result.loads;
        out->messages_out[result.shard] = result.messages;
        out->migrated += result.migrated;
        moves.insert(moves.end(), result.moves.begin(),
                     result.moves.end());
      }
    }
    // Send each worker only the deltas for vertices it subscribed to (its
    // own moves were applied locally in HandleMigrate), then gate the
    // iteration on every worker's owned+mirror checksum matching the
    // authoritative label array.
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      const std::vector<VertexId>& subscription =
          coordinator_->subscription(w);
      ApplyDeltasMessage deltas;
      size_t cursor = 0;
      for (const LabelDelta& move : moves) {
        while (cursor < subscription.size() &&
               subscription[cursor] < move.vertex) {
          ++cursor;
        }
        if (cursor < subscription.size() &&
            subscription[cursor] == move.vertex) {
          deltas.moves.push_back(move);
        }
      }
      wire_.delta_entries_sent +=
          static_cast<int64_t>(deltas.moves.size());
      SPINNER_RETURN_IF_ERROR(coordinator_->SendTo(
          w, MessageType::kApplyDeltas, deltas.Encode()));
    }
    for (int w = 0; w < coordinator_->num_workers(); ++w) {
      SPINNER_ASSIGN_OR_RETURN(Frame frame,
                               coordinator_->RecvFrom(
                                   w, MessageType::kDeltasAck));
      SPINNER_ASSIGN_OR_RETURN(DeltasAck ack,
                               DeltasAck::Decode(frame.payload));
      const uint64_t expected = ExpectedStateChecksum(w);
      if (ack.labels_checksum != expected) {
        return Status::Internal(StrFormat(
            "worker %d label mirror diverged after superstep %lld "
            "(checksum %llx != %llx)",
            w, static_cast<long long>(superstep),
            static_cast<unsigned long long>(ack.labels_checksum),
            static_cast<unsigned long long>(expected)));
      }
    }
    return Status::OK();
  }

  /// Copies a ShardStateReply into the coordinator store (labels slice +
  /// loads) after validating it against worker w's assignment. Used by
  /// Initialize and the final snapshot verification (out == nullptr skips
  /// the message counters).
  Status ApplyShardStates(int w, const ShardStateReply& reply,
                          InitOutcome* out) {
    const std::vector<int32_t>& owned = coordinator_->owned_shards(w);
    if (reply.shards.size() != owned.size()) {
      return MalformedReply(w, "shard state count");
    }
    for (size_t i = 0; i < reply.shards.size(); ++i) {
      const ShardState& state = reply.shards[i];
      if (state.shard != owned[i]) {
        return MalformedReply(w, "shard state ordering");
      }
      const ShardedGraphStore::Shard& shard = store_->shard(state.shard);
      if (static_cast<int64_t>(state.labels.size()) !=
              shard.NumOwnedVertices() ||
          static_cast<int>(state.loads.size()) != config_.num_partitions) {
        return MalformedReply(w, "shard state sizes");
      }
      std::copy(state.labels.begin(), state.labels.end(),
                store_->labels().begin() + shard.begin);
      store_->mutable_shard(state.shard).loads = state.loads;
      if (out != nullptr) {
        out->messages_out[state.shard] = state.messages;
      }
    }
    return Status::OK();
  }

 private:
  /// Runs one superstep phase attempt, recovering from worker failures up
  /// to max_recovery_attempts times: rebuild the fleet, re-collect the new
  /// roster's subscriptions, replay the checkpointed label state (when
  /// `replay` — every phase except Initialize, whose body is the replay),
  /// and re-run the attempt. The frozen phase inputs plus the
  /// worker-shape-independent kernel hashing make every retry
  /// bit-identical to an uninterrupted phase.
  Status RunPhase(bool replay, const std::function<Status()>& attempt) {
    Status status = attempt();
    for (int retry = 1; !status.ok() && Recoverable(status) &&
                        retry <= max_recovery_attempts_;
         ++retry) {
      Backoff(retry);
      Status rebuilt = coordinator_->RebuildFleet(*store_);
      if (rebuilt.ok()) {
        rebuilt = coordinator_->CollectSubscriptions(*store_);
      }
      if (rebuilt.ok() && replay) rebuilt = ReplayState();
      if (!rebuilt.ok()) {
        return Status(rebuilt.code(),
                      StrFormat("recovery attempt %d failed: %s (recovering "
                                "from: %s)",
                                retry, rebuilt.message().c_str(),
                                status.message().c_str()));
      }
      ++wire_.recoveries;
      status = attempt();
    }
    return status;
  }

  /// Worker failures a fleet rebuild can cure: a dead peer (IOError), a
  /// hung peer (DeadlineExceeded), a corrupt stream (InvalidArgument from
  /// frame/chunk validation), or a malformed/diverged reply (Internal).
  /// Anything else (bad config, precondition) would only recur.
  static bool Recoverable(const Status& status) {
    switch (status.code()) {
      case StatusCode::kIOError:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kInvalidArgument:
      case StatusCode::kInternal:
        return true;
      default:
        return false;
    }
  }

  /// Exponential backoff before a rebuild, so a transiently sick fleet
  /// (restarting workers, network blip) gets time to come back.
  void Backoff(int retry) const {
    const int64_t ms = std::min<int64_t>(
        heartbeat_period_ms_ << std::min(retry - 1, 10), 5'000);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  /// Checkpoints the authoritative label/load state recovery replays
  /// from: after Initialize and after every completed migrate superstep —
  /// the exact superstep-boundary states of the protocol. Skipped when
  /// recovery is off (no O(V) copies on the default path).
  void SaveCheckpoint() {
    if (max_recovery_attempts_ <= 0) return;
    checkpoint_labels_ = store_->labels();
    checkpoint_loads_.resize(static_cast<size_t>(store_->num_shards()));
    for (int s = 0; s < store_->num_shards(); ++s) {
      checkpoint_loads_[static_cast<size_t>(s)] = store_->shard(s).loads;
    }
  }

  /// Restores every worker (and the coordinator store) to the checkpoint:
  /// replaying the authoritative labels as a fully-fixed initial
  /// assignment makes the workers' Init handling a pure restore — no hash
  /// draws — and their recomputed loads must land exactly on the
  /// checkpointed values, which is asserted.
  Status ReplayState() {
    InitOutcome scratch;
    SPINNER_RETURN_IF_ERROR(InitializeOnce(checkpoint_labels_, &scratch));
    for (int s = 0; s < store_->num_shards(); ++s) {
      if (store_->shard(s).loads != checkpoint_loads_[static_cast<size_t>(s)]) {
        return Status::Internal(StrFormat(
            "shard %d loads diverged from the checkpoint during replay", s));
      }
    }
    return Status::OK();
  }

  /// What worker w's DeltasAck digest must be, computed from the
  /// coordinator's authoritative labels: owned slices in ascending shard
  /// order, then subscribed mirror values in subscription order — the
  /// exact layout (hence fold) of the worker's compact label array.
  uint64_t ExpectedStateChecksum(int w) const {
    const std::vector<PartitionId>& labels = store_->labels();
    LabelChecksum sum;
    for (const int32_t s : coordinator_->owned_shards(w)) {
      const ShardedGraphStore::Shard& shard = store_->shard(s);
      sum.Update(std::span<const PartitionId>(labels).subspan(
          static_cast<size_t>(shard.begin),
          static_cast<size_t>(shard.end - shard.begin)));
    }
    for (const VertexId v : coordinator_->subscription(w)) {
      sum.UpdateOne(labels[v]);
    }
    return sum.digest();
  }

  void FinishStep(int64_t step_start_bytes) {
    wire_.per_superstep_bytes.push_back(
        coordinator_->counters().bytes_sent - step_start_bytes);
  }

  Status CheckReplyShards(int w, const MigrateReply& reply) const {
    const std::vector<int32_t>& owned = coordinator_->owned_shards(w);
    if (reply.shards.size() != owned.size()) {
      return MalformedReply(w, "migrate shard count");
    }
    for (size_t i = 0; i < reply.shards.size(); ++i) {
      if (reply.shards[i].shard != owned[i] ||
          static_cast<int>(reply.shards[i].loads.size()) !=
              config_.num_partitions) {
        return MalformedReply(w, "migrate shard entry");
      }
    }
    return Status::OK();
  }

  static Status MalformedReply(int w, const char* what) {
    return Status::Internal(
        StrFormat("worker %d sent a malformed %s", w, what));
  }

  const SpinnerConfig& config_;
  ShardedGraphStore* store_;
  Coordinator* coordinator_;
  const int max_recovery_attempts_;
  const int64_t heartbeat_period_ms_;
  /// Superstep-boundary state recovery replays from (empty until the
  /// first SaveCheckpoint; Initialize failures replay nothing).
  std::vector<PartitionId> checkpoint_labels_;
  std::vector<std::vector<int64_t>> checkpoint_loads_;
  WireTraffic wire_;
};

/// Final cross-process consistency gate: every worker's shard state must
/// equal the coordinator's merged view bit-for-bit.
Status VerifyFinalSnapshots(Coordinator* coordinator,
                            MultiProcessBackend* backend,
                            ShardedGraphStore* store) {
  SPINNER_RETURN_IF_ERROR(
      coordinator->SendToAll(MessageType::kSnapshot, {}));
  for (int w = 0; w < coordinator->num_workers(); ++w) {
    SPINNER_ASSIGN_OR_RETURN(
        Frame frame, coordinator->RecvFrom(w, MessageType::kSnapshotReply));
    SPINNER_ASSIGN_OR_RETURN(ShardStateReply reply,
                             ShardStateReply::Decode(frame.payload));
    const std::vector<int32_t>& owned = coordinator->owned_shards(w);
    if (reply.shards.size() != owned.size()) {
      return Status::Internal(
          StrFormat("worker %d snapshot shard count mismatch", w));
    }
    for (size_t i = 0; i < reply.shards.size(); ++i) {
      const ShardState& state = reply.shards[i];
      const ShardedGraphStore::Shard& shard = store->shard(owned[i]);
      const bool labels_match =
          state.shard == owned[i] &&
          std::equal(state.labels.begin(), state.labels.end(),
                     store->labels().begin() + shard.begin,
                     store->labels().begin() + shard.end);
      if (!labels_match || state.loads != shard.loads) {
        return Status::Internal(StrFormat(
            "worker %d shard %d final state diverged from the "
            "coordinator's merged view",
            w, static_cast<int>(owned[i])));
      }
    }
  }
  (void)backend;
  return Status::OK();
}

}  // namespace

Result<ShardedRunResult> RunMultiProcessSpinner(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels,
    const MultiProcessOptions& options, const ProgressObserver* observer) {
  SPINNER_CHECK(store != nullptr);
  SPINNER_RETURN_IF_ERROR(config.Validate());
  if (store->NumVertices() == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }
  const int num_workers =
      ResolveNumWorkers(options.num_workers, store->num_shards());
  Coordinator coordinator;
  SPINNER_RETURN_IF_ERROR(
      coordinator.Spawn(config, *store, num_workers, options));
  MultiProcessBackend backend(config, store, &coordinator, options);
  Result<ShardedRunResult> run = DriveSpinnerSupersteps(
      config, store, std::move(initial_labels), &backend, observer);
  if (!run.ok()) {
    // Graceful abort, not ForceKill: surviving registry workers are
    // walked back to the Assign-await state before their connections
    // return to the pool — a failed run must never leave a pooled
    // connection mid-protocol for the next run to trip over.
    coordinator.Abort();
    return run.status();
  }
  const Status verified =
      VerifyFinalSnapshots(&coordinator, &backend, store);
  if (!verified.ok()) {
    coordinator.Abort();
    return verified;
  }
  SPINNER_RETURN_IF_ERROR(coordinator.Shutdown());
  // Snapshot/teardown bytes postdate the driver's collection; refresh the
  // totals so the reported traffic covers the whole run.
  CopyCounters(coordinator, &run->wire);
  return run;
}

}  // namespace spinner::dist
