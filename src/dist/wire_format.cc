#include "dist/wire_format.h"

#include <utility>

#include "dist/transport.h"
#include "graph/binary_io.h"

namespace spinner::dist {

namespace {

Status Truncated(const char* what) {
  return Status::IOError(std::string("truncated or malformed ") + what +
                         " payload");
}

/// LabelDelta has interior padding, so it is encoded field-by-field rather
/// than memcpy'd — the wire must never carry uninitialized bytes.
void PutMoves(WireWriter* w, const std::vector<LabelDelta>& moves) {
  w->PutU64(moves.size());
  for (const LabelDelta& m : moves) {
    w->PutI64(m.vertex);
    w->PutI32(m.label);
  }
}

bool GetMoves(WireReader* r, std::vector<LabelDelta>* moves) {
  uint64_t count = 0;
  if (!r->GetU64(&count)) return false;
  constexpr size_t kWireSize = sizeof(int64_t) + sizeof(int32_t);
  if (count > r->remaining_bytes().size() / kWireSize) return false;
  moves->resize(static_cast<size_t>(count));
  for (LabelDelta& m : *moves) {
    int64_t vertex = 0;
    if (!r->GetI64(&vertex) || !r->GetI32(&m.label)) return false;
    m.vertex = vertex;
  }
  return true;
}

}  // namespace

// --- SetupMessage --------------------------------------------------------

void SetupMessage::EncodeHeader(WireWriter* w, uint64_t slice_count) const {
  w->PutI32(num_partitions);
  w->PutU64(seed);
  w->PutU8(balance_on_vertices);
  w->PutU8(per_worker_async);
  w->PutI64(num_vertices);
  w->PutI32(num_shards_total);
  w->PutVector(owned_shards);
  w->PutI32(fail_after_score_steps);
  w->PutU64(slice_count);
}

std::vector<uint8_t> SetupMessage::Encode() const {
  WireWriter w;
  EncodeHeader(&w, shards.size());
  for (const ShardedGraphStore::Shard& shard : shards) {
    graph_io::AppendShardSlice(shard, &w.buffer());
  }
  return w.Take();
}

std::vector<uint8_t> EncodeSetupFromStore(const SetupMessage& header,
                                          const ShardedGraphStore& store) {
  WireWriter w;
  header.EncodeHeader(&w, header.owned_shards.size());
  // Reserve the exact slice footprint up front: a Setup payload can reach
  // many chunk frames' worth of bytes, and growth reallocations at that
  // scale double the peak memory of the send path.
  size_t total = w.buffer().size();
  for (const int32_t s : header.owned_shards) {
    total += graph_io::EncodedShardSliceSize(store.shard(s));
  }
  w.buffer().reserve(total);
  for (const int32_t s : header.owned_shards) {
    graph_io::AppendShardSlice(store.shard(s), &w.buffer());
  }
  return w.Take();
}

Result<SetupMessage> SetupMessage::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  SetupMessage m;
  uint64_t num_slices = 0;
  if (!r.GetI32(&m.num_partitions) || !r.GetU64(&m.seed) ||
      !r.GetU8(&m.balance_on_vertices) || !r.GetU8(&m.per_worker_async) ||
      !r.GetI64(&m.num_vertices) || !r.GetI32(&m.num_shards_total) ||
      !r.GetVector(&m.owned_shards) ||
      !r.GetI32(&m.fail_after_score_steps) || !r.GetU64(&num_slices)) {
    return Truncated("Setup");
  }
  if (num_slices != m.owned_shards.size()) {
    return Status::InvalidArgument(
        "Setup: slice count does not match owned shard count");
  }
  m.shards.reserve(static_cast<size_t>(num_slices));
  size_t consumed = r.position();
  for (uint64_t i = 0; i < num_slices; ++i) {
    SPINNER_ASSIGN_OR_RETURN(ShardedGraphStore::Shard shard,
                             graph_io::DecodeShardSlice(payload, &consumed));
    m.shards.push_back(std::move(shard));
  }
  return m;
}

SpinnerConfig SetupMessage::ToConfig() const {
  SpinnerConfig config;
  config.num_partitions = num_partitions;
  config.seed = seed;
  config.balance_mode = balance_on_vertices != 0 ? BalanceMode::kVertices
                                                 : BalanceMode::kEdges;
  config.per_worker_async = per_worker_async != 0;
  return config;
}

// --- Hello / Assign / Resume ---------------------------------------------

std::vector<uint8_t> HelloMessage::Encode() const {
  WireWriter w;
  w.PutU32(protocol_version);
  w.PutI64(capacity);
  w.PutU32(flags);
  return w.Take();
}

Result<HelloMessage> HelloMessage::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  HelloMessage m;
  if (!r.GetU32(&m.protocol_version) || !r.GetI64(&m.capacity) ||
      !r.GetU32(&m.flags)) {
    return Truncated("Hello");
  }
  return m;
}

std::vector<uint8_t> AssignMessage::Encode() const {
  WireWriter w;
  w.PutI32(num_partitions);
  w.PutU64(seed);
  w.PutU8(balance_on_vertices);
  w.PutU8(per_worker_async);
  w.PutI64(num_vertices);
  w.PutI32(num_shards_total);
  w.PutVector(owned_shards);
  w.PutVector(slice_fingerprints);
  w.PutI32(fail_after_score_steps);
  return w.Take();
}

Result<AssignMessage> AssignMessage::Decode(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  AssignMessage m;
  if (!r.GetI32(&m.num_partitions) || !r.GetU64(&m.seed) ||
      !r.GetU8(&m.balance_on_vertices) || !r.GetU8(&m.per_worker_async) ||
      !r.GetI64(&m.num_vertices) || !r.GetI32(&m.num_shards_total) ||
      !r.GetVector(&m.owned_shards) ||
      !r.GetVector(&m.slice_fingerprints) ||
      !r.GetI32(&m.fail_after_score_steps)) {
    return Truncated("Assign");
  }
  if (m.slice_fingerprints.size() != m.owned_shards.size()) {
    return Status::InvalidArgument(
        "Assign: fingerprint count does not match owned shard count");
  }
  return m;
}

SpinnerConfig AssignMessage::ToConfig() const {
  SpinnerConfig config;
  config.num_partitions = num_partitions;
  config.seed = seed;
  config.balance_mode = balance_on_vertices != 0 ? BalanceMode::kVertices
                                                 : BalanceMode::kEdges;
  config.per_worker_async = per_worker_async != 0;
  return config;
}

std::vector<uint8_t> ResumeMessage::Encode() const {
  WireWriter w;
  w.PutVector(fingerprints);
  return w.Take();
}

Result<ResumeMessage> ResumeMessage::Decode(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  ResumeMessage m;
  if (!r.GetVector(&m.fingerprints)) return Truncated("Resume");
  return m;
}

// --- InitRequest ---------------------------------------------------------

std::vector<uint8_t> InitRequest::Encode() const {
  WireWriter w;
  w.PutI64(base);
  w.PutVector(initial_labels);
  return w.Take();
}

Result<InitRequest> InitRequest::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  InitRequest m;
  int64_t base = 0;
  if (!r.GetI64(&base) || !r.GetVector(&m.initial_labels)) {
    return Truncated("Init");
  }
  m.base = base;
  return m;
}

// --- ShardStateReply -----------------------------------------------------

std::vector<uint8_t> ShardStateReply::Encode() const {
  WireWriter w;
  w.PutU64(shards.size());
  for (const ShardState& s : shards) {
    w.PutI32(s.shard);
    w.PutVector(s.labels);
    w.PutVector(s.loads);
    w.PutI64(s.messages);
  }
  return w.Take();
}

Result<ShardStateReply> ShardStateReply::Decode(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  ShardStateReply m;
  uint64_t count = 0;
  if (!r.GetU64(&count)) return Truncated("ShardState reply");
  for (uint64_t i = 0; i < count; ++i) {
    ShardState s;
    if (!r.GetI32(&s.shard) || !r.GetVector(&s.labels) ||
        !r.GetVector(&s.loads) || !r.GetI64(&s.messages)) {
      return Truncated("ShardState reply");
    }
    m.shards.push_back(std::move(s));
  }
  return m;
}

// --- SubscribeMessage / LabelValues --------------------------------------

std::vector<uint8_t> SubscribeMessage::Encode() const {
  WireWriter w;
  w.PutVector(vertices);
  return w.Take();
}

Result<SubscribeMessage> SubscribeMessage::Decode(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  SubscribeMessage m;
  if (!r.GetVector(&m.vertices)) return Truncated("Subscribe");
  return m;
}

std::vector<uint8_t> LabelValues::Encode() const {
  WireWriter w;
  w.PutVector(values);
  return w.Take();
}

Result<LabelValues> LabelValues::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  LabelValues m;
  if (!r.GetVector(&m.values)) return Truncated("Labels");
  return m;
}

// --- ScoresRequest / ScoresReply -----------------------------------------

std::vector<uint8_t> ScoresRequest::Encode() const {
  WireWriter w;
  w.PutI64(superstep);
  w.PutVector(global_loads);
  w.PutVector(capacities);
  return w.Take();
}

Result<ScoresRequest> ScoresRequest::Decode(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  ScoresRequest m;
  if (!r.GetI64(&m.superstep) || !r.GetVector(&m.global_loads) ||
      !r.GetVector(&m.capacities)) {
    return Truncated("Scores");
  }
  return m;
}

std::vector<uint8_t> ScoresReply::Encode() const {
  WireWriter w;
  w.PutVector(block_score);
  w.PutI64(local_weight);
  w.PutVector(migration_counts);
  return w.Take();
}

Result<ScoresReply> ScoresReply::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  ScoresReply m;
  if (!r.GetVector(&m.block_score) || !r.GetI64(&m.local_weight) ||
      !r.GetVector(&m.migration_counts)) {
    return Truncated("ScoresReply");
  }
  return m;
}

// --- MigrateRequest / MigrateReply ---------------------------------------

std::vector<uint8_t> MigrateRequest::Encode() const {
  WireWriter w;
  w.PutI64(superstep);
  w.PutVector(global_loads);
  w.PutVector(capacities);
  w.PutVector(migration_counts);
  return w.Take();
}

Result<MigrateRequest> MigrateRequest::Decode(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  MigrateRequest m;
  if (!r.GetI64(&m.superstep) || !r.GetVector(&m.global_loads) ||
      !r.GetVector(&m.capacities) || !r.GetVector(&m.migration_counts)) {
    return Truncated("Migrate");
  }
  return m;
}

std::vector<uint8_t> MigrateReply::Encode() const {
  WireWriter w;
  w.PutU64(shards.size());
  for (const ShardMigrateResult& s : shards) {
    w.PutI32(s.shard);
    PutMoves(&w, s.moves);
    w.PutVector(s.loads);
    w.PutI64(s.migrated);
    w.PutI64(s.messages);
  }
  return w.Take();
}

Result<MigrateReply> MigrateReply::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  MigrateReply m;
  uint64_t count = 0;
  if (!r.GetU64(&count)) return Truncated("MigrateReply");
  for (uint64_t i = 0; i < count; ++i) {
    ShardMigrateResult s;
    if (!r.GetI32(&s.shard) || !GetMoves(&r, &s.moves) ||
        !r.GetVector(&s.loads) || !r.GetI64(&s.migrated) ||
        !r.GetI64(&s.messages)) {
      return Truncated("MigrateReply");
    }
    m.shards.push_back(std::move(s));
  }
  return m;
}

// --- ApplyDeltas / DeltasAck ---------------------------------------------

std::vector<uint8_t> ApplyDeltasMessage::Encode() const {
  WireWriter w;
  PutMoves(&w, moves);
  return w.Take();
}

Result<ApplyDeltasMessage> ApplyDeltasMessage::Decode(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  ApplyDeltasMessage m;
  if (!GetMoves(&r, &m.moves)) return Truncated("ApplyDeltas");
  return m;
}

std::vector<uint8_t> DeltasAck::Encode() const {
  WireWriter w;
  w.PutU64(labels_checksum);
  return w.Take();
}

Result<DeltasAck> DeltasAck::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  DeltasAck m;
  if (!r.GetU64(&m.labels_checksum)) return Truncated("DeltasAck");
  return m;
}

// --- ErrorMessage --------------------------------------------------------

std::vector<uint8_t> ErrorMessage::Encode() const {
  WireWriter w;
  w.PutI32(code);
  w.PutString(message);
  return w.Take();
}

Result<ErrorMessage> ErrorMessage::Decode(std::span<const uint8_t> payload) {
  WireReader r(payload);
  ErrorMessage m;
  if (!r.GetI32(&m.code) || !r.GetString(&m.message)) {
    return Truncated("Error");
  }
  return m;
}

ErrorMessage ErrorMessage::FromStatus(const Status& status) {
  ErrorMessage m;
  m.code = static_cast<int32_t>(status.code());
  m.message = status.message();
  return m;
}

Status ErrorMessage::ToStatus() const {
  return Status(static_cast<StatusCode>(code), message);
}

uint64_t ChecksumLabels(std::span<const PartitionId> labels) {
  // FNV-1a over the raw label bytes (the transport's message checksum).
  return ChecksumBytes(
      {reinterpret_cast<const uint8_t*>(labels.data()),
       labels.size() * sizeof(PartitionId)});
}

}  // namespace spinner::dist
