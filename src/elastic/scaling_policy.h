// When should a maintained partitioning change its own shape? The paper's
// elasticity mechanisms (§III.E Rescale, the kTcp worker registry) are
// reactive primitives — something still has to *decide* to invoke them.
// ScalingPolicy is that decision point: a pure function from the live
// quality/load signals (the φ/ρ/score stream the ProgressObserver already
// publishes, staleness from the ingestion service, per-partition loads)
// to "hold / scale out to k' / scale in to k'". Hanai et al. (arXiv
// 2101.07026) frame the trade-off these policies navigate: scaling is a
// spend of migration time and transient quality against future capacity.
//
// Policies are deliberately clock-free: every time input arrives in
// ScalingSignals::now_micros, stamped by the ElasticController from an
// injected stream::Clock — so a ManualClock makes every decision sequence
// (including cooldown windows) deterministic under test, exactly like the
// ingestion TriggerPolicy family in stream/trigger_policy.h.
//
// Decide() may be stateful (sliding windows, streak counters, cooldown
// anchors) but is only ever called from one thread — the ingestion thread
// in the streaming path, the caller's thread in the blocking path.
#ifndef SPINNER_ELASTIC_SCALING_POLICY_H_
#define SPINNER_ELASTIC_SCALING_POLICY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "common/string_util.h"

namespace spinner::elastic {

/// Everything a policy may react to. The ElasticController fills one of
/// these after every applied window (streaming path) or on demand
/// (blocking path); all quality numbers come from the same
/// ComputeMetricsEx pass the session itself reports, so they are
/// bit-deterministic for a fixed event sequence.
struct ScalingSignals {
  /// Current partition count of the session.
  int current_k = 0;
  /// Weighted ratio of local edges φ after the last apply.
  double phi = 0.0;
  /// Maximum normalized load ρ = max_l b(l) / (|E|/k).
  double rho = 0.0;
  /// Normalized global score (Eq. 10); 0 when the caller has no history.
  double score = 0.0;
  /// Heaviest per-partition load b(l) in weighted arcs — the absolute
  /// number a physical machine actually has to serve (ρ is relative to
  /// the per-k ideal share, so it cannot see the graph *growing*).
  int64_t max_load = 0;
  /// Total arc weight |E| (Σ_l b(l)).
  int64_t total_weight = 0;
  /// "Now" in the controller clock's microsecond domain.
  int64_t now_micros = 0;
  /// Staleness of the oldest event the partitioning has not absorbed at
  /// the last apply (stream path; 0 when idle or blocking).
  int64_t staleness_micros = 0;
  /// Events folded into the window that produced these signals.
  int64_t window_events = 0;
  /// Machines the cluster can currently host partitions on; 0 = no bound
  /// advertised. Capacity-change events of a load trace land here.
  int available_capacity = 0;
};

enum class ScalingAction { kHold, kScaleOut, kScaleIn };

inline const char* ToString(ScalingAction action) {
  switch (action) {
    case ScalingAction::kHold: return "hold";
    case ScalingAction::kScaleOut: return "scale-out";
    case ScalingAction::kScaleIn: return "scale-in";
  }
  return "?";
}

/// One verdict. `reason` is human-readable and lands verbatim in the
/// controller's decision log, so keep it deterministic (no pointers, no
/// wall-clock text).
struct ScalingDecision {
  ScalingAction action = ScalingAction::kHold;
  /// Target partition count; meaningful iff action != kHold.
  int target_k = 0;
  std::string reason;

  bool acts() const { return action != ScalingAction::kHold; }

  static ScalingDecision Hold(std::string reason = "") {
    return {ScalingAction::kHold, 0, std::move(reason)};
  }
  static ScalingDecision ScaleOut(int target_k, std::string reason) {
    return {ScalingAction::kScaleOut, target_k, std::move(reason)};
  }
  static ScalingDecision ScaleIn(int target_k, std::string reason) {
    return {ScalingAction::kScaleIn, target_k, std::move(reason)};
  }
};

/// The pluggable decision point. Implementations may keep state across
/// calls (Decide is never called concurrently) and must be deterministic:
/// the same signal sequence yields the same decision sequence.
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;
  virtual ScalingDecision Decide(const ScalingSignals& signals) = 0;
  virtual std::string name() const = 0;
};

/// Clamps a proposed partition count to the policy's k bounds and the
/// advertised cluster capacity. `max_k` 0 = unbounded.
inline int ClampTargetK(int k, int min_k, int max_k, int available_capacity) {
  if (max_k > 0 && k > max_k) k = max_k;
  if (available_capacity > 0 && k > available_capacity) {
    k = available_capacity;
  }
  if (k < min_k) k = min_k;
  return k;
}

/// The "none" policy: never acts. Replaying a trace under it must
/// reproduce a controller-free run byte-for-byte — the contract the
/// determinism tests pin.
class NullPolicy final : public ScalingPolicy {
 public:
  ScalingDecision Decide(const ScalingSignals&) override {
    return ScalingDecision::Hold("policy none never acts");
  }
  std::string name() const override { return "none"; }
};

/// Capacity watermarks: scale out when the load watermark crosses `high`,
/// back in when it settles under `low`.
///
/// Two load gauges, selected by `machine_capacity`:
///   * 0 (default): the gauge is ρ itself — scale out when max ρ crosses
///     the high watermark (balance unattainable at this k: the LPA cannot
///     pack the heaviest partition under its ideal share, e.g. atomic
///     hubs), in on the low one.
///   * > 0: the gauge is utilization max_load / machine_capacity — the
///     cloud reading, where each partition maps to a machine of fixed
///     serving capacity. ρ cannot see the graph growing (its denominator
///     |E|/k grows too); absolute load can, which is what "we need more
///     machines" physically means.
class CapacityWatermarkPolicy final : public ScalingPolicy {
 public:
  struct Options {
    /// Gauge level that triggers scale-out (exclusive lower bound is the
    /// low watermark; must satisfy low < high).
    double high = 1.15;
    /// Gauge level at or below which the policy scales in.
    double low = 0.55;
    /// Partitions added/removed per decision.
    int step = 1;
    int min_k = 2;
    /// 0 = unbounded (the cluster's available capacity still caps).
    int max_k = 0;
    /// Weighted arcs one machine serves; 0 selects the ρ gauge.
    int64_t machine_capacity = 0;
  };

  explicit CapacityWatermarkPolicy(Options options) : options_(options) {}

  ScalingDecision Decide(const ScalingSignals& signals) override {
    const bool physical = options_.machine_capacity > 0;
    const double gauge =
        physical ? static_cast<double>(signals.max_load) /
                       static_cast<double>(options_.machine_capacity)
                 : signals.rho;
    const char* gauge_name = physical ? "utilization" : "rho";
    if (gauge >= options_.high) {
      const int target =
          ClampTargetK(signals.current_k + options_.step, options_.min_k,
                       options_.max_k, signals.available_capacity);
      if (target > signals.current_k) {
        return ScalingDecision::ScaleOut(
            target, StrFormat("%s %.4f >= high watermark %.4f", gauge_name,
                              gauge, options_.high));
      }
      return ScalingDecision::Hold(
          StrFormat("%s %.4f >= high watermark %.4f but k=%d is capped",
                    gauge_name, gauge, options_.high, signals.current_k));
    }
    if (gauge <= options_.low) {
      const int target =
          ClampTargetK(signals.current_k - options_.step, options_.min_k,
                       options_.max_k, signals.available_capacity);
      if (target < signals.current_k) {
        return ScalingDecision::ScaleIn(
            target, StrFormat("%s %.4f <= low watermark %.4f", gauge_name,
                              gauge, options_.low));
      }
      return ScalingDecision::Hold(
          StrFormat("%s %.4f <= low watermark %.4f but k=%d is the floor",
                    gauge_name, gauge, options_.low, signals.current_k));
    }
    return ScalingDecision::Hold(
        StrFormat("%s %.4f within watermarks [%.4f, %.4f]", gauge_name,
                  gauge, options_.low, options_.high));
  }

  std::string name() const override { return "watermark"; }
  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Cut-degradation trigger: watches φ over a sliding window of applies
/// and scales out when the cut has degraded past a budget — the
/// restreaming-style reading (Stanton) where the maintained quality
/// stream is itself the trigger. A degradation that persists means the
/// graph drifted away from the partitioning faster than LPA can pull it
/// back at this k; more partitions buy the optimizer finer granularity.
class CutDegradationPolicy final : public ScalingPolicy {
 public:
  struct Options {
    /// Absolute φ drop (best-in-window − current) that triggers.
    double budget = 0.05;
    /// Applies the sliding window spans.
    int window = 8;
    int step = 1;
    int min_k = 2;
    int max_k = 0;
  };

  explicit CutDegradationPolicy(Options options) : options_(options) {}

  ScalingDecision Decide(const ScalingSignals& signals) override {
    if (signals.current_k != last_k_) {
      // A rescale (ours or anyone's) starts a new quality regime; stale
      // φ samples from the old k would double-trigger.
      window_.clear();
      last_k_ = signals.current_k;
    }
    window_.push_back(signals.phi);
    while (static_cast<int>(window_.size()) > options_.window) {
      window_.pop_front();
    }
    double best = window_.front();
    for (double phi : window_) {
      if (phi > best) best = phi;
    }
    const double drop = best - signals.phi;
    if (drop > options_.budget) {
      const int target =
          ClampTargetK(signals.current_k + options_.step, options_.min_k,
                       options_.max_k, signals.available_capacity);
      if (target > signals.current_k) {
        window_.clear();  // the new k starts a fresh window
        return ScalingDecision::ScaleOut(
            target,
            StrFormat("phi dropped %.4f from window best %.4f (> budget "
                      "%.4f over %d applies)",
                      drop, best, options_.budget, options_.window));
      }
      return ScalingDecision::Hold(
          StrFormat("phi dropped %.4f > budget %.4f but k=%d is capped",
                    drop, options_.budget, signals.current_k));
    }
    return ScalingDecision::Hold(
        StrFormat("phi %.4f within %.4f of window best %.4f", signals.phi,
                  options_.budget, best));
  }

  std::string name() const override { return "cut"; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::deque<double> window_;
  int last_k_ = -1;
};

/// Hysteresis wrapper: the inner policy must propose the same action
/// `consecutive` evaluations in a row before it is let through — one
/// noisy window can never trigger a migration. A hold (or a change of
/// direction) resets the streak. The inner policy still observes every
/// signal, so its own sliding state stays warm.
class HysteresisPolicy final : public ScalingPolicy {
 public:
  HysteresisPolicy(std::unique_ptr<ScalingPolicy> inner, int consecutive)
      : inner_(std::move(inner)),
        consecutive_(consecutive < 1 ? 1 : consecutive) {}

  ScalingDecision Decide(const ScalingSignals& signals) override {
    ScalingDecision decision = inner_->Decide(signals);
    if (!decision.acts()) {
      streak_ = 0;
      streak_action_ = ScalingAction::kHold;
      return decision;
    }
    if (decision.action == streak_action_) {
      ++streak_;
    } else {
      streak_ = 1;
      streak_action_ = decision.action;
    }
    if (streak_ >= consecutive_) {
      streak_ = 0;
      streak_action_ = ScalingAction::kHold;
      return decision;
    }
    return ScalingDecision::Hold(
        StrFormat("hysteresis: %s streak %d/%d (%s)",
                  ToString(decision.action), streak_, consecutive_,
                  decision.reason.c_str()));
  }

  std::string name() const override {
    return inner_->name() + "+hysteresis";
  }

 private:
  std::unique_ptr<ScalingPolicy> inner_;
  int consecutive_;
  int streak_ = 0;
  ScalingAction streak_action_ = ScalingAction::kHold;
};

/// Cooldown wrapper: after an executed action, suppress further actions
/// for `cooldown_micros` of controller-clock time — the partitioning gets
/// to settle (and the migration to amortize) before the next move. The
/// inner policy still observes every signal during the cooldown.
class CooldownPolicy final : public ScalingPolicy {
 public:
  CooldownPolicy(std::unique_ptr<ScalingPolicy> inner,
                 int64_t cooldown_micros)
      : inner_(std::move(inner)),
        cooldown_micros_(cooldown_micros < 0 ? 0 : cooldown_micros) {}

  ScalingDecision Decide(const ScalingSignals& signals) override {
    ScalingDecision decision = inner_->Decide(signals);
    if (!decision.acts()) return decision;
    if (last_action_micros_ >= 0 &&
        signals.now_micros - last_action_micros_ < cooldown_micros_) {
      const int64_t remaining_ms =
          (cooldown_micros_ - (signals.now_micros - last_action_micros_)) /
          1000;
      return ScalingDecision::Hold(
          StrFormat("cooldown: %lldms remaining, suppressing %s (%s)",
                    static_cast<long long>(remaining_ms),
                    ToString(decision.action), decision.reason.c_str()));
    }
    last_action_micros_ = signals.now_micros;
    return decision;
  }

  std::string name() const override { return inner_->name() + "+cooldown"; }

 private:
  std::unique_ptr<ScalingPolicy> inner_;
  int64_t cooldown_micros_;
  int64_t last_action_micros_ = -1;
};

}  // namespace spinner::elastic

#endif  // SPINNER_ELASTIC_SCALING_POLICY_H_
