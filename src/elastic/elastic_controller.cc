#include "elastic/elastic_controller.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace spinner::elastic {

ElasticController::ElasticController(PartitioningSession* session,
                                     std::unique_ptr<ScalingPolicy> policy,
                                     ControllerOptions options)
    : session_(session),
      policy_(std::move(policy)),
      options_(std::move(options)),
      clock_(options_.clock ? options_.clock
                            : std::make_shared<stream::SystemClock>()) {
  SPINNER_CHECK(session_ != nullptr) << "ElasticController needs a session";
  SPINNER_CHECK(policy_ != nullptr) << "ElasticController needs a policy";
  policy_name_ = policy_->name();
}

bool ElasticController::OnApply(const stream::IngestStats& stats) {
  ScalingSignals signals;
  signals.current_k = session_->num_partitions();
  signals.phi = stats.last_phi;
  signals.rho = stats.last_rho;
  signals.staleness_micros = stats.last_staleness_micros;
  signals.window_events = stats.events_ingested - last_events_ingested_;
  last_events_ingested_ = stats.events_ingested;
  // Absolute loads and the score come from the metrics of the apply that
  // just committed; on the ingestion thread the session is ours between
  // windows.
  const PartitionMetrics& metrics = session_->last_result().metrics;
  signals.score = metrics.score;
  signals.total_weight = metrics.total_weight;
  for (int64_t load : metrics.loads) {
    signals.max_load = std::max(signals.max_load, load);
  }
  EvaluateSignals(signals);
  return true;
}

Status ElasticController::Evaluate() {
  SPINNER_ASSIGN_OR_RETURN(PartitionMetrics metrics, session_->Metrics());
  ScalingSignals signals;
  signals.current_k = session_->num_partitions();
  signals.phi = metrics.phi;
  signals.rho = metrics.rho;
  signals.score = metrics.score;
  signals.total_weight = metrics.total_weight;
  for (int64_t load : metrics.loads) {
    signals.max_load = std::max(signals.max_load, load);
  }
  const DecisionRecord& record = EvaluateSignals(signals);
  if (!record.executed && record.action != ScalingAction::kHold &&
      options_.execute) {
    return status_;
  }
  return Status::OK();
}

const DecisionRecord& ElasticController::EvaluateSignals(
    ScalingSignals signals) {
  signals.now_micros = clock_->NowMicros();
  signals.available_capacity = available_capacity_;

  ScalingDecision decision = policy_->Decide(signals);

  DecisionRecord record;
  record.at_micros = signals.now_micros;
  record.evaluation = static_cast<int>(log_.size()) + 1;
  record.from_k = signals.current_k;
  record.action = decision.action;
  record.target_k = decision.acts() ? decision.target_k : 0;
  record.reason = std::move(decision.reason);
  record.phi = signals.phi;
  record.rho = signals.rho;
  record.max_load = signals.max_load;
  record.staleness_micros = signals.staleness_micros;

  if (decision.acts()) {
    if (!options_.execute) {
      record.outcome = "dry-run";
    } else if (!status_.ok()) {
      record.outcome = "suppressed: controller already failed";
    } else if (record.target_k == signals.current_k) {
      record.outcome = "no-op: already at target k";
    } else {
      Status status = session_->Rescale(record.target_k);
      if (status.ok() && options_.workers_per_partition > 0.0 &&
          session_->execution_mode() != ExecutionMode::kInProcess) {
        const int workers = std::max(
            1, static_cast<int>(std::lround(
                   record.target_k * options_.workers_per_partition)));
        status = session_->ResizeWorkers(workers);
      }
      if (status.ok()) {
        record.executed = true;
        ++rescales_executed_;
      } else {
        record.outcome = status.message();
        status_ = status;
      }
    }
  }
  log_.push_back(std::move(record));
  return log_.back();
}

std::string ElasticController::FormatLog() const {
  std::string out;
  for (const DecisionRecord& r : log_) {
    out += StrFormat("[%d @%lldus] k=%d %s", r.evaluation,
                     static_cast<long long>(r.at_micros), r.from_k,
                     ToString(r.action));
    if (r.action != ScalingAction::kHold) {
      out += StrFormat(" -> k=%d %s", r.target_k,
                       r.executed ? "executed" : "not-executed");
    }
    if (!r.outcome.empty()) out += " [" + r.outcome + "]";
    out += "  (" + r.reason + ")\n";
  }
  return out;
}

}  // namespace spinner::elastic
