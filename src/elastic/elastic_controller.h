// ElasticController: the closed loop. It sits between the signal sources
// the repo already publishes — the per-window IngestStats of a streaming
// run, or an on-demand ComputeMetricsEx in the blocking path — and the
// session's elasticity verbs: Rescale(k') and, in the off-thread modes,
// ResizeWorkers (which under kTcp drains pooled registry connections).
// The controller itself contains no scaling judgement; that lives in the
// injected ScalingPolicy. What it owns is plumbing and evidence:
//
//   * building one ScalingSignals per applied window (streaming) or per
//     Evaluate() call (blocking), stamped from an injected stream::Clock;
//   * executing the policy's verdict against the session, including the
//     optional proportional worker-fleet resize;
//   * an append-only DecisionRecord log — with a ManualClock this log is
//     a deterministic function of the event sequence, which is what the
//     policy lab scores and the tests byte-compare.
//
// Streaming wiring (the controller hooks IngestionOptions::on_apply, so
// decisions run on the ingestion thread, where the session may be
// mutated between windows):
//
//   ElasticController controller(&session, MakePolicy("watermark:...")
//                                              .value(), {.clock = clock});
//   IngestionOptions opts;
//   opts.clock = clock;
//   opts.on_apply = [&](const IngestStats& s) {
//     return controller.OnApply(s);
//   };
//
// Threading: not thread-safe. In the streaming wiring every method that
// touches the session runs on the ingestion thread; read the log only in
// a quiescent window (after Drain()/Stop()), like the session itself.
#ifndef SPINNER_ELASTIC_ELASTIC_CONTROLLER_H_
#define SPINNER_ELASTIC_ELASTIC_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "elastic/scaling_policy.h"
#include "spinner/session.h"
#include "stream/clock.h"
#include "stream/ingestion_service.h"

namespace spinner::elastic {

/// Construction-time knobs of an ElasticController.
struct ControllerOptions {
  /// Stamps DecisionRecords and feeds ScalingSignals::now_micros (which
  /// cooldown wrappers compare against). Defaults to SystemClock; tests
  /// and the replay lab inject the same ManualClock the ingestion service
  /// uses, making the whole decision log deterministic.
  std::shared_ptr<stream::Clock> clock;
  /// > 0 in the off-thread modes: after every executed rescale the worker
  /// fleet is resized to round(new_k * workers_per_partition), min 1 —
  /// partitions-per-machine stays constant as k moves. 0 (default) never
  /// touches the fleet.
  double workers_per_partition = 0.0;
  /// False: decisions are logged with executed=false but the session is
  /// never touched — the dry-run mode the policy lab's "what would policy
  /// X have done" comparisons use.
  bool execute = true;
};

/// One evaluated decision, executed or not. The log of these is the
/// deterministic artifact the acceptance criteria pin.
struct DecisionRecord {
  /// Controller-clock timestamp of the evaluation.
  int64_t at_micros = 0;
  /// 1-based evaluation ordinal.
  int evaluation = 0;
  /// k before the decision.
  int from_k = 0;
  ScalingAction action = ScalingAction::kHold;
  /// Target k; 0 for holds.
  int target_k = 0;
  /// True iff the session was actually rescaled.
  bool executed = false;
  /// The policy's own wording (deterministic).
  std::string reason;
  /// "" for holds and clean executions; the Status message when a
  /// Rescale/ResizeWorkers failed; "dry-run" when execute=false.
  std::string outcome;
  /// The signals the decision was made on (for the lab's scoring).
  double phi = 0.0;
  double rho = 0.0;
  int64_t max_load = 0;
  int64_t staleness_micros = 0;
};

/// Drives one PartitioningSession from one ScalingPolicy.
class ElasticController {
 public:
  /// `session` must outlive the controller and be open before the first
  /// evaluation. `policy` must be non-null.
  ElasticController(PartitioningSession* session,
                    std::unique_ptr<ScalingPolicy> policy,
                    ControllerOptions options = {});

  ElasticController(const ElasticController&) = delete;
  ElasticController& operator=(const ElasticController&) = delete;

  // --- Evaluation entry points -------------------------------------------

  /// The streaming hook: wire as IngestionOptions::on_apply (runs on the
  /// ingestion thread after every applied window, where the session is
  /// safely mutable). Merges `stats` with the session's last-run metrics
  /// into ScalingSignals, evaluates, executes. Always returns true — an
  /// elasticity failure is recorded in status() and stops further
  /// executions, but never tears down ingestion.
  bool OnApply(const stream::IngestStats& stats);

  /// The blocking-path entry point (partition_tool, examples): computes
  /// fresh metrics via session->Metrics(), evaluates, executes. Returns
  /// the metric-computation or execution error, OK on hold/clean action.
  Status Evaluate();

  /// Core step shared by both paths; callers that already hold signals
  /// (the policy lab's capacity events, unit tests) use it directly.
  /// Returns the decision after execution bookkeeping.
  const DecisionRecord& EvaluateSignals(ScalingSignals signals);

  // --- Environment --------------------------------------------------------

  /// Advertises how many machines the cluster can host partitions on
  /// (clamps every policy's scale-out target). 0 = unbounded. Capacity
  /// events of a replayed trace land here.
  void set_available_capacity(int capacity) {
    available_capacity_ = capacity;
  }
  int available_capacity() const { return available_capacity_; }

  // --- Evidence -----------------------------------------------------------

  const std::vector<DecisionRecord>& log() const { return log_; }

  /// The log as deterministic text, one line per decision:
  ///   [3 @2000000us] k=4 scale-out -> k=5 executed  (rho 1.2100 >= ...)
  std::string FormatLog() const;

  int evaluations() const { return static_cast<int>(log_.size()); }
  int rescales_executed() const { return rescales_executed_; }

  /// First elasticity error (Rescale/ResizeWorkers failure), if any.
  /// Once set, later decisions are logged but no longer executed.
  const Status& status() const { return status_; }

  const std::string& policy_name() const { return policy_name_; }
  PartitioningSession* session() const { return session_; }

 private:
  PartitioningSession* session_;
  std::unique_ptr<ScalingPolicy> policy_;
  ControllerOptions options_;
  std::shared_ptr<stream::Clock> clock_;
  std::string policy_name_;
  int available_capacity_ = 0;
  /// events_ingested at the previous OnApply, for per-window deltas.
  int64_t last_events_ingested_ = 0;
  std::vector<DecisionRecord> log_;
  int rescales_executed_ = 0;
  Status status_;
};

}  // namespace spinner::elastic

#endif  // SPINNER_ELASTIC_ELASTIC_CONTROLLER_H_
