// One textual policy-spec grammar shared by every surface that lets a
// human pick a ScalingPolicy — `partition_tool adapt --policy=...`, the
// trace-replay lab, the elastic bench sweep, the example:
//
//   name[:key=value,key=value,...]
//
//   none
//   watermark:high=1.2,low=0.5,step=2,min-k=2,max-k=32,machine-capacity=50000
//   cut:budget=0.05,window=8
//   watermark:high=1.2,hysteresis=3,cooldown-ms=5000
//
// `hysteresis=N` and `cooldown-ms=N` are wrapper keys accepted by every
// base policy; they wrap the parsed policy in HysteresisPolicy /
// CooldownPolicy (cooldown outermost, so a suppressed streak does not
// restart the cooldown clock). Parsing is strict: unknown names, unknown
// keys, malformed numbers and out-of-range values are errors, not
// defaults — a typo'd watermark must not silently become "none".
#ifndef SPINNER_ELASTIC_POLICY_SPEC_H_
#define SPINNER_ELASTIC_POLICY_SPEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "elastic/scaling_policy.h"

namespace spinner::elastic {

/// Parses `spec` and builds the policy it names, wrappers applied.
Result<std::unique_ptr<ScalingPolicy>> MakePolicy(std::string_view spec);

/// One line per known policy/key, for --help text and error messages.
std::string PolicySpecHelp();

}  // namespace spinner::elastic

#endif  // SPINNER_ELASTIC_POLICY_SPEC_H_
