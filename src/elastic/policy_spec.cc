#include "elastic/policy_spec.h"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace spinner::elastic {
namespace {

/// The `key=value,...` tail of a spec, parsed but not yet interpreted.
/// Consumers Take() the keys they understand; whatever remains at the end
/// is an error (strict parsing).
class KeyValues {
 public:
  static Result<KeyValues> Parse(std::string_view tail) {
    KeyValues kv;
    if (tail.empty()) return kv;
    for (std::string_view field : Split(tail, ',')) {
      field = Trim(field);
      if (field.empty()) {
        return Status::InvalidArgument("policy spec has an empty option");
      }
      const size_t eq = field.find('=');
      if (eq == std::string_view::npos || eq == 0 ||
          eq + 1 == field.size()) {
        return Status::InvalidArgument(
            StrFormat("policy option '%.*s' is not key=value",
                      static_cast<int>(field.size()), field.data()));
      }
      const std::string key(Trim(field.substr(0, eq)));
      const std::string value(Trim(field.substr(eq + 1)));
      if (!kv.entries_.emplace(key, value).second) {
        return Status::InvalidArgument(
            StrFormat("policy option '%s' given twice", key.c_str()));
      }
    }
    return kv;
  }

  /// Removes and parses `key` as a double; leaves *out untouched when the
  /// key is absent.
  Status TakeDouble(const std::string& key, double* out) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::OK();
    if (!ParseDouble(it->second, out)) {
      return Status::InvalidArgument(StrFormat(
          "policy option %s=%s is not a number", key.c_str(),
          it->second.c_str()));
    }
    entries_.erase(it);
    return Status::OK();
  }

  Status TakeInt(const std::string& key, int64_t* out) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::OK();
    if (!ParseInt64(it->second, out)) {
      return Status::InvalidArgument(StrFormat(
          "policy option %s=%s is not an integer", key.c_str(),
          it->second.c_str()));
    }
    entries_.erase(it);
    return Status::OK();
  }

  /// The strictness check: every key must have been consumed.
  Status ExpectEmpty(std::string_view policy) const {
    if (entries_.empty()) return Status::OK();
    std::string unknown;
    for (const auto& [key, value] : entries_) {
      if (!unknown.empty()) unknown += ", ";
      unknown += key;
    }
    return Status::InvalidArgument(
        StrFormat("unknown option(s) for policy '%.*s': %s",
                  static_cast<int>(policy.size()), policy.data(),
                  unknown.c_str()));
  }

 private:
  std::map<std::string, std::string> entries_;
};

#define ELASTIC_RETURN_IF_ERROR(expr)            \
  do {                                           \
    Status _status = (expr);                     \
    if (!_status.ok()) return _status;           \
  } while (0)

Status TakePositiveInt(KeyValues& kv, const std::string& key, int* out) {
  int64_t value = *out;
  ELASTIC_RETURN_IF_ERROR(kv.TakeInt(key, &value));
  if (value < 1) {
    return Status::InvalidArgument(StrFormat(
        "policy option %s=%lld must be >= 1", key.c_str(),
        static_cast<long long>(value)));
  }
  *out = static_cast<int>(value);
  return Status::OK();
}

Result<std::unique_ptr<ScalingPolicy>> MakeWatermark(KeyValues kv) {
  CapacityWatermarkPolicy::Options options;
  ELASTIC_RETURN_IF_ERROR(kv.TakeDouble("high", &options.high));
  ELASTIC_RETURN_IF_ERROR(kv.TakeDouble("low", &options.low));
  ELASTIC_RETURN_IF_ERROR(TakePositiveInt(kv, "step", &options.step));
  ELASTIC_RETURN_IF_ERROR(TakePositiveInt(kv, "min-k", &options.min_k));
  int64_t max_k = options.max_k;
  ELASTIC_RETURN_IF_ERROR(kv.TakeInt("max-k", &max_k));
  int64_t machine_capacity = options.machine_capacity;
  ELASTIC_RETURN_IF_ERROR(kv.TakeInt("machine-capacity", &machine_capacity));
  ELASTIC_RETURN_IF_ERROR(kv.ExpectEmpty("watermark"));
  if (max_k < 0 || machine_capacity < 0) {
    return Status::InvalidArgument(
        "watermark max-k / machine-capacity must be >= 0 (0 = unbounded)");
  }
  options.max_k = static_cast<int>(max_k);
  options.machine_capacity = machine_capacity;
  if (!(options.low < options.high)) {
    return Status::InvalidArgument(StrFormat(
        "watermark needs low < high, got low=%.4f high=%.4f", options.low,
        options.high));
  }
  return std::unique_ptr<ScalingPolicy>(
      std::make_unique<CapacityWatermarkPolicy>(options));
}

Result<std::unique_ptr<ScalingPolicy>> MakeCut(KeyValues kv) {
  CutDegradationPolicy::Options options;
  ELASTIC_RETURN_IF_ERROR(kv.TakeDouble("budget", &options.budget));
  ELASTIC_RETURN_IF_ERROR(TakePositiveInt(kv, "window", &options.window));
  ELASTIC_RETURN_IF_ERROR(TakePositiveInt(kv, "step", &options.step));
  ELASTIC_RETURN_IF_ERROR(TakePositiveInt(kv, "min-k", &options.min_k));
  int64_t max_k = options.max_k;
  ELASTIC_RETURN_IF_ERROR(kv.TakeInt("max-k", &max_k));
  ELASTIC_RETURN_IF_ERROR(kv.ExpectEmpty("cut"));
  if (max_k < 0) {
    return Status::InvalidArgument("cut max-k must be >= 0 (0 = unbounded)");
  }
  options.max_k = static_cast<int>(max_k);
  if (options.budget <= 0.0) {
    return Status::InvalidArgument(StrFormat(
        "cut budget=%.4f must be > 0", options.budget));
  }
  return std::unique_ptr<ScalingPolicy>(
      std::make_unique<CutDegradationPolicy>(options));
}

}  // namespace

Result<std::unique_ptr<ScalingPolicy>> MakePolicy(std::string_view spec) {
  spec = Trim(spec);
  if (spec.empty()) {
    return Status::InvalidArgument("empty policy spec; " + PolicySpecHelp());
  }
  std::string_view name = spec;
  std::string_view tail;
  if (const size_t colon = spec.find(':'); colon != std::string_view::npos) {
    name = Trim(spec.substr(0, colon));
    tail = spec.substr(colon + 1);
  }
  SPINNER_ASSIGN_OR_RETURN(KeyValues kv, KeyValues::Parse(tail));

  // Wrapper keys first: every base policy accepts them.
  int64_t hysteresis = 0;
  int64_t cooldown_ms = 0;
  ELASTIC_RETURN_IF_ERROR(kv.TakeInt("hysteresis", &hysteresis));
  ELASTIC_RETURN_IF_ERROR(kv.TakeInt("cooldown-ms", &cooldown_ms));
  if (hysteresis < 0 || cooldown_ms < 0) {
    return Status::InvalidArgument(
        "hysteresis / cooldown-ms must be >= 0 (0 = disabled)");
  }

  std::unique_ptr<ScalingPolicy> policy;
  if (name == "none") {
    ELASTIC_RETURN_IF_ERROR(kv.ExpectEmpty(name));
    policy = std::make_unique<NullPolicy>();
  } else if (name == "watermark") {
    SPINNER_ASSIGN_OR_RETURN(policy, MakeWatermark(std::move(kv)));
  } else if (name == "cut") {
    SPINNER_ASSIGN_OR_RETURN(policy, MakeCut(std::move(kv)));
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown policy '%.*s'; ", static_cast<int>(name.size()),
                  name.data()) +
        PolicySpecHelp());
  }

  // Hysteresis inside, cooldown outside: a streak that hysteresis is
  // still suppressing must not re-arm the cooldown timer.
  if (hysteresis > 0) {
    policy = std::make_unique<HysteresisPolicy>(
        std::move(policy), static_cast<int>(hysteresis));
  }
  if (cooldown_ms > 0) {
    policy = std::make_unique<CooldownPolicy>(std::move(policy),
                                              cooldown_ms * 1000);
  }
  return policy;
}

std::string PolicySpecHelp() {
  return
      "known policies (spec: name[:key=value,...]):\n"
      "  none        never rescale (the baseline)\n"
      "  watermark   load watermarks; keys: high, low, step, min-k, max-k,\n"
      "              machine-capacity (0 = watch rho, >0 = watch\n"
      "              max_load/machine-capacity utilization)\n"
      "  cut         phi-degradation trigger; keys: budget, window, step,\n"
      "              min-k, max-k\n"
      "  any policy also accepts hysteresis=N (require N consecutive\n"
      "  identical proposals) and cooldown-ms=N (suppress actions within\n"
      "  N ms of the last executed one)";
}

}  // namespace spinner::elastic
