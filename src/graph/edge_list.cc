#include "graph/edge_list.h"

#include <algorithm>

#include "common/logging.h"

namespace spinner {

VertexId MaxVertexId(const EdgeList& edges) {
  VertexId max_id = -1;
  for (const Edge& e : edges) {
    max_id = std::max(max_id, std::max(e.src, e.dst));
  }
  return max_id;
}

void SortAndDedup(EdgeList* edges) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

void RemoveSelfLoops(EdgeList* edges) {
  edges->erase(std::remove_if(edges->begin(), edges->end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges->end());
}

std::vector<int64_t> OutDegrees(const EdgeList& edges, int64_t num_vertices) {
  std::vector<int64_t> deg(num_vertices, 0);
  for (const Edge& e : edges) {
    SPINNER_CHECK(e.src >= 0 && e.src < num_vertices)
        << "edge source " << e.src << " out of range [0," << num_vertices
        << ")";
    ++deg[e.src];
  }
  return deg;
}

bool EdgesInRange(const EdgeList& edges, int64_t num_vertices) {
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_vertices || e.dst < 0 ||
        e.dst >= num_vertices) {
      return false;
    }
  }
  return true;
}

}  // namespace spinner
