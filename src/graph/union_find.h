// Disjoint-set forest with path halving and union by size. Used by the
// multilevel partitioner's coarsening and as the reference for WCC tests.
#ifndef SPINNER_GRAPH_UNION_FIND_H_
#define SPINNER_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/types.h"

namespace spinner {

/// Standard union-find over the dense vertex range [0, n).
class UnionFind {
 public:
  explicit UnionFind(int64_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  /// Representative of v's set (with path halving).
  VertexId Find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  /// True iff a and b are in the same set.
  bool Connected(VertexId a, VertexId b) { return Find(a) == Find(b); }

  /// Size of the set containing v.
  int64_t SetSize(VertexId v) { return size_[Find(v)]; }

  /// Number of distinct sets.
  int64_t NumSets() {
    int64_t count = 0;
    for (VertexId v = 0; v < static_cast<VertexId>(parent_.size()); ++v) {
      if (Find(v) == v) ++count;
    }
    return count;
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<int64_t> size_;
};

}  // namespace spinner

#endif  // SPINNER_GRAPH_UNION_FIND_H_
