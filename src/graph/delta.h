// GraphDelta: a batch of dynamic changes, the input to incremental
// repartitioning (paper §III.D). The paper's experiments add edges (new
// friendships) and vertices; removal is supported for completeness.
#ifndef SPINNER_GRAPH_DELTA_H_
#define SPINNER_GRAPH_DELTA_H_

#include <cstdint>

#include "common/result.h"
#include "graph/types.h"

namespace spinner {

/// A set of changes to apply on top of an existing edge list.
struct GraphDelta {
  /// Number of vertices appended to the id range (new ids are
  /// [old_n, old_n + num_new_vertices)).
  int64_t num_new_vertices = 0;
  /// Edges to add. May reference both old and new vertices.
  EdgeList added_edges;
  /// Edges to remove (matched exactly against existing edges).
  EdgeList removed_edges;

  /// Chainable builders, so a delta reads as the change it describes:
  ///   GraphDelta{}.AddVertex(2).AddEdge(0, n).AddEdge(n, n + 1)
  GraphDelta& AddVertex(int64_t count = 1) {
    num_new_vertices += count;
    return *this;
  }
  GraphDelta& AddEdge(VertexId src, VertexId dst) {
    added_edges.push_back({src, dst});
    return *this;
  }
  GraphDelta& RemoveEdge(VertexId src, VertexId dst) {
    removed_edges.push_back({src, dst});
    return *this;
  }

  /// Folds redundant work out of the delta, in place:
  ///   * duplicate adds of the same (src,dst) collapse to one (duplicate
  ///     add events in a stream are retries, not parallel edges),
  ///   * an add and a remove of the same edge cancel pairwise (the edge
  ///     came and went within one batch; neither side reaches the graph),
  ///   * vertex grows are already merged (num_new_vertices is a sum).
  /// Matching is exact — (u,v) never pairs with (v,u) — mirroring
  /// ApplyDelta's removal semantics. Dedupe runs before cancellation, so
  /// added [e,e] + removed [e,e] coalesces to one net removal. Surviving
  /// entries keep their first-occurrence order, so coalescing is
  /// deterministic. Returns *this for chaining.
  ///
  /// This is the windowing primitive of the streaming ingestion service
  /// (stream/ingestion_service.h): a window's events fold into one delta,
  /// and cancellation is what makes an in-window add-then-remove legal —
  /// expressed uncoalesced, ApplyDelta would reject removing an edge the
  /// base graph never contained.
  GraphDelta& Coalesce();
};

/// Applies `delta` to (num_vertices, edges): appends vertices, removes then
/// adds edges. Fails if an added edge references a vertex outside the grown
/// range or a removed edge does not exist.
Result<EdgeList> ApplyDelta(int64_t num_vertices, const EdgeList& edges,
                            const GraphDelta& delta);

/// Generates a delta of `num_edges` new random edges among existing vertices
/// (no self-loops, not already present, deterministic in seed) — the
/// "percentage of new edges" workload of paper Fig. 7.
GraphDelta RandomEdgeAdditions(int64_t num_vertices, const EdgeList& existing,
                               int64_t num_edges, uint64_t seed);

}  // namespace spinner

#endif  // SPINNER_GRAPH_DELTA_H_
