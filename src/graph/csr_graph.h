// Immutable compressed-sparse-row graph: the in-memory representation every
// algorithm in this repository consumes. Stores out-arcs with weights.
//
// Two usage regimes:
//  * raw directed/undirected graphs from loaders/generators (weights all 1);
//  * the weighted symmetric form produced by ConvertToWeightedUndirected,
//    where arc weights ∈ {1,2} encode message traffic (paper Eq. 3) and the
//    adjacency is symmetric.
#ifndef SPINNER_GRAPH_CSR_GRAPH_H_
#define SPINNER_GRAPH_CSR_GRAPH_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "graph/types.h"

namespace spinner {

/// Immutable CSR adjacency with per-arc weights and cached weighted degrees.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list over vertices [0, num_vertices). Arcs keep
  /// their multiplicity (no dedup) and are sorted by (src, dst). `weights`
  /// must be empty (all arcs weight 1) or parallel to `edges`.
  /// Fails with InvalidArgument on out-of-range endpoints or a weight/edge
  /// length mismatch.
  static Result<CsrGraph> FromEdges(int64_t num_vertices,
                                    const EdgeList& edges,
                                    std::span<const EdgeWeight> weights = {});

  /// Number of vertices n.
  int64_t NumVertices() const { return num_vertices_; }

  /// Number of stored arcs (directed edges). For a symmetric graph this is
  /// twice the number of undirected edges.
  int64_t NumArcs() const { return static_cast<int64_t>(targets_.size()); }

  /// Σ over arcs of weight. For a converted graph this equals 2·|E_directed|.
  int64_t TotalArcWeight() const { return total_arc_weight_; }

  /// Out-degree (arc count) of v.
  int64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Weighted out-degree of v: Σ_u w(v,u). The paper's deg(v) in the
  /// converted graph; the unit in which partition loads are counted.
  int64_t WeightedDegree(VertexId v) const { return weighted_degree_[v]; }

  /// Neighbor ids of v, sorted ascending (ties = parallel arcs adjacent).
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v],
            static_cast<size_t>(OutDegree(v))};
  }

  /// Weights parallel to Neighbors(v).
  std::span<const EdgeWeight> Weights(VertexId v) const {
    return {weights_.data() + offsets_[v], static_cast<size_t>(OutDegree(v))};
  }

  /// Offset of v's first arc in the arc arrays; arcs of v occupy
  /// [ArcBegin(v), ArcBegin(v) + OutDegree(v)).
  int64_t ArcBegin(VertexId v) const { return offsets_[v]; }

  /// True iff for every arc (u,v,w) the reverse arc (v,u,w) exists.
  bool IsSymmetric() const;

  /// True iff an arc u->v exists (binary search).
  bool HasArc(VertexId u, VertexId v) const;

  /// Re-exports the arc set as an edge list (each stored arc once).
  EdgeList ToEdgeList() const;

 private:
  int64_t num_vertices_ = 0;
  int64_t total_arc_weight_ = 0;
  std::vector<int64_t> offsets_;         // size n+1
  std::vector<VertexId> targets_;        // size NumArcs()
  std::vector<EdgeWeight> weights_;      // size NumArcs()
  std::vector<int64_t> weighted_degree_;  // size n
};

}  // namespace spinner

#endif  // SPINNER_GRAPH_CSR_GRAPH_H_
