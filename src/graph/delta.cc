#include "graph/delta.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"
#include "graph/edge_list.h"

namespace spinner {

namespace {
/// Exact-match key: (u,v) and (v,u) stay distinct, like ApplyDelta removal.
uint64_t EdgeKey(const Edge& e) {
  return (static_cast<uint64_t>(e.src) << 32) ^
         static_cast<uint64_t>(e.dst) * 0x9E3779B97F4A7C15ull;
}
}  // namespace

GraphDelta& GraphDelta::Coalesce() {
  // Pass 1: dedupe adds, first occurrence wins (deterministic order).
  std::unordered_map<uint64_t, int64_t> add_count;
  add_count.reserve(added_edges.size() * 2);
  EdgeList deduped;
  deduped.reserve(added_edges.size());
  for (const Edge& e : added_edges) {
    if (add_count[EdgeKey(e)]++ == 0) deduped.push_back(e);
  }

  // Pass 2: each surviving add cancels at most one matching remove.
  std::unordered_map<uint64_t, int64_t> cancel;
  cancel.reserve(removed_edges.size() * 2);
  for (const Edge& e : removed_edges) {
    const uint64_t key = EdgeKey(e);
    auto it = add_count.find(key);
    if (it != add_count.end() && it->second > 0) {
      it->second = 0;  // the (deduped) add is consumed
      ++cancel[key];
    }
  }

  added_edges.clear();
  for (const Edge& e : deduped) {
    if (add_count[EdgeKey(e)] > 0) added_edges.push_back(e);
  }
  EdgeList kept_removed;
  kept_removed.reserve(removed_edges.size());
  for (const Edge& e : removed_edges) {
    auto it = cancel.find(EdgeKey(e));
    if (it != cancel.end() && it->second > 0) {
      --it->second;  // cancelled against an in-delta add
      continue;
    }
    kept_removed.push_back(e);
  }
  removed_edges = std::move(kept_removed);
  return *this;
}

Result<EdgeList> ApplyDelta(int64_t num_vertices, const EdgeList& edges,
                            const GraphDelta& delta) {
  const int64_t new_n = num_vertices + delta.num_new_vertices;
  if (delta.num_new_vertices < 0) {
    return Status::InvalidArgument("num_new_vertices must be >= 0");
  }
  if (!EdgesInRange(delta.added_edges, new_n)) {
    return Status::InvalidArgument(StrFormat(
        "added edge endpoint outside [0,%lld)",
        static_cast<long long>(new_n)));
  }

  EdgeList result = edges;
  if (!delta.removed_edges.empty()) {
    // Multiset-style removal: each removed edge cancels one occurrence.
    EdgeList to_remove = delta.removed_edges;
    std::sort(to_remove.begin(), to_remove.end());
    std::sort(result.begin(), result.end());
    EdgeList kept;
    kept.reserve(result.size());
    size_t r = 0;
    for (const Edge& e : result) {
      if (r < to_remove.size() && to_remove[r] == e) {
        ++r;  // cancelled
        continue;
      }
      kept.push_back(e);
    }
    if (r != to_remove.size()) {
      return Status::InvalidArgument(StrFormat(
          "removed edge (%lld,%lld) not present",
          static_cast<long long>(to_remove[r].src),
          static_cast<long long>(to_remove[r].dst)));
    }
    result = std::move(kept);
  }
  result.insert(result.end(), delta.added_edges.begin(),
                delta.added_edges.end());
  return result;
}

GraphDelta RandomEdgeAdditions(int64_t num_vertices, const EdgeList& existing,
                               int64_t num_edges, uint64_t seed) {
  auto key = [](VertexId a, VertexId b) {
    const auto lo = static_cast<uint64_t>(std::min(a, b));
    const auto hi = static_cast<uint64_t>(std::max(a, b));
    return (hi << 32) | lo;
  };
  std::unordered_set<uint64_t> present;
  present.reserve(existing.size() * 2);
  for (const Edge& e : existing) present.insert(key(e.src, e.dst));

  GraphDelta delta;
  Rng rng(SplitMix64(seed ^ 0xD317AULL));
  while (static_cast<int64_t>(delta.added_edges.size()) < num_edges) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(num_vertices));
    const VertexId v = static_cast<VertexId>(rng.Uniform(num_vertices));
    if (u == v) continue;
    if (!present.insert(key(u, v)).second) continue;
    delta.added_edges.push_back({u, v});
  }
  return delta;
}

}  // namespace spinner
