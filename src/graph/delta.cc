#include "graph/delta.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"
#include "graph/edge_list.h"

namespace spinner {

Result<EdgeList> ApplyDelta(int64_t num_vertices, const EdgeList& edges,
                            const GraphDelta& delta) {
  const int64_t new_n = num_vertices + delta.num_new_vertices;
  if (delta.num_new_vertices < 0) {
    return Status::InvalidArgument("num_new_vertices must be >= 0");
  }
  if (!EdgesInRange(delta.added_edges, new_n)) {
    return Status::InvalidArgument(StrFormat(
        "added edge endpoint outside [0,%lld)",
        static_cast<long long>(new_n)));
  }

  EdgeList result = edges;
  if (!delta.removed_edges.empty()) {
    // Multiset-style removal: each removed edge cancels one occurrence.
    EdgeList to_remove = delta.removed_edges;
    std::sort(to_remove.begin(), to_remove.end());
    std::sort(result.begin(), result.end());
    EdgeList kept;
    kept.reserve(result.size());
    size_t r = 0;
    for (const Edge& e : result) {
      if (r < to_remove.size() && to_remove[r] == e) {
        ++r;  // cancelled
        continue;
      }
      kept.push_back(e);
    }
    if (r != to_remove.size()) {
      return Status::InvalidArgument(StrFormat(
          "removed edge (%lld,%lld) not present",
          static_cast<long long>(to_remove[r].src),
          static_cast<long long>(to_remove[r].dst)));
    }
    result = std::move(kept);
  }
  result.insert(result.end(), delta.added_edges.begin(),
                delta.added_edges.end());
  return result;
}

GraphDelta RandomEdgeAdditions(int64_t num_vertices, const EdgeList& existing,
                               int64_t num_edges, uint64_t seed) {
  auto key = [](VertexId a, VertexId b) {
    const auto lo = static_cast<uint64_t>(std::min(a, b));
    const auto hi = static_cast<uint64_t>(std::max(a, b));
    return (hi << 32) | lo;
  };
  std::unordered_set<uint64_t> present;
  present.reserve(existing.size() * 2);
  for (const Edge& e : existing) present.insert(key(e.src, e.dst));

  GraphDelta delta;
  Rng rng(SplitMix64(seed ^ 0xD317AULL));
  while (static_cast<int64_t>(delta.added_edges.size()) < num_edges) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(num_vertices));
    const VertexId v = static_cast<VertexId>(rng.Uniform(num_vertices));
    if (u == v) continue;
    if (!present.insert(key(u, v)).second) continue;
    delta.added_edges.push_back({u, v});
  }
  return delta;
}

}  // namespace spinner
