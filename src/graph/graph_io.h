// Text I/O: edge lists and partition maps.
//
// Edge list format: one "src dst" pair of whitespace-separated non-negative
// integers per line; lines starting with '#' or '%' are comments; blank
// lines are skipped. Partition map format: one "vertex partition" pair per
// line. These match the formats of common public graph datasets (SNAP).
#ifndef SPINNER_GRAPH_GRAPH_IO_H_
#define SPINNER_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/types.h"

namespace spinner::graph_io {

/// Reads an edge list. Vertices are as numbered in the file; callers can get
/// the vertex count from MaxVertexId()+1. Fails with IOError if the file
/// cannot be opened and InvalidArgument on a malformed line (message names
/// the line number).
Result<EdgeList> ReadEdgeList(const std::string& path);

/// Writes "src dst" per edge.
Status WriteEdgeList(const std::string& path, const EdgeList& edges);

/// Reads a partition map for `num_vertices` vertices. Every vertex must be
/// assigned exactly once; partitions must be non-negative.
Result<std::vector<PartitionId>> ReadPartitioning(const std::string& path,
                                                  int64_t num_vertices);

/// Writes "vertex partition" per vertex.
Status WritePartitioning(const std::string& path,
                         const std::vector<PartitionId>& assignment);

}  // namespace spinner::graph_io

#endif  // SPINNER_GRAPH_GRAPH_IO_H_
