#include "graph/binary_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "graph/edge_list.h"

namespace spinner::graph_io {

namespace {
constexpr char kMagic[4] = {'S', 'P', 'N', 'B'};
constexpr uint32_t kVersion = 1;
constexpr char kSnapshotMagic[4] = {'S', 'P', 'N', 'S'};
constexpr uint32_t kSnapshotVersion = 1;

template <typename T>
void PutRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// Reservation clamp for header counts: they are untrusted until the
/// elements actually arrive, so never pre-allocate more than this many —
/// a corrupt count then fails with a clean truncation error instead of
/// an uncatchable std::length_error from reserve().
constexpr int64_t kMaxReserve = 1 << 20;
}  // namespace

Status WriteBinaryGraph(const std::string& path, int64_t num_vertices,
                        const EdgeList& edges) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  if (!EdgesInRange(edges, num_vertices)) {
    return Status::InvalidArgument(
        "edge endpoint outside the vertex range");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  PutRaw(out, kVersion);
  PutRaw(out, num_vertices);
  PutRaw(out, static_cast<int64_t>(edges.size()));
  for (const Edge& e : edges) {
    PutRaw(out, e.src);
    PutRaw(out, e.dst);
  }
  out.flush();
  if (!out) return Status::IOError("write error on: " + path);
  return Status::OK();
}

Result<BinaryGraph> ReadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic (not a SPNB file): " + path);
  }
  uint32_t version = 0;
  if (!GetRaw(in, &version)) return Status::IOError("truncated header");
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported version %u", version));
  }

  BinaryGraph graph;
  int64_t num_edges = 0;
  if (!GetRaw(in, &graph.num_vertices) || !GetRaw(in, &num_edges)) {
    return Status::IOError("truncated header");
  }
  if (graph.num_vertices < 0 || num_edges < 0) {
    return Status::InvalidArgument("negative counts in header");
  }
  graph.edges.reserve(std::min(num_edges, kMaxReserve));
  for (int64_t i = 0; i < num_edges; ++i) {
    Edge e;
    if (!GetRaw(in, &e.src) || !GetRaw(in, &e.dst)) {
      return Status::IOError(StrFormat(
          "truncated edge section at edge %lld of %lld",
          static_cast<long long>(i), static_cast<long long>(num_edges)));
    }
    if (e.src < 0 || e.src >= graph.num_vertices || e.dst < 0 ||
        e.dst >= graph.num_vertices) {
      return Status::InvalidArgument(StrFormat(
          "edge %lld endpoint out of range", static_cast<long long>(i)));
    }
    graph.edges.push_back(e);
  }
  return graph;
}

Status WriteSessionSnapshot(const std::string& path,
                            const SessionSnapshot& snapshot) {
  if (snapshot.num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  if (!EdgesInRange(snapshot.edges, snapshot.num_vertices)) {
    return Status::InvalidArgument("edge endpoint outside the vertex range");
  }
  if (snapshot.num_partitions < 0) {
    return Status::InvalidArgument("negative partition count");
  }
  if (snapshot.num_partitions > 0) {
    if (static_cast<int64_t>(snapshot.assignment.size()) !=
        snapshot.num_vertices) {
      return Status::InvalidArgument(
          "assignment must cover every vertex");
    }
    for (PartitionId l : snapshot.assignment) {
      if (l < 0 || l >= snapshot.num_partitions) {
        return Status::InvalidArgument("assignment label out of range");
      }
    }
  } else if (!snapshot.assignment.empty()) {
    return Status::InvalidArgument(
        "assignment present but num_partitions is 0");
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutRaw(out, kSnapshotVersion);
  PutRaw(out, snapshot.num_vertices);
  PutRaw(out, static_cast<int64_t>(snapshot.edges.size()));
  PutRaw(out, snapshot.num_partitions);
  PutRaw(out, static_cast<uint32_t>(snapshot.directed ? 1 : 0));
  for (const Edge& e : snapshot.edges) {
    PutRaw(out, e.src);
    PutRaw(out, e.dst);
  }
  for (PartitionId l : snapshot.assignment) PutRaw(out, l);
  out.flush();
  if (!out) return Status::IOError("write error on: " + path);
  return Status::OK();
}

namespace {

constexpr char kSliceMagic[4] = {'S', 'P', 'S', 'L'};
constexpr uint32_t kSliceVersion = 1;

/// resize + memcpy rather than insert(iter, ptr, ptr): identical behavior
/// without tripping GCC's stringop-overflow false positive on
/// reinterpret_cast'ed ranges. The size == 0 guard keeps memcpy away from
/// the null data() of empty vectors (UB even for zero bytes).
void AppendBytes(std::vector<uint8_t>* out, const void* data, size_t size) {
  if (size == 0) return;
  const size_t old_size = out->size();
  out->resize(old_size + size);
  std::memcpy(out->data() + old_size, data, size);
}

template <typename T>
void AppendRaw(std::vector<uint8_t>* out, const T& value) {
  AppendBytes(out, &value, sizeof(T));
}

template <typename T>
void AppendArray(std::vector<uint8_t>* out, const std::vector<T>& values) {
  AppendBytes(out, values.data(), values.size() * sizeof(T));
}

/// Cursor over an input buffer with truncation-checked reads.
class SliceCursor {
 public:
  SliceCursor(std::span<const uint8_t> bytes, size_t pos)
      : bytes_(bytes), pos_(pos) {}

  template <typename T>
  bool Get(T* value) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool GetArray(std::vector<T>* values, int64_t count) {
    // Divide, never multiply: count * sizeof(T) could wrap and slip a
    // huge resize past the bounds check.
    if (count < 0 ||
        static_cast<uint64_t>(count) > (bytes_.size() - pos_) / sizeof(T)) {
      return false;
    }
    values->resize(static_cast<size_t>(count));
    if (count == 0) return true;  // empty data() may be null; skip memcpy
    const size_t want = static_cast<size_t>(count) * sizeof(T);
    std::memcpy(values->data(), bytes_.data() + pos_, want);
    pos_ += want;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_;
};

}  // namespace

size_t EncodedShardSliceSize(const ShardedGraphStore::Shard& shard) {
  const size_t owned = static_cast<size_t>(shard.NumOwnedVertices());
  const size_t arcs = static_cast<size_t>(shard.NumArcs());
  return sizeof(kSliceMagic) + sizeof(kSliceVersion) +
         3 * sizeof(int64_t) +  // begin, end, num_arcs
         (owned + 1) * sizeof(int64_t) +  // offsets
         arcs * sizeof(VertexId) + arcs * sizeof(EdgeWeight) +
         owned * sizeof(int64_t);  // weighted_degree
}

void AppendShardSlice(const ShardedGraphStore::Shard& shard,
                      std::vector<uint8_t>* out) {
  out->insert(out->end(), kSliceMagic, kSliceMagic + sizeof(kSliceMagic));
  AppendRaw(out, kSliceVersion);
  AppendRaw(out, static_cast<int64_t>(shard.begin));
  AppendRaw(out, static_cast<int64_t>(shard.end));
  AppendRaw(out, shard.NumArcs());
  AppendArray(out, shard.offsets);
  AppendArray(out, shard.targets);
  AppendArray(out, shard.weights);
  AppendArray(out, shard.weighted_degree);
}

Result<ShardedGraphStore::Shard> DecodeShardSlice(
    std::span<const uint8_t> bytes, size_t* consumed) {
  SliceCursor in(bytes, *consumed);
  char magic[4];
  if (!in.Get(&magic)) return Status::IOError("truncated shard slice");
  if (std::memcmp(magic, kSliceMagic, sizeof(kSliceMagic)) != 0) {
    return Status::InvalidArgument("bad magic (not a SPSL slice)");
  }
  uint32_t version = 0;
  if (!in.Get(&version)) return Status::IOError("truncated shard slice");
  if (version != kSliceVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported shard slice version %u", version));
  }
  ShardedGraphStore::Shard shard;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t num_arcs = 0;
  if (!in.Get(&begin) || !in.Get(&end) || !in.Get(&num_arcs)) {
    return Status::IOError("truncated shard slice header");
  }
  if (begin < 0 || end < begin || num_arcs < 0) {
    return Status::InvalidArgument("negative counts in shard slice header");
  }
  shard.begin = begin;
  shard.end = end;
  const int64_t n_local = end - begin;
  if (!in.GetArray(&shard.offsets, n_local + 1) ||
      !in.GetArray(&shard.targets, num_arcs) ||
      !in.GetArray(&shard.weights, num_arcs) ||
      !in.GetArray(&shard.weighted_degree, n_local)) {
    return Status::IOError("truncated shard slice body");
  }
  if (shard.offsets.front() != 0 || shard.offsets.back() != num_arcs) {
    return Status::InvalidArgument("shard slice offsets do not span arcs");
  }
  for (size_t i = 1; i < shard.offsets.size(); ++i) {
    if (shard.offsets[i] < shard.offsets[i - 1]) {
      return Status::InvalidArgument("shard slice offsets not monotonic");
    }
  }
  shard.RebuildInvDegrees();
  *consumed = in.pos();
  return shard;
}

namespace {
constexpr char kDeltaRecordMagic[4] = {'S', 'P', 'D', 'R'};
}  // namespace

void AppendDeltaLogRecord(const DeltaLogRecord& record,
                          std::vector<uint8_t>* out) {
  out->insert(out->end(), kDeltaRecordMagic,
              kDeltaRecordMagic + sizeof(kDeltaRecordMagic));
  AppendRaw(out, record.delta.num_new_vertices);
  AppendRaw(out, static_cast<int64_t>(record.delta.added_edges.size()));
  AppendRaw(out, static_cast<int64_t>(record.delta.removed_edges.size()));
  AppendRaw(out, record.new_k);
  AppendRaw(out, static_cast<int64_t>(record.label_updates.size()));
  AppendArray(out, record.delta.added_edges);
  AppendArray(out, record.delta.removed_edges);
  // Pairs are written field-by-field: std::pair layout is not a wire
  // format.
  for (const auto& [vertex, label] : record.label_updates) {
    AppendRaw(out, vertex);
    AppendRaw(out, label);
  }
}

Result<DeltaLogRecord> DecodeDeltaLogRecord(std::span<const uint8_t> bytes,
                                            size_t* consumed) {
  SliceCursor in(bytes, *consumed);
  char magic[4];
  if (!in.Get(&magic)) return Status::IOError("truncated delta record");
  if (std::memcmp(magic, kDeltaRecordMagic, sizeof(kDeltaRecordMagic)) != 0) {
    return Status::InvalidArgument("bad magic (not a SPDR delta record)");
  }
  DeltaLogRecord record;
  int64_t num_added = 0;
  int64_t num_removed = 0;
  int64_t num_updates = 0;
  if (!in.Get(&record.delta.num_new_vertices) || !in.Get(&num_added) ||
      !in.Get(&num_removed) || !in.Get(&record.new_k) ||
      !in.Get(&num_updates)) {
    return Status::IOError("truncated delta record header");
  }
  if (record.delta.num_new_vertices < 0 || num_added < 0 ||
      num_removed < 0 || record.new_k < 0 || num_updates < 0) {
    return Status::InvalidArgument("negative counts in delta record header");
  }
  if (!in.GetArray(&record.delta.added_edges, num_added) ||
      !in.GetArray(&record.delta.removed_edges, num_removed)) {
    return Status::IOError("truncated delta record edge section");
  }
  record.label_updates.reserve(static_cast<size_t>(
      std::min(num_updates, kMaxReserve)));
  for (int64_t i = 0; i < num_updates; ++i) {
    VertexId vertex = 0;
    PartitionId label = kNoPartition;
    if (!in.Get(&vertex) || !in.Get(&label)) {
      return Status::IOError("truncated delta record label updates");
    }
    record.label_updates.emplace_back(vertex, label);
  }
  *consumed = in.pos();
  return record;
}

Result<SessionSnapshot> ReadSessionSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("bad magic (not a SPNS file): " + path);
  }
  uint32_t version = 0;
  if (!GetRaw(in, &version)) return Status::IOError("truncated header");
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported snapshot version %u", version));
  }

  SessionSnapshot snapshot;
  int64_t num_edges = 0;
  uint32_t flags = 0;
  if (!GetRaw(in, &snapshot.num_vertices) || !GetRaw(in, &num_edges) ||
      !GetRaw(in, &snapshot.num_partitions) || !GetRaw(in, &flags)) {
    return Status::IOError("truncated header");
  }
  snapshot.directed = (flags & 1u) != 0;
  if (snapshot.num_vertices < 0 || num_edges < 0 ||
      snapshot.num_partitions < 0) {
    return Status::InvalidArgument("negative counts in header");
  }
  snapshot.edges.reserve(std::min(num_edges, kMaxReserve));
  for (int64_t i = 0; i < num_edges; ++i) {
    Edge e;
    if (!GetRaw(in, &e.src) || !GetRaw(in, &e.dst)) {
      return Status::IOError(StrFormat(
          "truncated edge section at edge %lld of %lld",
          static_cast<long long>(i), static_cast<long long>(num_edges)));
    }
    if (e.src < 0 || e.src >= snapshot.num_vertices || e.dst < 0 ||
        e.dst >= snapshot.num_vertices) {
      return Status::InvalidArgument(StrFormat(
          "edge %lld endpoint out of range", static_cast<long long>(i)));
    }
    snapshot.edges.push_back(e);
  }
  if (snapshot.num_partitions > 0) {
    snapshot.assignment.reserve(std::min(snapshot.num_vertices, kMaxReserve));
    for (int64_t v = 0; v < snapshot.num_vertices; ++v) {
      PartitionId l;
      if (!GetRaw(in, &l)) {
        return Status::IOError("truncated assignment section");
      }
      if (l < 0 || l >= snapshot.num_partitions) {
        return Status::InvalidArgument(StrFormat(
            "assignment label out of range at vertex %lld",
            static_cast<long long>(v)));
      }
      snapshot.assignment.push_back(l);
    }
  }
  return snapshot;
}

}  // namespace spinner::graph_io
