#include "graph/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "graph/edge_list.h"

namespace spinner::graph_io {

namespace {
constexpr char kMagic[4] = {'S', 'P', 'N', 'B'};
constexpr uint32_t kVersion = 1;

template <typename T>
void PutRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

Status WriteBinaryGraph(const std::string& path, int64_t num_vertices,
                        const EdgeList& edges) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  if (!EdgesInRange(edges, num_vertices)) {
    return Status::InvalidArgument(
        "edge endpoint outside the vertex range");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  PutRaw(out, kVersion);
  PutRaw(out, num_vertices);
  PutRaw(out, static_cast<int64_t>(edges.size()));
  for (const Edge& e : edges) {
    PutRaw(out, e.src);
    PutRaw(out, e.dst);
  }
  out.flush();
  if (!out) return Status::IOError("write error on: " + path);
  return Status::OK();
}

Result<BinaryGraph> ReadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic (not a SPNB file): " + path);
  }
  uint32_t version = 0;
  if (!GetRaw(in, &version)) return Status::IOError("truncated header");
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported version %u", version));
  }

  BinaryGraph graph;
  int64_t num_edges = 0;
  if (!GetRaw(in, &graph.num_vertices) || !GetRaw(in, &num_edges)) {
    return Status::IOError("truncated header");
  }
  if (graph.num_vertices < 0 || num_edges < 0) {
    return Status::InvalidArgument("negative counts in header");
  }
  graph.edges.reserve(num_edges);
  for (int64_t i = 0; i < num_edges; ++i) {
    Edge e;
    if (!GetRaw(in, &e.src) || !GetRaw(in, &e.dst)) {
      return Status::IOError(StrFormat(
          "truncated edge section at edge %lld of %lld",
          static_cast<long long>(i), static_cast<long long>(num_edges)));
    }
    if (e.src < 0 || e.src >= graph.num_vertices || e.dst < 0 ||
        e.dst >= graph.num_vertices) {
      return Status::InvalidArgument(StrFormat(
          "edge %lld endpoint out of range", static_cast<long long>(i)));
    }
    graph.edges.push_back(e);
  }
  return graph;
}

}  // namespace spinner::graph_io
