// Binary graph format: a compact, fast-loading on-disk representation for
// repeated benchmarking on the same graph (text edge lists parse ~20×
// slower). Layout (little-endian):
//   magic "SPNB" (4 bytes) | version u32 | num_vertices i64 |
//   num_edges i64 | edges (num_edges × {src i64, dst i64})
#ifndef SPINNER_GRAPH_BINARY_IO_H_
#define SPINNER_GRAPH_BINARY_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/delta.h"
#include "graph/sharded_store.h"
#include "graph/types.h"

namespace spinner::graph_io {

/// A graph as stored in the binary format.
struct BinaryGraph {
  int64_t num_vertices = 0;
  EdgeList edges;
};

/// Writes the binary format. Fails with InvalidArgument if an edge
/// references a vertex outside [0, num_vertices).
Status WriteBinaryGraph(const std::string& path, int64_t num_vertices,
                        const EdgeList& edges);

/// Reads the binary format. Fails with IOError on open/short-read and
/// InvalidArgument on bad magic, unsupported version, negative counts, or
/// out-of-range endpoints.
Result<BinaryGraph> ReadBinaryGraph(const std::string& path);

/// A partitioning-session checkpoint: the raw edge list plus the current
/// assignment and partition count. Layout (little-endian):
///   magic "SPNS" (4 bytes) | version u32 | num_vertices i64 |
///   num_edges i64 | num_partitions i32 | flags u32 (bit 0: directed) |
///   edges (num_edges × {i64, i64}) | assignment (num_vertices × i32)
struct SessionSnapshot {
  int64_t num_vertices = 0;
  EdgeList edges;
  /// True if `edges` are directed (conversion weights per paper Eq. 3).
  bool directed = false;
  /// k of the assignment; 0 when no assignment has been computed yet.
  int32_t num_partitions = 0;
  /// One label per vertex in [0, num_partitions), or empty when
  /// num_partitions is 0.
  std::vector<PartitionId> assignment;
};

/// Writes a session snapshot. Fails with InvalidArgument on out-of-range
/// edges or an assignment inconsistent with num_vertices/num_partitions.
Status WriteSessionSnapshot(const std::string& path,
                            const SessionSnapshot& snapshot);

/// Reads a session snapshot, validating every invariant WriteSessionSnapshot
/// enforces.
Result<SessionSnapshot> ReadSessionSnapshot(const std::string& path);

/// In-memory codec for one ShardedGraphStore shard slice: the same
/// magic + version + counts framing as the file formats above, applied to a
/// byte buffer. This is how the cross-process wire protocol (src/dist)
/// downloads shard-local CSR slices into ShardWorker processes, and the
/// intended seed of the distributed store's per-shard persistence format.
/// Layout (little-endian):
///   magic "SPSL" (4 bytes) | version u32 | begin i64 | end i64 |
///   num_arcs i64 | offsets ((end-begin+1) × i64) |
///   targets (num_arcs × i64) | weights (num_arcs × u32) |
///   weighted_degree ((end-begin) × i64)
/// Load counters are run state, not topology, and are not serialized.
void AppendShardSlice(const ShardedGraphStore::Shard& shard,
                      std::vector<uint8_t>* out);

/// Exact byte size AppendShardSlice will append for `shard` — lets
/// multi-slice encoders (the Setup slice download, which may stream
/// across many chunk frames) reserve their buffer once instead of growing
/// it realloc-by-realloc at GB scale.
size_t EncodedShardSliceSize(const ShardedGraphStore::Shard& shard);

/// Decodes one shard slice from the front of `bytes`, advancing `*consumed`
/// past it. Fails with IOError on truncation and InvalidArgument on bad
/// magic/version or internally inconsistent counts (non-monotonic offsets,
/// mismatched array sizes).
Result<ShardedGraphStore::Shard> DecodeShardSlice(
    std::span<const uint8_t> bytes, size_t* consumed);

/// One record of the append-only delta-log checkpoint
/// (stream/checkpoint_log.h): the graph change applied to the session and
/// the assignment transition it caused. Replaying base snapshot + records
/// reconstructs the exact session state without ever re-serializing the
/// full edge list — a checkpoint after a small delta costs O(delta), not
/// O(E).
struct DeltaLogRecord {
  /// The (coalesced) change applied via PartitioningSession::ApplyDelta.
  GraphDelta delta;
  /// Partition count after the change (Rescale records carry an empty
  /// delta and a new k).
  int32_t new_k = 0;
  /// Labels that differ from the pre-change assignment, ascending by
  /// vertex id: every new vertex plus every vertex label propagation
  /// migrated. O(moved + new), the real footprint of an incremental step.
  std::vector<std::pair<VertexId, PartitionId>> label_updates;
};

/// Appends the record's byte encoding to `out`. Layout (little-endian):
///   magic "SPDR" (4 bytes) | num_new_vertices i64 | num_added i64 |
///   num_removed i64 | new_k i32 | num_label_updates i64 |
///   added (num_added × {i64, i64}) | removed (num_removed × {i64, i64}) |
///   updates (num_label_updates × {vertex i64, label i32})
/// Integrity (per-record checksum, file header) is the log file's concern
/// — see stream/checkpoint_log.h for the framing that wraps this.
void AppendDeltaLogRecord(const DeltaLogRecord& record,
                          std::vector<uint8_t>* out);

/// Decodes one record from `bytes` starting at `*consumed`, advancing
/// `*consumed` past it. Fails with IOError on truncation and
/// InvalidArgument on bad magic or negative counts.
Result<DeltaLogRecord> DecodeDeltaLogRecord(std::span<const uint8_t> bytes,
                                            size_t* consumed);

}  // namespace spinner::graph_io

#endif  // SPINNER_GRAPH_BINARY_IO_H_
