// Binary graph format: a compact, fast-loading on-disk representation for
// repeated benchmarking on the same graph (text edge lists parse ~20×
// slower). Layout (little-endian):
//   magic "SPNB" (4 bytes) | version u32 | num_vertices i64 |
//   num_edges i64 | edges (num_edges × {src i64, dst i64})
#ifndef SPINNER_GRAPH_BINARY_IO_H_
#define SPINNER_GRAPH_BINARY_IO_H_

#include <string>

#include "common/result.h"
#include "graph/types.h"

namespace spinner::graph_io {

/// A graph as stored in the binary format.
struct BinaryGraph {
  int64_t num_vertices = 0;
  EdgeList edges;
};

/// Writes the binary format. Fails with InvalidArgument if an edge
/// references a vertex outside [0, num_vertices).
Status WriteBinaryGraph(const std::string& path, int64_t num_vertices,
                        const EdgeList& edges);

/// Reads the binary format. Fails with IOError on open/short-read and
/// InvalidArgument on bad magic, unsupported version, negative counts, or
/// out-of-range endpoints.
Result<BinaryGraph> ReadBinaryGraph(const std::string& path);

}  // namespace spinner::graph_io

#endif  // SPINNER_GRAPH_BINARY_IO_H_
