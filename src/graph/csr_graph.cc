#include "graph/csr_graph.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace spinner {

Result<CsrGraph> CsrGraph::FromEdges(int64_t num_vertices,
                                     const EdgeList& edges,
                                     std::span<const EdgeWeight> weights) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  if (!weights.empty() && weights.size() != edges.size()) {
    return Status::InvalidArgument(StrFormat(
        "weight count %zu does not match edge count %zu", weights.size(),
        edges.size()));
  }
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_vertices || e.dst < 0 ||
        e.dst >= num_vertices) {
      return Status::InvalidArgument(
          StrFormat("edge (%lld,%lld) out of range [0,%lld)",
                    static_cast<long long>(e.src),
                    static_cast<long long>(e.dst),
                    static_cast<long long>(num_vertices)));
    }
  }

  CsrGraph g;
  g.num_vertices_ = num_vertices;
  g.offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges) ++g.offsets_[e.src + 1];
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  const auto m = static_cast<int64_t>(edges.size());
  g.targets_.resize(m);
  g.weights_.resize(m);
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t i = 0; i < edges.size(); ++i) {
    const int64_t pos = cursor[edges[i].src]++;
    g.targets_[pos] = edges[i].dst;
    g.weights_[pos] = weights.empty() ? 1u : weights[i];
  }

  // Sort each vertex's arcs by (target, weight) so that Neighbors() is
  // ordered and HasArc() can binary-search.
  for (VertexId v = 0; v < num_vertices; ++v) {
    const int64_t lo = g.offsets_[v];
    const int64_t hi = g.offsets_[v + 1];
    std::vector<std::pair<VertexId, EdgeWeight>> row;
    row.reserve(hi - lo);
    for (int64_t i = lo; i < hi; ++i) {
      row.emplace_back(g.targets_[i], g.weights_[i]);
    }
    std::sort(row.begin(), row.end());
    for (int64_t i = lo; i < hi; ++i) {
      g.targets_[i] = row[i - lo].first;
      g.weights_[i] = row[i - lo].second;
    }
  }

  g.weighted_degree_.assign(num_vertices, 0);
  for (VertexId v = 0; v < num_vertices; ++v) {
    int64_t wd = 0;
    for (EdgeWeight w : g.Weights(v)) wd += w;
    g.weighted_degree_[v] = wd;
    g.total_arc_weight_ += wd;
  }
  return g;
}

bool CsrGraph::IsSymmetric() const {
  for (VertexId u = 0; u < num_vertices_; ++u) {
    auto nbrs = Neighbors(u);
    auto ws = Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      // Find arc v->u with equal weight.
      auto vn = Neighbors(v);
      auto vw = Weights(v);
      auto it = std::lower_bound(vn.begin(), vn.end(), u);
      bool found = false;
      while (it != vn.end() && *it == u) {
        if (vw[it - vn.begin()] == ws[i]) {
          found = true;
          break;
        }
        ++it;
      }
      if (!found) return false;
    }
  }
  return true;
}

bool CsrGraph::HasArc(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeList CsrGraph::ToEdgeList() const {
  EdgeList out;
  out.reserve(targets_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId u : Neighbors(v)) out.push_back({v, u});
  }
  return out;
}

}  // namespace spinner
