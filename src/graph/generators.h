// Synthetic graph generators: the evaluation substrate.
//
// The paper's scalability experiments use Watts-Strogatz graphs; its
// real-world datasets (Twitter, LiveJournal, Tuenti, ...) are proprietary or
// impractically large, so the benches use topology-matched stand-ins:
// Barabási-Albert for hub-heavy social graphs (Twitter), Watts-Strogatz for
// small-world graphs, R-MAT for skewed web-like graphs, and a planted
// partition (stochastic block model) for graphs with known community
// structure. All generators are deterministic in `seed`.
#ifndef SPINNER_GRAPH_GENERATORS_H_
#define SPINNER_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "graph/types.h"

namespace spinner {

/// A generated graph: `edges` lists each (un)directed edge exactly once.
struct GeneratedGraph {
  int64_t num_vertices = 0;
  EdgeList edges;
  /// True if `edges` should be interpreted as directed edges.
  bool directed = false;
};

/// Watts-Strogatz small-world graph (paper §V.B): ring lattice where every
/// vertex connects to its `neighbors_per_side` successors, then each edge's
/// far endpoint is rewired with probability `beta` to a uniform vertex.
/// Mean degree is 2·neighbors_per_side. Undirected.
Result<GeneratedGraph> WattsStrogatz(int64_t num_vertices,
                                     int neighbors_per_side, double beta,
                                     uint64_t seed);

/// Barabási-Albert preferential attachment: starts from a `m0`-clique, each
/// new vertex attaches `m` edges preferentially to high-degree vertices.
/// Produces heavy-tailed degree distributions with hubs (Twitter-like).
/// Undirected.
Result<GeneratedGraph> BarabasiAlbert(int64_t num_vertices, int m0, int m,
                                      uint64_t seed);

/// Erdős-Rényi G(n, m): `num_edges` distinct undirected edges chosen
/// uniformly at random (no self-loops).
Result<GeneratedGraph> ErdosRenyi(int64_t num_vertices, int64_t num_edges,
                                  uint64_t seed);

/// R-MAT recursive-matrix generator with quadrant probabilities a,b,c,d
/// (a+b+c+d = 1). 2^scale vertices, edge_factor·2^scale directed edges.
/// Skewed, web-like. Directed.
Result<GeneratedGraph> RMat(int scale, int edge_factor, double a, double b,
                            double c, uint64_t seed);

/// Planted partition / stochastic block model: `num_blocks` communities of
/// `block_size` vertices; within-community edges appear with probability
/// p_in, cross-community with p_out. Ground truth for locality tests.
/// Undirected.
Result<GeneratedGraph> PlantedPartition(int num_blocks, int64_t block_size,
                                        double p_in, double p_out,
                                        uint64_t seed);

/// Deterministic structured graphs for unit tests.
GeneratedGraph Ring(int64_t num_vertices);
GeneratedGraph Path(int64_t num_vertices);
GeneratedGraph Star(int64_t num_leaves);  // vertex 0 is the hub
GeneratedGraph Complete(int64_t num_vertices);
GeneratedGraph Grid(int64_t rows, int64_t cols);

}  // namespace spinner

#endif  // SPINNER_GRAPH_GENERATORS_H_
