// Fundamental graph typedefs shared by every module.
#ifndef SPINNER_GRAPH_TYPES_H_
#define SPINNER_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

namespace spinner {

/// Vertex identifier. Vertices of an n-vertex graph are the dense range
/// [0, n); loaders remap external ids if needed.
using VertexId = int64_t;

/// Partition (label) identifier; the paper's l ∈ {l_1..l_k} as 0-based ints.
using PartitionId = int32_t;

/// Edge weight. After directed→undirected conversion weights are 1 or 2
/// (paper Eq. 3): the number of directed edges the arc stands for.
using EdgeWeight = uint32_t;

/// Sentinel for "not yet assigned to any partition".
inline constexpr PartitionId kNoPartition = -1;

/// A directed edge (or an undirected edge listed once) in an edge list.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Plain edge-list representation used by loaders and generators.
using EdgeList = std::vector<Edge>;

}  // namespace spinner

#endif  // SPINNER_GRAPH_TYPES_H_
