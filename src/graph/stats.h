// Descriptive statistics over a CSR graph, used by benches to document the
// stand-in datasets they generate (|V|, |E|, degree skew).
#ifndef SPINNER_GRAPH_STATS_H_
#define SPINNER_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/csr_graph.h"

namespace spinner {

/// Summary of a graph's size and degree distribution.
struct GraphStats {
  int64_t num_vertices = 0;
  int64_t num_arcs = 0;
  int64_t total_arc_weight = 0;
  int64_t min_degree = 0;
  int64_t max_degree = 0;
  double mean_degree = 0.0;
  /// Degree of the 99th-percentile vertex — hubs show up here.
  int64_t p99_degree = 0;
};

/// Computes stats in one pass (plus a partial sort for the percentile).
GraphStats ComputeGraphStats(const CsrGraph& graph);

/// One-line human-readable rendering.
std::string ToString(const GraphStats& stats);

}  // namespace spinner

#endif  // SPINNER_GRAPH_STATS_H_
