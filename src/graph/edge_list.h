// Helpers over plain edge lists: normalization, bounds, degree counting.
#ifndef SPINNER_GRAPH_EDGE_LIST_H_
#define SPINNER_GRAPH_EDGE_LIST_H_

#include <cstdint>

#include "graph/types.h"

namespace spinner {

/// Largest vertex id referenced by any edge; -1 for an empty list.
VertexId MaxVertexId(const EdgeList& edges);

/// Sorts by (src, dst) and removes exact duplicates in place.
void SortAndDedup(EdgeList* edges);

/// Removes self-loop edges (src == dst) in place, preserving order.
void RemoveSelfLoops(EdgeList* edges);

/// Out-degree of every vertex in [0, num_vertices). Edges referencing
/// vertices outside the range are a programming error (CHECK).
std::vector<int64_t> OutDegrees(const EdgeList& edges, int64_t num_vertices);

/// True iff every endpoint lies in [0, num_vertices).
bool EdgesInRange(const EdgeList& edges, int64_t num_vertices);

}  // namespace spinner

#endif  // SPINNER_GRAPH_EDGE_LIST_H_
