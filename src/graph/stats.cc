#include "graph/stats.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace spinner {

GraphStats ComputeGraphStats(const CsrGraph& graph) {
  GraphStats s;
  s.num_vertices = graph.NumVertices();
  s.num_arcs = graph.NumArcs();
  s.total_arc_weight = graph.TotalArcWeight();
  if (s.num_vertices == 0) return s;

  std::vector<int64_t> degrees(s.num_vertices);
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    degrees[v] = graph.OutDegree(v);
  }
  s.min_degree = *std::min_element(degrees.begin(), degrees.end());
  s.max_degree = *std::max_element(degrees.begin(), degrees.end());
  s.mean_degree =
      static_cast<double>(s.num_arcs) / static_cast<double>(s.num_vertices);
  const auto p99_idx =
      static_cast<size_t>(0.99 * static_cast<double>(s.num_vertices - 1));
  std::nth_element(degrees.begin(), degrees.begin() + p99_idx, degrees.end());
  s.p99_degree = degrees[p99_idx];
  return s;
}

std::string ToString(const GraphStats& s) {
  return StrFormat(
      "|V|=%s arcs=%s weight=%s degree[min=%lld mean=%.1f p99=%lld max=%lld]",
      WithCommas(s.num_vertices).c_str(), WithCommas(s.num_arcs).c_str(),
      WithCommas(s.total_arc_weight).c_str(),
      static_cast<long long>(s.min_degree), s.mean_degree,
      static_cast<long long>(s.p99_degree),
      static_cast<long long>(s.max_degree));
}

}  // namespace spinner
