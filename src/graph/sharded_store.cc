#include "graph/sharded_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace spinner {

Result<ShardedGraphStore> ShardedGraphStore::Build(const CsrGraph& converted,
                                                   int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument(
        StrFormat("num_shards must be >= 1 (got %d)", num_shards));
  }
  ShardedGraphStore store;
  store.num_vertices_ = converted.NumVertices();
  store.num_arcs_ = converted.NumArcs();
  store.total_arc_weight_ = converted.TotalArcWeight();
  store.labels_.assign(store.num_vertices_, kNoPartition);
  store.shards_.resize(num_shards);
  store.rebuild_counts_.assign(num_shards, 0);

  // Block-aligned range partition: shard s owns blocks
  // [s·B/S, (s+1)·B/S), so boundaries never split a block and the block
  // decomposition is independent of S (see header).
  const int64_t blocks = store.NumBlocks();
  for (int s = 0; s < num_shards; ++s) {
    Shard& shard = store.shards_[s];
    const int64_t block_begin = blocks * s / num_shards;
    const int64_t block_end = blocks * (s + 1) / num_shards;
    shard.begin = std::min(block_begin * kBlockSize, store.num_vertices_);
    shard.end = std::min(block_end * kBlockSize, store.num_vertices_);
    store.FillShard(converted, s);
    ++store.rebuild_counts_[s];
  }
  return store;
}

void ShardedGraphStore::FillShard(const CsrGraph& converted, int s) {
  Shard& shard = shards_[s];
  const int64_t n_local = shard.NumOwnedVertices();
  shard.offsets.assign(static_cast<size_t>(n_local) + 1, 0);
  shard.weighted_degree.assign(static_cast<size_t>(n_local), 0);
  int64_t arcs = 0;
  for (VertexId v = shard.begin; v < shard.end; ++v) {
    arcs += converted.OutDegree(v);
  }
  shard.targets.clear();
  shard.weights.clear();
  shard.targets.reserve(static_cast<size_t>(arcs));
  shard.weights.reserve(static_cast<size_t>(arcs));
  for (VertexId v = shard.begin; v < shard.end; ++v) {
    const auto neighbors = converted.Neighbors(v);
    const auto weights = converted.Weights(v);
    shard.targets.insert(shard.targets.end(), neighbors.begin(),
                         neighbors.end());
    shard.weights.insert(shard.weights.end(), weights.begin(), weights.end());
    shard.offsets[v - shard.begin + 1] =
        static_cast<int64_t>(shard.targets.size());
    shard.weighted_degree[v - shard.begin] = converted.WeightedDegree(v);
  }
  shard.RebuildInvDegrees();
}

int ShardedGraphStore::ShardOf(VertexId v) const {
  // Shards are contiguous and sorted by range: binary search the first
  // shard whose end exceeds v. Empty tail shards never win.
  int lo = 0;
  int hi = num_shards() - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (v < shards_[mid].end) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void ShardedGraphStore::ResetLoads(int num_partitions) {
  for (Shard& shard : shards_) {
    shard.loads.assign(static_cast<size_t>(num_partitions), 0);
  }
}

std::vector<int64_t> ShardedGraphStore::MergedLoads() const {
  std::vector<int64_t> merged;
  if (shards_.empty()) return merged;
  merged.assign(shards_[0].loads.size(), 0);
  // Fixed shard-order reduction: bit-identical for any thread count.
  for (const Shard& shard : shards_) {
    for (size_t l = 0; l < shard.loads.size(); ++l) {
      merged[l] += shard.loads[l];
    }
  }
  return merged;
}

Status ShardedGraphStore::Update(const CsrGraph& new_converted,
                                 std::span<const VertexId> dirty_vertices) {
  if (new_converted.NumVertices() != num_vertices_) {
    return Status::InvalidArgument(StrFormat(
        "Update requires an unchanged vertex count (store has %lld, graph "
        "has %lld); rebuild the store for a grown graph",
        static_cast<long long>(num_vertices_),
        static_cast<long long>(new_converted.NumVertices())));
  }
  std::vector<bool> dirty(shards_.size(), false);
  for (const VertexId v : dirty_vertices) {
    if (v < 0 || v >= num_vertices_) {
      return Status::InvalidArgument(
          StrFormat("dirty vertex %lld outside [0, %lld)",
                    static_cast<long long>(v),
                    static_cast<long long>(num_vertices_)));
    }
    dirty[ShardOf(v)] = true;
  }
  for (int s = 0; s < num_shards(); ++s) {
    if (!dirty[s]) continue;
    FillShard(new_converted, s);
    ++rebuild_counts_[s];
  }
  num_arcs_ = new_converted.NumArcs();
  total_arc_weight_ = new_converted.TotalArcWeight();
  return Status::OK();
}

}  // namespace spinner
