// ShardedGraphStore: the converted (symmetric, weighted) graph range-
// partitioned into S shards, each owning a shard-local CSR slice, its slice
// of the label array and per-partition load counters. This is the in-
// process foundation for the distributed store the ROADMAP targets: every
// piece of mutable partitioning state has exactly one owning shard, cross-
// shard information flows only through explicit merges, and graph deltas
// rebuild only the shards owning the touched vertices.
//
// Determinism contract: shard boundaries are aligned to fixed-size vertex
// blocks (kBlockSize) that do not depend on the shard count. Any
// computation that works block-at-a-time (the shard-parallel Spinner
// superstep in spinner/sharded_program.cc) therefore sees identical block
// contents for every S, which is what makes partitioning results
// bit-identical across shard and thread counts, S = 1 included.
//
// Threading contract: during a parallel phase, shard s may be mutated only
// by the task processing shard s (labels in [begin, end), its own loads),
// while every shard's CSR and the whole label array are readable by all
// tasks. Merges (MergedLoads) run single-threaded between phases, in fixed
// shard order.
#ifndef SPINNER_GRAPH_SHARDED_STORE_H_
#define SPINNER_GRAPH_SHARDED_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace spinner {

class ShardedGraphStore {
 public:
  /// Vertex-block granularity of shard boundaries. Fixed so that block
  /// contents are independent of the shard count (see header comment).
  static constexpr int64_t kBlockSize = 256;

  /// One shard: a contiguous, block-aligned vertex range with its CSR
  /// slice, cached weighted degrees and per-partition load counters.
  struct Shard {
    VertexId begin = 0;  // first owned vertex
    VertexId end = 0;    // one past the last owned vertex

    /// Local CSR over [begin, end): offsets has end-begin+1 entries into
    /// targets/weights; targets hold *global* vertex ids.
    std::vector<int64_t> offsets;
    std::vector<VertexId> targets;
    std::vector<EdgeWeight> weights;
    /// Cached weighted degree per owned vertex.
    std::vector<int64_t> weighted_degree;
    /// Cached 1 / weighted_degree (0 for isolated vertices): Eq. 8's
    /// locality term is freq · (1/deg), and the reciprocal is loop
    /// invariant across supersteps, so the division is paid once per
    /// build instead of once per vertex per superstep. Derived — rebuilt
    /// by RebuildInvDegrees(), never serialized.
    std::vector<double> inv_weighted_degree;

    /// Shard-local per-partition loads b_s(l); k entries after ResetLoads.
    std::vector<int64_t> loads;

    int64_t NumOwnedVertices() const { return end - begin; }
    int64_t NumArcs() const { return static_cast<int64_t>(targets.size()); }

    /// Accessors take *global* vertex ids in [begin, end).
    int64_t OutDegree(VertexId v) const {
      return offsets[v - begin + 1] - offsets[v - begin];
    }
    std::span<const VertexId> Neighbors(VertexId v) const {
      return {targets.data() + offsets[v - begin],
              static_cast<size_t>(OutDegree(v))};
    }
    std::span<const EdgeWeight> WeightsOf(VertexId v) const {
      return {weights.data() + offsets[v - begin],
              static_cast<size_t>(OutDegree(v))};
    }
    int64_t WeightedDegreeOf(VertexId v) const {
      return weighted_degree[v - begin];
    }
    double InvWeightedDegreeOf(VertexId v) const {
      return inv_weighted_degree[v - begin];
    }

    /// Recomputes inv_weighted_degree from weighted_degree. Every site
    /// that fills or deserializes weighted_degree must call this before
    /// the shard reaches a superstep body.
    void RebuildInvDegrees() {
      inv_weighted_degree.resize(weighted_degree.size());
      for (size_t i = 0; i < weighted_degree.size(); ++i) {
        inv_weighted_degree[i] =
            weighted_degree[i] > 0
                ? 1.0 / static_cast<double>(weighted_degree[i])
                : 0.0;
      }
    }
  };

  ShardedGraphStore() = default;

  /// Slices `converted` into `num_shards` block-aligned shards. Shards at
  /// the tail may own zero vertices when there are fewer blocks than
  /// shards; that is fine and keeps results independent of S.
  static Result<ShardedGraphStore> Build(const CsrGraph& converted,
                                         int num_shards);

  // --- Topology ----------------------------------------------------------

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t NumVertices() const { return num_vertices_; }
  int64_t NumArcs() const { return num_arcs_; }
  int64_t TotalArcWeight() const { return total_arc_weight_; }

  /// Number of kBlockSize vertex blocks (== ceil(n / kBlockSize)).
  int64_t NumBlocks() const {
    return (num_vertices_ + kBlockSize - 1) / kBlockSize;
  }

  /// The shard owning vertex v.
  int ShardOf(VertexId v) const;

  const Shard& shard(int s) const { return shards_[s]; }
  Shard& mutable_shard(int s) { return shards_[s]; }

  // --- Labels (merged global view; shard-local write ownership) ----------

  /// The label array: one entry per vertex. The merged global view — reads
  /// may come from anywhere; during a parallel phase shard s writes only
  /// its slice [shard(s).begin, shard(s).end).
  std::vector<PartitionId>& labels() { return labels_; }
  const std::vector<PartitionId>& labels() const { return labels_; }

  // --- Loads -------------------------------------------------------------

  /// Resizes every shard's load counters to `num_partitions` and zeroes
  /// them (start of a partitioning run, or a rescale to a new k).
  void ResetLoads(int num_partitions);

  /// Global loads b(l) = Σ_s b_s(l), reduced in fixed shard order.
  std::vector<int64_t> MergedLoads() const;

  // --- Incremental update ------------------------------------------------

  /// Re-slices only the shards owning a vertex in `dirty_vertices` from
  /// `new_converted` (same vertex count — a grown graph needs a full
  /// Build(), since block alignment moves every boundary). Labels and
  /// loads are left untouched; the caller re-runs label propagation.
  /// Fails on a vertex-count mismatch or out-of-range dirty vertex.
  Status Update(const CsrGraph& new_converted,
                std::span<const VertexId> dirty_vertices);

  /// How many times shard s has been (re)built — Build counts once per
  /// shard; Update increments only the dirty shards. Observability hook
  /// for the "deltas touch only owning shards" contract.
  int64_t rebuild_count(int s) const { return rebuild_counts_[s]; }

 private:
  /// Copies shard s's CSR slice out of `converted`.
  void FillShard(const CsrGraph& converted, int s);

  int64_t num_vertices_ = 0;
  int64_t num_arcs_ = 0;
  int64_t total_arc_weight_ = 0;
  std::vector<Shard> shards_;
  std::vector<PartitionId> labels_;
  std::vector<int64_t> rebuild_counts_;
};

}  // namespace spinner

#endif  // SPINNER_GRAPH_SHARDED_STORE_H_
