#include "graph/conversion.h"

#include <algorithm>
#include <tuple>

#include "common/string_util.h"
#include "graph/edge_list.h"

namespace spinner {

namespace {

Status ValidateRange(int64_t num_vertices, const EdgeList& edges) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  if (!EdgesInRange(edges, num_vertices)) {
    return Status::InvalidArgument(
        StrFormat("edge endpoint out of range [0,%lld)",
                  static_cast<long long>(num_vertices)));
  }
  return Status::OK();
}

}  // namespace

Result<CsrGraph> ConvertToWeightedUndirected(int64_t num_vertices,
                                             const EdgeList& directed_edges) {
  SPINNER_RETURN_IF_ERROR(ValidateRange(num_vertices, directed_edges));

  // Canonicalize each directed edge to (min, max, direction-bit), then a
  // single sorted pass merges the two directions of each unordered pair.
  struct Arc {
    VertexId lo;
    VertexId hi;
    uint8_t dir;  // bit 0: lo->hi present, bit 1: hi->lo present

    bool operator<(const Arc& o) const {
      return std::tie(lo, hi) < std::tie(o.lo, o.hi);
    }
  };
  std::vector<Arc> arcs;
  arcs.reserve(directed_edges.size());
  for (const Edge& e : directed_edges) {
    if (e.src == e.dst) continue;  // self-loops carry no cut information
    if (e.src < e.dst) {
      arcs.push_back({e.src, e.dst, 1});
    } else {
      arcs.push_back({e.dst, e.src, 2});
    }
  }
  std::sort(arcs.begin(), arcs.end());

  EdgeList sym_edges;
  std::vector<EdgeWeight> sym_weights;
  sym_edges.reserve(arcs.size() * 2);
  sym_weights.reserve(arcs.size() * 2);
  size_t i = 0;
  while (i < arcs.size()) {
    uint8_t dir = 0;
    const VertexId lo = arcs[i].lo;
    const VertexId hi = arcs[i].hi;
    while (i < arcs.size() && arcs[i].lo == lo && arcs[i].hi == hi) {
      dir |= arcs[i].dir;
      ++i;
    }
    const EdgeWeight w = (dir == 3) ? 2u : 1u;  // both directions => 2
    sym_edges.push_back({lo, hi});
    sym_weights.push_back(w);
    sym_edges.push_back({hi, lo});
    sym_weights.push_back(w);
  }
  return CsrGraph::FromEdges(num_vertices, sym_edges, sym_weights);
}

Result<CsrGraph> BuildSymmetric(int64_t num_vertices, const EdgeList& edges) {
  SPINNER_RETURN_IF_ERROR(ValidateRange(num_vertices, edges));

  EdgeList canonical;
  canonical.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    canonical.push_back(
        {std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
  SortAndDedup(&canonical);

  EdgeList sym;
  sym.reserve(canonical.size() * 2);
  for (const Edge& e : canonical) {
    sym.push_back(e);
    sym.push_back({e.dst, e.src});
  }
  return CsrGraph::FromEdges(num_vertices, sym);
}

}  // namespace spinner
