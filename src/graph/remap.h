// Vertex id remapping: public datasets (SNAP and friends) use sparse,
// arbitrary vertex ids; every algorithm here expects the dense range
// [0, n). CompactVertexIds rewrites an edge list in place and returns the
// inverse mapping so results can be reported in original ids.
#ifndef SPINNER_GRAPH_REMAP_H_
#define SPINNER_GRAPH_REMAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace spinner {

/// Result of compaction: `original_id[new_id]` recovers the input ids.
struct VertexIdMapping {
  /// Dense id → original id, sorted ascending by original id (so the
  /// remap is deterministic regardless of edge order).
  std::vector<VertexId> original_id;

  /// Number of distinct vertices.
  int64_t num_vertices() const {
    return static_cast<int64_t>(original_id.size());
  }
};

/// Rewrites `edges` so vertex ids form the dense range [0, n), preserving
/// edge order. Ids are assigned by ascending original id. Vertices that
/// appear in no edge do not get ids (they carry no information for
/// partitioning).
VertexIdMapping CompactVertexIds(EdgeList* edges);

/// Translates a per-dense-vertex vector (e.g. a partition assignment) back
/// to (original_id, value) pairs, in ascending original-id order.
template <typename T>
std::vector<std::pair<VertexId, T>> MapToOriginalIds(
    const VertexIdMapping& mapping, const std::vector<T>& values) {
  std::vector<std::pair<VertexId, T>> out;
  out.reserve(values.size());
  for (std::size_t dense = 0; dense < values.size(); ++dense) {
    out.emplace_back(mapping.original_id[dense], values[dense]);
  }
  return out;
}

}  // namespace spinner

#endif  // SPINNER_GRAPH_REMAP_H_
