#include "graph/remap.h"

#include <algorithm>
#include <unordered_map>

namespace spinner {

VertexIdMapping CompactVertexIds(EdgeList* edges) {
  VertexIdMapping mapping;
  mapping.original_id.reserve(edges->size());
  for (const Edge& e : *edges) {
    mapping.original_id.push_back(e.src);
    mapping.original_id.push_back(e.dst);
  }
  std::sort(mapping.original_id.begin(), mapping.original_id.end());
  mapping.original_id.erase(
      std::unique(mapping.original_id.begin(), mapping.original_id.end()),
      mapping.original_id.end());

  std::unordered_map<VertexId, VertexId> to_dense;
  to_dense.reserve(mapping.original_id.size() * 2);
  for (size_t dense = 0; dense < mapping.original_id.size(); ++dense) {
    to_dense[mapping.original_id[dense]] = static_cast<VertexId>(dense);
  }
  for (Edge& e : *edges) {
    e.src = to_dense[e.src];
    e.dst = to_dense[e.dst];
  }
  return mapping;
}

}  // namespace spinner
