#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "common/string_util.h"

namespace spinner::graph_io {

namespace {

bool IsCommentOrBlank(std::string_view line) {
  line = Trim(line);
  return line.empty() || line[0] == '#' || line[0] == '%';
}

}  // namespace

Result<EdgeList> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open edge list file: " + path);
  }
  EdgeList edges;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    const auto fields = SplitWhitespace(line);
    int64_t src = 0;
    int64_t dst = 0;
    if (fields.size() < 2 || !ParseInt64(fields[0], &src) ||
        !ParseInt64(fields[1], &dst) || src < 0 || dst < 0) {
      return Status::InvalidArgument(StrFormat(
          "%s:%lld: malformed edge line: '%s'", path.c_str(),
          static_cast<long long>(line_no), std::string(Trim(line)).c_str()));
    }
    edges.push_back({src, dst});
  }
  if (in.bad()) {
    return Status::IOError("read error on: " + path);
  }
  return edges;
}

Status WriteEdgeList(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (const Edge& e : edges) {
    out << e.src << ' ' << e.dst << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write error on: " + path);
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> ReadPartitioning(const std::string& path,
                                                  int64_t num_vertices) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open partition file: " + path);
  }
  std::vector<PartitionId> assignment(num_vertices, kNoPartition);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    const auto fields = SplitWhitespace(line);
    int64_t vertex = 0;
    int64_t part = 0;
    if (fields.size() < 2 || !ParseInt64(fields[0], &vertex) ||
        !ParseInt64(fields[1], &part) || part < 0) {
      return Status::InvalidArgument(StrFormat(
          "%s:%lld: malformed partition line: '%s'", path.c_str(),
          static_cast<long long>(line_no), std::string(Trim(line)).c_str()));
    }
    if (vertex < 0 || vertex >= num_vertices) {
      return Status::OutOfRange(StrFormat(
          "%s:%lld: vertex %lld outside [0,%lld)", path.c_str(),
          static_cast<long long>(line_no), static_cast<long long>(vertex),
          static_cast<long long>(num_vertices)));
    }
    if (assignment[vertex] != kNoPartition) {
      return Status::InvalidArgument(StrFormat(
          "%s:%lld: vertex %lld assigned twice", path.c_str(),
          static_cast<long long>(line_no), static_cast<long long>(vertex)));
    }
    assignment[vertex] = static_cast<PartitionId>(part);
  }
  if (in.bad()) {
    return Status::IOError("read error on: " + path);
  }
  for (int64_t v = 0; v < num_vertices; ++v) {
    if (assignment[v] == kNoPartition) {
      return Status::InvalidArgument(StrFormat(
          "vertex %lld has no partition in %s", static_cast<long long>(v),
          path.c_str()));
    }
  }
  return assignment;
}

Status WritePartitioning(const std::string& path,
                         const std::vector<PartitionId>& assignment) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (size_t v = 0; v < assignment.size(); ++v) {
    out << v << ' ' << assignment[v] << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write error on: " + path);
  }
  return Status::OK();
}

}  // namespace spinner::graph_io
