// Directed → weighted-undirected conversion (paper §III.A, Eq. 3).
//
// Spinner optimizes the number of messages crossing partitions. In Pregel,
// messages flow along directed edges, so a pair of reciprocal directed edges
// between u and v carries twice the traffic of a single edge. The conversion
// produces a symmetric graph whose arc weights count that traffic:
//   w(u,v) = 1 if exactly one of (u,v), (v,u) is in the directed graph,
//   w(u,v) = 2 if both are.
//
// This is the offline reference implementation; the Pregel-native
// NeighborPropagation/NeighborDiscovery phases in src/spinner compute the
// same result in-engine, and a test cross-checks the two.
#ifndef SPINNER_GRAPH_CONVERSION_H_
#define SPINNER_GRAPH_CONVERSION_H_

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace spinner {

/// Converts a directed edge list into the symmetric weighted CSR form.
/// Self-loops and duplicate directed edges are dropped (a duplicate carries
/// no extra structural information for partitioning). Every undirected edge
/// appears as two arcs (u→v and v→u) of equal weight ∈ {1,2}.
Result<CsrGraph> ConvertToWeightedUndirected(int64_t num_vertices,
                                             const EdgeList& directed_edges);

/// Builds the symmetric weight-1 CSR form of an undirected edge list (each
/// edge listed once). Self-loops and duplicates are dropped.
Result<CsrGraph> BuildSymmetric(int64_t num_vertices, const EdgeList& edges);

}  // namespace spinner

#endif  // SPINNER_GRAPH_CONVERSION_H_
