#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "graph/edge_list.h"

namespace spinner {

namespace {

/// 64-bit key for an undirected edge, used for dedup sets.
uint64_t UndirectedKey(VertexId a, VertexId b) {
  const auto lo = static_cast<uint64_t>(std::min(a, b));
  const auto hi = static_cast<uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

}  // namespace

Result<GeneratedGraph> WattsStrogatz(int64_t num_vertices,
                                     int neighbors_per_side, double beta,
                                     uint64_t seed) {
  if (num_vertices < 3) {
    return Status::InvalidArgument("Watts-Strogatz needs >= 3 vertices");
  }
  if (neighbors_per_side < 1 ||
      2 * neighbors_per_side >= num_vertices) {
    return Status::InvalidArgument(
        "neighbors_per_side must be in [1, (n-1)/2]");
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0,1]");
  }

  GeneratedGraph g;
  g.num_vertices = num_vertices;
  g.directed = false;
  g.edges.reserve(num_vertices * neighbors_per_side);

  // Dedup set guards rewired targets; lattice edges are unique by design.
  std::unordered_set<uint64_t> present;
  present.reserve(num_vertices * neighbors_per_side * 2);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (int j = 1; j <= neighbors_per_side; ++j) {
      present.insert(UndirectedKey(v, (v + j) % num_vertices));
    }
  }

  for (VertexId v = 0; v < num_vertices; ++v) {
    for (int j = 1; j <= neighbors_per_side; ++j) {
      const VertexId lattice_target = (v + j) % num_vertices;
      VertexId target = lattice_target;
      Rng rng(HashCombine(seed, static_cast<uint64_t>(v),
                          static_cast<uint64_t>(j)));
      if (rng.Bernoulli(beta)) {
        // Rewire: pick a uniform non-self target not already connected.
        // Bounded retries keep generation O(1) per edge; on exhaustion the
        // lattice edge is kept, matching the standard WS formulation where
        // rewiring is skipped if it would duplicate.
        for (int attempt = 0; attempt < 16; ++attempt) {
          const VertexId cand =
              static_cast<VertexId>(rng.Uniform(num_vertices));
          if (cand == v) continue;
          const uint64_t key = UndirectedKey(v, cand);
          if (present.count(key)) continue;
          present.erase(UndirectedKey(v, lattice_target));
          present.insert(key);
          target = cand;
          break;
        }
      }
      g.edges.push_back({v, target});
    }
  }
  return g;
}

Result<GeneratedGraph> BarabasiAlbert(int64_t num_vertices, int m0, int m,
                                      uint64_t seed) {
  if (m0 < 2 || m < 1 || m > m0 || num_vertices < m0) {
    return Status::InvalidArgument(
        "BarabasiAlbert requires m0 >= 2, 1 <= m <= m0 <= n");
  }
  GeneratedGraph g;
  g.num_vertices = num_vertices;
  g.directed = false;

  // `endpoints` holds one entry per edge endpoint; sampling uniformly from
  // it implements preferential attachment (probability ∝ degree).
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * (num_vertices * m + m0 * m0));

  // Seed clique over [0, m0).
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      g.edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  Rng rng(SplitMix64(seed));
  std::vector<VertexId> chosen;
  for (VertexId v = m0; v < num_vertices; ++v) {
    chosen.clear();
    int attempts = 0;
    while (static_cast<int>(chosen.size()) < m && attempts < 64 * m) {
      ++attempts;
      const VertexId target = endpoints[rng.Uniform(endpoints.size())];
      if (target == v) continue;
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      chosen.push_back(target);
    }
    for (VertexId target : chosen) {
      g.edges.push_back({v, target});
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return g;
}

Result<GeneratedGraph> ErdosRenyi(int64_t num_vertices, int64_t num_edges,
                                  uint64_t seed) {
  if (num_vertices < 2) {
    return Status::InvalidArgument("ErdosRenyi needs >= 2 vertices");
  }
  const int64_t max_edges = num_vertices * (num_vertices - 1) / 2;
  if (num_edges < 0 || num_edges > max_edges) {
    return Status::InvalidArgument(
        StrFormat("num_edges %lld outside [0, %lld]",
                  static_cast<long long>(num_edges),
                  static_cast<long long>(max_edges)));
  }
  GeneratedGraph g;
  g.num_vertices = num_vertices;
  g.directed = false;
  std::unordered_set<uint64_t> present;
  present.reserve(num_edges * 2);
  Rng rng(SplitMix64(seed ^ 0xE2D5ULL));
  while (static_cast<int64_t>(g.edges.size()) < num_edges) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(num_vertices));
    const VertexId v = static_cast<VertexId>(rng.Uniform(num_vertices));
    if (u == v) continue;
    const uint64_t key = UndirectedKey(u, v);
    if (!present.insert(key).second) continue;
    g.edges.push_back({u, v});
  }
  return g;
}

Result<GeneratedGraph> RMat(int scale, int edge_factor, double a, double b,
                            double c, uint64_t seed) {
  if (scale < 1 || scale > 30) {
    return Status::InvalidArgument("RMat scale must be in [1,30]");
  }
  if (edge_factor < 1) {
    return Status::InvalidArgument("edge_factor must be >= 1");
  }
  const double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0) {
    return Status::InvalidArgument("RMat probabilities must be >= 0, sum<=1");
  }
  GeneratedGraph g;
  g.num_vertices = int64_t{1} << scale;
  g.directed = true;
  const int64_t num_edges = g.num_vertices * edge_factor;
  g.edges.reserve(num_edges);
  Rng rng(SplitMix64(seed ^ 0x52A7ULL));
  for (int64_t i = 0; i < num_edges; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < a + b) {
        dst |= int64_t{1} << bit;
      } else if (r < a + b + c) {
        src |= int64_t{1} << bit;
      } else {
        src |= int64_t{1} << bit;
        dst |= int64_t{1} << bit;
      }
    }
    if (src == dst) {
      --i;  // reject self-loop, redraw
      continue;
    }
    g.edges.push_back({src, dst});
  }
  return g;
}

Result<GeneratedGraph> PlantedPartition(int num_blocks, int64_t block_size,
                                        double p_in, double p_out,
                                        uint64_t seed) {
  if (num_blocks < 1 || block_size < 1) {
    return Status::InvalidArgument("need >= 1 block of >= 1 vertex");
  }
  if (p_in < 0 || p_in > 1 || p_out < 0 || p_out > 1) {
    return Status::InvalidArgument("probabilities must be in [0,1]");
  }
  GeneratedGraph g;
  g.num_vertices = static_cast<int64_t>(num_blocks) * block_size;
  g.directed = false;
  // Bernoulli per pair is O(n^2): acceptable for the test/bench sizes this
  // generator targets (up to ~hundred thousand pairs in communities).
  for (VertexId u = 0; u < g.num_vertices; ++u) {
    for (VertexId v = u + 1; v < g.num_vertices; ++v) {
      const bool same_block = (u / block_size) == (v / block_size);
      const double p = same_block ? p_in : p_out;
      const double r = HashUniformDouble(HashCombine(
          seed, static_cast<uint64_t>(u), static_cast<uint64_t>(v)));
      if (r < p) g.edges.push_back({u, v});
    }
  }
  return g;
}

GeneratedGraph Ring(int64_t num_vertices) {
  SPINNER_CHECK(num_vertices >= 3);
  GeneratedGraph g;
  g.num_vertices = num_vertices;
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.edges.push_back({v, (v + 1) % num_vertices});
  }
  return g;
}

GeneratedGraph Path(int64_t num_vertices) {
  SPINNER_CHECK(num_vertices >= 1);
  GeneratedGraph g;
  g.num_vertices = num_vertices;
  for (VertexId v = 0; v + 1 < num_vertices; ++v) {
    g.edges.push_back({v, v + 1});
  }
  return g;
}

GeneratedGraph Star(int64_t num_leaves) {
  SPINNER_CHECK(num_leaves >= 1);
  GeneratedGraph g;
  g.num_vertices = num_leaves + 1;
  for (VertexId v = 1; v <= num_leaves; ++v) g.edges.push_back({0, v});
  return g;
}

GeneratedGraph Complete(int64_t num_vertices) {
  SPINNER_CHECK(num_vertices >= 2);
  GeneratedGraph g;
  g.num_vertices = num_vertices;
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = u + 1; v < num_vertices; ++v) g.edges.push_back({u, v});
  }
  return g;
}

GeneratedGraph Grid(int64_t rows, int64_t cols) {
  SPINNER_CHECK(rows >= 1 && cols >= 1);
  GeneratedGraph g;
  g.num_vertices = rows * cols;
  auto id = [cols](int64_t r, int64_t c) { return r * cols + c; };
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) g.edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return g;
}

}  // namespace spinner
