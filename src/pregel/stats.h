// Per-superstep execution statistics. The cluster simulator derives paper
// Table IV / Figure 9 timings from these exact counts.
#ifndef SPINNER_PREGEL_STATS_H_
#define SPINNER_PREGEL_STATS_H_

#include <cstdint>
#include <vector>

namespace spinner::pregel {

/// Counters for one superstep, including per-worker breakdowns.
struct SuperstepStats {
  int64_t superstep = 0;
  /// Vertices that executed Compute() this superstep.
  int64_t active_vertices = 0;
  /// Messages sent during this superstep (delivered in the next one).
  int64_t messages_sent = 0;
  /// Of those, messages whose source and destination vertices live on the
  /// same / a different worker. Remote messages would cross the network in
  /// a distributed deployment — this is what partitioning minimizes.
  int64_t messages_local = 0;
  int64_t messages_remote = 0;

  /// Per destination worker: messages received (delivered at the start of
  /// the next superstep), split by origin.
  std::vector<int64_t> worker_messages_in;
  std::vector<int64_t> worker_remote_messages_in;
  /// Per worker: vertices computed and the sum of their out-degrees (the
  /// compute-load proxy used by the cost model).
  std::vector<int64_t> worker_vertices_computed;
  std::vector<int64_t> worker_edges_scanned;
  /// Per worker: messages this worker sent.
  std::vector<int64_t> worker_messages_out;

  /// Measured wall-clock duration of the superstep (compute + barrier).
  double wall_seconds = 0.0;
};

/// Result of an engine run.
struct RunStats {
  int64_t supersteps = 0;
  double total_wall_seconds = 0.0;
  std::vector<SuperstepStats> per_superstep;

  /// Sum of messages_sent over all supersteps.
  int64_t TotalMessages() const {
    int64_t total = 0;
    for (const auto& s : per_superstep) total += s.messages_sent;
    return total;
  }
};

}  // namespace spinner::pregel

#endif  // SPINNER_PREGEL_STATS_H_
