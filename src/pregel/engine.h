// PregelEngine: a from-scratch, multi-threaded implementation of the Pregel
// BSP model (Malewicz et al.) — the substrate the paper builds Spinner on.
//
// Faithfully implemented primitives:
//  * synchronous supersteps — messages sent in superstep S are delivered at
//    the start of superstep S+1, never earlier;
//  * vote-to-halt with message reactivation;
//  * combiners (associative message reduction applied on ingest);
//  * aggregators with sharded-style per-worker partials (aggregators.h);
//  * per-worker shared state (worker_context.h), the hook Spinner's
//    asynchronous-within-a-superstep counters need;
//  * vertex-local graph mutation (a vertex may add/modify its own out-edges,
//    which is all NeighborDiscovery requires);
//  * pluggable vertex→worker placement, so computed partitionings can drive
//    data placement exactly as §V.F does in Giraph.
//
// Workers are sequential units executed on a thread pool: vertex order
// within a worker is fixed (ascending id), aggregator merges happen in
// worker order, and all randomness used by programs is hash-derived — so a
// run is bit-deterministic for any thread count.
#ifndef SPINNER_PREGEL_ENGINE_H_
#define SPINNER_PREGEL_ENGINE_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "graph/csr_graph.h"
#include "graph/types.h"
#include "pregel/aggregators.h"
#include "pregel/stats.h"
#include "pregel/worker_context.h"

namespace spinner::pregel {

/// An out-edge as stored by the engine: target plus a mutable edge value.
template <typename E>
struct OutEdge {
  VertexId target;
  E value;
};

/// Engine construction knobs.
struct EngineConfig {
  /// Number of logical workers (the unit of placement and of sequential
  /// execution). In a cluster deployment this would be machine count.
  int num_workers = 4;
  /// OS threads executing workers; 0 = min(num_workers, hardware).
  int num_threads = 0;
  /// Hard superstep cap; Run stops with a warning when exceeded.
  int64_t max_supersteps = 1000000;
};

template <typename V, typename E, typename M>
class PregelEngine;

/// Read/write access handed to PreSuperstep/PostSuperstep hooks: the
/// worker's identity, merged aggregator values from the previous superstep,
/// and this worker's writable partials.
class WorkerApi {
 public:
  WorkerApi(WorkerId worker, int num_workers, int64_t superstep,
            AggregatorRegistry* registry)
      : worker_(worker),
        num_workers_(num_workers),
        superstep_(superstep),
        registry_(registry) {}

  WorkerId worker_id() const { return worker_; }
  int num_workers() const { return num_workers_; }
  int64_t superstep() const { return superstep_; }

  /// Merged value from the previous superstep (read-only by convention).
  template <typename T>
  const T* Aggregated(const std::string& name) const {
    return registry_->Get<T>(name);
  }

  /// This worker's writable partial for the current superstep.
  template <typename T>
  T* Partial(const std::string& name) {
    return registry_->Partial<T>(name, worker_);
  }

 private:
  WorkerId worker_;
  int num_workers_;
  int64_t superstep_;
  AggregatorRegistry* registry_;
};

/// View given to MasterCompute after every superstep barrier.
class MasterContext {
 public:
  MasterContext(int64_t superstep, int64_t active_vertices,
                int64_t messages_sent, int64_t num_vertices,
                AggregatorRegistry* registry)
      : superstep_(superstep),
        active_vertices_(active_vertices),
        messages_sent_(messages_sent),
        num_vertices_(num_vertices),
        registry_(registry) {}

  /// Index of the superstep that just finished (0-based).
  int64_t superstep() const { return superstep_; }
  /// Vertices that executed Compute() in the finished superstep.
  int64_t active_vertices() const { return active_vertices_; }
  /// Messages sent in the finished superstep (delivered next superstep).
  int64_t messages_sent() const { return messages_sent_; }
  int64_t num_vertices() const { return num_vertices_; }

  /// Merged aggregators. The master may mutate values (e.g. broadcast the
  /// next phase); mutations are visible to vertices next superstep.
  AggregatorRegistry& aggregators() { return *registry_; }

 private:
  int64_t superstep_;
  int64_t active_vertices_;
  int64_t messages_sent_;
  int64_t num_vertices_;
  AggregatorRegistry* registry_;
};

/// The per-vertex API visible inside Compute(). Thin view over worker
/// storage; cheap to construct per call.
template <typename V, typename E, typename M>
class VertexHandle {
 public:
  /// This vertex's global id.
  VertexId id() const { return id_; }
  /// Current superstep (0-based).
  int64_t superstep() const { return api_->superstep(); }
  /// Worker executing this vertex.
  WorkerId worker() const { return api_->worker_id(); }
  int num_workers() const { return api_->num_workers(); }
  /// Total vertices in the graph (constant over the run).
  int64_t total_num_vertices() const { return total_vertices_; }

  /// Mutable vertex state.
  V& value() { return *value_; }
  const V& value() const { return *value_; }

  /// This vertex's out-edges. Mutation is allowed (vertex-local mutation in
  /// Pregel terms): values may be rewritten and edges appended.
  const std::vector<OutEdge<E>>& edges() const { return *edges_; }
  std::vector<OutEdge<E>>& mutable_edges() { return *edges_; }

  /// Appends an out-edge from this vertex, effective immediately.
  void AddEdge(VertexId target, E value) {
    edges_->push_back(OutEdge<E>{target, std::move(value)});
  }

  /// Sends `msg` to `target`, delivered at the start of the next superstep.
  void SendMessage(VertexId target, const M& msg) {
    engine_->EnqueueMessage(api_->worker_id(), target, msg);
  }

  /// Sends `msg` along every out-edge.
  void SendMessageToAllEdges(const M& msg) {
    for (const auto& e : *edges_) SendMessage(e.target, msg);
  }

  /// Deactivates this vertex until a message arrives for it.
  void VoteToHalt() { *halted_ = 1; }

  /// Aggregator access (see WorkerApi).
  template <typename T>
  const T* Aggregated(const std::string& name) const {
    return api_->template Aggregated<T>(name);
  }
  template <typename T>
  T* AggregatePartial(const std::string& name) {
    return api_->template Partial<T>(name);
  }

  /// The worker-shared context (downcast to the program's subclass).
  WorkerContextBase* worker_context() { return context_; }

 private:
  friend class PregelEngine<V, E, M>;

  VertexHandle(PregelEngine<V, E, M>* engine, WorkerApi* api,
               WorkerContextBase* context, VertexId id, V* value,
               std::vector<OutEdge<E>>* edges, uint8_t* halted,
               int64_t total_vertices)
      : engine_(engine),
        api_(api),
        context_(context),
        id_(id),
        value_(value),
        edges_(edges),
        halted_(halted),
        total_vertices_(total_vertices) {}

  PregelEngine<V, E, M>* engine_;
  WorkerApi* api_;
  WorkerContextBase* context_;
  VertexId id_;
  V* value_;
  std::vector<OutEdge<E>>* edges_;
  uint8_t* halted_;
  int64_t total_vertices_;
};

/// A vertex-centric program: the user-facing abstraction of the Pregel
/// model. Subclass and override Compute(); optionally register aggregators,
/// provide a worker context, combine messages, and steer the run from
/// MasterCompute.
template <typename V, typename E, typename M>
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Called once before superstep 0; register aggregators here.
  virtual void RegisterAggregators(AggregatorRegistry* /*registry*/) {}

  /// Per-worker shared state factory.
  virtual std::unique_ptr<WorkerContextBase> CreateWorkerContext() {
    return std::make_unique<WorkerContextBase>();
  }

  /// Hooks bracketing each worker's sequential pass over its vertices.
  virtual void PreSuperstep(WorkerContextBase* /*wc*/, WorkerApi& /*api*/) {}
  virtual void PostSuperstep(WorkerContextBase* /*wc*/, WorkerApi& /*api*/) {}

  /// The vertex kernel.
  virtual void Compute(VertexHandle<V, E, M>& vertex,
                       std::span<const M> messages) = 0;

  /// Message combiner. When HasCombiner() is true, each vertex's inbox
  /// holds a single combined message maintained via Combine().
  virtual bool HasCombiner() const { return false; }
  virtual void Combine(M* /*accumulator*/, const M& /*incoming*/) const {}

  /// Runs after every superstep barrier with merged aggregators. Return
  /// false to terminate the computation.
  virtual bool MasterCompute(MasterContext& /*ctx*/) { return true; }
};

/// The BSP engine. One Run() per instance.
template <typename V, typename E, typename M>
class PregelEngine {
 public:
  using Handle = VertexHandle<V, E, M>;
  using Program = VertexProgram<V, E, M>;

  /// Distributes `graph` across workers. `placement` maps vertex → worker
  /// (must return values in [0, num_workers)); `init_vertex` and `init_edge`
  /// produce initial vertex and edge values.
  PregelEngine(
      const CsrGraph& graph, EngineConfig config,
      std::function<WorkerId(VertexId)> placement,
      std::function<V(VertexId)> init_vertex,
      std::function<E(VertexId, VertexId, EdgeWeight)> init_edge)
      : config_(config), num_vertices_(graph.NumVertices()) {
    SPINNER_CHECK(config_.num_workers >= 1);
    const int W = config_.num_workers;
    int threads = config_.num_threads;
    if (threads <= 0) {
      threads = std::min<int>(
          W, std::max(1u, std::thread::hardware_concurrency()));
    }
    pool_ = std::make_unique<ThreadPool>(threads);

    owner_.resize(num_vertices_);
    local_index_.resize(num_vertices_);
    workers_.resize(W);
    for (VertexId v = 0; v < num_vertices_; ++v) {
      const WorkerId w = placement(v);
      SPINNER_CHECK(w >= 0 && w < W)
          << "placement(" << v << ") = " << w << " outside [0," << W << ")";
      owner_[v] = w;
      local_index_[v] = static_cast<int64_t>(workers_[w].ids.size());
      workers_[w].ids.push_back(v);
    }
    for (WorkerId w = 0; w < W; ++w) {
      WorkerState& ws = workers_[w];
      const size_t n_local = ws.ids.size();
      ws.values.reserve(n_local);
      ws.out_edges.resize(n_local);
      ws.halted.assign(n_local, 0);
      ws.inbox_cur.resize(n_local);
      ws.inbox_nxt.resize(n_local);
      ws.outbox.resize(W);
      for (size_t i = 0; i < n_local; ++i) {
        const VertexId v = ws.ids[i];
        ws.values.push_back(init_vertex(v));
        auto nbrs = graph.Neighbors(v);
        auto wts = graph.Weights(v);
        ws.out_edges[i].reserve(nbrs.size());
        for (size_t j = 0; j < nbrs.size(); ++j) {
          ws.out_edges[i].push_back(
              OutEdge<E>{nbrs[j], init_edge(v, nbrs[j], wts[j])});
        }
      }
    }
  }

  /// Executes `program` until all vertices halt with no messages in flight,
  /// the program's MasterCompute returns false, or max_supersteps is hit.
  RunStats Run(Program& program) {
    SPINNER_CHECK(!ran_) << "PregelEngine::Run called twice";
    ran_ = true;
    const int W = config_.num_workers;

    aggregators_ = AggregatorRegistry();
    program.RegisterAggregators(&aggregators_);
    aggregators_.CreatePartials(W);
    for (WorkerId w = 0; w < W; ++w) {
      workers_[w].context = program.CreateWorkerContext();
      workers_[w].context->BindWorker(w, W);
    }

    RunStats run_stats;
    WallTimer total_timer;
    bool halt_requested = false;

    for (int64_t step = 0; step < config_.max_supersteps; ++step) {
      WallTimer step_timer;
      SuperstepStats ss;
      ss.superstep = step;
      ss.worker_messages_in.assign(W, 0);
      ss.worker_remote_messages_in.assign(W, 0);
      ss.worker_vertices_computed.assign(W, 0);
      ss.worker_edges_scanned.assign(W, 0);
      ss.worker_messages_out.assign(W, 0);

      // --- Compute phase: each worker runs sequentially, workers in
      // parallel. ---
      for (WorkerId w = 0; w < W; ++w) {
        pool_->Submit([this, &program, w, step] {
          RunWorkerSuperstep(&program, w, step);
        });
      }
      pool_->Wait();

      // --- Barrier: collect stats, deliver messages, merge aggregators. ---
      int64_t messages_sent = 0;
      int64_t active = 0;
      for (WorkerId w = 0; w < W; ++w) {
        WorkerState& ws = workers_[w];
        ss.worker_vertices_computed[w] = ws.vertices_computed;
        ss.worker_edges_scanned[w] = ws.edges_scanned;
        ss.worker_messages_out[w] = ws.msgs_out;
        ss.messages_local += ws.msgs_local;
        messages_sent += ws.msgs_out;
        active += ws.vertices_computed;
      }
      ss.active_vertices = active;
      ss.messages_sent = messages_sent;
      ss.messages_remote = messages_sent - ss.messages_local;

      DeliverMessages(&program, &ss);
      aggregators_.MergePartials();

      ss.wall_seconds = step_timer.ElapsedSeconds();
      run_stats.per_superstep.push_back(ss);
      ++run_stats.supersteps;

      MasterContext mc(step, active, messages_sent, num_vertices_,
                       &aggregators_);
      if (!program.MasterCompute(mc)) {
        halt_requested = true;
        break;
      }

      // Natural termination: nothing to deliver and nobody active.
      if (messages_sent == 0 && AllHalted()) break;
    }

    if (!halt_requested && run_stats.supersteps == config_.max_supersteps) {
      SPINNER_LOG(Warning) << "PregelEngine hit max_supersteps="
                           << config_.max_supersteps;
    }
    run_stats.total_wall_seconds = total_timer.ElapsedSeconds();
    return run_stats;
  }

  /// Number of vertices.
  int64_t NumVertices() const { return num_vertices_; }
  /// Number of workers.
  int num_workers() const { return config_.num_workers; }
  /// Worker owning vertex v.
  WorkerId WorkerOf(VertexId v) const { return owner_[v]; }

  /// Final (or current) value of vertex v.
  const V& Value(VertexId v) const {
    const WorkerState& ws = workers_[owner_[v]];
    return ws.values[local_index_[v]];
  }

  /// Final (or current) out-edges of vertex v, including any added by the
  /// program (e.g. Spinner's NeighborDiscovery). Inspection/debugging aid.
  const std::vector<OutEdge<E>>& EdgesOf(VertexId v) const {
    const WorkerState& ws = workers_[owner_[v]];
    return ws.out_edges[local_index_[v]];
  }

  /// Iterates fn(vertex_id, value) over all vertices in id order.
  void ForEachVertex(
      const std::function<void(VertexId, const V&)>& fn) const {
    for (VertexId v = 0; v < num_vertices_; ++v) fn(v, Value(v));
  }

  /// Merged aggregator values after the last superstep.
  const AggregatorRegistry& aggregators() const { return aggregators_; }
  AggregatorRegistry& aggregators() { return aggregators_; }

 private:
  friend class VertexHandle<V, E, M>;

  struct WorkerState {
    std::vector<VertexId> ids;  // local index -> global id, ascending
    std::vector<V> values;
    std::vector<std::vector<OutEdge<E>>> out_edges;
    std::vector<uint8_t> halted;
    std::vector<std::vector<M>> inbox_cur;  // read by Compute this superstep
    std::vector<std::vector<M>> inbox_nxt;  // filled at the barrier
    std::vector<std::vector<std::pair<VertexId, M>>> outbox;  // by dst worker
    std::unique_ptr<WorkerContextBase> context;
    // Per-superstep counters (reset at superstep start).
    int64_t msgs_out = 0;
    int64_t msgs_local = 0;
    int64_t vertices_computed = 0;
    int64_t edges_scanned = 0;
  };

  void EnqueueMessage(WorkerId from_worker, VertexId target, const M& msg) {
    SPINNER_DCHECK(target >= 0 && target < num_vertices_);
    WorkerState& ws = workers_[from_worker];
    const WorkerId dst = owner_[target];
    ws.outbox[dst].emplace_back(target, msg);
    ++ws.msgs_out;
    if (dst == from_worker) ++ws.msgs_local;
  }

  void RunWorkerSuperstep(Program* program, WorkerId w, int64_t step) {
    WorkerState& ws = workers_[w];
    ws.msgs_out = 0;
    ws.msgs_local = 0;
    ws.vertices_computed = 0;
    ws.edges_scanned = 0;

    WorkerApi api(w, config_.num_workers, step, &aggregators_);
    program->PreSuperstep(ws.context.get(), api);
    const size_t n_local = ws.ids.size();
    for (size_t i = 0; i < n_local; ++i) {
      const bool has_msg = !ws.inbox_cur[i].empty();
      if (ws.halted[i] && !has_msg) continue;
      ws.halted[i] = 0;
      Handle handle(this, &api, ws.context.get(), ws.ids[i], &ws.values[i],
                    &ws.out_edges[i], &ws.halted[i], num_vertices_);
      program->Compute(handle,
                       std::span<const M>(ws.inbox_cur[i].data(),
                                          ws.inbox_cur[i].size()));
      ++ws.vertices_computed;
      ws.edges_scanned += static_cast<int64_t>(ws.out_edges[i].size());
    }
    program->PostSuperstep(ws.context.get(), api);
  }

  void DeliverMessages(Program* program, SuperstepStats* ss) {
    const int W = config_.num_workers;
    const bool combine = program->HasCombiner();
    // Each destination worker ingests from all source outboxes in source
    // order: deterministic and contention-free (distinct destinations).
    for (WorkerId d = 0; d < W; ++d) {
      pool_->Submit([this, program, combine, d, W, ss] {
        WorkerState& dst = workers_[d];
        // Consumed inboxes become next superstep's buffers: clear first.
        for (auto& box : dst.inbox_cur) box.clear();
        int64_t received = 0;
        int64_t remote = 0;
        for (WorkerId s = 0; s < W; ++s) {
          for (const auto& [target, msg] : workers_[s].outbox[d]) {
            auto& box = dst.inbox_nxt[local_index_[target]];
            if (combine && !box.empty()) {
              program->Combine(&box[0], msg);
            } else {
              box.push_back(msg);
            }
            ++received;
            if (s != d) ++remote;
          }
        }
        ss->worker_messages_in[d] = received;
        ss->worker_remote_messages_in[d] = remote;
      });
    }
    pool_->Wait();
    for (WorkerId w = 0; w < W; ++w) {
      WorkerState& ws = workers_[w];
      std::swap(ws.inbox_cur, ws.inbox_nxt);
      for (auto& bucket : ws.outbox) bucket.clear();
    }
  }

  bool AllHalted() const {
    for (const WorkerState& ws : workers_) {
      for (size_t i = 0; i < ws.ids.size(); ++i) {
        if (!ws.halted[i] || !ws.inbox_cur[i].empty()) return false;
      }
    }
    return true;
  }

  EngineConfig config_;
  int64_t num_vertices_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<WorkerId> owner_;
  std::vector<int64_t> local_index_;
  std::vector<WorkerState> workers_;
  AggregatorRegistry aggregators_;
  bool ran_ = false;
};

}  // namespace spinner::pregel

#endif  // SPINNER_PREGEL_ENGINE_H_
