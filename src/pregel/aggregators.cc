#include "pregel/aggregators.h"

namespace spinner::pregel {

void AggregatorRegistry::Register(const std::string& name,
                                  std::unique_ptr<AggregatorBase> agg,
                                  bool persistent) {
  SPINNER_CHECK(slots_.count(name) == 0)
      << "aggregator registered twice: " << name;
  Slot slot;
  slot.global = std::move(agg);
  slot.persistent = persistent;
  slots_[name] = std::move(slot);
}

void AggregatorRegistry::CreatePartials(int num_workers) {
  for (auto& [name, slot] : slots_) {
    slot.partials.clear();
    slot.partials.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
      slot.partials.push_back(slot.global->CloneEmpty());
    }
  }
}

void AggregatorRegistry::MergePartials() {
  for (auto& [name, slot] : slots_) {
    if (!slot.persistent) slot.global->Reset();
    for (auto& partial : slot.partials) {
      slot.global->MergeFrom(*partial);
      partial->Reset();
    }
  }
}

}  // namespace spinner::pregel
