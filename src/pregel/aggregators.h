// Pregel aggregators: commutative/associative global reductions.
//
// Semantics follow Giraph: values a vertex aggregates during superstep S
// become visible (merged) during superstep S+1. The implementation mirrors
// Giraph's *sharded aggregators* (paper §IV.A.5): every worker accumulates
// into a private partial — no synchronization during compute — and partials
// are merged at the superstep barrier in worker order (deterministic).
//
// A `persistent` aggregator keeps accumulating across supersteps (used for
// Spinner's partition loads b(l), which are maintained by deltas); a
// non-persistent one resets at every barrier (used for migration counters
// m(l) and the global score).
#ifndef SPINNER_PREGEL_AGGREGATORS_H_
#define SPINNER_PREGEL_AGGREGATORS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"

namespace spinner::pregel {

/// Type-erased aggregator. Concrete aggregators add typed accumulate/read
/// methods; the engine manipulates them through this interface.
class AggregatorBase {
 public:
  virtual ~AggregatorBase() = default;

  /// A fresh, zero-valued aggregator of the same concrete type (used to
  /// create worker partials).
  virtual std::unique_ptr<AggregatorBase> CloneEmpty() const = 0;

  /// Folds `other` (same concrete type) into this.
  virtual void MergeFrom(const AggregatorBase& other) = 0;

  /// Resets to the zero value.
  virtual void Reset() = 0;
};

/// Sum of int64 contributions.
class LongSumAggregator : public AggregatorBase {
 public:
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }
  void set_value(int64_t v) { value_ = v; }

  std::unique_ptr<AggregatorBase> CloneEmpty() const override {
    return std::make_unique<LongSumAggregator>();
  }
  void MergeFrom(const AggregatorBase& other) override {
    value_ += static_cast<const LongSumAggregator&>(other).value_;
  }
  void Reset() override { value_ = 0; }

 private:
  int64_t value_ = 0;
};

/// Sum of double contributions.
class DoubleSumAggregator : public AggregatorBase {
 public:
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void set_value(double v) { value_ = v; }

  std::unique_ptr<AggregatorBase> CloneEmpty() const override {
    return std::make_unique<DoubleSumAggregator>();
  }
  void MergeFrom(const AggregatorBase& other) override {
    value_ += static_cast<const DoubleSumAggregator&>(other).value_;
  }
  void Reset() override { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Maximum of double contributions.
class DoubleMaxAggregator : public AggregatorBase {
 public:
  void Add(double v) { value_ = value_ > v ? value_ : v; }
  double value() const { return value_; }

  std::unique_ptr<AggregatorBase> CloneEmpty() const override {
    return std::make_unique<DoubleMaxAggregator>();
  }
  void MergeFrom(const AggregatorBase& other) override {
    Add(static_cast<const DoubleMaxAggregator&>(other).value_);
  }
  void Reset() override { value_ = kZero; }

 private:
  static constexpr double kZero = -1.7976931348623157e308;
  double value_ = kZero;
};

/// Element-wise sum over a fixed-size int64 vector: one counter per
/// partition. This is the Spinner workhorse — b(l) and m(l) are instances.
class VectorSumAggregator : public AggregatorBase {
 public:
  VectorSumAggregator() = default;
  explicit VectorSumAggregator(size_t size) : values_(size, 0) {}

  void Add(size_t i, int64_t delta) {
    SPINNER_DCHECK(i < values_.size());
    values_[i] += delta;
  }
  int64_t value(size_t i) const { return values_[i]; }
  const std::vector<int64_t>& values() const { return values_; }
  std::vector<int64_t>* mutable_values() { return &values_; }
  size_t size() const { return values_.size(); }

  /// Grows/shrinks the vector (elastic repartitioning changes k).
  void Resize(size_t size) { values_.resize(size, 0); }

  std::unique_ptr<AggregatorBase> CloneEmpty() const override {
    return std::make_unique<VectorSumAggregator>(values_.size());
  }
  void MergeFrom(const AggregatorBase& other) override {
    const auto& o = static_cast<const VectorSumAggregator&>(other);
    if (values_.size() < o.values_.size()) values_.resize(o.values_.size(), 0);
    for (size_t i = 0; i < o.values_.size(); ++i) values_[i] += o.values_[i];
  }
  void Reset() override { values_.assign(values_.size(), 0); }

 private:
  std::vector<int64_t> values_;
};

/// Single int64 broadcast slot written by the master (e.g. the current
/// algorithm phase) and read by all vertices. Not vertex-writable: merge is
/// "keep master value".
class LongBroadcastAggregator : public AggregatorBase {
 public:
  int64_t value() const { return value_; }
  void set_value(int64_t v) { value_ = v; }

  std::unique_ptr<AggregatorBase> CloneEmpty() const override {
    return std::make_unique<LongBroadcastAggregator>();
  }
  void MergeFrom(const AggregatorBase&) override {}  // master-only writes
  void Reset() override {}                           // value persists

 private:
  int64_t value_ = 0;
};

/// Registry of named aggregators with worker-partial management.
class AggregatorRegistry {
 public:
  /// Registers an aggregator. `persistent` controls whether the merged
  /// global value survives the superstep barrier or resets.
  void Register(const std::string& name, std::unique_ptr<AggregatorBase> agg,
                bool persistent);

  /// True iff `name` is registered.
  bool Has(const std::string& name) const { return slots_.count(name) > 0; }

  /// Typed access to the merged global value (what vertices read).
  template <typename T>
  T* Get(const std::string& name) {
    auto it = slots_.find(name);
    SPINNER_CHECK(it != slots_.end()) << "unknown aggregator: " << name;
    T* typed = dynamic_cast<T*>(it->second.global.get());
    SPINNER_CHECK(typed != nullptr) << "aggregator type mismatch: " << name;
    return typed;
  }
  template <typename T>
  const T* Get(const std::string& name) const {
    return const_cast<AggregatorRegistry*>(this)->Get<T>(name);
  }

  /// Typed access to worker w's partial (what vertices write).
  template <typename T>
  T* Partial(const std::string& name, int worker) {
    auto it = slots_.find(name);
    SPINNER_CHECK(it != slots_.end()) << "unknown aggregator: " << name;
    SPINNER_DCHECK(worker >= 0 &&
                   worker < static_cast<int>(it->second.partials.size()));
    T* typed = dynamic_cast<T*>(it->second.partials[worker].get());
    SPINNER_CHECK(typed != nullptr) << "aggregator type mismatch: " << name;
    return typed;
  }

  /// Creates one partial per worker for every registered aggregator.
  void CreatePartials(int num_workers);

  /// Barrier step: merges all worker partials into the global value (in
  /// worker order — deterministic), resetting non-persistent globals first
  /// and the partials afterwards.
  void MergePartials();

 private:
  struct Slot {
    std::unique_ptr<AggregatorBase> global;
    std::vector<std::unique_ptr<AggregatorBase>> partials;
    bool persistent = false;
  };
  std::map<std::string, Slot> slots_;
};

}  // namespace spinner::pregel

#endif  // SPINNER_PREGEL_AGGREGATORS_H_
