// WorkerContext: per-worker shared state, the Giraph feature Spinner's
// asynchronous-within-a-superstep optimization relies on (paper §IV.A.4).
// All vertices executed by the same worker see (and may mutate) the same
// context with no locking, because a worker is a single sequential unit.
#ifndef SPINNER_PREGEL_WORKER_CONTEXT_H_
#define SPINNER_PREGEL_WORKER_CONTEXT_H_

#include <memory>

namespace spinner::pregel {

using WorkerId = int;

/// Base class for per-worker shared state. Programs subclass this and
/// downcast inside Compute()/PreSuperstep()/PostSuperstep().
class WorkerContextBase {
 public:
  virtual ~WorkerContextBase() = default;

  /// The worker this context belongs to.
  WorkerId worker_id() const { return worker_id_; }

  /// Total number of workers in the computation.
  int num_workers() const { return num_workers_; }

  /// Engine-internal: set once at construction time.
  void BindWorker(WorkerId id, int num_workers) {
    worker_id_ = id;
    num_workers_ = num_workers;
  }

 private:
  WorkerId worker_id_ = 0;
  int num_workers_ = 1;
};

}  // namespace spinner::pregel

#endif  // SPINNER_PREGEL_WORKER_CONTEXT_H_
