// Vertex→worker placement policies. Placement is where a partitioning pays
// off: §V.F of the paper plugs Spinner's labels into Giraph's placement so
// that same-label vertices land on the same machine.
#ifndef SPINNER_PREGEL_TOPOLOGY_H_
#define SPINNER_PREGEL_TOPOLOGY_H_

#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "graph/types.h"
#include "pregel/worker_context.h"

namespace spinner::pregel {

/// Placement function type: vertex id → worker id in [0, num_workers).
using Placement = std::function<WorkerId(VertexId)>;

/// Giraph's default: hash partitioning, `h(v) mod W`. The baseline every
/// experiment in §V.F compares against.
inline Placement HashPlacement(int num_workers) {
  SPINNER_CHECK(num_workers >= 1);
  return [num_workers](VertexId v) {
    return static_cast<WorkerId>(
        SplitMix64(static_cast<uint64_t>(v)) % num_workers);
  };
}

/// Places vertex v on worker `assignment[v] mod W`: the partition-aware
/// placement of §V.F (with W == k this is exactly "one partition per
/// machine"). Copies the assignment so the source may go out of scope.
inline Placement LabelPlacement(std::vector<PartitionId> assignment,
                                int num_workers) {
  SPINNER_CHECK(num_workers >= 1);
  return [assignment = std::move(assignment), num_workers](VertexId v) {
    SPINNER_DCHECK(v < static_cast<VertexId>(assignment.size()));
    const PartitionId p = assignment[v];
    SPINNER_DCHECK(p >= 0);
    return static_cast<WorkerId>(p % num_workers);
  };
}

/// Contiguous range placement (vertex blocks), useful in tests.
inline Placement BlockPlacement(int64_t num_vertices, int num_workers) {
  SPINNER_CHECK(num_workers >= 1 && num_vertices >= 0);
  const int64_t block = (num_vertices + num_workers - 1) / num_workers;
  return [block](VertexId v) {
    return static_cast<WorkerId>(block == 0 ? 0 : v / block);
  };
}

}  // namespace spinner::pregel

#endif  // SPINNER_PREGEL_TOPOLOGY_H_
