#include "apps/community_lpa.h"

#include <algorithm>
#include <unordered_map>

#include "common/random.h"
#include "pregel/topology.h"

namespace spinner::apps {

void CommunityLpaProgram::Compute(CommunityHandle& vertex,
                                  std::span<const CommunityMessage> messages) {
  auto& value = vertex.value();
  auto& edges = vertex.mutable_edges();
  if (vertex.superstep() == 0) {
    value.label = vertex.id();
    vertex.SendMessageToAllEdges({vertex.id(), value.label});
    return;
  }

  // Fold neighbor updates into the edge cache (edges arrive sorted from
  // the CSR, so binary search applies; LPA never adds edges).
  for (const CommunityMessage& msg : messages) {
    auto it = std::lower_bound(
        edges.begin(), edges.end(), msg.source,
        [](const pregel::OutEdge<VertexId>& e, VertexId target) {
          return e.target < target;
        });
    SPINNER_DCHECK(it != edges.end() && it->target == msg.source);
    if (it != edges.end() && it->target == msg.source) {
      it->value = msg.label;
    }
  }

  // Most frequent label over the full (cached) neighborhood. Ties break
  // randomly via an order-independent hash-argmin, preferring the current
  // label (speeds convergence).
  std::unordered_map<VertexId, int> counts;
  counts.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.value >= 0) ++counts[e.value];
  }
  int max_count = 0;
  for (const auto& [label, count] : counts) {
    max_count = std::max(max_count, count);
  }
  VertexId best = value.label;
  auto current_it = counts.find(value.label);
  const bool current_is_max =
      current_it != counts.end() && current_it->second == max_count;
  if (!current_is_max && max_count > 0) {
    uint64_t best_key = ~uint64_t{0};
    for (const auto& [label, count] : counts) {
      if (count != max_count) continue;
      const uint64_t key =
          HashCombine(static_cast<uint64_t>(vertex.superstep()),
                      static_cast<uint64_t>(vertex.id()),
                      static_cast<uint64_t>(label));
      if (key < best_key) {
        best_key = key;
        best = label;
      }
    }
  }

  if (best != value.label) {
    value.label = best;
    vertex.SendMessageToAllEdges({vertex.id(), best});
  }
  vertex.VoteToHalt();
}

bool CommunityLpaProgram::MasterCompute(pregel::MasterContext& ctx) {
  return ctx.superstep() + 1 < max_iterations_;
}

std::vector<VertexId> DetectCommunities(const CsrGraph& graph,
                                        int num_workers,
                                        int max_iterations) {
  pregel::EngineConfig config;
  config.num_workers = num_workers;
  CommunityEngine engine(
      graph, config, pregel::HashPlacement(num_workers),
      [](VertexId) { return CommunityVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return VertexId{-1}; });
  CommunityLpaProgram program(max_iterations);
  engine.Run(program);
  std::vector<VertexId> labels(graph.NumVertices());
  engine.ForEachVertex([&labels](VertexId v, const CommunityVertex& val) {
    labels[v] = val.label;
  });
  return labels;
}

}  // namespace spinner::apps
