#include "apps/triangle_count.h"

#include <algorithm>

#include "pregel/topology.h"

namespace spinner::apps {

void TriangleCountProgram::RegisterAggregators(
    pregel::AggregatorRegistry* registry) {
  registry->Register(kTotalAgg,
                     std::make_unique<pregel::LongSumAggregator>(),
                     /*persistent=*/true);
}

void TriangleCountProgram::Compute(TriangleHandle& vertex,
                                   std::span<const NeighborList> messages) {
  if (vertex.superstep() == 0) {
    // Send to each higher neighbor u the (sorted) list of this vertex's
    // neighbors with ids above u. A triangle (v < u < w) is then detected
    // by u finding w in both the message from v and its own adjacency.
    const auto& edges = vertex.edges();
    NeighborList higher;
    higher.reserve(edges.size());
    for (const auto& e : edges) {
      if (e.target > vertex.id()) higher.push_back(e.target);
    }
    std::sort(higher.begin(), higher.end());
    for (size_t i = 0; i < higher.size(); ++i) {
      // Targets are sorted, so the sublist above higher[i] is its suffix.
      if (i + 1 < higher.size()) {
        vertex.SendMessage(higher[i],
                           NeighborList(higher.begin() + i + 1,
                                        higher.end()));
      }
    }
    return;
  }

  // Intersect each incoming candidate list with our own higher adjacency.
  const auto& edges = vertex.edges();
  NeighborList mine;
  mine.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.target > vertex.id()) mine.push_back(e.target);
  }
  std::sort(mine.begin(), mine.end());

  int64_t found = 0;
  for (const NeighborList& candidates : messages) {
    // Both lists sorted: linear merge intersection.
    size_t i = 0;
    size_t j = 0;
    while (i < candidates.size() && j < mine.size()) {
      if (candidates[i] < mine[j]) {
        ++i;
      } else if (candidates[i] > mine[j]) {
        ++j;
      } else {
        ++found;
        ++i;
        ++j;
      }
    }
  }
  vertex.value().triangles = found;
  vertex.AggregatePartial<pregel::LongSumAggregator>(kTotalAgg)->Add(found);
  vertex.VoteToHalt();
}

bool TriangleCountProgram::MasterCompute(pregel::MasterContext& ctx) {
  if (ctx.superstep() == 1) {
    total_ = ctx.aggregators()
                 .Get<pregel::LongSumAggregator>(kTotalAgg)
                 ->value();
    return false;
  }
  return true;
}

int64_t CountTriangles(const CsrGraph& graph, int num_workers) {
  pregel::EngineConfig config;
  config.num_workers = num_workers;
  TriangleEngine engine(
      graph, config, pregel::HashPlacement(num_workers),
      [](VertexId) { return TriangleVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  TriangleCountProgram program;
  engine.Run(program);
  return program.TotalTriangles();
}

int64_t CountTrianglesReference(const CsrGraph& graph) {
  int64_t total = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto nbrs = graph.Neighbors(v);
    for (VertexId u : nbrs) {
      if (u <= v) continue;
      // Count w > u adjacent to both v and u.
      auto un = graph.Neighbors(u);
      size_t i = 0;
      size_t j = 0;
      while (i < nbrs.size() && j < un.size()) {
        if (nbrs[i] <= u) {
          ++i;
          continue;
        }
        if (un[j] <= u) {
          ++j;
          continue;
        }
        if (nbrs[i] < un[j]) {
          ++i;
        } else if (nbrs[i] > un[j]) {
          ++j;
        } else {
          ++total;
          ++i;
          ++j;
        }
      }
    }
  }
  return total;
}

}  // namespace spinner::apps
