#include "apps/sssp.h"

#include <deque>

namespace spinner::apps {

void SsspProgram::Compute(SsspHandle& vertex,
                          std::span<const int64_t> messages) {
  auto& value = vertex.value();
  int64_t best = value.distance;
  if (vertex.superstep() == 0 && vertex.id() == source_) best = 0;
  for (int64_t m : messages) best = std::min(best, m);

  if (best < value.distance) {
    value.distance = best;
    vertex.SendMessageToAllEdges(best + 1);
  }
  vertex.VoteToHalt();
}

std::vector<int64_t> BfsReference(const CsrGraph& graph, VertexId source) {
  std::vector<int64_t> dist(graph.NumVertices(), kInfDistance);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.Neighbors(v)) {
      if (dist[u] == kInfDistance) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace spinner::apps
