#include "apps/wcc.h"

#include "graph/union_find.h"

namespace spinner::apps {

void WccProgram::Compute(WccHandle& vertex,
                         std::span<const VertexId> messages) {
  auto& value = vertex.value();
  VertexId best =
      vertex.superstep() == 0 ? vertex.id() : value.component;
  for (VertexId m : messages) best = std::min(best, m);

  if (vertex.superstep() == 0 || best < value.component) {
    value.component = best;
    vertex.SendMessageToAllEdges(best);
  }
  vertex.VoteToHalt();
}

std::vector<VertexId> WccReference(const CsrGraph& graph) {
  UnionFind uf(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) uf.Union(v, u);
  }
  // Canonical component id: the minimum vertex id in the component.
  std::vector<VertexId> min_of_root(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) min_of_root[v] = v;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const VertexId r = uf.Find(v);
    min_of_root[r] = std::min(min_of_root[r], v);
  }
  std::vector<VertexId> component(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    component[v] = min_of_root[uf.Find(v)];
  }
  return component;
}

}  // namespace spinner::apps
