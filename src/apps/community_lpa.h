// Classic label propagation for community detection (Raghavan et al.; the
// paper's reference [8] and the algorithm Spinner generalizes). Unlike
// Spinner there is no partition count, no balance penalty and no migration
// throttling: every vertex simply adopts its neighborhood's most frequent
// label. Included both as a useful analytics program and as the natural
// baseline showing what Spinner's extensions add.
//
// Implementation follows Spinner's own messaging pattern (§IV.A.2): each
// vertex caches its neighbors' labels in its edge values and neighbors
// announce changes with (source, label) messages, so frequencies are
// always computed over the full neighborhood while only changed vertices
// communicate.
#ifndef SPINNER_APPS_COMMUNITY_LPA_H_
#define SPINNER_APPS_COMMUNITY_LPA_H_

#include <vector>

#include "pregel/engine.h"

namespace spinner::apps {

struct CommunityVertex {
  /// Current community label (initialized to the vertex id).
  VertexId label = -1;
};

/// "Vertex `source` now carries `label`".
struct CommunityMessage {
  VertexId source = -1;
  VertexId label = -1;
};

using CommunityEngine =
    pregel::PregelEngine<CommunityVertex, VertexId, CommunityMessage>;
using CommunityHandle =
    pregel::VertexHandle<CommunityVertex, VertexId, CommunityMessage>;

/// Synchronous LPA with the standard tie-breaks: prefer the current label,
/// otherwise a hash-random tied label (a deterministic min-id rule floods
/// low labels across community borders). `max_iterations` caps oscillation
/// (synchronous LPA can two-cycle on bipartite structures).
class CommunityLpaProgram
    : public pregel::VertexProgram<CommunityVertex, VertexId,
                                   CommunityMessage> {
 public:
  explicit CommunityLpaProgram(int max_iterations = 50)
      : max_iterations_(max_iterations) {}

  void Compute(CommunityHandle& vertex,
               std::span<const CommunityMessage> messages) override;
  bool MasterCompute(pregel::MasterContext& ctx) override;

 private:
  int max_iterations_;
};

/// Convenience wrapper: runs LPA over a symmetric graph and returns the
/// community label per vertex.
std::vector<VertexId> DetectCommunities(const CsrGraph& graph,
                                        int num_workers = 4,
                                        int max_iterations = 50);

}  // namespace spinner::apps

#endif  // SPINNER_APPS_COMMUNITY_LPA_H_
