// PageRank as a Pregel program — the PR workload of paper §V.F, plus a
// sequential reference implementation used by tests.
#ifndef SPINNER_APPS_PAGERANK_H_
#define SPINNER_APPS_PAGERANK_H_

#include <vector>

#include "pregel/engine.h"

namespace spinner::apps {

/// Vertex state: current rank.
struct PageRankVertex {
  double rank = 0.0;
};

/// Engine instantiation: no edge state, double messages (rank shares).
using PageRankEngine = pregel::PregelEngine<PageRankVertex, char, double>;
using PageRankHandle = pregel::VertexHandle<PageRankVertex, char, double>;

/// Synchronous PageRank with damping 0.85, run for a fixed number of
/// iterations (the paper runs 20 supersteps). Dangling mass is
/// redistributed uniformly via an aggregator, keeping Σ rank = |V|.
/// Uses a sum combiner, as any production Pregel deployment would.
class PageRankProgram
    : public pregel::VertexProgram<PageRankVertex, char, double> {
 public:
  explicit PageRankProgram(int num_iterations, double damping = 0.85)
      : num_iterations_(num_iterations), damping_(damping) {}

  void RegisterAggregators(pregel::AggregatorRegistry* registry) override;
  void Compute(PageRankHandle& vertex,
               std::span<const double> messages) override;
  bool HasCombiner() const override { return true; }
  void Combine(double* accumulator, const double& incoming) const override {
    *accumulator += incoming;
  }
  bool MasterCompute(pregel::MasterContext& ctx) override;

  static constexpr const char* kDanglingAgg = "pagerank.dangling";

 private:
  int num_iterations_;
  double damping_;
};

/// Sequential reference PageRank over a CSR graph (same iteration count and
/// dangling handling); tests compare the engine result against this.
std::vector<double> PageRankReference(const CsrGraph& graph,
                                      int num_iterations,
                                      double damping = 0.85);

}  // namespace spinner::apps

#endif  // SPINNER_APPS_PAGERANK_H_
