// Triangle counting as a Pregel program: each vertex sends its
// higher-id neighbor list to those neighbors, which intersect it with
// their own adjacency. The canonical ordering (low → mid → high) counts
// every triangle exactly once. A sequential reference is provided for
// tests.
#ifndef SPINNER_APPS_TRIANGLE_COUNT_H_
#define SPINNER_APPS_TRIANGLE_COUNT_H_

#include <cstdint>
#include <vector>

#include "pregel/engine.h"

namespace spinner::apps {

struct TriangleVertex {
  /// Triangles in which this vertex is the middle (by id) corner.
  int64_t triangles = 0;
};

/// Message: the sender's sorted list of neighbors with ids above the
/// receiver's.
using NeighborList = std::vector<VertexId>;

using TriangleEngine =
    pregel::PregelEngine<TriangleVertex, char, NeighborList>;
using TriangleHandle =
    pregel::VertexHandle<TriangleVertex, char, NeighborList>;

/// Two-superstep triangle counting over a symmetric simple graph. The
/// total count is published through the "triangles.total" aggregator and
/// via TotalTriangles().
class TriangleCountProgram
    : public pregel::VertexProgram<TriangleVertex, char, NeighborList> {
 public:
  void RegisterAggregators(pregel::AggregatorRegistry* registry) override;
  void Compute(TriangleHandle& vertex,
               std::span<const NeighborList> messages) override;
  bool MasterCompute(pregel::MasterContext& ctx) override;

  /// Total triangles in the graph (valid after the run).
  int64_t TotalTriangles() const { return total_; }

  static constexpr const char* kTotalAgg = "triangles.total";

 private:
  int64_t total_ = 0;
};

/// Convenience wrapper over a symmetric graph.
int64_t CountTriangles(const CsrGraph& graph, int num_workers = 4);

/// Sequential reference: sorted-adjacency intersection.
int64_t CountTrianglesReference(const CsrGraph& graph);

}  // namespace spinner::apps

#endif  // SPINNER_APPS_TRIANGLE_COUNT_H_
