// Single-source shortest paths via BFS-style relaxation — the SP workload
// of paper §V.F ("Shortest Paths, computed through BFS").
#ifndef SPINNER_APPS_SSSP_H_
#define SPINNER_APPS_SSSP_H_

#include <cstdint>
#include <vector>

#include "pregel/engine.h"

namespace spinner::apps {

/// Distance value; unreached vertices keep kInfDistance.
inline constexpr int64_t kInfDistance = INT64_MAX;

struct SsspVertex {
  int64_t distance = kInfDistance;
};

using SsspEngine = pregel::PregelEngine<SsspVertex, char, int64_t>;
using SsspHandle = pregel::VertexHandle<SsspVertex, char, int64_t>;

/// Classic Pregel SSSP: the source starts at 0; vertices propagate improved
/// distances and vote to halt, so only the frontier is active — the
/// message pattern whose locality §V.F measures. Unit edge weights (BFS).
/// Uses a min combiner.
class SsspProgram : public pregel::VertexProgram<SsspVertex, char, int64_t> {
 public:
  explicit SsspProgram(VertexId source) : source_(source) {}

  void Compute(SsspHandle& vertex,
               std::span<const int64_t> messages) override;
  bool HasCombiner() const override { return true; }
  void Combine(int64_t* accumulator, const int64_t& incoming) const override {
    *accumulator = std::min(*accumulator, incoming);
  }

 private:
  VertexId source_;
};

/// Sequential BFS reference for tests.
std::vector<int64_t> BfsReference(const CsrGraph& graph, VertexId source);

}  // namespace spinner::apps

#endif  // SPINNER_APPS_SSSP_H_
