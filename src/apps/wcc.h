// Weakly connected components by min-label propagation — the CC workload of
// paper §V.F ("a general approach to finding communities").
#ifndef SPINNER_APPS_WCC_H_
#define SPINNER_APPS_WCC_H_

#include <vector>

#include "pregel/engine.h"

namespace spinner::apps {

struct WccVertex {
  VertexId component = 0;
};

using WccEngine = pregel::PregelEngine<WccVertex, char, VertexId>;
using WccHandle = pregel::VertexHandle<WccVertex, char, VertexId>;

/// HashMin WCC: every vertex starts as its own component id and propagates
/// the minimum id it has seen; converges in O(diameter) supersteps.
/// Requires a symmetric graph (weak connectivity). Uses a min combiner.
class WccProgram : public pregel::VertexProgram<WccVertex, char, VertexId> {
 public:
  void Compute(WccHandle& vertex, std::span<const VertexId> messages) override;
  bool HasCombiner() const override { return true; }
  void Combine(VertexId* accumulator, const VertexId& incoming) const override {
    *accumulator = std::min(*accumulator, incoming);
  }
};

/// Union-find reference for tests.
std::vector<VertexId> WccReference(const CsrGraph& graph);

}  // namespace spinner::apps

#endif  // SPINNER_APPS_WCC_H_
