#include "apps/pagerank.h"

namespace spinner::apps {

void PageRankProgram::RegisterAggregators(
    pregel::AggregatorRegistry* registry) {
  registry->Register(kDanglingAgg,
                     std::make_unique<pregel::DoubleSumAggregator>(),
                     /*persistent=*/false);
}

void PageRankProgram::Compute(PageRankHandle& vertex,
                              std::span<const double> messages) {
  auto& value = vertex.value();
  const auto n = static_cast<double>(vertex.total_num_vertices());

  if (vertex.superstep() == 0) {
    value.rank = 1.0;
  } else {
    double incoming = 0.0;
    for (double m : messages) incoming += m;
    // Dangling mass aggregated in the previous superstep is shared evenly.
    const double dangling =
        vertex.Aggregated<pregel::DoubleSumAggregator>(kDanglingAgg)->value();
    value.rank =
        (1.0 - damping_) + damping_ * (incoming + dangling / n);
  }

  const auto out_degree = static_cast<double>(vertex.edges().size());
  if (out_degree > 0) {
    vertex.SendMessageToAllEdges(value.rank / out_degree);
  } else {
    vertex.AggregatePartial<pregel::DoubleSumAggregator>(kDanglingAgg)
        ->Add(value.rank);
  }
}

bool PageRankProgram::MasterCompute(pregel::MasterContext& ctx) {
  // Superstep s computes ranks of iteration s; stop after the configured
  // number of rank updates.
  return ctx.superstep() + 1 < num_iterations_;
}

std::vector<double> PageRankReference(const CsrGraph& graph,
                                      int num_iterations, double damping) {
  const int64_t n = graph.NumVertices();
  std::vector<double> rank(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 1; iter < num_iterations; ++iter) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const auto deg = static_cast<double>(graph.OutDegree(v));
      if (deg == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / deg;
      for (VertexId u : graph.Neighbors(v)) next[u] += share;
    }
    for (VertexId v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) +
                damping * (next[v] + dangling / static_cast<double>(n));
    }
    std::swap(rank, next);
  }
  return rank;
}

}  // namespace spinner::apps
