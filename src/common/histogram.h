// Streaming summary statistics (count/mean/min/max/stddev/percentiles) used
// by the cluster simulator and the benchmark harnesses when reporting
// per-worker superstep times, exactly the quantities Table IV reports.
#ifndef SPINNER_COMMON_HISTOGRAM_H_
#define SPINNER_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace spinner {

/// Collects double samples and answers summary queries. Keeps all samples
/// (workloads here are small); percentile queries sort lazily.
class SampleStats {
 public:
  /// Adds one sample.
  void Add(double v);

  /// Number of samples added.
  int64_t count() const { return static_cast<int64_t>(samples_.size()); }

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Smallest / largest sample; 0 when empty.
  double Min() const;
  double Max() const;

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;

  /// p in [0, 100]. Linear interpolation between closest ranks.
  double Percentile(double p) const;

  /// Sum of all samples.
  double Sum() const;

  /// Removes all samples.
  void Clear();

  /// Read-only view of raw samples (unsorted, insertion order).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily maintained cache
  mutable bool sorted_valid_ = false;
};

}  // namespace spinner

#endif  // SPINNER_COMMON_HISTOGRAM_H_
