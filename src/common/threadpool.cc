#include "common/threadpool.h"

#include <algorithm>

#include "common/logging.h"

namespace spinner {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SPINNER_CHECK(!shutdown_) << "Submit on a shut-down pool";
    tasks_.push(std::move(task));
    ++pending_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  ParallelForChunked(pool, begin, end, pool->num_threads(),
                     [&fn](int /*chunk*/, int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) fn(i);
                     });
}

void ParallelForChunked(
    ThreadPool* pool, int64_t begin, int64_t end, int num_chunks,
    const std::function<void(int, int64_t, int64_t)>& fn) {
  SPINNER_CHECK(begin <= end);
  const int64_t n = end - begin;
  if (n == 0) return;
  num_chunks = static_cast<int>(
      std::min<int64_t>(std::max(1, num_chunks), n));
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  for (int c = 0; c < num_chunks; ++c) {
    const int64_t lo = begin + c * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool->Submit([c, lo, hi, &fn] { fn(c, lo, hi); });
  }
  pool->Wait();
}

}  // namespace spinner
