// Small string helpers shared by I/O, benches and examples.
#ifndef SPINNER_COMMON_STRING_UTIL_H_
#define SPINNER_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace spinner {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Splits `text` on any run of spaces/tabs, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a signed 64-bit integer. Returns false on any non-numeric input,
/// overflow, or trailing garbage.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a double. Returns false on malformed input or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Renders n with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithCommas(int64_t n);

}  // namespace spinner

#endif  // SPINNER_COMMON_STRING_UTIL_H_
