// Minimal leveled logging plus CHECK macros for programmer invariants.
// Library code never throws; invariant violations abort with a message.
#ifndef SPINNER_COMMON_LOGGING_H_
#define SPINNER_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace spinner {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style message sink that emits on destruction. `fatal` aborts the
/// process after emitting, used by CHECK failures.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed LogMessage expression into void inside ?: chains.
/// operator& binds looser than << but tighter than ?:, the classic glog
/// trick.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal

#define SPINNER_LOG(level)                                                  \
  ::spinner::internal::LogMessage(::spinner::LogLevel::k##level, __FILE__, \
                                  __LINE__)

/// Aborts with a message when `cond` is false. Always on, release included:
/// these guard data-structure invariants whose violation would corrupt
/// results silently.
#define SPINNER_CHECK(cond)                                              \
  (cond) ? (void)0                                                       \
         : ::spinner::internal::Voidify() &                              \
               ::spinner::internal::LogMessage(                          \
                   ::spinner::LogLevel::kError, __FILE__, __LINE__,      \
                   true)                                                 \
                   << "Check failed: " #cond " "

#define SPINNER_CHECK_OK(expr)                                           \
  do {                                                                   \
    ::spinner::Status _s = (expr);                                       \
    SPINNER_CHECK(_s.ok()) << _s.ToString();                             \
  } while (0)

#ifndef NDEBUG
#define SPINNER_DCHECK(cond) SPINNER_CHECK(cond)
#else
#define SPINNER_DCHECK(cond) \
  while (false) ::spinner::internal::NullStream() << ""
#endif

}  // namespace spinner

#endif  // SPINNER_COMMON_LOGGING_H_
