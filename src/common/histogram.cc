#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace spinner {

void SampleStats::Add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

double SampleStats::Mean() const {
  if (samples_.empty()) return 0.0;
  return Sum() / static_cast<double>(samples_.size());
}

double SampleStats::Sum() const {
  double s = 0.0;
  for (double v : samples_) s += v;
  return s;
}

double SampleStats::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::StdDev() const {
  const auto n = samples_.size();
  if (n < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(n - 1));
}

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  SPINNER_CHECK(p >= 0.0 && p <= 100.0) << "percentile out of range: " << p;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void SampleStats::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

}  // namespace spinner
