#include "common/cli.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace spinner {

Status CommandLine::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) continue;  // positional; ignored
    arg.remove_prefix(2);
    if (arg.empty()) {
      return Status::InvalidArgument("empty flag name: '--'");
    }
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "true";  // bare boolean flag
    }
  }
  return Status::OK();
}

int64_t CommandLine::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  int64_t v = 0;
  SPINNER_CHECK(ParseInt64(it->second, &v))
      << "flag --" << name << " is not an integer: " << it->second;
  return v;
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  double v = 0;
  SPINNER_CHECK(ParseDouble(it->second, &v))
      << "flag --" << name << " is not a number: " << it->second;
  return v;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool CommandLine::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace spinner
