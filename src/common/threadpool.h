// Fixed-size thread pool plus a blocking ParallelFor, the only concurrency
// primitives the Pregel engine needs. Workers are long-lived so superstep
// loops do not pay thread-creation costs.
#ifndef SPINNER_COMMON_THREADPOOL_H_
#define SPINNER_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spinner {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [begin, end) across `pool`, blocking until done.
/// Work is split into contiguous chunks, one per worker, so that fn bodies
/// that touch per-index arrays keep cache locality. fn must be safe to call
/// concurrently for distinct i.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

/// Runs fn(chunk_index, chunk_begin, chunk_end) over `num_chunks` contiguous
/// ranges covering [begin, end). Used when the caller wants per-chunk state
/// (e.g. one accumulator per worker).
void ParallelForChunked(
    ThreadPool* pool, int64_t begin, int64_t end, int num_chunks,
    const std::function<void(int, int64_t, int64_t)>& fn);

}  // namespace spinner

#endif  // SPINNER_COMMON_THREADPOOL_H_
