// Tiny command-line flag parser for the example and bench binaries.
// Supports --name=value and --name value forms plus bare boolean flags.
#ifndef SPINNER_COMMON_CLI_H_
#define SPINNER_COMMON_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace spinner {

/// Parses argv into a name->value map and answers typed lookups with
/// defaults. Unknown flags are collected so binaries can reject typos.
class CommandLine {
 public:
  /// Parses flags; non-flag arguments are ignored. Returns an error on
  /// malformed input (e.g. "--" with no name).
  Status Parse(int argc, const char* const* argv);

  /// Typed getters; return `def` when the flag is absent and CHECK-fail on
  /// unparsable values (a typo in a bench invocation should be loud).
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// True iff the flag appeared on the command line.
  bool Has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace spinner

#endif  // SPINNER_COMMON_CLI_H_
