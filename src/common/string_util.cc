#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spinner {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = Trim(text);
  if (text.empty() || text.size() > 31) return false;
  char buf[32];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno == ERANGE || end != buf + text.size() || end == buf) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty() || text.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (errno == ERANGE || end != buf + text.size() || end == buf) return false;
  *out = v;
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string WithCommas(int64_t n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace spinner
