// Result<T>: value-or-Status, the return type of fallible factories.
// Mirrors arrow::Result / absl::StatusOr semantics in a dependency-free form.
#ifndef SPINNER_COMMON_RESULT_H_
#define SPINNER_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace spinner {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
///   Result<CsrGraph> r = graph_io::ReadEdgeList(path);
///   if (!r.ok()) return r.status();
///   CsrGraph g = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, like StatusOr).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. CHECK-fails on an OK status:
  /// an OK Result must carry a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    SPINNER_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK() if a value is present, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors. CHECK-fail if no value is present.
  const T& value() const& {
    SPINNER_CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(repr_);
  }
  T& value() & {
    SPINNER_CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(repr_);
  }
  T&& value() && {
    SPINNER_CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), returns its status on error, otherwise
/// assigns the value into `lhs`.
#define SPINNER_ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto SPINNER_CONCAT_(_result_, __LINE__) = (rexpr);     \
  if (!SPINNER_CONCAT_(_result_, __LINE__).ok())          \
    return SPINNER_CONCAT_(_result_, __LINE__).status();  \
  lhs = std::move(SPINNER_CONCAT_(_result_, __LINE__)).value()

#define SPINNER_CONCAT_IMPL_(a, b) a##b
#define SPINNER_CONCAT_(a, b) SPINNER_CONCAT_IMPL_(a, b)

}  // namespace spinner

#endif  // SPINNER_COMMON_RESULT_H_
