// Deterministic pseudo-random primitives.
//
// Every stochastic decision in the library (initial labels, tie breaking,
// migration coin flips, graph generation) is derived from these functions so
// that a run is bit-reproducible for a given seed, independent of thread
// count and scheduling. The core trick is stateless hashing: instead of
// sharing a mutable RNG across threads, callers hash (seed, superstep,
// vertex_id) to obtain an independent stream per decision point.
#ifndef SPINNER_COMMON_RANDOM_H_
#define SPINNER_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace spinner {

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
/// Suitable both as a hash finalizer and as the generator behind stateless
/// per-decision randomness.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one well-mixed value.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Combines three 64-bit values. Used for (seed, superstep, vertex) streams.
inline uint64_t HashCombine(uint64_t a, uint64_t b, uint64_t c) {
  return HashCombine(HashCombine(a, b), c);
}

/// Small, fast xoshiro256** engine. Satisfies UniformRandomBitGenerator so
/// it can drive <random> distributions, but the library mostly uses the
/// direct helpers below to stay allocation- and distribution-free.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four lanes of state via SplitMix64, per the xoshiro authors.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t x = seed;
    for (auto& lane : s_) {
      x = SplitMix64(x);
      lane = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  /// Next raw 64 bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Stateless uniform draw in [0, bound) from a hashed key. The workhorse for
/// deterministic per-(seed, step, vertex) decisions.
inline uint64_t HashUniform(uint64_t key, uint64_t bound) {
  // One extra mix round decorrelates from callers that pass raw counters.
  uint64_t x = SplitMix64(key);
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(x) * bound) >> 64);
}

/// Stateless uniform double in [0, 1) from a hashed key.
inline double HashUniformDouble(uint64_t key) {
  return static_cast<double>(SplitMix64(key) >> 11) * 0x1.0p-53;
}

}  // namespace spinner

#endif  // SPINNER_COMMON_RANDOM_H_
