// Wall-clock timing helpers for benchmarks and engine statistics.
#ifndef SPINNER_COMMON_TIMER_H_
#define SPINNER_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace spinner {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spinner

#endif  // SPINNER_COMMON_TIMER_H_
