// Status: lightweight error-handling type used throughout the library in
// place of exceptions, following the RocksDB/Arrow idiom. Functions that can
// fail return a Status (or a Result<T>, see result.h); callers are expected
// to check `ok()` before using any output.
#ifndef SPINNER_COMMON_STATUS_H_
#define SPINNER_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace spinner {

/// Error categories. Kept deliberately small; the message carries detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  /// A bounded wait elapsed with the peer still connected but silent —
  /// distinct from kIOError (peer dead/EOF) so callers can tell a hung
  /// worker from a crashed one.
  kDeadlineExceeded = 8,
};

/// Returns a short human-readable name for a StatusCode ("OK", "IOError"...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error carrier. A default-constructed Status is OK.
///
/// Typical use:
///   Status s = graph_io::WriteEdgeList(path, edges);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Mirrors RocksDB's pattern.
#define SPINNER_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::spinner::Status _status = (expr);                \
    if (!_status.ok()) return _status;                 \
  } while (0)

}  // namespace spinner

#endif  // SPINNER_COMMON_STATUS_H_
