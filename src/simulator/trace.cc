#include "simulator/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/random.h"
#include "common/string_util.h"

namespace spinner::sim {

using stream::EdgeEvent;

Result<LoadTrace> ParseLoadTrace(std::string_view text) {
  LoadTrace trace;
  int line_no = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) continue;
    const std::vector<std::string_view> fields = SplitWhitespace(line);
    const std::string_view directive = fields[0];
    auto malformed = [&](const char* expected) {
      return Status::InvalidArgument(StrFormat(
          "trace line %d: '%.*s' — expected %s", line_no,
          static_cast<int>(raw_line.size()), raw_line.data(), expected));
    };

    if (directive == "burst") {
      int64_t at = 0;
      if (fields.size() != 2 || !ParseInt64(fields[1], &at) || at < 0) {
        return malformed("burst <micros>=0..");
      }
      if (!trace.bursts.empty() && at < trace.bursts.back().at_micros) {
        return Status::InvalidArgument(StrFormat(
            "trace line %d: burst time %lld precedes the previous burst",
            line_no, static_cast<long long>(at)));
      }
      TraceBurst burst;
      burst.at_micros = at;
      trace.bursts.push_back(std::move(burst));
      continue;
    }

    if (directive == "capacity") {
      int64_t capacity = 0;
      if (fields.size() != 2 || !ParseInt64(fields[1], &capacity) ||
          capacity < 0) {
        return malformed("capacity <machines>=0..");
      }
      if (trace.bursts.empty()) {
        trace.initial_capacity = static_cast<int>(capacity);
      } else {
        trace.bursts.back().capacity = static_cast<int>(capacity);
      }
      continue;
    }

    // Event directives require an open burst.
    if (trace.bursts.empty()) {
      return Status::InvalidArgument(StrFormat(
          "trace line %d: '%.*s' before the first burst", line_no,
          static_cast<int>(raw_line.size()), raw_line.data()));
    }
    TraceBurst& burst = trace.bursts.back();
    if (directive == "add" || directive == "remove") {
      int64_t src = 0;
      int64_t dst = 0;
      if (fields.size() != 3 || !ParseInt64(fields[1], &src) ||
          !ParseInt64(fields[2], &dst) || src < 0 || dst < 0) {
        return malformed("add|remove <src> <dst>");
      }
      burst.events.push_back(directive == "add"
                                 ? EdgeEvent::AddEdge(src, dst)
                                 : EdgeEvent::RemoveEdge(src, dst));
    } else if (directive == "vertices") {
      int64_t count = 0;
      if (fields.size() != 2 || !ParseInt64(fields[1], &count) ||
          count < 1) {
        return malformed("vertices <count>=1..");
      }
      burst.events.push_back(EdgeEvent::AddVertices(count));
    } else {
      return malformed("one of burst/capacity/add/remove/vertices");
    }
  }
  return trace;
}

std::string FormatLoadTrace(const LoadTrace& trace) {
  std::string out;
  if (trace.initial_capacity > 0) {
    out += StrFormat("capacity %d\n", trace.initial_capacity);
  }
  for (const TraceBurst& burst : trace.bursts) {
    out += StrFormat("burst %lld\n",
                     static_cast<long long>(burst.at_micros));
    if (burst.capacity >= 0) {
      out += StrFormat("capacity %d\n", burst.capacity);
    }
    for (const EdgeEvent& event : burst.events) {
      switch (event.kind) {
        case EdgeEvent::Kind::kAddEdge:
          out += StrFormat("add %lld %lld\n",
                           static_cast<long long>(event.src),
                           static_cast<long long>(event.dst));
          break;
        case EdgeEvent::Kind::kRemoveEdge:
          out += StrFormat("remove %lld %lld\n",
                           static_cast<long long>(event.src),
                           static_cast<long long>(event.dst));
          break;
        case EdgeEvent::Kind::kAddVertices:
          out += StrFormat("vertices %lld\n",
                           static_cast<long long>(event.count));
          break;
      }
    }
  }
  return out;
}

Result<LoadTrace> ReadLoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open trace file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseLoadTrace(text.str());
}

Status WriteLoadTrace(const std::string& path, const LoadTrace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open trace file for writing: " + path);
  }
  out << FormatLoadTrace(trace);
  out.flush();
  if (!out) return Status::IOError("short write to trace file: " + path);
  return Status::OK();
}

LoadTrace SyntheticLoadTrace(const SyntheticTraceOptions& options) {
  LoadTrace trace;
  trace.initial_capacity = options.initial_capacity;
  Rng rng(SplitMix64(options.seed ^ 0x7C4A3ULL));
  int64_t range = options.num_vertices;
  // Added edges eligible for later removal (removals must target edges
  // that exist, or the delta would be a no-op the coalescer drops).
  std::vector<std::pair<VertexId, VertexId>> added;

  for (int b = 0; b < options.num_bursts; ++b) {
    TraceBurst burst;
    burst.at_micros =
        options.first_burst_micros + b * options.burst_gap_micros;
    if (b == options.capacity_change_burst &&
        options.changed_capacity >= 0) {
      burst.capacity = options.changed_capacity;
    }
    if (options.vertices_per_burst > 0) {
      burst.events.push_back(
          EdgeEvent::AddVertices(options.vertices_per_burst));
      range += options.vertices_per_burst;
    }
    for (int e = 0; e < options.events_per_burst; ++e) {
      const bool remove = !added.empty() &&
                          rng.Bernoulli(options.remove_fraction);
      if (remove) {
        const size_t pick = rng.Uniform(added.size());
        const auto [src, dst] = added[pick];
        added[pick] = added.back();
        added.pop_back();
        burst.events.push_back(EdgeEvent::RemoveEdge(src, dst));
        continue;
      }
      if (range < 2) continue;  // no id range to draw an edge from yet
      const auto src = static_cast<VertexId>(rng.Uniform(range));
      const bool hot = options.hotspot_span > 0 &&
                       rng.Bernoulli(options.hotspot_fraction);
      const int64_t dst_bound =
          hot ? std::min<int64_t>(options.hotspot_span, range) : range;
      auto dst = static_cast<VertexId>(rng.Uniform(dst_bound));
      if (dst == src) dst = (dst + 1) % range;
      burst.events.push_back(EdgeEvent::AddEdge(src, dst));
      added.emplace_back(src, dst);
    }
    trace.bursts.push_back(std::move(burst));
  }
  return trace;
}

}  // namespace spinner::sim
