#include "simulator/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace spinner::sim {

SimulationResult Simulate(const pregel::RunStats& stats,
                          const CostModel& model) {
  SimulationResult result;
  const auto& steps = stats.per_superstep;
  for (size_t s = 0; s < steps.size(); ++s) {
    const auto& step = steps[s];
    const auto num_workers = static_cast<int>(
        step.worker_vertices_computed.size());
    SimulatedSuperstep sim;
    sim.superstep = step.superstep;
    sim.worker_seconds.resize(num_workers, 0.0);

    double max_t = 0.0;
    double min_t = 1e300;
    double sum_t = 0.0;
    for (int w = 0; w < num_workers; ++w) {
      double t_us = model.per_vertex_us *
                        static_cast<double>(step.worker_vertices_computed[w]) +
                    model.per_edge_us *
                        static_cast<double>(step.worker_edges_scanned[w]);
      if (s > 0) {
        // Messages ingested at the previous barrier are processed now.
        const auto& prev = steps[s - 1];
        const int64_t in = prev.worker_messages_in[w];
        const int64_t remote_in = prev.worker_remote_messages_in[w];
        t_us += model.per_local_message_us *
                    static_cast<double>(in - remote_in) +
                model.per_remote_message_us * static_cast<double>(remote_in);
      }
      const double t = t_us * 1e-6;
      sim.worker_seconds[w] = t;
      max_t = std::max(max_t, t);
      min_t = std::min(min_t, t);
      sum_t += t;
    }
    if (num_workers == 0) min_t = 0.0;
    sim.mean_worker_seconds =
        num_workers == 0 ? 0.0 : sum_t / static_cast<double>(num_workers);
    sim.min_worker_seconds = min_t;
    sim.superstep_seconds = max_t + model.barrier_us * 1e-6;

    result.total_seconds += sim.superstep_seconds;
    result.total_messages += step.messages_sent;
    result.remote_messages += step.messages_remote;
    result.mean_stats.Add(sim.mean_worker_seconds);
    result.max_stats.Add(max_t);
    result.min_stats.Add(min_t);
    result.supersteps.push_back(std::move(sim));
  }
  return result;
}

}  // namespace spinner::sim
