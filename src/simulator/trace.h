// Recorded load traces for the elasticity policy lab: a trace is a
// timestamped sequence of edge-event *bursts* (the workload) interleaved
// with cluster *capacity changes* (the environment) — everything an
// autoscaling policy reacts to, in a form that can be replayed through
// the real IngestionService + ElasticController deterministically
// (simulator/policy_lab.h) and diffed as text in a PR.
//
// Text format, one directive per line ('#' comments and blank lines
// ignored):
//
//   capacity 8            # before any burst: initial cluster capacity
//   burst 1000000         # opens a burst at t = 1,000,000 us
//   add 12 840            # edge events of the open burst
//   remove 7 13
//   vertices 64           # append 64 vertices to the id range
//   capacity 12           # inside a burst: capacity advertised at its t
//   burst 2000000
//   ...
//
// Burst times must be non-decreasing — replay sets the lab's ManualClock
// to each burst's time, and time does not run backwards.
#ifndef SPINNER_SIMULATOR_TRACE_H_
#define SPINNER_SIMULATOR_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "stream/event_queue.h"

namespace spinner::sim {

/// One burst: every event carries the burst's timestamp, and the replay
/// drains the ingestion queue after submitting it — so window boundaries
/// are a pure function of the trace, never of scheduling.
struct TraceBurst {
  int64_t at_micros = 0;
  /// Cluster capacity advertised when this burst lands; -1 = unchanged.
  int capacity = -1;
  std::vector<stream::EdgeEvent> events;
};

/// A replayable workload recording.
struct LoadTrace {
  /// Capacity advertised before the first burst; 0 = unbounded.
  int initial_capacity = 0;
  std::vector<TraceBurst> bursts;

  int64_t num_events() const {
    int64_t n = 0;
    for (const TraceBurst& burst : bursts) {
      n += static_cast<int64_t>(burst.events.size());
    }
    return n;
  }
};

/// Parses the text format above. Strict: unknown directives, events
/// outside a burst, and time going backwards are errors.
Result<LoadTrace> ParseLoadTrace(std::string_view text);

/// Renders a trace in the text format (ParseLoadTrace round-trips it).
std::string FormatLoadTrace(const LoadTrace& trace);

/// File wrappers around the two above.
Result<LoadTrace> ReadLoadTrace(const std::string& path);
Status WriteLoadTrace(const std::string& path, const LoadTrace& trace);

/// Knobs of the synthetic trace generator — a growth workload with an
/// optional hotspot (degrades φ by concentrating new edges on few
/// vertices) and an optional capacity change partway through.
struct SyntheticTraceOptions {
  /// Vertex-id range of the graph the trace will be applied to; new
  /// edges draw endpoints from [0, num_vertices + grown so far).
  int64_t num_vertices = 0;
  int num_bursts = 8;
  int events_per_burst = 256;
  /// > 0: each burst starts with a kAddVertices event growing the range —
  /// the "graph keeps growing" load that makes absolute-load watermarks
  /// meaningful.
  int64_t vertices_per_burst = 0;
  /// Fraction of edge events that remove a previously-added edge.
  double remove_fraction = 0.0;
  /// Fraction of added edges whose destination is drawn from the hot set
  /// [0, hotspot_span) — concentrated load that drags φ down.
  double hotspot_fraction = 0.0;
  int64_t hotspot_span = 64;
  int64_t first_burst_micros = 1'000'000;
  int64_t burst_gap_micros = 1'000'000;
  uint64_t seed = 1;
  int initial_capacity = 0;
  /// >= 0: the burst at this index advertises `changed_capacity`.
  int capacity_change_burst = -1;
  int changed_capacity = -1;
};

/// Deterministic generator (same options -> same trace, any platform).
LoadTrace SyntheticLoadTrace(const SyntheticTraceOptions& options);

}  // namespace spinner::sim

#endif  // SPINNER_SIMULATOR_TRACE_H_
