// Cluster cost model: turns exact per-worker engine statistics into
// simulated distributed wall-clock times.
//
// The paper's application experiments (Table IV, Fig. 9) ran on 256-worker
// Hadoop clusters we do not have. What those experiments actually measure,
// though, is determined by message locality and per-worker load — which the
// in-process engine counts exactly. The model charges each worker per
// superstep for its compute (vertices + edges) and for the messages it
// ingests (remote messages an order of magnitude more expensive than local
// ones, the defining property of a shared-nothing cluster), and makes the
// superstep as slow as its slowest worker — the synchronization-barrier
// effect that makes load balance matter (§V.F: "less loaded workers idle at
// the synchronization barrier").
#ifndef SPINNER_SIMULATOR_COST_MODEL_H_
#define SPINNER_SIMULATOR_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "pregel/stats.h"

namespace spinner::sim {

/// Cost coefficients, in microseconds. Defaults approximate a commodity
/// cluster: remote messages cost ~10× local ones.
struct CostModel {
  double per_vertex_us = 0.05;
  double per_edge_us = 0.01;
  double per_local_message_us = 0.05;
  double per_remote_message_us = 0.50;
  double barrier_us = 2000.0;
};

/// Simulated timings for one superstep.
struct SimulatedSuperstep {
  int64_t superstep = 0;
  /// Simulated busy time per worker.
  std::vector<double> worker_seconds;
  /// Duration of the superstep: slowest worker + barrier.
  double superstep_seconds = 0.0;
  /// Mean/min over workers (Table IV columns).
  double mean_worker_seconds = 0.0;
  double min_worker_seconds = 0.0;
};

/// Whole-run simulated timings.
struct SimulationResult {
  std::vector<SimulatedSuperstep> supersteps;
  double total_seconds = 0.0;
  int64_t total_messages = 0;
  int64_t remote_messages = 0;

  /// Distributions across supersteps of the per-superstep worker mean /
  /// max / min (the ± entries of Table IV).
  SampleStats mean_stats;
  SampleStats max_stats;
  SampleStats min_stats;
};

/// Applies the cost model to engine statistics. Messages are charged at the
/// superstep where they are processed (one after they were sent).
SimulationResult Simulate(const pregel::RunStats& stats,
                          const CostModel& model);

/// Modeled cost of elastic re-shaping (the policy lab's migration gauge):
/// each moved vertex ships its state to another machine (one remote
/// message) and is re-registered there (one vertex touch), and each
/// rescale pays one cluster-wide barrier. The same coefficients that
/// price a simulated superstep price the migration, so "rescale often"
/// vs "tolerate degradation" is argued in one currency.
inline double MigrationSeconds(int64_t moved_vertices, int64_t num_rescales,
                               const CostModel& model) {
  return (static_cast<double>(moved_vertices) *
              (model.per_remote_message_us + model.per_vertex_us) +
          static_cast<double>(num_rescales) * model.barrier_us) *
         1e-6;
}

}  // namespace spinner::sim

#endif  // SPINNER_SIMULATOR_COST_MODEL_H_
