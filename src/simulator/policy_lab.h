// The trace-replay policy lab: run a recorded LoadTrace through the REAL
// machinery — IngestionService windows feeding ApplyDelta, an
// ElasticController evaluating a ScalingPolicy after every applied
// window, capacity events steering what scale-out is allowed — and score
// the outcome. No mocks: the partitioning that emerges is the one
// production would compute, so policy comparisons are arguments about
// real φ/ρ trajectories, not about a simulator's opinion of them.
//
// Determinism: the replay owns a ManualClock pinned to each burst's
// timestamp and drains the service after every burst, so window
// boundaries (and therefore every signal, decision, and assignment) are a
// pure function of (trace, session shape, policy) — the decision log is
// byte-stable and diffable. `streaming=false` replays the identical
// window schedule through blocking ApplyDelta calls on the caller's
// thread; the two paths are bit-identical (the extension of the repo's
// stream-vs-blocking invariant to the closed loop, which tests assert).
//
// Scorecard (PolicyReplayResult): φ degradation, ρ violations, rescale
// count, moved vertices priced by CostModel::MigrationSeconds — the
// quality-vs-migration-time trade-off of Hanai et al. in one struct.
#ifndef SPINNER_SIMULATOR_POLICY_LAB_H_
#define SPINNER_SIMULATOR_POLICY_LAB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "elastic/elastic_controller.h"
#include "simulator/cost_model.h"
#include "simulator/trace.h"
#include "spinner/session.h"

namespace spinner::sim {

/// Replay knobs.
struct ReplayOptions {
  /// Policy spec (elastic/policy_spec.h grammar). "none" is the baseline
  /// that must reproduce a controller-free run byte-for-byte.
  std::string policy_spec = "none";
  /// Events per ingestion window (EventCountPolicy watermark) — the
  /// deterministic trigger; bursts additionally flush partial windows.
  int64_t events_per_window = 256;
  /// Forwarded to the controller (off-thread modes: resize the worker
  /// fleet proportionally after every rescale).
  double workers_per_partition = 0.0;
  /// True: events flow through a live IngestionService (queue, ingestion
  /// thread, on_apply hook). False: the identical window schedule runs as
  /// blocking ApplyDelta + controller evaluations on this thread.
  bool streaming = true;
  /// An apply whose ρ exceeds this counts as a violation in the score.
  double rho_violation_threshold = 1.10;
  /// Prices moved vertices and rescale barriers.
  CostModel cost_model;
};

/// The scorecard of one (trace, policy) replay.
struct PolicyReplayResult {
  std::string policy;
  int initial_k = 0;
  int final_k = 0;
  int64_t windows_applied = 0;
  int evaluations = 0;
  int rescales = 0;
  /// φ after the first / last apply, and the trajectory extremes.
  double initial_phi = 0.0;
  double final_phi = 0.0;
  double min_phi = 0.0;
  double mean_phi = 0.0;
  double max_rho = 0.0;
  /// Applies whose ρ exceeded the violation threshold.
  int rho_violations = 0;
  /// Vertices whose label changed across executed rescales, and their
  /// modeled migration price.
  int64_t moved_vertices = 0;
  double migration_seconds = 0.0;
  /// Real wall time of the replay (the only nondeterministic field).
  double replay_wall_seconds = 0.0;
  /// φ/ρ after every applied window (post-decision, so a rescale's effect
  /// lands in the same slot that triggered it). Bit-comparable.
  std::vector<double> phi_history;
  std::vector<double> rho_history;
  /// The controller's decision log (elastic/elastic_controller.h).
  std::vector<elastic::DecisionRecord> decisions;
  /// FormatLog() of the same — the deterministic text artifact.
  std::string decision_log;
  /// Final assignment, for byte-for-byte baseline comparisons.
  std::vector<PartitionId> final_assignment;
};

/// Replays `trace` against `session` (must be open; it is mutated) under
/// `options`. Returns the scorecard or the first ingestion / elasticity /
/// parse error.
Result<PolicyReplayResult> ReplayTrace(PartitioningSession* session,
                                       const LoadTrace& trace,
                                       const ReplayOptions& options);

}  // namespace spinner::sim

#endif  // SPINNER_SIMULATOR_POLICY_LAB_H_
