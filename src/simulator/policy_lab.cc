#include "simulator/policy_lab.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "elastic/policy_spec.h"
#include "stream/clock.h"
#include "stream/ingestion_service.h"
#include "stream/trigger_policy.h"

namespace spinner::sim {
namespace {

using elastic::ElasticController;
using stream::EdgeEvent;
using stream::IngestStats;

/// Per-window bookkeeping shared by the streaming and blocking paths:
/// runs the controller, meters migration, records the post-decision
/// quality trajectory.
class ReplayRecorder {
 public:
  ReplayRecorder(PartitioningSession* session, ElasticController* controller,
                 PolicyReplayResult* result, double rho_violation_threshold)
      : session_(session),
        controller_(controller),
        result_(result),
        rho_violation_threshold_(rho_violation_threshold) {}

  /// The on_apply hook (streaming) / post-apply call (blocking).
  bool OnApply(const IngestStats& stats) {
    // A rescale remaps labels; diff the assignment around the decision to
    // meter migration. The copy is O(V) per window — lab scale, fine.
    const std::vector<PartitionId> before = session_->assignment();
    const int rescales_before = controller_->rescales_executed();
    controller_->OnApply(stats);
    if (controller_->rescales_executed() > rescales_before) {
      const std::vector<PartitionId>& after = session_->assignment();
      const size_t n = std::min(before.size(), after.size());
      for (size_t i = 0; i < n; ++i) {
        if (before[i] != after[i]) ++result_->moved_vertices;
      }
    }
    const PartitionMetrics& metrics = session_->last_result().metrics;
    if (result_->phi_history.empty()) result_->initial_phi = metrics.phi;
    result_->phi_history.push_back(metrics.phi);
    result_->rho_history.push_back(metrics.rho);
    if (metrics.rho > rho_violation_threshold_) ++result_->rho_violations;
    return true;
  }

 private:
  PartitioningSession* session_;
  ElasticController* controller_;
  PolicyReplayResult* result_;
  double rho_violation_threshold_;
};

/// Streaming replay: the real service, queue and ingestion thread. The
/// ManualClock is pinned to each burst's timestamp and the service is
/// drained per burst, so windows are a pure function of the trace.
Status ReplayStreaming(PartitioningSession* session, const LoadTrace& trace,
                       const ReplayOptions& options,
                       std::shared_ptr<stream::ManualClock> clock,
                       ElasticController* controller,
                       ReplayRecorder* recorder) {
  stream::IngestionOptions ingest;
  ingest.clock = clock;
  ingest.policy =
      std::make_unique<stream::EventCountPolicy>(options.events_per_window);
  ingest.on_apply = [recorder](const IngestStats& stats) {
    return recorder->OnApply(stats);
  };
  stream::IngestionService service(session, std::move(ingest));
  SPINNER_RETURN_IF_ERROR(service.Start());
  for (const TraceBurst& burst : trace.bursts) {
    // The service is quiescent here (previous Drain returned), so the
    // controller is not concurrently evaluating: capacity and clock
    // updates are race-free.
    clock->SetMicros(burst.at_micros);
    if (burst.capacity >= 0) {
      controller->set_available_capacity(burst.capacity);
    }
    for (const EdgeEvent& event : burst.events) {
      SPINNER_RETURN_IF_ERROR(service.Submit(event));
    }
    SPINNER_RETURN_IF_ERROR(service.Drain());
  }
  return service.Stop();
}

/// Blocking replay: the identical window schedule — events_per_window
/// chunks, partial window flushed at each burst boundary — as direct
/// ApplyDelta calls plus synthesized controller signals. Bit-identical to
/// ReplayStreaming by the stream-vs-blocking invariant.
Status ReplayBlocking(PartitioningSession* session, const LoadTrace& trace,
                      const ReplayOptions& options,
                      std::shared_ptr<stream::ManualClock> clock,
                      ElasticController* controller,
                      ReplayRecorder* recorder) {
  IngestStats stats;  // the fields OnApply reads, accumulated by hand
  GraphDelta window;
  int64_t window_events = 0;

  auto apply_window = [&]() -> Status {
    GraphDelta delta = std::move(window);
    window = GraphDelta{};
    delta.Coalesce();
    SPINNER_RETURN_IF_ERROR(session->ApplyDelta(delta));
    stats.events_ingested += window_events;
    window_events = 0;
    ++stats.windows_applied;
    // Events are stamped at submission and applied at the same frozen
    // clock instant, so replay staleness is identically zero.
    stats.last_staleness_micros = 0;
    stats.last_phi = session->last_result().metrics.phi;
    stats.last_rho = session->last_result().metrics.rho;
    recorder->OnApply(stats);
    return Status::OK();
  };

  for (const TraceBurst& burst : trace.bursts) {
    clock->SetMicros(burst.at_micros);
    if (burst.capacity >= 0) {
      controller->set_available_capacity(burst.capacity);
    }
    for (const EdgeEvent& event : burst.events) {
      switch (event.kind) {
        case EdgeEvent::Kind::kAddEdge:
          window.AddEdge(event.src, event.dst);
          break;
        case EdgeEvent::Kind::kRemoveEdge:
          window.RemoveEdge(event.src, event.dst);
          break;
        case EdgeEvent::Kind::kAddVertices:
          window.AddVertex(event.count);
          break;
      }
      if (++window_events >= options.events_per_window) {
        SPINNER_RETURN_IF_ERROR(apply_window());
      }
    }
    if (window_events > 0) {
      SPINNER_RETURN_IF_ERROR(apply_window());  // the burst-drain flush
    }
  }
  return Status::OK();
}

}  // namespace

Result<PolicyReplayResult> ReplayTrace(PartitioningSession* session,
                                       const LoadTrace& trace,
                                       const ReplayOptions& options) {
  if (session == nullptr || !session->is_open()) {
    return Status::FailedPrecondition(
        "ReplayTrace needs an open PartitioningSession");
  }
  SPINNER_ASSIGN_OR_RETURN(std::unique_ptr<elastic::ScalingPolicy> policy,
                           elastic::MakePolicy(options.policy_spec));

  auto clock = std::make_shared<stream::ManualClock>(0);
  elastic::ControllerOptions controller_options;
  controller_options.clock = clock;
  controller_options.workers_per_partition = options.workers_per_partition;
  ElasticController controller(session, std::move(policy),
                               controller_options);
  controller.set_available_capacity(trace.initial_capacity);

  PolicyReplayResult result;
  result.policy = options.policy_spec;
  result.initial_k = session->num_partitions();
  ReplayRecorder recorder(session, &controller, &result,
                          options.rho_violation_threshold);

  const auto wall_start = std::chrono::steady_clock::now();
  const Status replay_status =
      options.streaming
          ? ReplayStreaming(session, trace, options, clock, &controller,
                            &recorder)
          : ReplayBlocking(session, trace, options, clock, &controller,
                           &recorder);
  result.replay_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  SPINNER_RETURN_IF_ERROR(replay_status);
  SPINNER_RETURN_IF_ERROR(controller.status());

  result.final_k = session->num_partitions();
  result.windows_applied =
      static_cast<int64_t>(result.phi_history.size());
  result.evaluations = controller.evaluations();
  result.rescales = controller.rescales_executed();
  result.migration_seconds = MigrationSeconds(
      result.moved_vertices, result.rescales, options.cost_model);
  result.decisions = controller.log();
  result.decision_log = controller.FormatLog();
  result.final_assignment = session->assignment();

  if (!result.phi_history.empty()) {
    result.final_phi = result.phi_history.back();
    result.min_phi = result.phi_history.front();
    double sum = 0.0;
    for (double phi : result.phi_history) {
      result.min_phi = std::min(result.min_phi, phi);
      sum += phi;
    }
    result.mean_phi = sum / static_cast<double>(result.phi_history.size());
  }
  for (double rho : result.rho_history) {
    result.max_rho = std::max(result.max_rho, rho);
  }
  return result;
}

}  // namespace spinner::sim
