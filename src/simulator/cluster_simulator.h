// ClusterSimulator: the what-if harness of the repo, in two halves.
//
//   * RunOnCluster (below): runs any Pregel program under a chosen
//     vertex→worker placement and reports simulated distributed timings —
//     the harness behind the paper's application-performance experiments
//     (§V.F).
//   * The trace-replay policy lab (simulator/trace.h +
//     simulator/policy_lab.h, re-exported here): replays recorded load
//     traces through the real IngestionService + ElasticController and
//     scores autoscaling policies on φ degradation, ρ violations,
//     rescale count and modeled migration cost.
//
// Both answer the same kind of question — "what would this cluster
// decision have cost?" — against the same CostModel currency.
#ifndef SPINNER_SIMULATOR_CLUSTER_SIMULATOR_H_
#define SPINNER_SIMULATOR_CLUSTER_SIMULATOR_H_

#include <utility>

#include "graph/csr_graph.h"
#include "pregel/engine.h"
#include "pregel/topology.h"
#include "simulator/cost_model.h"
#include "simulator/policy_lab.h"
#include "simulator/trace.h"

namespace spinner::sim {

/// Combined outcome: real engine counters + modeled cluster timings.
struct ClusterRun {
  pregel::RunStats engine_stats;
  SimulationResult simulation;
};

/// Runs `program` on `graph` distributed across `num_workers` simulated
/// machines via `placement`, then prices the run with `model`.
/// V/E/M are the program's vertex/edge/message types; `init_vertex` and
/// `init_edge` seed the state exactly as PregelEngine's constructor does.
template <typename V, typename E, typename M>
ClusterRun RunOnCluster(
    const CsrGraph& graph, int num_workers, pregel::Placement placement,
    pregel::VertexProgram<V, E, M>& program,
    std::function<V(VertexId)> init_vertex,
    std::function<E(VertexId, VertexId, EdgeWeight)> init_edge,
    const CostModel& model = {}, int64_t max_supersteps = 100000) {
  pregel::EngineConfig config;
  config.num_workers = num_workers;
  config.max_supersteps = max_supersteps;
  pregel::PregelEngine<V, E, M> engine(graph, config, std::move(placement),
                                       std::move(init_vertex),
                                       std::move(init_edge));
  ClusterRun run;
  run.engine_stats = engine.Run(program);
  run.simulation = Simulate(run.engine_stats, model);
  return run;
}

}  // namespace spinner::sim

#endif  // SPINNER_SIMULATOR_CLUSTER_SIMULATOR_H_
