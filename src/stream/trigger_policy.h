// When does a window of buffered edge events become a repartitioning?
// That trade-off — apply often (fresh partitioning, high per-apply
// overhead) vs. batch long (amortized cost, stale partitioning) — is the
// latency/quality SLO of real-time dynamic partitioning (SDP, arXiv
// 2110.15669). TriggerPolicy pins it behind one pluggable decision point
// evaluated by the ingestion thread; every time input comes from the
// injected Clock, so policies are deterministic under test.
#ifndef SPINNER_STREAM_TRIGGER_POLICY_H_
#define SPINNER_STREAM_TRIGGER_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace spinner::stream {

/// What the ingestion loop knows when it asks "apply now?". All times are
/// in the service clock's microsecond domain.
struct WindowState {
  /// Events folded into the current (unapplied) window.
  int64_t window_events = 0;
  /// Events still queued behind the window.
  int64_t queue_depth = 0;
  /// Timestamp of the first event in the window, or -1 if empty.
  int64_t window_opened_micros = -1;
  /// Timestamp of the oldest unapplied event anywhere (window or queue),
  /// or -1 if there is none. now - this = current staleness.
  int64_t oldest_event_micros = -1;
  int64_t now_micros = 0;
};

/// Decides when the current window is applied. Implementations must be
/// stateless or confine state to the ingestion thread (ShouldTrigger is
/// only ever called from it, never concurrently).
class TriggerPolicy {
 public:
  virtual ~TriggerPolicy() = default;
  virtual bool ShouldTrigger(const WindowState& state) const = 0;
  virtual std::string name() const = 0;
};

/// Apply once the window holds `watermark` events. The deterministic
/// policy: window boundaries depend only on the event sequence, never on
/// timing — the one the bit-identity tests drive.
class EventCountPolicy : public TriggerPolicy {
 public:
  explicit EventCountPolicy(int64_t watermark)
      : watermark_(watermark < 1 ? 1 : watermark) {}
  bool ShouldTrigger(const WindowState& state) const override {
    return state.window_events >= watermark_;
  }
  std::string name() const override { return "event-count"; }
  int64_t watermark() const { return watermark_; }

 private:
  int64_t watermark_;
};

/// Apply once the window has been open for `window_micros` of clock time.
/// Fixed-size time windows: an idle stream costs nothing (an empty window
/// never triggers), a busy one is applied on a steady cadence.
class WallClockWindowPolicy : public TriggerPolicy {
 public:
  explicit WallClockWindowPolicy(int64_t window_micros)
      : window_micros_(window_micros < 1 ? 1 : window_micros) {}
  bool ShouldTrigger(const WindowState& state) const override {
    return state.window_opened_micros >= 0 &&
           state.now_micros - state.window_opened_micros >= window_micros_;
  }
  std::string name() const override { return "wall-clock-window"; }

 private:
  int64_t window_micros_;
};

/// Bounded staleness: apply before any unapplied event (queued or
/// windowed) grows older than `max_staleness_micros`. The difference from
/// WallClockWindowPolicy is the anchor — this one watches the oldest
/// event the partitioning has not yet absorbed, which is the SLO a
/// serving system actually promises ("the partitioning reflects every
/// change older than X").
class StalenessSloPolicy : public TriggerPolicy {
 public:
  explicit StalenessSloPolicy(int64_t max_staleness_micros)
      : max_staleness_micros_(max_staleness_micros < 1 ? 1
                                                       : max_staleness_micros) {
  }
  bool ShouldTrigger(const WindowState& state) const override {
    return state.oldest_event_micros >= 0 &&
           state.now_micros - state.oldest_event_micros >=
               max_staleness_micros_;
  }
  std::string name() const override { return "staleness-slo"; }

 private:
  int64_t max_staleness_micros_;
};

/// Triggers when any member policy does — e.g. "every 10k events, but
/// never let staleness exceed 500ms".
class AnyOfPolicy : public TriggerPolicy {
 public:
  explicit AnyOfPolicy(std::vector<std::unique_ptr<TriggerPolicy>> policies)
      : policies_(std::move(policies)) {}
  bool ShouldTrigger(const WindowState& state) const override {
    for (const auto& p : policies_) {
      if (p->ShouldTrigger(state)) return true;
    }
    return false;
  }
  std::string name() const override { return "any-of"; }

 private:
  std::vector<std::unique_ptr<TriggerPolicy>> policies_;
};

}  // namespace spinner::stream

#endif  // SPINNER_STREAM_TRIGGER_POLICY_H_
