// IngestionService: maintained partitioning over a *live* edge stream —
// the millions-of-users scenario the paper motivates (§I/§V) made
// operational. Producers on any thread submit EdgeEvents; a dedicated
// ingestion thread drains the bounded queue (backpressure, never unbounded
// growth), folds events into windowed GraphDeltas (GraphDelta::Coalesce:
// an edge added and removed within one window never reaches the
// partitioner), and applies each window through the session's incremental
// ApplyDelta when the TriggerPolicy fires — event-count watermark,
// wall-clock window, or staleness SLO, all timed against an injected
// Clock so tests are deterministic.
//
//   PartitioningSession session(config);
//   SPINNER_CHECK_OK(session.Open(n, edges));
//   IngestionOptions opts;
//   opts.policy = std::make_unique<EventCountPolicy>(1000);
//   IngestionService service(&session, std::move(opts));
//   SPINNER_CHECK_OK(service.Start());
//   ... producers: service.Submit(EdgeEvent::AddEdge(u, v)); ...
//   SPINNER_CHECK_OK(service.Stop());   // drain, apply the tail, join
//
// Determinism contract (the repo's core invariant, extended to the
// stream): a drained ingestion run produces assignments and float
// φ/ρ/score histories bit-identical to the equivalent sequence of
// blocking ApplyDelta calls — the same windows, coalesced the same way —
// at every {num_shards, num_threads} shape. Nothing about the queue, the
// thread, or the clock leaks into the partitioning; only window
// *boundaries* do, and with EventCountPolicy those are a pure function of
// the event sequence.
//
// Threading rules: Submit/TrySubmit/SubmitFor/stats()/Drain() are safe
// from any thread. The session belongs to the ingestion thread while the
// service is running — callers may inspect it only in the quiescent
// window between a returned Drain()/Stop() and the next Submit.
#ifndef SPINNER_STREAM_INGESTION_SERVICE_H_
#define SPINNER_STREAM_INGESTION_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/delta.h"
#include "spinner/observer.h"
#include "spinner/session.h"
#include "stream/checkpoint_log.h"
#include "stream/clock.h"
#include "stream/event_queue.h"
#include "stream/trigger_policy.h"

namespace spinner::stream {

/// Live counters of an ingestion run. Snapshots are internally consistent
/// (taken under one lock) and safe to read from any thread.
struct IngestStats {
  /// Events currently queued (behind the open window).
  int64_t queue_depth = 0;
  /// Deepest the queue has ever been — how hard backpressure worked.
  int64_t queue_high_water = 0;
  /// Events accepted by Submit/TrySubmit/SubmitFor.
  int64_t events_submitted = 0;
  /// Events drained from the queue into windows.
  int64_t events_ingested = 0;
  /// Events eliminated by GraphDelta::Coalesce (duplicate adds,
  /// add-then-remove pairs) before ever reaching the partitioner.
  int64_t events_coalesced = 0;
  /// Windows applied through ApplyDelta.
  int64_t windows_applied = 0;
  /// ApplyDelta wall time of the most recent window.
  int64_t last_apply_micros = 0;
  int64_t max_apply_micros = 0;
  int64_t total_apply_micros = 0;
  /// Staleness of the oldest event in the most recent window at the
  /// moment it was applied, and the worst ever observed.
  int64_t last_staleness_micros = 0;
  int64_t max_staleness_micros = 0;
  /// Quality of the maintained partitioning after the last apply.
  double last_phi = 0.0;
  double last_rho = 0.0;
  /// Delta-log checkpoint activity (zero unless checkpoint_base_path set).
  int64_t checkpoint_records = 0;
  int64_t checkpoint_bases = 0;
  /// True once a hard Cancel() interrupted the run.
  bool cancelled = false;
};

/// Construction-time knobs of an IngestionService.
struct IngestionOptions {
  /// Capacity of the edge-event queue — the backpressure bound.
  size_t queue_capacity = 4096;
  /// When to apply the open window. Defaults to EventCountPolicy(256).
  std::unique_ptr<TriggerPolicy> policy;
  /// Time source for stamping, staleness and trigger evaluation.
  /// Defaults to SystemClock; tests inject a ManualClock.
  std::shared_ptr<Clock> clock;
  /// How long the ingestion thread sleeps on an empty queue before
  /// re-evaluating time-based policies.
  std::chrono::microseconds idle_poll = std::chrono::milliseconds(1);
  /// Non-empty: incremental-checkpoint every applied window to this base
  /// path (see stream/checkpoint_log.h).
  std::string checkpoint_base_path;
  /// Compaction threshold of the checkpoint delta log.
  int64_t checkpoint_compact_after = 64;
  /// Called on the ingestion thread after every applied window. Return
  /// false to request a graceful stop (like Stop(), but from inside).
  std::function<bool(const IngestStats&)> on_apply;
};

/// Long-lived ingestion daemon over one PartitioningSession.
class IngestionService {
 public:
  /// `session` must outlive the service and be Open(). The service owns
  /// the session's mutation rights while running.
  IngestionService(PartitioningSession* session, IngestionOptions options);

  /// Stops the service (hard-cancelling any in-flight apply) if the
  /// caller never did.
  ~IngestionService();

  IngestionService(const IngestionService&) = delete;
  IngestionService& operator=(const IngestionService&) = delete;

  // --- Lifecycle ----------------------------------------------------------

  /// Spawns the ingestion thread. Fails if the session is not open or the
  /// service already ran (one Start per service).
  Status Start();

  /// Graceful drain-and-stop: closes the queue, waits for the ingestion
  /// thread to drain it and apply the final (partial) window, joins.
  /// Returns the first ingestion error, or OK. Idempotent.
  Status Stop();

  /// Hard cancellation: interrupts an in-flight label-propagation run via
  /// the session's CancellationToken (it stops within one iteration and
  /// commits the partially-refined — still valid — assignment), discards
  /// every unapplied event, and joins. Idempotent.
  Status Cancel();

  /// Blocks until every event submitted before this call has been applied
  /// (the queue is empty and the window is closed), even if the trigger
  /// policy would have waited — the stream analogue of an fsync. After it
  /// returns the session is quiescent and safe to inspect until the next
  /// Submit. Fails if the service is not running.
  Status Drain();

  // --- Producers (any thread) --------------------------------------------

  /// Blocks while the queue is full (backpressure). FailedPrecondition if
  /// the service was stopped.
  Status Submit(EdgeEvent event);

  /// Never blocks: FailedPrecondition if stopped, Unavailable-style
  /// OutOfRange if the queue is full right now.
  Status TrySubmit(EdgeEvent event);

  /// Blocks up to `timeout`; OutOfRange on timeout.
  Status SubmitFor(EdgeEvent event, std::chrono::microseconds timeout);

  // --- Observation --------------------------------------------------------

  /// Installs the per-iteration φ/ρ/score observer forwarded to the
  /// session for every windowed apply. Call before Start(); the callback
  /// runs on the ingestion thread.
  void SetProgressObserver(ProgressObserver observer);

  /// Consistent snapshot of the live counters.
  IngestStats stats() const;

  bool running() const;

 private:
  enum class State { kIdle, kRunning, kStopped };

  void RunLoop();
  /// Folds one event into window_delta_, updating window bookkeeping.
  void FoldIntoWindow(const EdgeEvent& event);
  /// The trigger policy's view of this moment (ingestion thread only).
  WindowState CurrentWindowState() const;
  /// Coalesces and applies the open window; updates stats and checkpoint.
  Status ApplyWindow();
  Status StopInternal(bool hard_cancel);

  PartitioningSession* session_;
  IngestionOptions options_;
  std::shared_ptr<Clock> clock_;
  EventQueue queue_;
  std::unique_ptr<IncrementalCheckpointer> checkpointer_;

  std::thread ingest_thread_;
  CancellationToken cancel_token_;
  ProgressObserver observer_;

  mutable std::mutex mutex_;
  std::condition_variable quiesced_;
  State state_ = State::kIdle;
  bool cancel_requested_ = false;
  int drain_waiters_ = 0;
  /// True while the window is empty, the queue is drained and no apply is
  /// in flight — the condition Drain() waits on.
  bool quiescent_ = true;
  Status ingest_error_;
  IngestStats stats_;

  // Ingestion-thread-only window state (no lock needed).
  GraphDelta window_delta_;
  int64_t window_events_ = 0;
  int64_t window_opened_micros_ = -1;
  int64_t window_oldest_micros_ = -1;
};

}  // namespace spinner::stream

#endif  // SPINNER_STREAM_INGESTION_SERVICE_H_
