// Injected time source for the streaming ingestion service. Trigger
// policies (stream/trigger_policy.h) decide *when* a window of edge events
// is applied; routing every "now" through this interface makes those
// decisions deterministic under test — a ManualClock advances exactly when
// the test says so, while production uses the monotonic SystemClock.
#ifndef SPINNER_STREAM_CLOCK_H_
#define SPINNER_STREAM_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace spinner::stream {

/// Monotonic microsecond clock. Implementations must be safe to read from
/// any thread (producers stamp events, the ingestion thread evaluates
/// trigger policies).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowMicros() const = 0;
};

/// Production clock: std::chrono::steady_clock in microseconds.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Test clock: time moves only when Advance()/Set() is called.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(int64_t micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void SetMicros(int64_t micros) {
    now_.store(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace spinner::stream

#endif  // SPINNER_STREAM_CLOCK_H_
