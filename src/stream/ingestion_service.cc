#include "stream/ingestion_service.h"

#include <algorithm>

#include "common/timer.h"

namespace spinner::stream {

IngestionService::IngestionService(PartitioningSession* session,
                                   IngestionOptions options)
    : session_(session),
      options_(std::move(options)),
      clock_(options_.clock ? options_.clock
                            : std::make_shared<SystemClock>()),
      queue_(options_.queue_capacity) {
  if (options_.policy == nullptr) {
    options_.policy = std::make_unique<EventCountPolicy>(256);
  }
  if (!options_.checkpoint_base_path.empty()) {
    IncrementalCheckpointer::Options ckpt;
    ckpt.compact_after_records = options_.checkpoint_compact_after;
    checkpointer_ = std::make_unique<IncrementalCheckpointer>(
        options_.checkpoint_base_path, ckpt);
  }
}

IngestionService::~IngestionService() {
  if (running()) (void)Cancel();  // best effort; errors have nowhere to go
  if (ingest_thread_.joinable()) ingest_thread_.join();
}

Status IngestionService::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return Status::FailedPrecondition(
        "ingestion service already started; one Start() per service");
  }
  if (session_ == nullptr || !session_->is_open()) {
    return Status::FailedPrecondition(
        "session must be Open() before starting ingestion");
  }
  // The session's observer is wrapped for the run: the user's callback is
  // forwarded, cancellation is the service's (Cancel() reaches into an
  // in-flight refine through it).
  ProgressObserver wrapped;
  wrapped.on_iteration = observer_.on_iteration;
  wrapped.cancel = &cancel_token_;
  session_->SetProgressObserver(wrapped);
  state_ = State::kRunning;
  quiescent_ = true;
  ingest_thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

Status IngestionService::StopInternal(bool hard_cancel) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kIdle) {
      return Status::FailedPrecondition("ingestion service never started");
    }
    if (state_ == State::kStopped) return ingest_error_;
    if (hard_cancel) {
      cancel_requested_ = true;
      stats_.cancelled = true;
    }
  }
  if (hard_cancel) cancel_token_.Cancel();
  queue_.Close();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kStopped;
  quiesced_.notify_all();
  // Hand the session back with the caller's unwrapped observer.
  session_->SetProgressObserver(observer_);
  return ingest_error_;
}

Status IngestionService::Stop() { return StopInternal(false); }

Status IngestionService::Cancel() { return StopInternal(true); }

Status IngestionService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != State::kRunning) {
    return Status::FailedPrecondition("ingestion service is not running");
  }
  ++drain_waiters_;
  quiesced_.wait(lock, [&] {
    return quiescent_ || state_ != State::kRunning || !ingest_error_.ok() ||
           cancel_requested_;
  });
  --drain_waiters_;
  return ingest_error_;
}

Status IngestionService::Submit(EdgeEvent event) {
  if (event.timestamp_micros < 0) {
    event.timestamp_micros = clock_->NowMicros();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kRunning) {
      return Status::FailedPrecondition("ingestion service is not running");
    }
  }
  if (!queue_.Enqueue(event)) {
    return Status::FailedPrecondition(
        "ingestion service stopped while waiting for queue space");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.events_submitted;
  quiescent_ = false;
  return Status::OK();
}

Status IngestionService::TrySubmit(EdgeEvent event) {
  if (event.timestamp_micros < 0) {
    event.timestamp_micros = clock_->NowMicros();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kRunning) {
      return Status::FailedPrecondition("ingestion service is not running");
    }
  }
  if (!queue_.TryEnqueue(event)) {
    return Status::OutOfRange("event queue is full");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.events_submitted;
  quiescent_ = false;
  return Status::OK();
}

Status IngestionService::SubmitFor(EdgeEvent event,
                                   std::chrono::microseconds timeout) {
  if (event.timestamp_micros < 0) {
    event.timestamp_micros = clock_->NowMicros();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kRunning) {
      return Status::FailedPrecondition("ingestion service is not running");
    }
  }
  if (!queue_.EnqueueFor(event, timeout)) {
    return Status::OutOfRange(
        "event queue stayed full past the submit timeout");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.events_submitted;
  quiescent_ = false;
  return Status::OK();
}

void IngestionService::SetProgressObserver(ProgressObserver observer) {
  observer_ = std::move(observer);
}

IngestStats IngestionService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  IngestStats out = stats_;
  out.queue_depth = static_cast<int64_t>(queue_.size());
  out.queue_high_water = static_cast<int64_t>(queue_.high_water_mark());
  return out;
}

bool IngestionService::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == State::kRunning;
}

void IngestionService::FoldIntoWindow(const EdgeEvent& event) {
  switch (event.kind) {
    case EdgeEvent::Kind::kAddEdge:
      window_delta_.AddEdge(event.src, event.dst);
      break;
    case EdgeEvent::Kind::kRemoveEdge:
      window_delta_.RemoveEdge(event.src, event.dst);
      break;
    case EdgeEvent::Kind::kAddVertices:
      window_delta_.AddVertex(event.count);
      break;
  }
  ++window_events_;
  if (window_opened_micros_ < 0) {
    window_opened_micros_ = event.timestamp_micros;
  }
  if (window_oldest_micros_ < 0 ||
      event.timestamp_micros < window_oldest_micros_) {
    window_oldest_micros_ = event.timestamp_micros;
  }
}

WindowState IngestionService::CurrentWindowState() const {
  WindowState state;
  state.window_events = window_events_;
  state.queue_depth = static_cast<int64_t>(queue_.size());
  state.window_opened_micros = window_opened_micros_;
  state.oldest_event_micros = window_oldest_micros_;
  if (state.oldest_event_micros < 0) {
    state.oldest_event_micros = queue_.oldest_timestamp_micros();
  }
  state.now_micros = clock_->NowMicros();
  return state;
}

Status IngestionService::ApplyWindow() {
  GraphDelta delta = std::move(window_delta_);
  const int64_t raw_entries =
      static_cast<int64_t>(delta.added_edges.size()) +
      static_cast<int64_t>(delta.removed_edges.size());
  const int64_t window_events = window_events_;
  const int64_t oldest = window_oldest_micros_;
  window_delta_ = GraphDelta{};
  window_events_ = 0;
  window_opened_micros_ = -1;
  window_oldest_micros_ = -1;

  delta.Coalesce();
  const int64_t coalesced_away =
      raw_entries - static_cast<int64_t>(delta.added_edges.size()) -
      static_cast<int64_t>(delta.removed_edges.size());

  const int64_t staleness =
      oldest >= 0 ? clock_->NowMicros() - oldest : 0;
  WallTimer timer;
  SPINNER_RETURN_IF_ERROR(session_->ApplyDelta(delta));
  const int64_t apply_micros = timer.ElapsedMicros();

  if (checkpointer_ != nullptr) {
    SPINNER_RETURN_IF_ERROR(checkpointer_->Append(*session_, delta));
  }

  IngestStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.events_ingested += window_events;
    stats_.events_coalesced += coalesced_away;
    ++stats_.windows_applied;
    stats_.last_apply_micros = apply_micros;
    stats_.max_apply_micros = std::max(stats_.max_apply_micros, apply_micros);
    stats_.total_apply_micros += apply_micros;
    stats_.last_staleness_micros = staleness;
    stats_.max_staleness_micros =
        std::max(stats_.max_staleness_micros, staleness);
    stats_.last_phi = session_->last_result().metrics.phi;
    stats_.last_rho = session_->last_result().metrics.rho;
    if (checkpointer_ != nullptr) {
      stats_.checkpoint_records = checkpointer_->records_since_base();
      stats_.checkpoint_bases = checkpointer_->bases_written();
    }
    snapshot = stats_;
    snapshot.queue_depth = static_cast<int64_t>(queue_.size());
    snapshot.queue_high_water =
        static_cast<int64_t>(queue_.high_water_mark());
  }
  if (options_.on_apply && !options_.on_apply(snapshot)) {
    // The callback asked for a graceful stop: closing the queue makes the
    // loop drain what remains and exit, exactly like Stop().
    queue_.Close();
  }
  return Status::OK();
}

void IngestionService::RunLoop() {
  std::vector<EdgeEvent> batch;
  Status error;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cancel_requested_) break;
    }
    batch.clear();
    const bool alive = queue_.DequeueAll(&batch, options_.idle_poll);

    // Events fold into the window ONE AT A TIME, with the trigger policy
    // consulted after each: window boundaries are a function of the event
    // sequence (plus the injected clock), never of how arrivals happened
    // to batch up in the queue. This is what makes a drained run
    // bit-identical to the equivalent blocking ApplyDelta sequence.
    for (const EdgeEvent& event : batch) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (cancel_requested_) break;
      }
      FoldIntoWindow(event);
      if (options_.policy->ShouldTrigger(CurrentWindowState())) {
        error = ApplyWindow();
        if (!error.ok()) break;
      }
    }
    if (!error.ok()) break;

    bool cancelled;
    bool drain_pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cancelled = cancel_requested_;
      drain_pending = drain_waiters_ > 0;
    }
    if (cancelled) break;

    // Tail conditions that apply a partial window regardless of the
    // policy: the queue closed (drain-and-stop) or a Drain() is waiting —
    // plus any time-based trigger that fired while the queue was idle.
    const bool queue_empty = queue_.size() == 0;
    const bool force_tail = !alive || (drain_pending && queue_empty);
    if (window_events_ > 0 &&
        (force_tail ||
         options_.policy->ShouldTrigger(CurrentWindowState()))) {
      error = ApplyWindow();
      if (!error.ok()) break;
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.queue_depth = static_cast<int64_t>(queue_.size());
      stats_.queue_high_water =
          static_cast<int64_t>(queue_.high_water_mark());
      quiescent_ = window_events_ == 0 && queue_.size() == 0;
      if (quiescent_) quiesced_.notify_all();
    }
    if (!alive && window_events_ == 0 && queue_.size() == 0) break;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!error.ok() && ingest_error_.ok()) ingest_error_ = error;
  // Whatever ended the loop, wake every waiter: nothing further will be
  // applied.
  quiescent_ = true;
  quiesced_.notify_all();
}

}  // namespace spinner::stream
