#include "stream/event_queue.h"

#include <algorithm>
#include <utility>

namespace spinner::stream {

EventQueue::EventQueue(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

bool EventQueue::Enqueue(EdgeEvent event) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_available_.wait(
      lock, [&] { return closed_ || events_.size() < capacity_; });
  if (closed_) return false;
  events_.push_back(event);
  high_water_ = std::max(high_water_, events_.size());
  ++total_enqueued_;
  data_available_.notify_one();
  return true;
}

bool EventQueue::TryEnqueue(EdgeEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || events_.size() >= capacity_) return false;
  events_.push_back(event);
  high_water_ = std::max(high_water_, events_.size());
  ++total_enqueued_;
  data_available_.notify_one();
  return true;
}

bool EventQueue::EnqueueFor(EdgeEvent event,
                            std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!space_available_.wait_for(lock, timeout, [&] {
        return closed_ || events_.size() < capacity_;
      })) {
    return false;  // timed out, still full
  }
  if (closed_) return false;
  events_.push_back(event);
  high_water_ = std::max(high_water_, events_.size());
  ++total_enqueued_;
  data_available_.notify_one();
  return true;
}

void EventQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  space_available_.notify_all();
  data_available_.notify_all();
}

bool EventQueue::DequeueAll(std::vector<EdgeEvent>* out,
                            std::chrono::microseconds max_wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  data_available_.wait_for(lock, max_wait,
                           [&] { return closed_ || !events_.empty(); });
  const bool had_events = !events_.empty();
  out->insert(out->end(), events_.begin(), events_.end());
  events_.clear();
  if (had_events) space_available_.notify_all();
  return !closed_ || had_events;
}

size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t EventQueue::high_water_mark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

int64_t EventQueue::total_enqueued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_enqueued_;
}

bool EventQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int64_t EventQueue::oldest_timestamp_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty() ? -1 : events_.front().timestamp_micros;
}

}  // namespace spinner::stream
