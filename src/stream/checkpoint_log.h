// Incremental (base + delta-log) checkpointing for a PartitioningSession.
//
// PartitioningSession::Snapshot re-serializes the full edge list — O(E)
// per checkpoint, which a streaming service applying small deltas at high
// rate cannot afford. IncrementalCheckpointer amortizes that: a full SPNS
// base image is written once, and every subsequent checkpoint appends one
// compact record (the GraphDelta plus the assignment labels that changed)
// to an append-only side log — O(delta), not O(E). When the log grows past
// a threshold, it is folded back into a fresh base and truncated
// (compaction), bounding replay time.
//
// On-disk layout, for a base at <path>:
//   <path>        full SPNS session snapshot (graph/binary_io.h)
//   <path>.dlog   header | record*  where
//     header: magic "SPDG" | version u32 | base_fnv u64
//     record: SPDR record bytes (graph_io::AppendDeltaLogRecord) |
//             fnv u64 over those bytes
// base_fnv is the FNV-1a digest of the base file, so a log can never be
// replayed against the wrong (or rewritten) base. Truncated or corrupt
// log tails are rejected with a clean Status — a crash mid-append must
// never poison restore.
//
// Load() replays base + log into a SessionSnapshot whose state is
// byte-identical to a full Snapshot() taken at the same point: edges are
// rebuilt through the same ApplyDelta fold the session itself used, and
// label updates replay the exact assignment transitions.
//
// Not thread-safe; the streaming ingestion service drives one instance
// from its ingestion thread.
#ifndef SPINNER_STREAM_CHECKPOINT_LOG_H_
#define SPINNER_STREAM_CHECKPOINT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/binary_io.h"
#include "graph/delta.h"
#include "graph/types.h"
#include "spinner/session.h"

namespace spinner::stream {

/// Append-only delta-log checkpointing around a base SPNS image.
class IncrementalCheckpointer {
 public:
  struct Options {
    /// Fold the log into a new base once it holds this many records.
    /// Compaction cost is O(E); between compactions every checkpoint is
    /// O(delta).
    int64_t compact_after_records = 64;
  };

  /// Checkpoints to `base_path` (+ ".dlog" for the log). Nothing touches
  /// the filesystem until WriteBase()/Append().
  explicit IncrementalCheckpointer(std::string base_path)
      : IncrementalCheckpointer(std::move(base_path), Options()) {}
  IncrementalCheckpointer(std::string base_path, Options options);

  /// Writes a full base snapshot of `session` and truncates the log. The
  /// O(E) step — call once at service start (Append does it automatically
  /// on first use and at the compaction threshold).
  Status WriteBase(const PartitioningSession& session);

  /// Appends one O(delta) record: `delta` must be the exact GraphDelta
  /// just applied to `session` (the service passes the coalesced window),
  /// and the session's current assignment/k close the transition. Without
  /// a prior WriteBase (or past the compaction threshold) this writes a
  /// fresh base instead.
  Status Append(const PartitioningSession& session, const GraphDelta& delta);

  /// Replays base + log into the checkpointed session state. Fails with a
  /// descriptive Status on a missing/corrupt base, a log bound to a
  /// different base, or a truncated/corrupt record — never crashes.
  static Result<graph_io::SessionSnapshot> Load(
      const std::string& base_path);

  /// Load() + RestoreSnapshot() into `session`.
  static Status RestoreSession(const std::string& base_path,
                               PartitioningSession* session);

  /// Records appended since the last base write.
  int64_t records_since_base() const { return records_since_base_; }
  /// Full base images written over this checkpointer's lifetime.
  int64_t bases_written() const { return bases_written_; }
  const std::string& base_path() const { return base_path_; }
  std::string log_path() const { return base_path_ + ".dlog"; }

 private:
  /// Diffs the session assignment against last_assignment_ into
  /// ascending-vertex label updates.
  std::vector<std::pair<VertexId, PartitionId>> DiffLabels(
      const std::vector<PartitionId>& current) const;

  std::string base_path_;
  Options options_;
  bool has_base_ = false;
  int64_t records_since_base_ = 0;
  int64_t bases_written_ = 0;
  /// Assignment as of the last checkpoint (base or record) — the diff
  /// anchor for the next Append.
  std::vector<PartitionId> last_assignment_;
};

}  // namespace spinner::stream

#endif  // SPINNER_STREAM_CHECKPOINT_LOG_H_
