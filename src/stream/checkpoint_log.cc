#include "stream/checkpoint_log.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "common/string_util.h"
#include "dist/transport.h"

namespace spinner::stream {

namespace {

constexpr char kLogMagic[4] = {'S', 'P', 'D', 'G'};
constexpr uint32_t kLogVersion = 1;

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open: " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IOError("short read: " + path);
  }
  return bytes;
}

/// FNV-1a of the base file — binds a log to the exact base image it was
/// appended against.
Result<uint64_t> BaseFingerprint(const std::string& base_path) {
  SPINNER_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           ReadFileBytes(base_path));
  return dist::ChecksumBytes(bytes);
}

}  // namespace

IncrementalCheckpointer::IncrementalCheckpointer(std::string base_path,
                                                 Options options)
    : base_path_(std::move(base_path)), options_(options) {
  if (options_.compact_after_records < 1) options_.compact_after_records = 1;
}

Status IncrementalCheckpointer::WriteBase(
    const PartitioningSession& session) {
  SPINNER_RETURN_IF_ERROR(session.Snapshot(base_path_));
  SPINNER_ASSIGN_OR_RETURN(const uint64_t fingerprint,
                           BaseFingerprint(base_path_));
  std::ofstream log(log_path(), std::ios::binary | std::ios::trunc);
  if (!log) return Status::IOError("cannot open for writing: " + log_path());
  log.write(kLogMagic, sizeof(kLogMagic));
  log.write(reinterpret_cast<const char*>(&kLogVersion),
            sizeof(kLogVersion));
  log.write(reinterpret_cast<const char*>(&fingerprint),
            sizeof(fingerprint));
  log.flush();
  if (!log) return Status::IOError("write error on: " + log_path());
  has_base_ = true;
  records_since_base_ = 0;
  ++bases_written_;
  last_assignment_ = session.assignment();
  return Status::OK();
}

std::vector<std::pair<VertexId, PartitionId>>
IncrementalCheckpointer::DiffLabels(
    const std::vector<PartitionId>& current) const {
  std::vector<std::pair<VertexId, PartitionId>> updates;
  const size_t overlap = last_assignment_.size();
  for (size_t v = 0; v < current.size(); ++v) {
    if (v >= overlap || current[v] != last_assignment_[v]) {
      updates.emplace_back(static_cast<VertexId>(v), current[v]);
    }
  }
  return updates;
}

Status IncrementalCheckpointer::Append(const PartitioningSession& session,
                                       const GraphDelta& delta) {
  if (!has_base_ || records_since_base_ >= options_.compact_after_records) {
    // First checkpoint or compaction threshold: fold everything into a
    // fresh base and start an empty log.
    return WriteBase(session);
  }
  graph_io::DeltaLogRecord record;
  record.delta = delta;
  record.new_k = static_cast<int32_t>(session.num_partitions());
  record.label_updates = DiffLabels(session.assignment());

  std::vector<uint8_t> bytes;
  graph_io::AppendDeltaLogRecord(record, &bytes);
  const uint64_t checksum = dist::ChecksumBytes(bytes);

  std::ofstream log(log_path(), std::ios::binary | std::ios::app);
  if (!log) return Status::IOError("cannot open for append: " + log_path());
  log.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  log.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  log.flush();
  if (!log) return Status::IOError("write error on: " + log_path());
  ++records_since_base_;
  last_assignment_ = session.assignment();
  return Status::OK();
}

Result<graph_io::SessionSnapshot> IncrementalCheckpointer::Load(
    const std::string& base_path) {
  SPINNER_ASSIGN_OR_RETURN(graph_io::SessionSnapshot snapshot,
                           graph_io::ReadSessionSnapshot(base_path));

  const std::string log_path = base_path + ".dlog";
  auto log_bytes = ReadFileBytes(log_path);
  if (!log_bytes.ok()) return snapshot;  // base only: nothing was appended

  const std::vector<uint8_t>& bytes = *log_bytes;
  constexpr size_t kHeaderSize =
      sizeof(kLogMagic) + sizeof(kLogVersion) + sizeof(uint64_t);
  if (bytes.size() < kHeaderSize) {
    return Status::IOError("truncated delta-log header: " + log_path);
  }
  if (std::memcmp(bytes.data(), kLogMagic, sizeof(kLogMagic)) != 0) {
    return Status::InvalidArgument(
        "bad magic (not a SPDG delta log): " + log_path);
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kLogMagic), sizeof(version));
  if (version != kLogVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported delta-log version %u", version));
  }
  uint64_t expected_fingerprint = 0;
  std::memcpy(&expected_fingerprint,
              bytes.data() + sizeof(kLogMagic) + sizeof(version),
              sizeof(expected_fingerprint));
  SPINNER_ASSIGN_OR_RETURN(const uint64_t fingerprint,
                           BaseFingerprint(base_path));
  if (fingerprint != expected_fingerprint) {
    return Status::InvalidArgument(
        "delta log was appended against a different base image: " +
        log_path);
  }

  size_t pos = kHeaderSize;
  int64_t record_index = 0;
  while (pos < bytes.size()) {
    const size_t record_begin = pos;
    SPINNER_ASSIGN_OR_RETURN(
        graph_io::DeltaLogRecord record,
        graph_io::DecodeDeltaLogRecord(bytes, &pos));
    if (bytes.size() - pos < sizeof(uint64_t)) {
      return Status::IOError(StrFormat(
          "truncated checksum on delta record %lld",
          static_cast<long long>(record_index)));
    }
    uint64_t stored_checksum = 0;
    std::memcpy(&stored_checksum, bytes.data() + pos,
                sizeof(stored_checksum));
    pos += sizeof(stored_checksum);
    const uint64_t computed = dist::ChecksumBytes(
        std::span<const uint8_t>(bytes.data() + record_begin,
                                 pos - sizeof(stored_checksum) -
                                     record_begin));
    if (computed != stored_checksum) {
      return Status::InvalidArgument(StrFormat(
          "checksum mismatch on delta record %lld",
          static_cast<long long>(record_index)));
    }

    // Replay: the same ApplyDelta fold the live session used, then the
    // recorded assignment transitions.
    if (record.new_k < 1) {
      return Status::InvalidArgument(StrFormat(
          "delta record %lld carries invalid k",
          static_cast<long long>(record_index)));
    }
    SPINNER_ASSIGN_OR_RETURN(
        snapshot.edges,
        ApplyDelta(snapshot.num_vertices, snapshot.edges, record.delta));
    const int64_t old_n = snapshot.num_vertices;
    snapshot.num_vertices += record.delta.num_new_vertices;
    snapshot.assignment.resize(static_cast<size_t>(snapshot.num_vertices),
                               kNoPartition);
    snapshot.num_partitions = record.new_k;
    for (const auto& [vertex, label] : record.label_updates) {
      if (vertex < 0 || vertex >= snapshot.num_vertices || label < 0 ||
          label >= record.new_k) {
        return Status::InvalidArgument(StrFormat(
            "label update out of range in delta record %lld",
            static_cast<long long>(record_index)));
      }
      snapshot.assignment[static_cast<size_t>(vertex)] = label;
    }
    for (int64_t v = old_n; v < snapshot.num_vertices; ++v) {
      if (snapshot.assignment[static_cast<size_t>(v)] == kNoPartition) {
        return Status::InvalidArgument(StrFormat(
            "delta record %lld grew vertices without labeling them",
            static_cast<long long>(record_index)));
      }
    }
    ++record_index;
  }
  return snapshot;
}

Status IncrementalCheckpointer::RestoreSession(
    const std::string& base_path, PartitioningSession* session) {
  SPINNER_ASSIGN_OR_RETURN(graph_io::SessionSnapshot snapshot,
                           Load(base_path));
  return session->RestoreSnapshot(std::move(snapshot));
}

}  // namespace spinner::stream
