// Bounded, thread-safe MPSC queue of edge events — the front door of the
// streaming ingestion service. Producers (any number of threads) enqueue
// edge-stream events; one ingestion thread drains them in arrival order.
// The capacity bound is the backpressure contract: when the partitioner
// falls behind, producers block (or time out, or are refused) instead of
// the queue growing without bound. The loader-thread + bounded-queue
// idiom follows the parameter_server PARSA partitioner (SNIPPETS.md
// Snippet 1).
#ifndef SPINNER_STREAM_EVENT_QUEUE_H_
#define SPINNER_STREAM_EVENT_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "graph/types.h"

namespace spinner::stream {

/// One event of a live edge stream. Events are the streaming analogue of
/// the GraphDelta builder calls: a window of events folds into one
/// coalesced GraphDelta (graph/delta.h).
struct EdgeEvent {
  enum class Kind : int32_t {
    kAddEdge = 0,
    kRemoveEdge = 1,
    /// Appends `count` vertices to the id range (GraphDelta::AddVertex).
    kAddVertices = 2,
  };

  Kind kind = Kind::kAddEdge;
  VertexId src = 0;
  VertexId dst = 0;
  /// Vertex count for kAddVertices events; ignored otherwise.
  int64_t count = 0;
  /// Event time in the service clock's domain. Negative means "unset":
  /// IngestionService::Submit stamps it on admission. Staleness of an
  /// unapplied event = now - timestamp.
  int64_t timestamp_micros = -1;

  static EdgeEvent AddEdge(VertexId src, VertexId dst,
                           int64_t timestamp_micros = -1) {
    return {Kind::kAddEdge, src, dst, 0, timestamp_micros};
  }
  static EdgeEvent RemoveEdge(VertexId src, VertexId dst,
                              int64_t timestamp_micros = -1) {
    return {Kind::kRemoveEdge, src, dst, 0, timestamp_micros};
  }
  static EdgeEvent AddVertices(int64_t count, int64_t timestamp_micros = -1) {
    return {Kind::kAddVertices, 0, 0, count, timestamp_micros};
  }
};

/// Bounded multi-producer single-consumer FIFO. All methods are
/// thread-safe; DequeueAll is intended for exactly one consumer thread
/// (several would each get disjoint batches, which is never what the
/// ingestion loop wants).
class EventQueue {
 public:
  /// `capacity` is clamped to at least 1.
  explicit EventQueue(size_t capacity);

  // --- Producers ---------------------------------------------------------

  /// Blocks while the queue is full. Returns false iff the queue was
  /// closed (the event is dropped).
  bool Enqueue(EdgeEvent event);

  /// Never blocks. Returns false if the queue is full or closed.
  bool TryEnqueue(EdgeEvent event);

  /// Blocks up to `timeout` for space. Returns false on timeout or close.
  bool EnqueueFor(EdgeEvent event, std::chrono::microseconds timeout);

  /// Closes the queue: subsequent enqueues fail, blocked producers wake
  /// with false, and the consumer drains what is already queued.
  void Close();

  // --- Consumer ----------------------------------------------------------

  /// Moves every queued event into `out` (appending), waiting up to
  /// `max_wait` for the first one. Returns true if the queue is still
  /// open OR events remain — i.e. false means "closed and fully drained",
  /// the consumer's termination signal.
  bool DequeueAll(std::vector<EdgeEvent>* out,
                  std::chrono::microseconds max_wait);

  // --- Introspection ------------------------------------------------------

  size_t size() const;
  /// Deepest the queue has ever been — the backpressure gauge.
  size_t high_water_mark() const;
  /// Events accepted over the queue's lifetime.
  int64_t total_enqueued() const;
  bool closed() const;
  /// Enqueue timestamp of the oldest queued event, or -1 when empty.
  int64_t oldest_timestamp_micros() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable space_available_;
  std::condition_variable data_available_;
  std::deque<EdgeEvent> events_;
  size_t high_water_ = 0;
  int64_t total_enqueued_ = 0;
  bool closed_ = false;
};

}  // namespace spinner::stream

#endif  // SPINNER_STREAM_EVENT_QUEUE_H_
