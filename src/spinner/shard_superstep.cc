#include "spinner/shard_superstep.h"

#include <algorithm>

#include "common/logging.h"
#include "spinner/lpa_kernel.h"

namespace spinner {

int64_t ShardInitialize(const SpinnerConfig& config,
                        ShardedGraphStore::Shard* shard,
                        std::span<PartitionId> labels,
                        std::span<const PartitionId> initial_labels,
                        VertexId index_base) {
  const int k = config.num_partitions;
  shard->loads.assign(static_cast<size_t>(k), 0);
  const auto initial_size = static_cast<int64_t>(initial_labels.size());
  for (VertexId v = shard->begin; v < shard->end; ++v) {
    const VertexId local = v - index_base;
    PartitionId label =
        local < initial_size ? initial_labels[local] : kNoPartition;
    if (label == kNoPartition) {
      label = lpa::InitialLabel(config.seed, v, k);
    }
    SPINNER_DCHECK(label >= 0 && label < k);
    labels[local] = label;
    shard->loads[label] += LoadUnitsOf(config, shard->WeightedDegreeOf(v));
  }
  // Every vertex advertises its initial label along its edges.
  return shard->NumArcs();
}

void ShardComputeScores(const SpinnerConfig& config,
                        const ShardedGraphStore::Shard& shard,
                        std::span<const PartitionId> labels,
                        const std::vector<int64_t>& global_loads,
                        const std::vector<double>& capacities,
                        int64_t superstep, std::span<PartitionId> candidate,
                        std::span<double> block_score,
                        ShardScratch* scratch, VertexId index_base) {
  constexpr int64_t kBlock = ShardedGraphStore::kBlockSize;
  SPINNER_DCHECK(index_base % kBlock == 0)
      << "index_base must be block-aligned for block_score indexing";
  ShardScratch& sc = *scratch;
  sc.local_weight = 0;
  sc.messages = 0;
  std::fill(sc.migrations.begin(), sc.migrations.end(), 0);
  for (VertexId block_begin = shard.begin; block_begin < shard.end;
       block_begin += kBlock) {
    const VertexId block_end =
        std::min<VertexId>(block_begin + kBlock, shard.end);
    double score_sum = 0.0;
    // The asynchronous view resets to the frozen global snapshot at
    // every block boundary: blocks are independent of S, so the
    // penalty each vertex sees is too.
    if (config.per_worker_async) sc.projected = global_loads;
    const std::vector<int64_t>& penalty =
        config.per_worker_async ? sc.projected : global_loads;
    for (VertexId v = block_begin; v < block_end; ++v) {
      const VertexId local = v - index_base;
      const int64_t deg_w = shard.WeightedDegreeOf(v);
      if (deg_w == 0) {  // isolated vertex: nothing to do
        candidate[local] = kNoPartition;
        continue;
      }
      // Weighted label frequencies over the neighborhood (Eq. 4),
      // reading neighbor labels from the previous-superstep array.
      const auto neighbors = shard.Neighbors(v);
      const auto weights = shard.WeightsOf(v);
      for (size_t j = 0; j < neighbors.size(); ++j) {
        const PartitionId l = labels[neighbors[j]];
        SPINNER_DCHECK(l >= 0) << "neighbor label not initialized";
        if (sc.freq[l] == 0) sc.touched.push_back(l);
        sc.freq[l] += weights[j];
      }
      const PartitionId current = labels[local];
      const double deg = static_cast<double>(deg_w);
      const lpa::LabelChoice choice =
          lpa::PickLabel(sc.freq, sc.touched, current, deg, capacities,
                         penalty, config.seed, superstep, v);
      // The global score uses the frozen global loads so the halting
      // signal is independent of shard count.
      score_sum += lpa::ScoreTerm(sc.freq[current], deg,
                                  global_loads[current],
                                  capacities[current]);
      sc.local_weight += sc.freq[current];
      if (choice.better) {
        candidate[local] = choice.label;
        const int64_t units = LoadUnitsOf(config, deg_w);
        sc.migrations[choice.label] += units;
        if (config.per_worker_async) {
          // Later vertices in this block see the would-be move.
          sc.projected[choice.label] += units;
          sc.projected[current] -= units;
        }
      } else {
        candidate[local] = kNoPartition;
      }
      for (const PartitionId l : sc.touched) sc.freq[l] = 0;
      sc.touched.clear();
    }
    block_score[(block_begin - index_base) / kBlock] = score_sum;
  }
}

void ShardComputeMigrations(const SpinnerConfig& config,
                            ShardedGraphStore::Shard* shard,
                            std::span<PartitionId> labels,
                            const std::vector<int64_t>& global_loads,
                            const std::vector<double>& capacities,
                            const std::vector<int64_t>& migration_counts,
                            int64_t superstep,
                            std::span<const PartitionId> candidate,
                            std::vector<LabelDelta>* moves,
                            ShardScratch* scratch, VertexId index_base) {
  ShardScratch& sc = *scratch;
  sc.migrated = 0;
  sc.messages = 0;
  for (VertexId v = shard->begin; v < shard->end; ++v) {
    const VertexId local = v - index_base;
    const PartitionId target = candidate[local];
    if (target == kNoPartition) continue;
    // Eq. 12–14 with b(l) frozen at the start of the iteration.
    const double remaining =
        capacities[target] - static_cast<double>(global_loads[target]);
    const double wanting = static_cast<double>(migration_counts[target]);
    const double p = lpa::MigrationProbability(remaining, wanting);
    if (!lpa::MigrationCoinAccepts(config.seed, v, superstep, p)) {
      continue;  // migration deferred
    }
    const PartitionId old_label = labels[local];
    const int64_t units = LoadUnitsOf(config, shard->WeightedDegreeOf(v));
    labels[local] = target;
    shard->loads[target] += units;
    shard->loads[old_label] -= units;
    ++sc.migrated;
    sc.messages += shard->OutDegree(v);  // label update to neighbors
    if (moves != nullptr) moves->push_back(LabelDelta{v, target});
  }
}

}  // namespace spinner
