#include "spinner/shard_superstep.h"

#include <algorithm>

#include "common/logging.h"
#include "spinner/lpa_kernel.h"

namespace spinner {

namespace {

constexpr int64_t kBlock = ShardedGraphStore::kBlockSize;

/// Arc count of the owned-vertex range [begin, end) of `shard`.
int64_t RangeArcs(const ShardedGraphStore::Shard& shard, VertexId begin,
                  VertexId end) {
  return shard.offsets[end - shard.begin] - shard.offsets[begin - shard.begin];
}

}  // namespace

void ShardScratch::Prepare(int num_partitions) {
  const auto k = static_cast<size_t>(num_partitions);
  freq.assign(k, 0);
  touched.clear();
  touched.reserve(k);
  projected.assign(k, 0);
  penalty.assign(k, 0.0);
  async_dirty.clear();
  async_dirty.reserve(2 * static_cast<size_t>(kBlock));
  projected_base.assign(k, 0);
  capacity.assign(k, 0.0);
  penalty_base.assign(k, 0.0);
  score_buf.assign(k, 0.0);
  migrate_p.assign(k, 0.0);
  migrations.assign(k, 0);
  load_delta.assign(k, 0);
  local_weight = 0;
  migrated = 0;
  messages = 0;
}

void PrepareScoresScratch(const SpinnerConfig& config,
                          const std::vector<int64_t>& global_loads,
                          const std::vector<double>& capacities,
                          ShardScratch* scratch) {
  ShardScratch& sc = *scratch;
  lpa::FillPenalties(global_loads, capacities, sc.penalty_base);
  // The scan-time view starts at the frozen snapshot; with the §IV.A.4
  // asynchronous optimization on, BlocksComputeScores diverges it within a
  // block and restores it at the boundary.
  sc.penalty = sc.penalty_base;
  if (config.per_worker_async) {
    sc.projected_base = global_loads;
    sc.projected = global_loads;
    sc.capacity.assign(capacities.begin(), capacities.end());
    sc.async_dirty.clear();
  }
}

void PrepareMigrateScratch(const SpinnerConfig& config,
                           const std::vector<int64_t>& global_loads,
                           const std::vector<double>& capacities,
                           const std::vector<int64_t>& migration_counts,
                           ShardScratch* scratch) {
  (void)config;
  lpa::FillMigrationProbabilities(global_loads, capacities, migration_counts,
                                  scratch->migrate_p);
}

void BlocksInitialize(const SpinnerConfig& config,
                      const ShardedGraphStore::Shard& shard, VertexId begin,
                      VertexId end, std::span<PartitionId> labels,
                      std::span<const PartitionId> initial_labels,
                      ShardScratch* scratch, VertexId index_base) {
  const int k = config.num_partitions;
  ShardScratch& sc = *scratch;
  const auto initial_size = static_cast<int64_t>(initial_labels.size());
  for (VertexId v = begin; v < end; ++v) {
    const VertexId local = v - index_base;
    PartitionId label =
        local < initial_size ? initial_labels[local] : kNoPartition;
    if (label == kNoPartition) {
      label = lpa::InitialLabel(config.seed, v, k);
    }
    SPINNER_DCHECK(label >= 0 && label < k);
    labels[local] = label;
    sc.load_delta[label] += LoadUnitsOf(config, shard.WeightedDegreeOf(v));
  }
  // Every vertex advertises its initial label along its edges.
  sc.messages += RangeArcs(shard, begin, end);
}

void BlocksComputeScores(const SpinnerConfig& config,
                         const ShardedGraphStore::Shard& shard,
                         VertexId begin, VertexId end,
                         std::span<const PartitionId> labels,
                         int64_t superstep, std::span<PartitionId> candidate,
                         std::span<double> block_score,
                         std::span<int32_t> block_candidates,
                         ShardScratch* scratch, VertexId index_base) {
  SPINNER_DCHECK(index_base % kBlock == 0)
      << "index_base must be block-aligned for block_score indexing";
  // Only the SPINNER_SIMD dense/sparse cutover reads k.
  [[maybe_unused]] const int k = config.num_partitions;
  ShardScratch& sc = *scratch;
  const PartitionId* labels_p = labels.data();
  for (VertexId block_begin = begin; block_begin < end;
       block_begin += kBlock) {
    const VertexId block_end = std::min<VertexId>(block_begin + kBlock, end);
    double score_sum = 0.0;
    int32_t candidates_in_block = 0;
    for (VertexId v = block_begin; v < block_end; ++v) {
      const VertexId local = v - index_base;
      const int64_t deg_w = shard.WeightedDegreeOf(v);
      if (deg_w == 0) {  // isolated vertex: nothing to do
        candidate[local] = kNoPartition;
        continue;
      }
      // Weighted label frequencies over the neighborhood (Eq. 4),
      // reading neighbor labels from the previous-superstep array.
      const auto neighbors = shard.Neighbors(v);
      const auto weights = shard.WeightsOf(v);
      const PartitionId current = labels_p[local];
      const double inv_deg = shard.InvWeightedDegreeOf(v);
      lpa::LabelChoice choice;
      int64_t freq_current = 0;
#if defined(SPINNER_SIMD)
      // Hubs whose neighborhood rivals k in size take the dense scan:
      // branch-free frequency accumulation, then a SIMD masked max over
      // all k labels (bit-identical to the sparse scan — lpa_kernel.h).
      const bool dense = 2 * static_cast<int64_t>(neighbors.size()) >=
                         static_cast<int64_t>(k);
#else
      constexpr bool dense = false;
#endif
      if (dense) {
        for (size_t j = 0; j < neighbors.size(); ++j) {
          SPINNER_DCHECK(labels_p[neighbors[j]] >= 0)
              << "neighbor label not initialized";
          sc.freq[labels_p[neighbors[j]]] += weights[j];
        }
        freq_current = sc.freq[current];
        const double current_score =
            lpa::Score(freq_current, inv_deg, sc.penalty[current]);
        choice = lpa::PickLabelDense(sc.freq, current, current_score,
                                     inv_deg, sc.penalty, sc.score_buf,
                                     config.seed, superstep, v);
        std::fill(sc.freq.begin(), sc.freq.end(), 0);
      } else {
        for (size_t j = 0; j < neighbors.size(); ++j) {
          const PartitionId l = labels_p[neighbors[j]];
          SPINNER_DCHECK(l >= 0) << "neighbor label not initialized";
          if (sc.freq[l] == 0) sc.touched.push_back(l);
          sc.freq[l] += weights[j];
        }
        freq_current = sc.freq[current];
        const double current_score =
            lpa::Score(freq_current, inv_deg, sc.penalty[current]);
        choice = lpa::PickLabelSparse(sc.freq, sc.touched, current,
                                      current_score, inv_deg, sc.penalty,
                                      config.seed, superstep, v);
        for (const PartitionId l : sc.touched) sc.freq[l] = 0;
        sc.touched.clear();
      }
      // The global score uses the frozen global snapshot so the halting
      // signal is independent of the async view.
      score_sum +=
          lpa::Score(freq_current, inv_deg, sc.penalty_base[current]);
      sc.local_weight += freq_current;
      if (choice.better) {
        candidate[local] = choice.label;
        ++candidates_in_block;
        const int64_t units = LoadUnitsOf(config, deg_w);
        sc.migrations[choice.label] += units;
        if (config.per_worker_async) {
          // Later vertices in this block see the would-be move.
          sc.projected[choice.label] += units;
          sc.projected[current] -= units;
          // Same expression as lpa::FillPenalties, on the moved view.
          for (const PartitionId l : {choice.label, current}) {
            sc.penalty[l] =
                sc.capacity[l] > 0
                    ? static_cast<double>(sc.projected[l]) / sc.capacity[l]
                    : 0.0;
            sc.async_dirty.push_back(l);
          }
        }
      } else {
        candidate[local] = kNoPartition;
      }
    }
    if (config.per_worker_async && !sc.async_dirty.empty()) {
      // Restore the asynchronous view to the frozen snapshot: blocks are
      // independent of the shard count, so the penalty each vertex sees
      // is too.
      for (const PartitionId l : sc.async_dirty) {
        sc.projected[l] = sc.projected_base[l];
        sc.penalty[l] = sc.penalty_base[l];
      }
      sc.async_dirty.clear();
    }
    const int64_t block_index = (block_begin - index_base) / kBlock;
    block_score[block_index] = score_sum;
    block_candidates[block_index] = candidates_in_block;
  }
}

void BlocksComputeMigrations(const SpinnerConfig& config,
                             const ShardedGraphStore::Shard& shard,
                             VertexId begin, VertexId end,
                             std::span<PartitionId> labels, int64_t superstep,
                             std::span<const PartitionId> candidate,
                             std::span<const int32_t> block_candidates,
                             std::vector<LabelDelta>* moves,
                             ShardScratch* scratch, VertexId index_base) {
  SPINNER_DCHECK(index_base % kBlock == 0)
      << "index_base must be block-aligned for block_candidates indexing";
  ShardScratch& sc = *scratch;
  for (VertexId block_begin = begin; block_begin < end;
       block_begin += kBlock) {
    const VertexId block_end = std::min<VertexId>(block_begin + kBlock, end);
    // ComputeScores counted this block's candidates: settled blocks cost
    // one array read, not kBlockSize branchy vertex visits.
    if (block_candidates[(block_begin - index_base) / kBlock] == 0) continue;
    for (VertexId v = block_begin; v < block_end; ++v) {
      const VertexId local = v - index_base;
      const PartitionId target = candidate[local];
      if (target == kNoPartition) continue;
      // Eq. 12–14 with b(l) frozen at the start of the iteration, as a
      // lookup into the prepared per-label table. The coin hash only runs
      // for 0 < p < 1: HashUniformDouble is in [0, 1), so p <= 0 always
      // defers and p >= 1 always accepts.
      const double p = sc.migrate_p[target];
      if (p <= 0.0) continue;  // migration deferred
      if (p < 1.0 &&
          !lpa::MigrationCoinAccepts(config.seed, v, superstep, p)) {
        continue;  // migration deferred
      }
      const PartitionId old_label = labels[local];
      const int64_t units = LoadUnitsOf(config, shard.WeightedDegreeOf(v));
      labels[local] = target;
      sc.load_delta[target] += units;
      sc.load_delta[old_label] -= units;
      ++sc.migrated;
      sc.messages += shard.OutDegree(v);  // label update to neighbors
      if (moves != nullptr) moves->push_back(LabelDelta{v, target});
    }
  }
}

int64_t ShardInitialize(const SpinnerConfig& config,
                        ShardedGraphStore::Shard* shard,
                        std::span<PartitionId> labels,
                        std::span<const PartitionId> initial_labels,
                        VertexId index_base) {
  const int k = config.num_partitions;
  ShardScratch scratch;
  scratch.Prepare(k);
  BlocksInitialize(config, *shard, shard->begin, shard->end, labels,
                   initial_labels, &scratch, index_base);
  shard->loads = std::move(scratch.load_delta);
  return scratch.messages;
}

void ShardComputeScores(const SpinnerConfig& config,
                        const ShardedGraphStore::Shard& shard,
                        std::span<const PartitionId> labels,
                        const std::vector<int64_t>& global_loads,
                        const std::vector<double>& capacities,
                        int64_t superstep, std::span<PartitionId> candidate,
                        std::span<double> block_score,
                        std::span<int32_t> block_candidates,
                        ShardScratch* scratch, VertexId index_base) {
  PrepareScoresScratch(config, global_loads, capacities, scratch);
  scratch->ResetScores();
  BlocksComputeScores(config, shard, shard.begin, shard.end, labels,
                      superstep, candidate, block_score, block_candidates,
                      scratch, index_base);
}

void ShardComputeMigrations(const SpinnerConfig& config,
                            ShardedGraphStore::Shard* shard,
                            std::span<PartitionId> labels,
                            const std::vector<int64_t>& global_loads,
                            const std::vector<double>& capacities,
                            const std::vector<int64_t>& migration_counts,
                            int64_t superstep,
                            std::span<const PartitionId> candidate,
                            std::span<const int32_t> block_candidates,
                            std::vector<LabelDelta>* moves,
                            ShardScratch* scratch, VertexId index_base) {
  PrepareMigrateScratch(config, global_loads, capacities, migration_counts,
                        scratch);
  scratch->ResetDelta();
  BlocksComputeMigrations(config, *shard, shard->begin, shard->end, labels,
                          superstep, candidate, block_candidates, moves,
                          scratch, index_base);
  for (int l = 0; l < config.num_partitions; ++l) {
    shard->loads[l] += scratch->load_delta[l];
  }
}

}  // namespace spinner
