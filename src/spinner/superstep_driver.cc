#include "spinner/superstep_driver.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace spinner {

Result<ShardedRunResult> DriveSpinnerSupersteps(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels, SuperstepBackend* backend,
    const ProgressObserver* observer) {
  SPINNER_CHECK(store != nullptr && backend != nullptr);
  SPINNER_RETURN_IF_ERROR(config.Validate());
  const int64_t n = store->NumVertices();
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }
  const int k = config.num_partitions;
  const int S = store->num_shards();

  store->ResetLoads(k);
  store->labels().assign(static_cast<size_t>(n), kNoPartition);

  ShardedRunResult out;
  pregel::RunStats& stats = out.run_stats;
  WallTimer total_timer;

  // Superstep stats mirroring the engine's layout: one "worker" per shard;
  // every vertex computes every superstep (Spinner never votes to halt).
  auto NewStepStats = [&](int64_t step) {
    pregel::SuperstepStats ss;
    ss.superstep = step;
    ss.active_vertices = n;
    ss.worker_messages_in.assign(S, 0);
    ss.worker_remote_messages_in.assign(S, 0);
    ss.worker_vertices_computed.assign(S, 0);
    ss.worker_edges_scanned.assign(S, 0);
    ss.worker_messages_out.assign(S, 0);
    for (int s = 0; s < S; ++s) {
      ss.worker_vertices_computed[s] = store->shard(s).NumOwnedVertices();
      ss.worker_edges_scanned[s] = store->shard(s).NumArcs();
    }
    return ss;
  };
  auto FinishStep = [&](pregel::SuperstepStats ss, WallTimer& timer,
                        int64_t messages) {
    ss.messages_sent = messages;
    ss.messages_remote = messages;  // per-edge locality is engine-only
    ss.wall_seconds = timer.ElapsedSeconds();
    stats.per_superstep.push_back(std::move(ss));
    ++stats.supersteps;
  };

  // Message-passing backends wire up their label subscriptions before any
  // label state exists (no-op in-process).
  SPINNER_RETURN_IF_ERROR(backend->SetupSubscriptions());

  // --- Superstep 0: Initialize. Labels are the caller's fixed restart
  // labels or hash-drawn; loads accumulate shard-locally.
  {
    WallTimer step_timer;
    pregel::SuperstepStats ss = NewStepStats(0);
    SuperstepBackend::InitOutcome init;
    SPINNER_RETURN_IF_ERROR(backend->Initialize(initial_labels, &init));
    int64_t messages = 0;
    for (int s = 0; s < S; ++s) {
      ss.worker_messages_out[s] = init.messages_out[s];
      messages += init.messages_out[s];
    }
    FinishStep(std::move(ss), step_timer, messages);
  }

  std::vector<int64_t> global_loads = store->MergedLoads();
  int64_t total_load = 0;
  for (const int64_t l : global_loads) total_load += l;

  // Per-partition capacities C_l (Eq. 5 / §III.B); total load is invariant
  // over the run, so these are too.
  std::vector<double> capacities(static_cast<size_t>(k), 0.0);
  if (config.partition_weights.empty()) {
    capacities.assign(static_cast<size_t>(k),
                      config.additional_capacity *
                          static_cast<double>(total_load) /
                          static_cast<double>(k));
  } else {
    double weight_sum = 0.0;
    for (const double w : config.partition_weights) weight_sum += w;
    for (int l = 0; l < k; ++l) {
      capacities[l] = config.additional_capacity *
                      static_cast<double>(total_load) *
                      config.partition_weights[l] / weight_sum;
    }
  }

  const bool observing = observer != nullptr && observer->active();
  double best_score = -1e300;
  int low_improvement_streak = 0;
  int64_t last_migrations = 0;

  for (;;) {
    // --- ComputeScores superstep (index 2·it − 1, matching the engine's
    // numbering so hash streams line up across substrates).
    const int64_t score_step = 2 * static_cast<int64_t>(out.iterations) + 1;
    WallTimer step_timer;
    pregel::SuperstepStats ss = NewStepStats(score_step);
    SuperstepBackend::ScoreOutcome scores;
    SPINNER_RETURN_IF_ERROR(
        backend->ComputeScores(score_step, global_loads, capacities,
                               &scores));
    ++out.iterations;
    const int iteration = out.iterations;

    double score_total = 0.0;  // fixed block-order reduction
    for (const double b : scores.block_score) score_total += b;
    const double score = score_total / static_cast<double>(n);
    FinishStep(std::move(ss), step_timer, /*messages=*/0);

    // --- Master logic after ComputeScores, mirroring
    // SpinnerProgram::MasterCompute exactly.
    if (config.record_history || observing) {
      IterationPoint pt;
      pt.iteration = iteration;
      pt.score = score;
      pt.migrations = last_migrations;
      pt.phi = total_load == 0
                   ? 1.0
                   : static_cast<double>(scores.local_weight) /
                         static_cast<double>(total_load);
      double weight_sum = 0.0;
      for (const double w : config.partition_weights) weight_sum += w;
      double rho = 0.0;
      for (size_t l = 0; l < global_loads.size(); ++l) {
        const double share =
            config.partition_weights.empty()
                ? 1.0 / static_cast<double>(k)
                : config.partition_weights[l] / weight_sum;
        const double ideal = static_cast<double>(total_load) * share;
        if (ideal > 0) {
          rho = std::max(rho,
                         static_cast<double>(global_loads[l]) / ideal);
        }
      }
      pt.rho = rho == 0.0 ? 1.0 : rho;
      pt.loads = global_loads;
      if (observing) {
        bool keep_going = true;
        if (observer->on_iteration) keep_going = observer->on_iteration(pt);
        if (observer->cancel != nullptr && observer->cancel->IsCancelled()) {
          keep_going = false;
        }
        if (!keep_going) out.cancelled = true;
      }
      if (config.record_history) out.history.push_back(std::move(pt));
    }
    if (out.cancelled) break;

    // Halting heuristic (§III.C).
    const double improvement = score - best_score;
    best_score = std::max(best_score, score);
    if (improvement < config.halt_epsilon) {
      ++low_improvement_streak;
    } else {
      low_improvement_streak = 0;
    }
    if (config.use_halting && iteration > 1 &&
        low_improvement_streak >= config.halt_window) {
      out.converged = true;
      break;
    }
    if (iteration >= config.max_iterations) break;

    // --- ComputeMigrations superstep (index 2·it). Migration counters
    // were merged by the backend before the probabilistic moves.
    const int64_t migration_step = 2 * static_cast<int64_t>(iteration);
    WallTimer mig_timer;
    pregel::SuperstepStats ms = NewStepStats(migration_step);
    SuperstepBackend::MigrateOutcome migrate;
    SPINNER_RETURN_IF_ERROR(
        backend->ComputeMigrations(migration_step, global_loads, capacities,
                                   scores.migration_counts, &migrate));
    global_loads = store->MergedLoads();
    last_migrations = migrate.migrated;
    int64_t messages = 0;
    for (int s = 0; s < S; ++s) {
      ms.worker_messages_out[s] = migrate.messages_out[s];
      messages += migrate.messages_out[s];
    }
    FinishStep(std::move(ms), mig_timer, messages);
  }

  stats.total_wall_seconds = total_timer.ElapsedSeconds();
  backend->CollectWireTraffic(&out.wire);
  backend->CollectScheduleStats(&out.schedule);
  return out;
}

}  // namespace spinner
