#include "spinner/config.h"

#include "common/result.h"
#include "common/string_util.h"

namespace spinner {

Status SpinnerConfig::Validate() const {
  if (num_partitions < 1) {
    return Status::InvalidArgument(
        StrFormat("num_partitions must be >= 1 (got %d)", num_partitions));
  }
  if (additional_capacity <= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "additional_capacity must be > 1 (Eq. 5 needs spare capacity; "
        "got %g)",
        additional_capacity));
  }
  if (halt_epsilon < 0.0) {
    return Status::InvalidArgument(
        StrFormat("halt_epsilon must be >= 0 (got %g)", halt_epsilon));
  }
  if (halt_window < 1) {
    return Status::InvalidArgument(
        StrFormat("halt_window must be >= 1 (got %d)", halt_window));
  }
  if (max_iterations < 1) {
    return Status::InvalidArgument(
        StrFormat("max_iterations must be >= 1 (got %d)", max_iterations));
  }
  if (num_workers < 0 || num_shards < 0 || num_threads < 0 ||
      num_processes < 0) {
    return Status::InvalidArgument(StrFormat(
        "num_workers/num_shards/num_threads/num_processes must be >= 0 "
        "(0 = auto/in-process; got %d/%d/%d/%d)",
        num_workers, num_shards, num_threads, num_processes));
  }
  // 64 = dist/transport.h kMinFramePayload (spinner/ cannot include
  // dist/; a static_assert in transport.cc keeps the literal in sync).
  if (wire_max_payload != 0 && wire_max_payload < 64) {
    return Status::InvalidArgument(StrFormat(
        "wire_max_payload must be 0 (transport default) or >= 64 bytes "
        "(got %llu)",
        static_cast<unsigned long long>(wire_max_payload)));
  }
  SPINNER_RETURN_IF_ERROR(ResolvedExecution().Validate());
  if (!partition_weights.empty()) {
    if (static_cast<int>(partition_weights.size()) != num_partitions) {
      return Status::InvalidArgument(StrFormat(
          "partition_weights size (%zu) must equal num_partitions (%d)",
          partition_weights.size(), num_partitions));
    }
    for (size_t l = 0; l < partition_weights.size(); ++l) {
      if (!(partition_weights[l] > 0.0)) {
        return Status::InvalidArgument(StrFormat(
            "partition_weights[%zu] must be positive (got %g)", l,
            partition_weights[l]));
      }
    }
  }
  return Status::OK();
}

ExecutionOptions SpinnerConfig::ResolvedExecution() const {
  ExecutionOptions legacy;
  legacy.num_shards = num_shards;
  legacy.num_threads = num_threads;
  legacy.num_workers = num_processes;
  legacy.wire_max_payload = wire_max_payload;
  if (num_processes > 0) legacy.mode = ExecutionMode::kMultiProcess;
  return MergedExecution(execution, legacy);
}

}  // namespace spinner
