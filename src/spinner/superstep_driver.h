// The superstep schedule of Spinner's iteration loop, factored out of the
// in-process path so one master drives every execution substrate:
//
//   Initialize ─► [ ComputeScores ─► master logic ─► ComputeMigrations ]*
//
// DriveSpinnerSupersteps owns everything that must be computed exactly once
// and in a fixed order — capacities (Eq. 5), the fixed block-order global
// score reduction, φ/ρ points, the halting heuristic (§III.C), observer
// callbacks and run statistics — while a SuperstepBackend executes the
// per-shard phase bodies wherever the shards live:
//  * in-process: one ThreadPool task per shard (RunShardedSpinner in
//    sharded_program.cc);
//  * cross-process: one RPC round per phase to the ShardWorker processes
//    (dist/coordinator.cc), whose replies carry exactly the quantities the
//    outcome structs below name.
//
// Because every cross-shard float reduction happens here (fixed block
// order) and every cross-shard integer merge is order-free addition, two
// backends that run the same shard bodies produce bit-identical
// assignments and φ/ρ/score histories — the invariance tests assert this
// across the in-process and multi-process substrates.
#ifndef SPINNER_SPINNER_SUPERSTEP_DRIVER_H_
#define SPINNER_SPINNER_SUPERSTEP_DRIVER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/sharded_store.h"
#include "graph/types.h"
#include "spinner/config.h"
#include "spinner/observer.h"
#include "spinner/sharded_program.h"

namespace spinner {

/// Executes the three phase bodies over all shards and reports the merged
/// quantities the master needs. Contract after each call: the driver-side
/// store holds the current labels for every vertex and every shard's load
/// counters (so ShardedGraphStore::MergedLoads() is the global b(l)).
class SuperstepBackend {
 public:
  virtual ~SuperstepBackend() = default;

  struct InitOutcome {
    /// Label-advertisement messages per shard (stats only).
    std::vector<int64_t> messages_out;
  };

  struct ScoreOutcome {
    /// Per-block global-score partials, one entry per vertex block; the
    /// driver reduces them in fixed block order.
    std::vector<double> block_score;
    /// Σ over vertices of the weighted neighbor frequency of the current
    /// label (φ numerator partial). Integer, so merge order is free.
    int64_t local_weight = 0;
    /// Load wanting to enter each partition, merged over shards.
    std::vector<int64_t> migration_counts;
  };

  struct MigrateOutcome {
    /// Vertices that migrated this superstep.
    int64_t migrated = 0;
    /// Label-update messages per shard (stats only).
    std::vector<int64_t> messages_out;
  };

  /// Called once by the driver before Initialize, after the store
  /// topology is final: a message-passing backend establishes its label
  /// subscriptions here (the cross-process coordinator collects each
  /// worker's out-of-range neighbor set and builds the per-worker
  /// subscription index). Shared-memory backends need nothing.
  virtual Status SetupSubscriptions() { return Status::OK(); }

  /// Called once by the driver after the superstep loop: the backend
  /// reports its wire traffic (WireTraffic contract). Shared-memory
  /// backends leave the zeros.
  virtual void CollectWireTraffic(WireTraffic* out) { (void)out; }

  /// Called once by the driver after the superstep loop: the backend
  /// reports its scheduler claim counters (ScheduleStats contract).
  /// Backends without block-granular scheduling leave the zeros.
  virtual void CollectScheduleStats(ScheduleStats* out) { (void)out; }

  /// Superstep 0: initialize labels and loads from `initial_labels`
  /// (ShardInitialize contract).
  virtual Status Initialize(const std::vector<PartitionId>& initial_labels,
                            InitOutcome* out) = 0;

  /// ComputeScores superstep `superstep` against the frozen global loads.
  virtual Status ComputeScores(int64_t superstep,
                               const std::vector<int64_t>& global_loads,
                               const std::vector<double>& capacities,
                               ScoreOutcome* out) = 0;

  /// ComputeMigrations superstep `superstep`; after it returns, labels and
  /// loads visible to the driver (and to every shard executor) reflect the
  /// applied moves.
  virtual Status ComputeMigrations(
      int64_t superstep, const std::vector<int64_t>& global_loads,
      const std::vector<double>& capacities,
      const std::vector<int64_t>& migration_counts, MigrateOutcome* out) = 0;
};

/// Runs the full superstep schedule over `store` through `backend`.
/// `store` provides the topology (shard ranges, block count) and holds the
/// authoritative labels/loads between phases; `observer` may be null.
Result<ShardedRunResult> DriveSpinnerSupersteps(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels, SuperstepBackend* backend,
    const ProgressObserver* observer);

}  // namespace spinner

#endif  // SPINNER_SPINNER_SUPERSTEP_DRIVER_H_
