// ExecutionOptions: the one place execution shape is configured.
//
// Before this header existed, the parallelism and wire knobs
// (num_shards / num_threads / num_processes / wire_max_payload) were
// triplicated across SpinnerConfig, SessionOptions and PartitionerOptions,
// each copy resolved ad hoc at a different layer. All three structs now
// nest one ExecutionOptions (their legacy flat fields remain as deprecated
// shims for one release) and every layer resolves through the same merge
// rule: an explicitly-set nested field wins over a legacy flat field, and
// outer layers (SessionOptions) win over inner ones (SpinnerConfig).
//
// Execution shape never changes results: partitioning assignments and the
// float φ/ρ/score histories are bit-identical for every mode / shard /
// thread / worker choice — the invariant all CI lanes assert.
#ifndef SPINNER_SPINNER_EXECUTION_OPTIONS_H_
#define SPINNER_SPINNER_EXECUTION_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace spinner {

/// Which substrate executes the supersteps. All modes run the same
/// per-shard kernels under the same master schedule.
enum class ExecutionMode {
  /// One ThreadPool task per shard in this process (default).
  kInProcess,
  /// Forked ShardWorker processes on this host, Unix-domain socketpairs.
  kMultiProcess,
  /// Dial-in ShardWorker processes over TCP: the coordinator runs a
  /// WorkerRegistry listener, workers connect, complete the
  /// Hello/Assign/Resume handshake and host their shards across runs
  /// (persistent per-shard store permitting a zero-download resume).
  kTcp,
};

/// Execution-shape and endpoint configuration shared by SpinnerConfig,
/// SessionOptions and PartitionerOptions. Every field has a "not set"
/// default so option layers can be merged field-wise.
struct ExecutionOptions {
  ExecutionMode mode = ExecutionMode::kInProcess;

  /// Shards of the graph store. 0 = auto (one per hardware thread,
  /// capped by the vertex-block count).
  int num_shards = 0;

  /// OS threads driving in-process shard tasks. 0 = auto.
  int num_threads = 0;

  /// Worker processes for kMultiProcess/kTcp. 0 = auto for
  /// kMultiProcess (min(num_shards, hardware)); kTcp requires an
  /// explicit count (the coordinator must know how many dial-ins to
  /// wait for).
  int num_workers = 0;

  /// Per-frame wire payload ceiling in bytes; larger messages stream
  /// across chunk frames. 0 = transport default (SPINNER_WIRE_MAX_PAYLOAD
  /// env override, or 1 GiB).
  uint64_t wire_max_payload = 0;

  /// kTcp coordinator: address the WorkerRegistry listens on,
  /// "host:port" (port 0 = ephemeral; query the registry for the bound
  /// address).
  std::string listen_address;

  /// kTcp worker: the coordinator address a dial-in worker connects to.
  /// Read by `partition_tool worker` / RunTcpWorker, not the coordinator.
  std::string worker_connect;

  /// Directory of the worker-side PersistentShardStore (per-shard base
  /// files + append-only delta logs). Empty = keep shards in memory only
  /// (every run re-downloads its slices).
  std::string worker_store_dir;

  /// kTcp: how long the coordinator waits for the full worker fleet to
  /// dial in and complete the Hello handshake.
  int64_t handshake_timeout_ms = 30'000;

  /// kMultiProcess/kTcp: read deadline of every coordinator-side blocking
  /// recv. A worker that stays connected but sends nothing for this long
  /// is declared hung (DeadlineExceeded — distinct from a dead peer's
  /// IOError) and, when recovery is enabled, replaced. The deadline renews
  /// on progress, so a worker slowly streaming a large reply is never
  /// falsely declared hung. Must be > 0.
  int64_t rpc_timeout_ms = 120'000;

  /// kMultiProcess/kTcp: granularity at which a deadline-armed wait
  /// re-checks liveness, and the base of the exponential backoff between
  /// recovery attempts. Must be > 0.
  int64_t heartbeat_period_ms = 1'000;

  /// kMultiProcess/kTcp: how many times a run may rebuild its worker
  /// fleet and replay state after a detected worker failure before giving
  /// up. 0 (default) disables recovery — the first failure surfaces as a
  /// Status, the pre-recovery behavior. Recovered runs are bit-identical
  /// to failure-free runs (assignments and float φ/ρ/score histories).
  int max_recovery_attempts = 0;

  Status Validate() const;
};

/// Field-wise merge: every `primary` field that differs from its default
/// wins; unset fields fall back to `fallback`. This is the one precedence
/// rule all option layers use (session options over config, nested struct
/// over deprecated flat fields).
ExecutionOptions MergedExecution(const ExecutionOptions& primary,
                                 const ExecutionOptions& fallback);

}  // namespace spinner

#endif  // SPINNER_SPINNER_EXECUTION_OPTIONS_H_
