#include "spinner/session.h"

#include <utility>

#include "common/string_util.h"
#include "graph/binary_io.h"
#include "graph/conversion.h"

namespace spinner {

PartitioningSession::PartitioningSession(const SpinnerConfig& config)
    : config_(config),
      init_status_(config.Validate()),
      current_k_(config.num_partitions) {}

Result<CsrGraph> PartitioningSession::Convert(int64_t num_vertices,
                                              const EdgeList& edges) const {
  return directed_ ? ConvertToWeightedUndirected(num_vertices, edges)
                   : BuildSymmetric(num_vertices, edges);
}

Status PartitioningSession::CheckReady() const {
  SPINNER_RETURN_IF_ERROR(init_status_);
  if (!open_) {
    return Status::FailedPrecondition(
        "session is not open; call Open() or Restore() first");
  }
  return Status::OK();
}

SpinnerPartitioner PartitioningSession::MakePartitioner() const {
  SpinnerPartitioner partitioner(config_);
  if (observer_.active()) partitioner.set_progress_observer(observer_);
  return partitioner;
}

Status PartitioningSession::Open(int64_t num_vertices, EdgeList edges,
                                 bool directed) {
  SPINNER_RETURN_IF_ERROR(init_status_);
  if (open_) {
    return Status::FailedPrecondition(
        "session is already open; use a fresh session per graph");
  }
  directed_ = directed;
  SPINNER_ASSIGN_OR_RETURN(CsrGraph converted,
                           Convert(num_vertices, edges));
  SPINNER_ASSIGN_OR_RETURN(PartitionResult result,
                           MakePartitioner().Partition(converted));

  num_vertices_ = num_vertices;
  edges_ = std::move(edges);
  converted_ = std::move(converted);
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  open_ = true;
  return Status::OK();
}

Status PartitioningSession::ApplyDelta(const GraphDelta& delta) {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  SPINNER_ASSIGN_OR_RETURN(EdgeList new_edges,
                           spinner::ApplyDelta(num_vertices_, edges_, delta));
  const int64_t new_num_vertices = num_vertices_ + delta.num_new_vertices;
  SPINNER_ASSIGN_OR_RETURN(CsrGraph new_converted,
                           Convert(new_num_vertices, new_edges));
  SPINNER_ASSIGN_OR_RETURN(
      PartitionResult result,
      MakePartitioner().Repartition(new_converted, assignment_));

  num_vertices_ = new_num_vertices;
  edges_ = std::move(new_edges);
  converted_ = std::move(new_converted);
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  return Status::OK();
}

Status PartitioningSession::Rescale(int new_k) {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  if (new_k < 1) {
    return Status::InvalidArgument(
        StrFormat("new_k must be >= 1 (got %d)", new_k));
  }
  SPINNER_ASSIGN_OR_RETURN(
      PartitionResult result,
      MakePartitioner().Rescale(converted_, assignment_, new_k));

  current_k_ = new_k;
  config_.num_partitions = new_k;
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  return Status::OK();
}

Status PartitioningSession::Refine() {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  SPINNER_ASSIGN_OR_RETURN(
      PartitionResult result,
      MakePartitioner().Repartition(converted_, assignment_));
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  return Status::OK();
}

Status PartitioningSession::Snapshot(const std::string& path) const {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  graph_io::SessionSnapshot snapshot;
  snapshot.num_vertices = num_vertices_;
  snapshot.edges = edges_;
  snapshot.directed = directed_;
  snapshot.num_partitions = current_k_;
  snapshot.assignment = assignment_;
  return graph_io::WriteSessionSnapshot(path, snapshot);
}

Status PartitioningSession::Restore(const std::string& path) {
  SPINNER_RETURN_IF_ERROR(init_status_);
  SPINNER_ASSIGN_OR_RETURN(graph_io::SessionSnapshot snapshot,
                           graph_io::ReadSessionSnapshot(path));
  if (snapshot.num_partitions < 1) {
    return Status::InvalidArgument(
        "snapshot carries no assignment; cannot restore a session from it");
  }
  directed_ = snapshot.directed;
  SPINNER_ASSIGN_OR_RETURN(
      CsrGraph converted,
      Convert(snapshot.num_vertices, snapshot.edges));

  num_vertices_ = snapshot.num_vertices;
  edges_ = std::move(snapshot.edges);
  converted_ = std::move(converted);
  assignment_ = std::move(snapshot.assignment);
  current_k_ = snapshot.num_partitions;
  config_.num_partitions = current_k_;
  last_result_ = PartitionResult{};
  open_ = true;
  return Status::OK();
}

void PartitioningSession::SetProgressObserver(ProgressObserver observer) {
  observer_ = std::move(observer);
}

Result<PartitionMetrics> PartitioningSession::Metrics() const {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  BalanceSpec spec;
  spec.mode = config_.balance_mode;
  spec.partition_weights = config_.partition_weights;
  return ComputeMetricsEx(converted_, assignment_, current_k_,
                          config_.additional_capacity, spec);
}

}  // namespace spinner
