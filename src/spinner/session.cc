#include "spinner/session.h"

#include <utility>

#include "common/string_util.h"
#include "dist/coordinator.h"
#include "dist/registry.h"
#include "graph/binary_io.h"
#include "graph/conversion.h"
#include "spinner/initial_assignment.h"
#include "spinner/sharded_program.h"

namespace spinner {

PartitioningSession::PartitioningSession(const SpinnerConfig& config,
                                         SessionOptions options)
    : config_(config),
      options_(options),
      init_status_(config.Validate()),
      current_k_(config.num_partitions) {
  // Fold the four configuration layers into one ExecutionOptions, outer
  // layers winning field-wise: session.execution > session flat shims >
  // config.execution > config flat shims.
  ExecutionOptions session_legacy;
  session_legacy.num_shards = options_.num_shards;
  session_legacy.num_threads = options_.num_threads;
  session_legacy.num_workers = options_.num_workers;
  session_legacy.wire_max_payload = options_.wire_max_payload;
  session_legacy.mode = options_.execution_mode;
  execution_ = MergedExecution(
      options_.execution,
      MergedExecution(session_legacy, config_.ResolvedExecution()));
  // Write the merged result back through the deprecated config fields so
  // downstream resolvers (ResolveNumShards/Threads/Workers) and
  // config().Validate() all see one consistent execution shape. In
  // kMultiProcess mode num_workers=0 means "auto" (ResolveNumWorkers),
  // not "in-process".
  config_.execution = execution_;
  if (execution_.num_shards > 0) config_.num_shards = execution_.num_shards;
  if (execution_.num_threads > 0) {
    config_.num_threads = execution_.num_threads;
  }
  if (execution_.wire_max_payload != 0) {
    config_.wire_max_payload = execution_.wire_max_payload;
  }
  if (execution_.mode != ExecutionMode::kInProcess &&
      execution_.num_workers > 0) {
    config_.num_processes = execution_.num_workers;
  }
  if (init_status_.ok()) init_status_ = config_.Validate();
}

PartitioningSession::~PartitioningSession() = default;

Result<CsrGraph> PartitioningSession::Convert(int64_t num_vertices,
                                              const EdgeList& edges) const {
  return directed_ ? ConvertToWeightedUndirected(num_vertices, edges)
                   : BuildSymmetric(num_vertices, edges);
}

Status PartitioningSession::CheckReady() const {
  SPINNER_RETURN_IF_ERROR(init_status_);
  if (!open_) {
    return Status::FailedPrecondition(
        "session is not open; call Open() or Restore() first");
  }
  return Status::OK();
}

Result<ShardedGraphStore> PartitioningSession::BuildStore(
    const CsrGraph& converted) const {
  return ShardedGraphStore::Build(
      converted, ResolveNumShards(config_, converted.NumVertices()));
}

void PartitioningSession::EnsurePool() {
  const int threads = ResolveNumThreads(config_, store_.num_shards());
  if (pool_ == nullptr || pool_->num_threads() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

Status PartitioningSession::EnsureRegistry() {
  if (registry_ != nullptr) return Status::OK();
  dist::RegistryOptions options;
  if (!execution_.listen_address.empty()) {
    options.listen_address = execution_.listen_address;
  }
  options.handshake_timeout_ms = execution_.handshake_timeout_ms;
  SPINNER_ASSIGN_OR_RETURN(registry_,
                           dist::WorkerRegistry::Listen(options));
  return Status::OK();
}

Result<std::string> PartitioningSession::TcpAddress() {
  if (execution_.mode != ExecutionMode::kTcp) {
    return Status::FailedPrecondition(
        "TcpAddress() is only meaningful in ExecutionMode::kTcp");
  }
  SPINNER_RETURN_IF_ERROR(EnsureRegistry());
  return registry_->address();
}

Status PartitioningSession::RunLpa(const CsrGraph& metrics_graph,
                                   std::vector<PartitionId> initial_labels,
                                   int k, PartitionResult* out) {
  SpinnerConfig run_config = config_;
  run_config.num_partitions = k;
  ShardedRunResult run;
  if (execution_.mode != ExecutionMode::kInProcess) {
    // Cross-process execution: the coordinator drives the identical
    // superstep schedule over forked (kMultiProcess) or dial-in TCP
    // (kTcp) workers, so the session-visible outcome is bit-identical to
    // the in-process path.
    dist::MultiProcessOptions mp;
    mp.num_workers = run_config.num_processes;
    mp.transport =
        dist::TransportOptions::Resolve(run_config.wire_max_payload);
    mp.worker_store_dir = execution_.worker_store_dir;
    mp.rpc_timeout_ms = execution_.rpc_timeout_ms;
    mp.heartbeat_period_ms = execution_.heartbeat_period_ms;
    mp.max_recovery_attempts = execution_.max_recovery_attempts;
    if (execution_.mode == ExecutionMode::kTcp) {
      SPINNER_RETURN_IF_ERROR(EnsureRegistry());
      mp.worker_transport = registry_.get();
    }
    SPINNER_ASSIGN_OR_RETURN(
        run, dist::RunMultiProcessSpinner(
                 run_config, &store_, std::move(initial_labels), mp,
                 observer_.active() ? &observer_ : nullptr));
  } else {
    EnsurePool();
    SPINNER_ASSIGN_OR_RETURN(
        run,
        RunShardedSpinner(run_config, &store_, std::move(initial_labels),
                          pool_.get(),
                          observer_.active() ? &observer_ : nullptr));
  }
  out->num_partitions = k;
  out->iterations = run.iterations;
  out->converged = run.converged;
  out->cancelled = run.cancelled;
  out->history = std::move(run.history);
  out->run_stats = std::move(run.run_stats);
  out->wire = std::move(run.wire);
  out->assignment = store_.labels();

  BalanceSpec spec;
  spec.mode = run_config.balance_mode;
  spec.partition_weights = run_config.partition_weights;
  SPINNER_ASSIGN_OR_RETURN(
      out->metrics,
      ComputeMetricsEx(metrics_graph, out->assignment, k,
                       run_config.additional_capacity, spec));
  return Status::OK();
}

Status PartitioningSession::Open(int64_t num_vertices, EdgeList edges,
                                 bool directed) {
  SPINNER_RETURN_IF_ERROR(init_status_);
  if (open_) {
    return Status::FailedPrecondition(
        "session is already open; use a fresh session per graph");
  }
  directed_ = directed;
  SPINNER_ASSIGN_OR_RETURN(CsrGraph converted,
                           Convert(num_vertices, edges));
  SPINNER_ASSIGN_OR_RETURN(store_, BuildStore(converted));
  std::vector<PartitionId> no_labels(num_vertices, kNoPartition);
  PartitionResult result;
  SPINNER_RETURN_IF_ERROR(
      RunLpa(converted, std::move(no_labels), current_k_, &result));

  num_vertices_ = num_vertices;
  edges_ = std::move(edges);
  converted_ = std::move(converted);
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  open_ = true;
  return Status::OK();
}

Status PartitioningSession::ApplyDelta(const GraphDelta& delta) {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  SPINNER_ASSIGN_OR_RETURN(EdgeList new_edges,
                           spinner::ApplyDelta(num_vertices_, edges_, delta));
  const int64_t new_num_vertices = num_vertices_ + delta.num_new_vertices;
  SPINNER_ASSIGN_OR_RETURN(CsrGraph new_converted,
                           Convert(new_num_vertices, new_edges));
  // Incremental restart labels (§III.D) are computed before the store is
  // touched, so every failure up to here leaves the session untouched.
  SPINNER_ASSIGN_OR_RETURN(
      std::vector<PartitionId> initial,
      ExtendForNewVertices(new_converted, assignment_, current_k_));

  if (delta.num_new_vertices > 0) {
    // The vertex range grew: block alignment moves every shard boundary,
    // so re-slice the whole store.
    SPINNER_ASSIGN_OR_RETURN(store_, BuildStore(new_converted));
  } else {
    // Same vertex range: only the shards owning an endpoint of a changed
    // edge have a stale CSR slice.
    std::vector<VertexId> dirty;
    dirty.reserve(2 * (delta.added_edges.size() + delta.removed_edges.size()));
    for (const Edge& e : delta.added_edges) {
      dirty.push_back(e.src);
      dirty.push_back(e.dst);
    }
    for (const Edge& e : delta.removed_edges) {
      dirty.push_back(e.src);
      dirty.push_back(e.dst);
    }
    SPINNER_RETURN_IF_ERROR(store_.Update(new_converted, dirty));
  }

  PartitionResult result;
  const Status run_status =
      RunLpa(new_converted, std::move(initial), current_k_, &result);
  if (!run_status.ok()) {
    // The store was already re-sliced for the new graph; put it back so
    // the session's pre-call state stays self-consistent.
    auto rebuilt = BuildStore(converted_);
    if (rebuilt.ok()) store_ = std::move(rebuilt).value();
    return run_status;
  }

  num_vertices_ = new_num_vertices;
  edges_ = std::move(new_edges);
  converted_ = std::move(new_converted);
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  return Status::OK();
}

Status PartitioningSession::Rescale(int new_k) {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  if (new_k < 1) {
    return Status::InvalidArgument(
        StrFormat("new_k must be >= 1 (got %d)", new_k));
  }
  // The probabilistic elastic re-labeling (§III.E) seeds the restart.
  std::vector<PartitionId> initial;
  if (new_k > current_k_) {
    SPINNER_ASSIGN_OR_RETURN(
        initial, ElasticExpand(assignment_, current_k_, new_k, config_.seed));
  } else if (new_k < current_k_) {
    SPINNER_ASSIGN_OR_RETURN(
        initial, ElasticShrink(assignment_, current_k_, new_k, config_.seed));
  } else {
    initial = assignment_;
  }
  PartitionResult result;
  SPINNER_RETURN_IF_ERROR(
      RunLpa(converted_, std::move(initial), new_k, &result));

  current_k_ = new_k;
  config_.num_partitions = new_k;
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  return Status::OK();
}

Status PartitioningSession::Refine() {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  SPINNER_ASSIGN_OR_RETURN(
      std::vector<PartitionId> initial,
      ExtendForNewVertices(converted_, assignment_, current_k_));
  PartitionResult result;
  SPINNER_RETURN_IF_ERROR(
      RunLpa(converted_, std::move(initial), current_k_, &result));
  assignment_ = result.assignment;
  last_result_ = std::move(result);
  return Status::OK();
}

Status PartitioningSession::ResizeWorkers(int num_workers) {
  SPINNER_RETURN_IF_ERROR(init_status_);
  if (num_workers < 1) {
    return Status::InvalidArgument(
        StrFormat("num_workers must be >= 1 (got %d)", num_workers));
  }
  if (execution_.mode == ExecutionMode::kInProcess) {
    return Status::FailedPrecondition(
        "ResizeWorkers applies to kMultiProcess/kTcp sessions; "
        "kInProcess has no worker fleet");
  }
  execution_.num_workers = num_workers;
  config_.execution.num_workers = num_workers;
  config_.num_processes = num_workers;  // RunLpa reads this per call
  if (execution_.mode == ExecutionMode::kTcp && registry_ != nullptr) {
    registry_->DrainPooled(num_workers);
  }
  return Status::OK();
}

Status PartitioningSession::Snapshot(const std::string& path) const {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  graph_io::SessionSnapshot snapshot;
  snapshot.num_vertices = num_vertices_;
  snapshot.edges = edges_;
  snapshot.directed = directed_;
  snapshot.num_partitions = current_k_;
  snapshot.assignment = assignment_;
  return graph_io::WriteSessionSnapshot(path, snapshot);
}

Status PartitioningSession::Restore(const std::string& path) {
  SPINNER_RETURN_IF_ERROR(init_status_);
  SPINNER_ASSIGN_OR_RETURN(graph_io::SessionSnapshot snapshot,
                           graph_io::ReadSessionSnapshot(path));
  return RestoreSnapshot(std::move(snapshot));
}

Status PartitioningSession::RestoreSnapshot(
    graph_io::SessionSnapshot snapshot) {
  SPINNER_RETURN_IF_ERROR(init_status_);
  if (snapshot.num_partitions < 1) {
    return Status::InvalidArgument(
        "snapshot carries no assignment; cannot restore a session from it");
  }
  // In-memory snapshots (delta-log replay) bypass ReadSessionSnapshot's
  // validation; re-check the assignment invariants here.
  if (static_cast<int64_t>(snapshot.assignment.size()) !=
      snapshot.num_vertices) {
    return Status::InvalidArgument(
        "snapshot assignment does not cover every vertex");
  }
  for (PartitionId l : snapshot.assignment) {
    if (l < 0 || l >= snapshot.num_partitions) {
      return Status::InvalidArgument("snapshot assignment label out of range");
    }
  }
  directed_ = snapshot.directed;
  SPINNER_ASSIGN_OR_RETURN(
      CsrGraph converted,
      Convert(snapshot.num_vertices, snapshot.edges));
  SPINNER_ASSIGN_OR_RETURN(ShardedGraphStore store, BuildStore(converted));
  store.labels() = snapshot.assignment;

  num_vertices_ = snapshot.num_vertices;
  edges_ = std::move(snapshot.edges);
  converted_ = std::move(converted);
  store_ = std::move(store);
  assignment_ = std::move(snapshot.assignment);
  current_k_ = snapshot.num_partitions;
  config_.num_partitions = current_k_;
  last_result_ = PartitionResult{};
  open_ = true;
  return Status::OK();
}

void PartitioningSession::SetProgressObserver(ProgressObserver observer) {
  observer_ = std::move(observer);
}

Result<PartitionMetrics> PartitioningSession::Metrics() const {
  SPINNER_RETURN_IF_ERROR(CheckReady());
  BalanceSpec spec;
  spec.mode = config_.balance_mode;
  spec.partition_weights = config_.partition_weights;
  return ComputeMetricsEx(converted_, assignment_, current_k_,
                          config_.additional_capacity, spec);
}

}  // namespace spinner
