// Partitioning quality metrics (paper Eq. 16 and §V.D).
#ifndef SPINNER_SPINNER_METRICS_H_
#define SPINNER_SPINNER_METRICS_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"
#include "spinner/config.h"

namespace spinner {

/// Balance objective for metric computation: what loads count
/// (edges/vertices) and the per-partition capacity shares (empty =
/// homogeneous).
struct BalanceSpec {
  BalanceMode mode = BalanceMode::kEdges;
  std::vector<double> partition_weights;
};

/// Quality summary of an assignment over a converted (weighted symmetric)
/// graph.
struct PartitionMetrics {
  /// φ: weighted ratio of local edges — the fraction of message traffic
  /// that stays within a partition.
  double phi = 0.0;
  /// ρ: maximum normalized load — max_l b(l) / (|E|/k), where b(l) counts
  /// weighted out-degrees (message slots), so Σ_l b(l) = |E|.
  double rho = 1.0;
  /// Normalized global score score(G)/|V| (Eq. 10); depends on c through
  /// the penalty term.
  double score = 0.0;
  /// b(l) per partition.
  std::vector<int64_t> loads;
  /// Total arc weight crossing partitions (unnormalized cut).
  int64_t cut_weight = 0;
  /// Total arc weight |E| (Σ_v deg_w(v)).
  int64_t total_weight = 0;
};

/// Computes all metrics in one pass over the arcs.
/// `assignment` must cover every vertex with a label in [0, k).
/// `c` feeds the penalty term of the score (use the run's config value).
Result<PartitionMetrics> ComputeMetrics(const CsrGraph& converted,
                                        std::span<const PartitionId> assignment,
                                        int k, double c);

/// Generalized metrics: loads/ρ under an arbitrary balance objective
/// (vertex-balanced mode, heterogeneous capacity shares). φ is always edge
/// locality. ρ is measured against each partition's own ideal share.
Result<PartitionMetrics> ComputeMetricsEx(
    const CsrGraph& converted, std::span<const PartitionId> assignment,
    int k, double c, const BalanceSpec& spec);

/// b(l) per partition only (cheaper than full metrics).
Result<std::vector<int64_t>> ComputeLoads(
    const CsrGraph& converted, std::span<const PartitionId> assignment, int k);

/// Paper §V.D "partitioning difference": the fraction of vertices whose
/// label differs between two assignments — the vertices a graph store would
/// have to shuffle. Both assignments must have equal size.
Result<double> PartitioningDifference(std::span<const PartitionId> a,
                                      std::span<const PartitionId> b);

}  // namespace spinner

#endif  // SPINNER_SPINNER_METRICS_H_
