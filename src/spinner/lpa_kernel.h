// The per-vertex decision kernel of Spinner's label propagation, shared by
// the two execution substrates:
//  * the Pregel BSP engine (spinner/program.cc), faithful to the paper's
//    Giraph deployment;
//  * the shard-parallel superstep loop (spinner/sharded_program.cc) that
//    runs directly over a ShardedGraphStore.
//
// Both paths must take bit-identical decisions for the same inputs — label
// choice (Eq. 8 + deterministic tie break), migration probability (Eq. 14)
// and the hash-derived random streams — so the kernel lives here exactly
// once. All randomness is stateless: hash (seed, domain, superstep, vertex)
// to get an independent stream per decision point, making every run
// reproducible for a given seed regardless of shard/worker/thread counts.
#ifndef SPINNER_SPINNER_LPA_KERNEL_H_
#define SPINNER_SPINNER_LPA_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/random.h"
#include "graph/types.h"

namespace spinner::lpa {

/// Domain separators for hash-derived randomness, so distinct decision
/// kinds never share a stream.
inline constexpr uint64_t kInitDomain = 0x5049'4e49'5449'4c00ULL;
inline constexpr uint64_t kTieDomain = 0x5449'4542'5245'4b00ULL;
inline constexpr uint64_t kCoinDomain = 0x4d49'4752'4154'4500ULL;

/// Uniform random initial label in [0, k) (§III.A), deterministic in
/// (seed, vertex).
inline PartitionId InitialLabel(uint64_t seed, VertexId v, int k) {
  return static_cast<PartitionId>(
      HashUniform(HashCombine(seed, kInitDomain, static_cast<uint64_t>(v)),
                  static_cast<uint64_t>(k)));
}

/// One candidate-label term of the normalized score (Eq. 8): locality minus
/// the load penalty of `load` against `capacity`.
inline double ScoreTerm(int64_t freq, double weighted_degree, int64_t load,
                        double capacity) {
  const double locality = static_cast<double>(freq) / weighted_degree;
  const double penalty =
      capacity > 0 ? static_cast<double>(load) / capacity : 0.0;
  return locality - penalty;
}

/// Outcome of scoring a vertex's candidate labels.
struct LabelChoice {
  /// Best-scoring label (== current when nothing beats it).
  PartitionId label = kNoPartition;
  /// True iff a non-current label scored strictly better.
  bool better = false;
};

/// Picks the best label for a vertex among its current label and the labels
/// in `touched` (the neighborhood's labels in discovery order), scoring
/// each with Eq. 8 against `penalty_loads` and breaking exact ties with a
/// deterministic reservoir draw keyed on (seed, superstep, vertex, label).
/// `freq` holds the weighted neighbor-label frequencies (Eq. 4) indexed by
/// label; `weighted_degree` must be > 0.
inline LabelChoice PickLabel(std::span<const int64_t> freq,
                             std::span<const PartitionId> touched,
                             PartitionId current, double weighted_degree,
                             std::span<const double> capacities,
                             std::span<const int64_t> penalty_loads,
                             uint64_t seed, int64_t superstep, VertexId v) {
  auto score_of = [&](PartitionId l) {
    return ScoreTerm(freq[l], weighted_degree, penalty_loads[l],
                     capacities[l]);
  };
  const double current_score = score_of(current);
  double best_score = current_score;
  bool current_is_best = true;
  int num_best = 0;  // count of non-current labels tied at best_score
  PartitionId chosen = current;
  for (const PartitionId l : touched) {
    if (l == current) continue;
    const double s = score_of(l);
    if (s > best_score) {
      best_score = s;
      current_is_best = false;
      num_best = 1;
      chosen = l;
    } else if (!current_is_best && s == best_score) {
      // Reservoir-style deterministic tie break among equal maxima.
      ++num_best;
      const uint64_t key =
          HashCombine(HashCombine(seed, kTieDomain, static_cast<uint64_t>(v)),
                      static_cast<uint64_t>(superstep),
                      static_cast<uint64_t>(l));
      if (HashUniform(key, static_cast<uint64_t>(num_best)) == 0) {
        chosen = l;
      }
    }
  }
  return LabelChoice{chosen, !current_is_best};
}

/// Migration probability (Eq. 14): remaining capacity r(l) over the load
/// wanting to enter, clamped to [0, 1].
inline double MigrationProbability(double remaining, double wanting) {
  if (remaining <= 0 || wanting <= 0) return 0.0;
  return std::min(1.0, remaining / wanting);
}

/// The migration coin flip: true iff the vertex migrates this superstep.
/// Deterministic in (seed, superstep, vertex).
inline bool MigrationCoinAccepts(uint64_t seed, VertexId v, int64_t superstep,
                                 double p) {
  const uint64_t key =
      HashCombine(HashCombine(seed, kCoinDomain, static_cast<uint64_t>(v)),
                  static_cast<uint64_t>(superstep));
  return HashUniformDouble(key) < p;
}

}  // namespace spinner::lpa

#endif  // SPINNER_SPINNER_LPA_KERNEL_H_
