// The per-vertex decision kernel of Spinner's label propagation, shared by
// the two execution substrates:
//  * the Pregel BSP engine (spinner/program.cc), faithful to the paper's
//    Giraph deployment;
//  * the shard-parallel superstep loop (spinner/sharded_program.cc) that
//    runs directly over a ShardedGraphStore.
//
// Both paths must take bit-identical decisions for the same inputs — label
// choice (Eq. 8 + deterministic tie break), migration probability (Eq. 14)
// and the hash-derived random streams — so the kernel lives here exactly
// once. All randomness is stateless: hash (seed, domain, superstep, vertex)
// to get an independent stream per decision point, making every run
// reproducible for a given seed regardless of shard/worker/thread counts.
//
// Hot-loop layout (docs/PERFORMANCE.md):
//  * Eq. 8 is evaluated as freq[l]·(1/deg) − penalty[l] against per-label
//    penalty tables (FillPenalties) that hoist the load/capacity division
//    out of the per-vertex loop — the load term is identical for every
//    vertex that sees the same load view, so dividing per (vertex, label)
//    was pure waste.
//  * The best label is found by one of two interchangeable scans:
//    PickLabelSparse walks the touched-label list (the scalar reference,
//    fastest for low-degree vertices), PickLabelDense scans all k labels
//    with a SIMD-vectorizable masked max (fastest for hubs, enabled by the
//    SPINNER_SIMD build knob). Both compute the same per-label expression
//    over the same candidate set {current} ∪ {l : freq[l] > 0}, and the
//    tie break is a pure function of (seed, superstep, vertex, label set)
//    — NOT of scan order — so the two scans are bit-identical by
//    construction and callers may pick either per vertex.
//  * Exact-score ties among non-current maxima are broken by the minimal
//    TieKey (lexicographic on (key, label)); the draw is still uniform
//    over the tied set and deterministic per (seed, superstep, vertex).
#ifndef SPINNER_SPINNER_LPA_KERNEL_H_
#define SPINNER_SPINNER_LPA_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>

#include "common/random.h"
#include "graph/types.h"

// SPINNER_SIMD (CMake -DSPINNER_SIMD=ON, the default) compiles the dense
// per-label scans with `#pragma omp simd` (pure compile-time vectorization
// via -fopenmp-simd; no OpenMP runtime dependency). With the knob OFF the
// pragmas vanish and every scan is the plain scalar loop — same
// expressions, same results, byte-for-byte (the simd-parity CI lane
// asserts this).
#if defined(SPINNER_SIMD)
#define SPINNER_PRAGMA_SIMD _Pragma("omp simd")
#define SPINNER_PRAGMA_SIMD_REDUX(clause) _Pragma(clause)
#else
#define SPINNER_PRAGMA_SIMD
#define SPINNER_PRAGMA_SIMD_REDUX(clause)
#endif

namespace spinner::lpa {

/// Domain separators for hash-derived randomness, so distinct decision
/// kinds never share a stream.
inline constexpr uint64_t kInitDomain = 0x5049'4e49'5449'4c00ULL;
inline constexpr uint64_t kTieDomain = 0x5449'4542'5245'4b00ULL;
inline constexpr uint64_t kCoinDomain = 0x4d49'4752'4154'4500ULL;

/// Uniform random initial label in [0, k) (§III.A), deterministic in
/// (seed, vertex).
inline PartitionId InitialLabel(uint64_t seed, VertexId v, int k) {
  return static_cast<PartitionId>(
      HashUniform(HashCombine(seed, kInitDomain, static_cast<uint64_t>(v)),
                  static_cast<uint64_t>(k)));
}

/// One candidate-label term of the normalized score (Eq. 8): locality
/// freq·(1/weighted_degree) minus the precomputed load penalty of the
/// label (see FillPenalties).
inline double Score(int64_t freq, double inv_degree, double penalty) {
  return static_cast<double>(freq) * inv_degree - penalty;
}

/// Fills penalty[l] = load[l] / capacity[l] (0 when the capacity is not
/// positive) — the vertex-independent half of Eq. 8, computed once per
/// load view instead of once per (vertex, label).
inline void FillPenalties(std::span<const int64_t> loads,
                          std::span<const double> capacities,
                          std::span<double> penalty) {
  const int k = static_cast<int>(penalty.size());
  SPINNER_PRAGMA_SIMD
  for (int l = 0; l < k; ++l) {
    penalty[l] = capacities[l] > 0
                     ? static_cast<double>(loads[l]) / capacities[l]
                     : 0.0;
  }
}

/// The deterministic tie-break priority of label l for vertex v: ties at
/// the maximal score go to the label with the smallest key (then smallest
/// l). A pure function of (seed, superstep, v, l), so the winner does not
/// depend on the order candidates are scanned in.
inline uint64_t TieKey(uint64_t seed, int64_t superstep, VertexId v,
                       PartitionId l) {
  return SplitMix64(
      HashCombine(HashCombine(seed, kTieDomain, static_cast<uint64_t>(v)),
                  static_cast<uint64_t>(superstep), static_cast<uint64_t>(l)));
}

/// Outcome of scoring a vertex's candidate labels.
struct LabelChoice {
  /// Best-scoring label (== current when nothing beats it).
  PartitionId label = kNoPartition;
  /// True iff a non-current label scored strictly better.
  bool better = false;
};

/// Shared tie-break: picks, among the non-current labels in `candidates`
/// whose score equals `best`, the one minimizing (TieKey, label).
/// `score_of(l)` must reproduce the exact scan-phase value.
template <typename ScoreFn>
inline LabelChoice ResolveBest(std::span<const PartitionId> candidates,
                               PartitionId current, double best,
                               const ScoreFn& score_of, uint64_t seed,
                               int64_t superstep, VertexId v) {
  PartitionId chosen = kNoPartition;
  uint64_t chosen_key = 0;
  for (const PartitionId l : candidates) {
    if (l == current || score_of(l) != best) continue;
    const uint64_t key = TieKey(seed, superstep, v, l);
    if (chosen == kNoPartition || key < chosen_key ||
        (key == chosen_key && l < chosen)) {
      chosen = l;
      chosen_key = key;
    }
  }
  return LabelChoice{chosen, true};
}

/// Picks the best label for a vertex among its current label and the
/// labels in `touched` (the neighborhood's labels, any order), scoring
/// each with Eq. 8 via `freq`, `inv_degree` and the `penalty` table.
/// `current_score` must be Score(freq[current], inv_degree,
/// penalty[current]). This is the sparse scalar reference scan — the
/// dense SIMD scan below is bit-identical.
inline LabelChoice PickLabelSparse(std::span<const int64_t> freq,
                                   std::span<const PartitionId> touched,
                                   PartitionId current, double current_score,
                                   double inv_degree,
                                   std::span<const double> penalty,
                                   uint64_t seed, int64_t superstep,
                                   VertexId v) {
  double best = current_score;
  bool better = false;
  for (const PartitionId l : touched) {
    if (l == current) continue;
    const double s = Score(freq[l], inv_degree, penalty[l]);
    if (s > best) {
      best = s;
      better = true;
    }
  }
  if (!better) return LabelChoice{current, false};
  return ResolveBest(
      touched, current, best,
      [&](PartitionId l) { return Score(freq[l], inv_degree, penalty[l]); },
      seed, superstep, v);
}

/// Dense variant of PickLabelSparse: scans all k labels with a masked
/// SIMD max instead of walking the touched list, writing each label's
/// (masked) score into `score_buf` (size k). Candidate set, scores and
/// tie break are identical to the sparse scan, so the two may be chosen
/// per vertex without affecting results. Preferable for hubs, where the
/// neighborhood touches a large fraction of the labels.
inline LabelChoice PickLabelDense(std::span<const int64_t> freq,
                                  PartitionId current, double current_score,
                                  double inv_degree,
                                  std::span<const double> penalty,
                                  std::span<double> score_buf, uint64_t seed,
                                  int64_t superstep, VertexId v) {
  const int k = static_cast<int>(score_buf.size());
  constexpr double kMasked = -std::numeric_limits<double>::infinity();
  double best = current_score;
  const int64_t* freq_p = freq.data();
  const double* penalty_p = penalty.data();
  double* buf_p = score_buf.data();
  SPINNER_PRAGMA_SIMD_REDUX("omp simd reduction(max : best)")
  for (int l = 0; l < k; ++l) {
    const double s =
        static_cast<double>(freq_p[l]) * inv_degree - penalty_p[l];
    const double masked = freq_p[l] > 0 ? s : kMasked;
    buf_p[l] = masked;
    best = masked > best ? masked : best;
  }
  // `best` included current_score even when freq[current] == 0, so a
  // strictly better non-current label exists iff best moved.
  if (!(best > current_score)) return LabelChoice{current, false};
  PartitionId chosen = kNoPartition;
  uint64_t chosen_key = 0;
  for (PartitionId l = 0; l < k; ++l) {
    if (l == current || buf_p[l] != best) continue;
    const uint64_t key = TieKey(seed, superstep, v, l);
    if (chosen == kNoPartition || key < chosen_key ||
        (key == chosen_key && l < chosen)) {
      chosen = l;
      chosen_key = key;
    }
  }
  return LabelChoice{chosen, true};
}

/// Migration probability (Eq. 14): remaining capacity r(l) over the load
/// wanting to enter, clamped to [0, 1].
inline double MigrationProbability(double remaining, double wanting) {
  if (remaining <= 0 || wanting <= 0) return 0.0;
  return std::min(1.0, remaining / wanting);
}

/// Fills p[l] = MigrationProbability(capacity[l] − load[l], wanting[l])
/// for every label: the per-vertex Eq. 12–14 evaluation is a pure table
/// lookup, since none of its inputs depend on the vertex.
inline void FillMigrationProbabilities(std::span<const int64_t> loads,
                                       std::span<const double> capacities,
                                       std::span<const int64_t> wanting,
                                       std::span<double> p) {
  const int k = static_cast<int>(p.size());
  for (int l = 0; l < k; ++l) {
    p[l] = MigrationProbability(
        capacities[l] - static_cast<double>(loads[l]),
        static_cast<double>(wanting[l]));
  }
}

/// The migration coin flip: true iff the vertex migrates this superstep.
/// Deterministic in (seed, superstep, vertex).
inline bool MigrationCoinAccepts(uint64_t seed, VertexId v, int64_t superstep,
                                 double p) {
  const uint64_t key =
      HashCombine(HashCombine(seed, kCoinDomain, static_cast<uint64_t>(v)),
                  static_cast<uint64_t>(superstep));
  return HashUniformDouble(key) < p;
}

}  // namespace spinner::lpa

#endif  // SPINNER_SPINNER_LPA_KERNEL_H_
