// SpinnerPartitioner: the low-level, stateless entry points of the Spinner
// algorithm. Entry points map to the paper's three modes: Partition /
// PartitionDirected (scratch), Repartition (incremental, §III.D) and
// Rescale (elastic, §III.E).
//
//   SpinnerConfig config;
//   config.num_partitions = 32;
//   SpinnerPartitioner partitioner(config);
//   auto result = partitioner.Partition(converted_graph);
//   if (result.ok()) use(result->assignment);
//
// DEPRECATION NOTE: new code should prefer the maintained-lifecycle API —
// PartitioningSession (spinner/session.h) owns the graph + assignment and
// composes delta application, conversion and adaptation; the
// PartitionerRegistry (baselines/partitioner_registry.h) constructs any
// partitioner, Spinner included, behind the uniform GraphPartitioner
// interface. These free-standing entry points remain as thin shims for
// callers that manage graph state themselves.
#ifndef SPINNER_SPINNER_PARTITIONER_H_
#define SPINNER_SPINNER_PARTITIONER_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"
#include "pregel/stats.h"
#include "spinner/config.h"
#include "spinner/metrics.h"
#include "spinner/observer.h"
#include "spinner/sharded_program.h"
#include "spinner/types.h"

namespace spinner {

/// Everything a run produces: the assignment plus quality metrics,
/// convergence curves and engine statistics (used by the adaptation
/// benches to measure time/message savings).
struct PartitionResult {
  /// Partition label per vertex, all in [0, num_partitions).
  std::vector<PartitionId> assignment;
  /// k of this run.
  int num_partitions = 0;
  /// LPA iterations executed.
  int iterations = 0;
  /// True iff halted by the score-convergence criterion (not the cap).
  bool converged = false;
  /// True iff stopped early by a ProgressObserver or cancellation token;
  /// the assignment is still complete and valid, just less optimized.
  bool cancelled = false;
  /// Final quality (computed on the converted graph).
  PartitionMetrics metrics;
  /// Per-iteration evolution (Fig. 4 curves); empty if record_history off.
  std::vector<IterationPoint> history;
  /// Engine statistics: supersteps, wall time, messages.
  pregel::RunStats run_stats;
  /// Wire traffic of the cross-process execution mode (zeros when the run
  /// stayed in-process).
  WireTraffic wire;
  /// Work-stealing claim counters of the in-process sharded substrate
  /// (zeros for the Pregel engine and cross-process modes).
  ScheduleStats schedule;
};

/// Stateless facade; safe to reuse and — observer mutation aside — to
/// share across threads.
class SpinnerPartitioner {
 public:
  explicit SpinnerPartitioner(const SpinnerConfig& config);

  /// Partitions a converted (symmetric, weighted) graph from scratch.
  Result<PartitionResult> Partition(const CsrGraph& converted) const;

  /// Partitions a raw directed edge list from scratch: deduplicates edges,
  /// then either converts offline or — when config.in_engine_conversion is
  /// set — runs the NeighborPropagation/NeighborDiscovery supersteps
  /// in-engine exactly like the Giraph implementation.
  Result<PartitionResult> PartitionDirected(int64_t num_vertices,
                                            const EdgeList& directed) const;

  /// Incremental adaptation (§III.D): restarts label propagation from
  /// `previous` on a changed graph. `previous` may cover fewer vertices
  /// than the graph; new vertices join the least-loaded partition. Every
  /// vertex participates in migration (the paper's chosen strategy).
  Result<PartitionResult> Repartition(
      const CsrGraph& new_converted,
      std::span<const PartitionId> previous) const;

  /// Elastic adaptation (§III.E) to `new_num_partitions` partitions:
  /// applies the probabilistic expand/shrink re-labeling, then restarts
  /// label propagation. new_num_partitions may be larger or smaller than
  /// config.num_partitions (which is the previous k).
  Result<PartitionResult> Rescale(const CsrGraph& converted,
                                  std::span<const PartitionId> previous,
                                  int new_num_partitions) const;

  /// The configuration this partitioner runs with.
  const SpinnerConfig& config() const { return config_; }

  /// Installs a per-iteration progress observer used by every subsequent
  /// run (see spinner/observer.h). Pass {} to clear. Setting the observer
  /// is not thread-safe with respect to in-flight runs.
  void set_progress_observer(ProgressObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  /// Dispatches to the right substrate: pre-converted graphs run
  /// shard-parallel over a ShardedGraphStore (spinner/sharded_program.h);
  /// in-engine conversion runs on the Pregel engine via RunOnEngine.
  Result<PartitionResult> RunOnGraph(const CsrGraph& engine_graph,
                                     const CsrGraph& converted,
                                     std::vector<PartitionId> initial_labels,
                                     int k, bool with_conversion) const;

  /// The Pregel-engine substrate (conversion supersteps included).
  Result<PartitionResult> RunOnEngine(
      const CsrGraph& engine_graph, std::vector<PartitionId> initial_labels,
      const SpinnerConfig& run_config) const;

  SpinnerConfig config_;
  ProgressObserver observer_;
};

}  // namespace spinner

#endif  // SPINNER_SPINNER_PARTITIONER_H_
