// Empirical checks of the paper's convergence analysis (§III.C and
// Appendix A):
//
//  * Proposition 1 — under B-connectivity, the load vector x_t converges
//    exponentially fast to the even balancing x* = [C..C]. We measure the
//    imbalance trajectory ‖x_t − x*‖∞/‖x_0‖∞ and fit the exponential decay
//    rate μ on its decreasing prefix.
//  * Proposition 2 — bounded-time convergence: witnessed by the halting
//    iteration itself.
//  * Proposition 3 — the probability that a partition overshoots its
//    capacity in one iteration is exponentially small. We count observed
//    (iteration, partition) capacity violations and their worst ratio.
//
// Inputs come from PartitionResult::history (per-iteration load vectors).
#ifndef SPINNER_SPINNER_THEORY_H_
#define SPINNER_SPINNER_THEORY_H_

#include <cstdint>
#include <vector>

#include "spinner/types.h"

namespace spinner::theory {

/// ‖x_t − x*‖∞ / ‖x_0‖∞ per iteration, where x* is the even balancing
/// (total/k per partition). Empty input → empty output.
std::vector<double> ImbalanceTrajectory(
    const std::vector<IterationPoint>& history);

/// Least-squares fit of log(y_t) = log(q) + t·log(μ) over the strictly
/// positive prefix of `trajectory` (stops at the first zero). Returns the
/// per-iteration decay factor μ ∈ (0, 1] — smaller is faster; returns 1.0
/// when fewer than 2 usable points exist.
double FitDecayRate(const std::vector<double>& trajectory);

/// Capacity-violation summary for Proposition 3.
struct ViolationStats {
  /// (iteration, partition) pairs checked.
  int64_t observations = 0;
  /// Pairs with b(l) > C_l = c·total/k.
  int64_t violations = 0;
  /// max_l,t b_t(l)/C_l (1.0 when never exceeded and loads touch C).
  double worst_ratio = 0.0;

  double ViolationRate() const {
    return observations == 0
               ? 0.0
               : static_cast<double>(violations) /
                     static_cast<double>(observations);
  }
};

/// Counts how often per-iteration loads exceeded the capacity c·total/k.
/// The paper's bound says this should be rare and small (§IV.A.3).
ViolationStats CountCapacityViolations(
    const std::vector<IterationPoint>& history, double c);

}  // namespace spinner::theory

#endif  // SPINNER_SPINNER_THEORY_H_
