#include "spinner/spinner_graph_partitioner.h"

#include <memory>
#include <utility>

#include "baselines/partitioner_registry.h"

namespace spinner {

namespace {

SpinnerConfig WithK(SpinnerConfig config, int k) {
  config.num_partitions = k;
  return config;
}

}  // namespace

Result<std::vector<PartitionId>> SpinnerGraphPartitioner::Partition(
    const CsrGraph& converted, int k) const {
  SpinnerPartitioner partitioner(WithK(config_, k));
  SPINNER_ASSIGN_OR_RETURN(PartitionResult result,
                           partitioner.Partition(converted));
  return std::move(result.assignment);
}

Result<std::vector<PartitionId>> SpinnerGraphPartitioner::Repartition(
    const CsrGraph& converted, int k,
    std::span<const PartitionId> previous) const {
  SpinnerPartitioner partitioner(WithK(config_, k));
  SPINNER_ASSIGN_OR_RETURN(PartitionResult result,
                           partitioner.Repartition(converted, previous));
  return std::move(result.assignment);
}

Result<std::vector<PartitionId>> SpinnerGraphPartitioner::Rescale(
    const CsrGraph& converted, std::span<const PartitionId> previous,
    int old_k, int new_k) const {
  // SpinnerPartitioner::Rescale reads the previous k from its config.
  SpinnerPartitioner partitioner(WithK(config_, old_k));
  SPINNER_ASSIGN_OR_RETURN(
      PartitionResult result,
      partitioner.Rescale(converted, previous, new_k));
  return std::move(result.assignment);
}

bool RegisterSpinnerGraphPartitioner() {
  return PartitionerRegistry::Register(
      "spinner",
      [](const PartitionerOptions& options)
          -> Result<std::unique_ptr<GraphPartitioner>> {
        SpinnerConfig config = options.spinner;
        // The sweep-level seed wins unless the caller diverged the
        // spinner config's seed explicitly; same rule for the
        // execution-shape knobs.
        if (config.seed == SpinnerConfig{}.seed) config.seed = options.seed;
        if (options.num_shards > 0) config.num_shards = options.num_shards;
        if (options.num_threads > 0) {
          config.num_threads = options.num_threads;
        }
        if (options.num_processes > 0) {
          config.num_processes = options.num_processes;
        }
        if (options.wire_max_payload != 0) {
          config.wire_max_payload = options.wire_max_payload;
        }
        // The sweep-level execution options win field-wise over whatever
        // the spinner config (or the deprecated flat knobs above, already
        // folded into it) carries.
        config.execution =
            MergedExecution(options.execution, config.ResolvedExecution());
        return std::unique_ptr<GraphPartitioner>(
            std::make_unique<SpinnerGraphPartitioner>(config));
      });
}

}  // namespace spinner
