#include "spinner/theory.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace spinner::theory {

std::vector<double> ImbalanceTrajectory(
    const std::vector<IterationPoint>& history) {
  std::vector<double> out;
  if (history.empty() || history.front().loads.empty()) return out;
  out.reserve(history.size());

  // ‖x_0‖∞ normalization, per Proposition 1's statement.
  double x0_norm = 0.0;
  for (int64_t l : history.front().loads) {
    x0_norm = std::max(x0_norm, std::abs(static_cast<double>(l)));
  }
  if (x0_norm == 0.0) x0_norm = 1.0;

  for (const IterationPoint& pt : history) {
    const auto k = static_cast<double>(pt.loads.size());
    const double total = static_cast<double>(
        std::accumulate(pt.loads.begin(), pt.loads.end(), int64_t{0}));
    const double even = total / k;
    double deviation = 0.0;
    for (int64_t l : pt.loads) {
      deviation =
          std::max(deviation, std::abs(static_cast<double>(l) - even));
    }
    out.push_back(deviation / x0_norm);
  }
  return out;
}

double FitDecayRate(const std::vector<double>& trajectory) {
  // Collect (t, log y_t) for the decaying prefix: once the trajectory
  // bottoms out at the stochastic noise floor (2% of the initial value) or
  // hits zero, further points would bias the fit toward 1.
  std::vector<double> xs;
  std::vector<double> ys;
  const double floor_value =
      trajectory.empty() ? 0.0 : 0.02 * trajectory.front();
  for (size_t t = 0; t < trajectory.size(); ++t) {
    if (trajectory[t] <= 0.0) break;
    xs.push_back(static_cast<double>(t));
    ys.push_back(std::log(trajectory[t]));
    if (t > 0 && trajectory[t] <= floor_value) break;
  }
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) return 1.0;

  const double sx = std::accumulate(xs.begin(), xs.end(), 0.0);
  const double sy = std::accumulate(ys.begin(), ys.end(), 0.0);
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 1.0;
  const double slope = (n * sxy - sx * sy) / denom;
  return std::min(1.0, std::exp(slope));
}

ViolationStats CountCapacityViolations(
    const std::vector<IterationPoint>& history, double c) {
  ViolationStats stats;
  for (const IterationPoint& pt : history) {
    if (pt.loads.empty()) continue;
    const double total = static_cast<double>(
        std::accumulate(pt.loads.begin(), pt.loads.end(), int64_t{0}));
    const double capacity =
        c * total / static_cast<double>(pt.loads.size());
    if (capacity <= 0.0) continue;
    for (int64_t load : pt.loads) {
      ++stats.observations;
      const double ratio = static_cast<double>(load) / capacity;
      stats.worst_ratio = std::max(stats.worst_ratio, ratio);
      if (ratio > 1.0) ++stats.violations;
    }
  }
  return stats;
}

}  // namespace spinner::theory
