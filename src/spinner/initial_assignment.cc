#include "spinner/initial_assignment.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace spinner {

namespace {

constexpr uint64_t kScratchDomain = 0x5343'5241'5443'4800ULL;
constexpr uint64_t kElasticDomain = 0x454c'4153'5449'4300ULL;

Status ValidateLabels(std::span<const PartitionId> labels, int k) {
  for (size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] < 0 || labels[v] >= k) {
      return Status::InvalidArgument(
          StrFormat("vertex %zu has label %d outside [0,%d)", v, labels[v],
                    k));
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<PartitionId> RandomAssignment(int64_t num_vertices, int k,
                                          uint64_t seed) {
  SPINNER_CHECK(k >= 1);
  std::vector<PartitionId> labels(num_vertices);
  for (int64_t v = 0; v < num_vertices; ++v) {
    labels[v] = static_cast<PartitionId>(
        HashUniform(HashCombine(seed, kScratchDomain,
                                static_cast<uint64_t>(v)),
                    static_cast<uint64_t>(k)));
  }
  return labels;
}

Result<std::vector<PartitionId>> ExtendForNewVertices(
    const CsrGraph& new_graph, std::span<const PartitionId> previous, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const int64_t n = new_graph.NumVertices();
  if (static_cast<int64_t>(previous.size()) > n) {
    return Status::InvalidArgument(StrFormat(
        "previous assignment covers %zu vertices but graph has %lld",
        previous.size(), static_cast<long long>(n)));
  }
  SPINNER_RETURN_IF_ERROR(ValidateLabels(previous, k));

  std::vector<PartitionId> labels(n, kNoPartition);
  std::vector<int64_t> loads(k, 0);
  for (size_t v = 0; v < previous.size(); ++v) {
    labels[v] = previous[v];
    loads[previous[v]] += new_graph.WeightedDegree(static_cast<VertexId>(v));
  }
  for (int64_t v = static_cast<int64_t>(previous.size()); v < n; ++v) {
    // "we initially assign them to the least loaded partition" (§III.D).
    const auto least = static_cast<PartitionId>(
        std::min_element(loads.begin(), loads.end()) - loads.begin());
    labels[v] = least;
    loads[least] += new_graph.WeightedDegree(v);
  }
  return labels;
}

Result<std::vector<PartitionId>> ElasticExpand(
    std::span<const PartitionId> previous, int old_k, int new_k,
    uint64_t seed) {
  if (old_k < 1 || new_k <= old_k) {
    return Status::InvalidArgument(
        StrFormat("ElasticExpand requires new_k (%d) > old_k (%d) >= 1",
                  new_k, old_k));
  }
  SPINNER_RETURN_IF_ERROR(ValidateLabels(previous, old_k));

  const int added = new_k - old_k;
  const double p =
      static_cast<double>(added) / static_cast<double>(old_k + added);
  std::vector<PartitionId> labels(previous.begin(), previous.end());
  for (size_t v = 0; v < labels.size(); ++v) {
    const uint64_t key =
        HashCombine(seed, kElasticDomain, static_cast<uint64_t>(v));
    if (HashUniformDouble(key) < p) {
      // Uniform choice among the added partitions (Eq. 11 neighborhood).
      labels[v] = static_cast<PartitionId>(
          old_k + HashUniform(SplitMix64(key ^ 0xADDEDULL),
                              static_cast<uint64_t>(added)));
    }
  }
  return labels;
}

Result<std::vector<PartitionId>> ElasticShrink(
    std::span<const PartitionId> previous, int old_k, int new_k,
    uint64_t seed) {
  if (new_k < 1 || new_k >= old_k) {
    return Status::InvalidArgument(
        StrFormat("ElasticShrink requires 1 <= new_k (%d) < old_k (%d)",
                  new_k, old_k));
  }
  SPINNER_RETURN_IF_ERROR(ValidateLabels(previous, old_k));

  std::vector<PartitionId> labels(previous.begin(), previous.end());
  for (size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] < new_k) continue;  // surviving partition: stay
    const uint64_t key =
        HashCombine(seed, kElasticDomain ^ 0x5368ULL,
                    static_cast<uint64_t>(v));
    labels[v] = static_cast<PartitionId>(
        HashUniform(key, static_cast<uint64_t>(new_k)));
  }
  return labels;
}

}  // namespace spinner
