#include "spinner/metrics.h"

#include <algorithm>

#include "common/string_util.h"

namespace spinner {

namespace {

Status ValidateAssignment(const CsrGraph& graph,
                          std::span<const PartitionId> assignment, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (static_cast<int64_t>(assignment.size()) != graph.NumVertices()) {
    return Status::InvalidArgument(StrFormat(
        "assignment size %zu != vertex count %lld", assignment.size(),
        static_cast<long long>(graph.NumVertices())));
  }
  for (size_t v = 0; v < assignment.size(); ++v) {
    if (assignment[v] < 0 || assignment[v] >= k) {
      return Status::InvalidArgument(StrFormat(
          "vertex %zu has label %d outside [0,%d)", v, assignment[v], k));
    }
  }
  return Status::OK();
}

}  // namespace

Result<PartitionMetrics> ComputeMetrics(
    const CsrGraph& converted, std::span<const PartitionId> assignment, int k,
    double c) {
  return ComputeMetricsEx(converted, assignment, k, c, BalanceSpec{});
}

Result<PartitionMetrics> ComputeMetricsEx(
    const CsrGraph& converted, std::span<const PartitionId> assignment, int k,
    double c, const BalanceSpec& spec) {
  SPINNER_RETURN_IF_ERROR(ValidateAssignment(converted, assignment, k));
  if (c <= 0) return Status::InvalidArgument("c must be > 0");
  if (!spec.partition_weights.empty()) {
    if (static_cast<int>(spec.partition_weights.size()) != k) {
      return Status::InvalidArgument(
          "partition_weights must have one entry per partition");
    }
    for (double w : spec.partition_weights) {
      if (w <= 0) {
        return Status::InvalidArgument("partition weights must be positive");
      }
    }
  }

  PartitionMetrics m;
  m.loads.assign(k, 0);
  m.total_weight = converted.TotalArcWeight();

  int64_t local_weight = 0;
  int64_t total_units = 0;
  double raw_score_locality = 0.0;
  const int64_t n = converted.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId lv = assignment[v];
    const int64_t deg_w = converted.WeightedDegree(v);
    const int64_t units =
        spec.mode == BalanceMode::kVertices ? 1 : deg_w;
    m.loads[lv] += units;
    total_units += units;
    if (deg_w == 0) continue;
    auto nbrs = converted.Neighbors(v);
    auto wts = converted.Weights(v);
    int64_t local_v = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (assignment[nbrs[i]] == lv) local_v += wts[i];
    }
    local_weight += local_v;
    raw_score_locality +=
        static_cast<double>(local_v) / static_cast<double>(deg_w);
  }

  m.cut_weight = m.total_weight - local_weight;
  m.phi = m.total_weight == 0
              ? 1.0
              : static_cast<double>(local_weight) /
                    static_cast<double>(m.total_weight);

  // ρ against each partition's own ideal share.
  double weight_sum = 0.0;
  for (double w : spec.partition_weights) weight_sum += w;
  auto share_of = [&](int l) {
    return spec.partition_weights.empty()
               ? 1.0 / static_cast<double>(k)
               : spec.partition_weights[l] / weight_sum;
  };
  double rho = 0.0;
  for (int l = 0; l < k; ++l) {
    const double ideal = static_cast<double>(total_units) * share_of(l);
    if (ideal > 0) {
      rho = std::max(rho, static_cast<double>(m.loads[l]) / ideal);
    }
  }
  m.rho = rho == 0.0 ? 1.0 : rho;

  // score(G) = Σ_v [locality(v) − b(α(v))/C_{α(v)}], normalized by |V|.
  double raw_penalty = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const int l = assignment[v];
    const double capacity =
        c * static_cast<double>(total_units) * share_of(l);
    if (capacity > 0) {
      raw_penalty += static_cast<double>(m.loads[l]) / capacity;
    }
  }
  m.score = n == 0 ? 0.0
                   : (raw_score_locality - raw_penalty) /
                         static_cast<double>(n);
  return m;
}

Result<std::vector<int64_t>> ComputeLoads(
    const CsrGraph& converted, std::span<const PartitionId> assignment,
    int k) {
  SPINNER_RETURN_IF_ERROR(ValidateAssignment(converted, assignment, k));
  std::vector<int64_t> loads(k, 0);
  for (VertexId v = 0; v < converted.NumVertices(); ++v) {
    loads[assignment[v]] += converted.WeightedDegree(v);
  }
  return loads;
}

Result<double> PartitioningDifference(std::span<const PartitionId> a,
                                      std::span<const PartitionId> b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(StrFormat(
        "assignment sizes differ: %zu vs %zu", a.size(), b.size()));
  }
  if (a.empty()) return 0.0;
  int64_t differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++differing;
  }
  return static_cast<double>(differing) / static_cast<double>(a.size());
}

}  // namespace spinner
