// Tunables of the Spinner algorithm. Defaults follow the paper's evaluation
// setup (§V.A): c = 1.05, ε = 0.001, w = 5.
#ifndef SPINNER_SPINNER_CONFIG_H_
#define SPINNER_SPINNER_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "spinner/execution_options.h"

namespace spinner {

/// What quantity partition loads count (paper §II.A: "although our
/// approach is general, here we will focus on balancing partitions on the
/// number of edges").
enum class BalanceMode {
  /// b(l) counts weighted degrees — message traffic (the paper's default).
  kEdges,
  /// b(l) counts vertices — the objective of vertex-store systems
  /// (the paper's Wang-et-al. comparison row balances this way).
  kVertices,
};

/// Options struct (RocksDB idiom) controlling a partitioning run.
struct SpinnerConfig {
  /// k: the number of partitions to compute.
  int num_partitions = 32;

  /// What the capacity constraint counts (edges by default).
  BalanceMode balance_mode = BalanceMode::kEdges;

  /// Heterogeneous capacities (paper §III.B considers homogeneous systems
  /// "often preferred"; this generalizes to mixed clusters). When
  /// non-empty it must have one positive weight per partition; partition
  /// l's capacity becomes C_l = c·|E|·w_l/Σw. Empty = homogeneous.
  std::vector<double> partition_weights;

  /// c > 1: additional capacity factor. Capacity per partition is
  /// C = c·|E|/k (Eq. 5). Larger c converges faster but allows more
  /// unbalance; with high probability the final ρ ≤ c (§V.A.1).
  double additional_capacity = 1.05;

  /// ε: halting threshold — halt when the normalized global score improves
  /// by less than ε for `halt_window` consecutive iterations (§III.C).
  double halt_epsilon = 0.001;

  /// w: number of consecutive low-improvement iterations required to halt.
  int halt_window = 5;

  /// Hard cap on LPA iterations (one iteration = ComputeScores +
  /// ComputeMigrations). A safety net, not the normal exit.
  int max_iterations = 1000;

  /// Seed for all stochastic decisions; runs are deterministic in it.
  uint64_t seed = 42;

  /// Execution shape and endpoints (spinner/execution_options.h): shard /
  /// thread / worker-process counts, the wire payload ceiling, and the
  /// TCP endpoint configuration. Pure parallelism knobs: results are
  /// bit-identical for every choice. Explicitly-set fields here win over
  /// the deprecated flat fields below (ResolvedExecution()).
  ExecutionOptions execution = {};

  /// Pregel workers to simulate (0 = one per hardware thread). This is the
  /// machine count of the simulated cluster; it affects the per-worker
  /// asynchronous optimization but not correctness. Only meaningful for
  /// the Pregel-engine substrate (in_engine_conversion runs and the app
  /// suite); the sharded substrate maps it to the shard count when
  /// num_shards is 0. (Not an ExecutionOptions field: it is algorithmic
  /// input to the simulated-cluster substrate, not an execution shape.)
  int num_workers = 0;

  /// DEPRECATED — use execution.num_shards. Shards of the
  /// ShardedGraphStore the shard-parallel substrate runs over (0 =
  /// num_workers when set, else one shard per hardware thread capped by
  /// the vertex-block count).
  int num_shards = 0;

  /// DEPRECATED — use execution.num_threads. OS threads
  /// (0 = min(num_workers-or-num_shards, hardware)).
  int num_threads = 0;

  /// DEPRECATED — use execution.num_workers with execution.mode =
  /// kMultiProcess. Worker *processes* for the cross-process execution
  /// mode (src/dist): 0 runs in-process on a ThreadPool; > 0 forks that
  /// many ShardWorker processes speaking the dist wire protocol.
  int num_processes = 0;

  /// DEPRECATED — use execution.wire_max_payload. Per-frame payload
  /// ceiling (bytes) of the cross-process wire transport; messages larger
  /// than this stream across chunk frames. 0 = the transport default
  /// (SPINNER_WIRE_MAX_PAYLOAD env override, or 1 GiB — see
  /// dist/transport.h TransportOptions). Minimum 64.
  uint64_t wire_max_payload = 0;

  /// When true, the directed→weighted-undirected conversion runs inside the
  /// engine as the NeighborPropagation/NeighborDiscovery supersteps
  /// (§IV.A.1), exactly as the Giraph implementation does. When false the
  /// caller passes an already-converted graph.
  bool in_engine_conversion = false;

  /// §IV.A.4: per-worker asynchronous load counters. Disable to ablate
  /// (the bench_ablation target measures the convergence cost).
  bool per_worker_async = true;

  /// Record per-iteration φ/ρ/score history (needed for Fig. 4 curves;
  /// small overhead, on by default).
  bool record_history = true;

  /// When false, ignore the halting heuristic and run exactly
  /// max_iterations iterations (paper Fig. 4 runs 115 iterations this way).
  bool use_halting = true;

  /// Checks the configuration for internal consistency: k ≥ 1, c > 1
  /// (Eq. 5 needs spare capacity), ε ≥ 0, halt_window ≥ 1,
  /// max_iterations ≥ 1, and — when partition_weights is non-empty — one
  /// strictly positive weight per partition. Called by the partitioner
  /// before every run and by PartitioningSession at construction.
  Status Validate() const;

  /// The effective execution shape: `execution` with every unset field
  /// filled from the deprecated flat fields (num_shards / num_threads /
  /// num_processes / wire_max_payload; num_processes > 0 implies
  /// kMultiProcess when no mode was set explicitly). All execution-shape
  /// consumers read this, never the flat fields directly.
  ExecutionOptions ResolvedExecution() const;
};

}  // namespace spinner

#endif  // SPINNER_SPINNER_CONFIG_H_
