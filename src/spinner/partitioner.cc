#include "spinner/partitioner.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "common/threadpool.h"
#include "dist/coordinator.h"
#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/sharded_store.h"
#include "pregel/topology.h"
#include "spinner/initial_assignment.h"
#include "spinner/program.h"
#include "spinner/sharded_program.h"

namespace spinner {

SpinnerPartitioner::SpinnerPartitioner(const SpinnerConfig& config)
    : config_(config) {}

Result<PartitionResult> SpinnerPartitioner::Partition(
    const CsrGraph& converted) const {
  std::vector<PartitionId> no_labels(converted.NumVertices(), kNoPartition);
  return RunOnGraph(converted, converted, std::move(no_labels),
                    config_.num_partitions, /*with_conversion=*/false);
}

Result<PartitionResult> SpinnerPartitioner::PartitionDirected(
    int64_t num_vertices, const EdgeList& directed) const {
  EdgeList dedup = directed;
  RemoveSelfLoops(&dedup);
  SortAndDedup(&dedup);
  SPINNER_ASSIGN_OR_RETURN(CsrGraph converted,
                           ConvertToWeightedUndirected(num_vertices, dedup));
  std::vector<PartitionId> no_labels(num_vertices, kNoPartition);
  if (config_.in_engine_conversion) {
    SPINNER_ASSIGN_OR_RETURN(CsrGraph raw_directed,
                             CsrGraph::FromEdges(num_vertices, dedup));
    return RunOnGraph(raw_directed, converted, std::move(no_labels),
                      config_.num_partitions, /*with_conversion=*/true);
  }
  return RunOnGraph(converted, converted, std::move(no_labels),
                    config_.num_partitions, /*with_conversion=*/false);
}

Result<PartitionResult> SpinnerPartitioner::Repartition(
    const CsrGraph& new_converted,
    std::span<const PartitionId> previous) const {
  SPINNER_ASSIGN_OR_RETURN(
      std::vector<PartitionId> initial,
      ExtendForNewVertices(new_converted, previous, config_.num_partitions));
  return RunOnGraph(new_converted, new_converted, std::move(initial),
                    config_.num_partitions, /*with_conversion=*/false);
}

Result<PartitionResult> SpinnerPartitioner::Rescale(
    const CsrGraph& converted, std::span<const PartitionId> previous,
    int new_num_partitions) const {
  if (static_cast<int64_t>(previous.size()) != converted.NumVertices()) {
    return Status::InvalidArgument(
        "previous assignment must cover every vertex");
  }
  const int old_k = config_.num_partitions;
  std::vector<PartitionId> initial;
  if (new_num_partitions > old_k) {
    SPINNER_ASSIGN_OR_RETURN(
        initial, ElasticExpand(previous, old_k, new_num_partitions,
                               config_.seed));
  } else if (new_num_partitions < old_k) {
    SPINNER_ASSIGN_OR_RETURN(
        initial, ElasticShrink(previous, old_k, new_num_partitions,
                               config_.seed));
  } else {
    initial.assign(previous.begin(), previous.end());
  }
  return RunOnGraph(converted, converted, std::move(initial),
                    new_num_partitions, /*with_conversion=*/false);
}

Result<PartitionResult> SpinnerPartitioner::RunOnGraph(
    const CsrGraph& engine_graph, const CsrGraph& converted,
    std::vector<PartitionId> initial_labels, int k,
    bool with_conversion) const {
  SpinnerConfig run_config = config_;
  run_config.num_partitions = k;
  SPINNER_RETURN_IF_ERROR(run_config.Validate());
  // Fold the nested execution options into the deprecated flat fields the
  // downstream resolvers (ResolveNumShards/ResolveNumThreads) still read.
  const ExecutionOptions execution = run_config.ResolvedExecution();
  if (execution.num_shards > 0) run_config.num_shards = execution.num_shards;
  if (execution.num_threads > 0) {
    run_config.num_threads = execution.num_threads;
  }
  if (execution.wire_max_payload != 0) {
    run_config.wire_max_payload = execution.wire_max_payload;
  }
  if (engine_graph.NumVertices() == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }

  PartitionResult result;
  result.num_partitions = k;
  if (with_conversion) {
    // In-engine conversion needs message-driven NeighborDiscovery
    // (§IV.A.1): run on the Pregel BSP substrate.
    SPINNER_ASSIGN_OR_RETURN(
        result, RunOnEngine(engine_graph, std::move(initial_labels),
                            run_config));
  } else {
    // Pre-converted graphs run shard-parallel over a ShardedGraphStore;
    // shard/thread/process counts never change the result, so a throwaway
    // single-run store is equivalent to a session's persistent one.
    SPINNER_ASSIGN_OR_RETURN(
        ShardedGraphStore store,
        ShardedGraphStore::Build(
            engine_graph,
            ResolveNumShards(run_config, engine_graph.NumVertices())));
    ShardedRunResult run;
    if (execution.mode != ExecutionMode::kInProcess) {
      // Off-thread execution: shards live in ShardWorker processes
      // speaking the dist wire protocol — forked over socketpairs
      // (kMultiProcess) or dialing in over TCP (kTcp).
      dist::MultiProcessOptions mp;
      mp.num_workers = execution.num_workers > 0 ? execution.num_workers
                                                 : run_config.num_processes;
      mp.transport =
          dist::TransportOptions::Resolve(execution.wire_max_payload);
      mp.worker_store_dir = execution.worker_store_dir;
      mp.rpc_timeout_ms = execution.rpc_timeout_ms;
      mp.heartbeat_period_ms = execution.heartbeat_period_ms;
      mp.max_recovery_attempts = execution.max_recovery_attempts;
      std::unique_ptr<dist::WorkerRegistry> registry;
      if (execution.mode == ExecutionMode::kTcp) {
        // One-shot run: bind a throwaway registry and wait for dial-ins.
        dist::RegistryOptions registry_options;
        if (!execution.listen_address.empty()) {
          registry_options.listen_address = execution.listen_address;
        }
        registry_options.handshake_timeout_ms =
            execution.handshake_timeout_ms;
        SPINNER_ASSIGN_OR_RETURN(registry,
                                 dist::WorkerRegistry::Listen(
                                     registry_options));
        mp.worker_transport = registry.get();
      }
      SPINNER_ASSIGN_OR_RETURN(
          run, dist::RunMultiProcessSpinner(
                   run_config, &store, std::move(initial_labels), mp,
                   observer_.active() ? &observer_ : nullptr));
    } else {
      ThreadPool pool(ResolveNumThreads(run_config, store.num_shards()));
      SPINNER_ASSIGN_OR_RETURN(
          run,
          RunShardedSpinner(run_config, &store, std::move(initial_labels),
                            &pool,
                            observer_.active() ? &observer_ : nullptr));
    }
    result.iterations = run.iterations;
    result.converged = run.converged;
    result.cancelled = run.cancelled;
    result.history = std::move(run.history);
    result.run_stats = std::move(run.run_stats);
    result.wire = std::move(run.wire);
    result.schedule = run.schedule;
    result.assignment = std::move(store.labels());
  }
  result.num_partitions = k;

  BalanceSpec spec;
  spec.mode = run_config.balance_mode;
  spec.partition_weights = run_config.partition_weights;
  SPINNER_ASSIGN_OR_RETURN(
      result.metrics,
      ComputeMetricsEx(converted, result.assignment, k,
                       run_config.additional_capacity, spec));
  return result;
}

Result<PartitionResult> SpinnerPartitioner::RunOnEngine(
    const CsrGraph& engine_graph, std::vector<PartitionId> initial_labels,
    const SpinnerConfig& run_config) const {
  pregel::EngineConfig engine_config;
  // Worker-count fallback order: explicit workers, then the sharding
  // knobs (so --shards/--threads mean the same thing on both substrates),
  // then one worker per hardware thread.
  engine_config.num_workers =
      run_config.num_workers > 0   ? run_config.num_workers
      : run_config.num_shards > 0  ? run_config.num_shards
      : run_config.num_threads > 0
          ? run_config.num_threads
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  engine_config.num_threads = run_config.num_threads;
  // Phase supersteps: 2 conversion + 1 init + 2 per iteration (+ slack).
  engine_config.max_supersteps =
      3 + 2 * static_cast<int64_t>(run_config.max_iterations) + 4;

  SpinnerEngine engine(
      engine_graph, engine_config,
      pregel::HashPlacement(engine_config.num_workers),
      [](VertexId) { return SpinnerVertexValue{}; },
      [](VertexId, VertexId, EdgeWeight w) {
        return SpinnerEdgeValue{w, kNoPartition};
      });

  SpinnerProgram program(run_config, std::move(initial_labels),
                         /*start_with_conversion=*/true);
  if (observer_.active()) program.set_observer(&observer_);
  pregel::RunStats run_stats = engine.Run(program);

  PartitionResult result;
  result.num_partitions = run_config.num_partitions;
  result.iterations = program.iterations();
  result.converged = program.converged();
  result.cancelled = program.cancelled();
  result.history = program.history();
  result.run_stats = std::move(run_stats);
  result.assignment.resize(engine_graph.NumVertices());
  engine.ForEachVertex([&result](VertexId v, const SpinnerVertexValue& val) {
    result.assignment[v] = val.label;
  });
  return result;
}

}  // namespace spinner
