// The shard-parallel execution of Spinner's iteration loop: the same
// superstep phases as SpinnerProgram (Initialize ─► ComputeScores ─►
// ComputeMigrations, §IV.A.2–4), run directly over a ShardedGraphStore on
// a ThreadPool instead of through the Pregel engine. Each phase is dealt
// out block-by-block through a work-stealing scheduler
// (spinner/steal_schedule.h), so skewed shards never serialize a
// superstep; between supersteps the driver merges per-shard
// partition-load deltas and migration counters in fixed shard order and
// evaluates the master logic (halting §III.C, observer callbacks).
//
// Determinism: results are bit-identical for any shard count S (S = 1
// included) and any thread count, because
//  * label scores are computed against a frozen previous-superstep label
//    and load snapshot — the asynchronous §IV.A.4 view is applied at
//    fixed-size vertex-block granularity (ShardedGraphStore::kBlockSize),
//    which is independent of S;
//  * the global score is reduced block-wise in fixed block order, so the
//    floating-point sum never depends on S or scheduling;
//  * all integer counters (loads, migration counts) merge in fixed shard
//    order, and all randomness is hash-derived per (seed, superstep,
//    vertex) through the shared lpa kernel.
//
// This is the execution path behind SpinnerPartitioner and
// PartitioningSession for pre-converted graphs; the Pregel engine remains
// the substrate for in-engine conversion runs (§IV.A.1) and the Pregel
// app suite.
#ifndef SPINNER_SPINNER_SHARDED_PROGRAM_H_
#define SPINNER_SPINNER_SHARDED_PROGRAM_H_

#include <vector>

#include "common/result.h"
#include "common/threadpool.h"
#include "graph/sharded_store.h"
#include "graph/types.h"
#include "pregel/stats.h"
#include "spinner/config.h"
#include "spinner/observer.h"
#include "spinner/types.h"

namespace spinner {

/// Wire traffic of one run, reported by message-passing backends (the
/// cross-process coordinator); all zeros for in-process runs, whose label
/// exchange is shared memory. The per-superstep bytes make the
/// O(V·workers) → O(boundary) label-traffic win observable: after Init,
/// each superstep's label bytes cover only subscribed (edge-cut) vertices.
struct WireTraffic {
  /// Total bytes/frames moved over every worker connection, including
  /// Setup/Subscribe/Snapshot/Teardown outside the superstep loop.
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  /// Messages that crossed the wire in more than one chunk frame.
  int64_t chunked_messages = 0;
  /// Σ over workers of the subscribed (boundary mirror) vertex count.
  int64_t subscribed_vertices = 0;
  /// Label values sent by the one post-Init mirror seed (Σ subscription
  /// sizes) and label-delta entries sent by all per-iteration
  /// subscription-filtered broadcasts.
  int64_t label_values_sent = 0;
  int64_t delta_entries_sent = 0;
  /// Shard slice download accounting of the Assign/Resume handshake:
  /// slices actually sent in Setup (and their encoded bytes) vs. slices
  /// the workers already hosted with a matching fingerprint. A warm
  /// restart shows slices_resumed == num_shards and zero download.
  int64_t slices_downloaded = 0;
  int64_t slice_bytes_downloaded = 0;
  int64_t slices_resumed = 0;
  /// Failure-recovery accounting: superstep phases retried after a worker
  /// failure (each retry rebuilt the fleet, replayed the checkpointed
  /// label state, and re-ran the phase — results stay bit-identical), and
  /// endpoints newly acquired during those rebuilds. Zero on a
  /// failure-free run or when execution.max_recovery_attempts == 0.
  int64_t recoveries = 0;
  int64_t workers_replaced = 0;
  /// Bytes sent to workers during each driver superstep, in the order of
  /// run_stats.per_superstep (Initialize, then Scores/Migrate rounds).
  std::vector<int64_t> per_superstep_bytes;
};

/// Claim accounting of the in-process work-stealing scheduler
/// (spinner/steal_schedule.h): every superstep phase is dealt out as
/// kBlockSize vertex blocks, and blocks a worker claimed from a shard it
/// does not primarily own count as stolen. All zeros for backends that
/// schedule differently (the cross-process coordinator). Observability
/// only — the schedule never affects results.
struct ScheduleStats {
  /// Blocks claimed across all phases of the run.
  int64_t tasks = 0;
  /// Blocks claimed by a non-primary worker (load balancing in action).
  int64_t stolen_tasks = 0;
  /// Scheduled phases (Initialize + two per LPA iteration).
  int64_t phases = 0;
};

/// Outcome of a sharded run; the final assignment lives in the store's
/// label array.
struct ShardedRunResult {
  /// LPA iterations executed (ComputeScores supersteps).
  int iterations = 0;
  /// True iff halted via the score-convergence criterion (§III.C).
  bool converged = false;
  /// True iff stopped early by the observer or cancellation token.
  bool cancelled = false;
  /// Per-iteration φ/ρ/score curves (when config.record_history).
  std::vector<IterationPoint> history;
  /// Superstep statistics, mirroring the Pregel engine's layout with one
  /// "worker" per shard (message counts model label-update traffic).
  pregel::RunStats run_stats;
  /// Wire traffic of message-passing backends (zeros in-process).
  WireTraffic wire;
  /// Work-stealing claim counters of the in-process backend (zeros for
  /// backends with their own scheduling).
  ScheduleStats schedule;
};

/// The shard count a run should use: config.num_shards when set, else
/// config.num_workers (so existing worker-count knobs keep their meaning),
/// else one shard per hardware thread capped by the block count. The
/// choice never affects results, only parallelism granularity.
int ResolveNumShards(const SpinnerConfig& config, int64_t num_vertices);

/// The OS-thread count a run should use: config.num_threads when set, else
/// the hardware concurrency (capped by the graph's block count through
/// `num_shards`-independent stealing — more threads than shards is useful
/// now that workers steal blocks, so the shard count no longer caps the
/// thread count). Never affects results.
int ResolveNumThreads(const SpinnerConfig& config, int num_shards);

/// Runs Spinner label propagation shard-parallel over `store` on `pool`.
/// `initial_labels` follows SpinnerProgram's contract: one fixed label per
/// vertex for incremental/elastic restarts, kNoPartition entries (or a
/// shorter vector) draw a uniform random label at Initialize. On success
/// store->labels() holds the final assignment and every shard's load
/// counters are consistent with it. `observer` may be null.
Result<ShardedRunResult> RunShardedSpinner(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels, ThreadPool* pool,
    const ProgressObserver* observer);

}  // namespace spinner

#endif  // SPINNER_SPINNER_SHARDED_PROGRAM_H_
