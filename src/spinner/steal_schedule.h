// StealSchedule: the block-granular work-stealing scheduler behind the
// in-process superstep backend. Each phase exposes every shard as a run of
// kBlockSize vertex blocks; worker w drains the shards it primarily owns
// (s % num_workers == w), then steals blocks from the shard with the most
// left. Skewed shards therefore no longer serialize a superstep: the
// moment any worker runs dry it helps on the heaviest remainder.
//
// The scheduler is free to hand blocks out in any racy order — results
// stay bit-identical anyway, because the phase bodies write only
// block-owned state (spinner/shard_superstep.h), per-shard mutable state
// is merged by order-free integer sums, and float reductions happen in
// fixed block order from the shared per-block arrays. Determinism lives
// in the data layout, not the schedule.
#ifndef SPINNER_SPINNER_STEAL_SCHEDULE_H_
#define SPINNER_SPINNER_STEAL_SCHEDULE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace spinner {

class StealSchedule {
 public:
  /// Lifetime claim counters, for observability and the stealing-occurs
  /// tests: `tasks` counts every claimed block, `stolen` the ones claimed
  /// by a non-primary worker.
  struct Stats {
    int64_t tasks = 0;
    int64_t stolen = 0;
  };

  /// Arms one phase: shard s offers blocks_per_shard[s] blocks (indices
  /// [0, blocks_per_shard[s])) to `num_workers` ≥ 1 workers. Claim
  /// counters are NOT reset — they accumulate across phases.
  void ResetPhase(std::span<const int64_t> blocks_per_shard, int num_workers);

  /// Claims one block for `worker`: own shards first, then the shard with
  /// the most unclaimed blocks. Returns false when every block of the
  /// phase has been claimed; otherwise sets *shard, *block (the block's
  /// index within the shard) and *stolen (claimed from a non-owned
  /// shard). Thread-safe; any number of workers may claim concurrently.
  bool Claim(int worker, int* shard, int64_t* block, bool* stolen);

  Stats stats() const {
    return Stats{tasks_.load(std::memory_order_relaxed),
                 stolen_.load(std::memory_order_relaxed)};
  }

 private:
  /// One shard's claim cursor, cache-line-isolated so claims on different
  /// shards never false-share.
  struct alignas(64) Cursor {
    std::atomic<int64_t> next{0};
  };

  /// fetch_add-claims a block of shard s; -1 when the shard is drained.
  int64_t TryClaim(int s);

  std::vector<Cursor> cursors_;
  std::vector<int64_t> limits_;
  int num_workers_ = 1;
  std::atomic<int64_t> tasks_{0};
  std::atomic<int64_t> stolen_{0};
};

}  // namespace spinner

#endif  // SPINNER_SPINNER_STEAL_SCHEDULE_H_
