// The per-shard bodies of Spinner's three superstep phases (Initialize,
// ComputeScores, ComputeMigrations), factored out of the in-process loop so
// every execution substrate runs literally the same code over one
// ShardedGraphStore::Shard:
//  * in-process: the work-stealing scheduler claims fixed-size block
//    sub-ranges of every shard and runs the Blocks* bodies below
//    (spinner/sharded_program.cc);
//  * cross-process: each ShardWorker process calls the whole-shard
//    wrappers over the shard slices it downloaded from the coordinator
//    (dist/worker.cc).
// Bit-identical results across substrates follow by construction — the
// floating-point and hash-decision sequence per vertex is one function, not
// two copies that could drift. The whole-shard wrappers are literally a
// loop over the Blocks* bodies, so block-granular and shard-granular
// execution cannot diverge either.
//
// All functions take *global* views (the full label array, per-label score
// tables prepared from the frozen global loads) and touch only state owned
// by the processed block range: its slice of the labels/candidate arrays,
// its entries of the per-block score and candidate-count arrays, and the
// caller's scratch accumulators. Nothing here synchronizes; the caller
// owns phase barriers, merges, and — for block-granular execution — the
// application of scratch load deltas to the owning shard's counters.
#ifndef SPINNER_SPINNER_SHARD_SUPERSTEP_H_
#define SPINNER_SPINNER_SHARD_SUPERSTEP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/sharded_store.h"
#include "graph/types.h"
#include "spinner/config.h"

namespace spinner {

/// One vertex's label change, the unit of cross-shard label traffic: the
/// in-process path applies these through the shared label array, the wire
/// protocol ships them as per-superstep label deltas.
struct LabelDelta {
  VertexId vertex = 0;
  PartitionId label = kNoPartition;

  friend bool operator==(const LabelDelta&, const LabelDelta&) = default;
};

/// Per-executor scratch reused across supersteps, so steady-state
/// supersteps allocate nothing. One instance per shard (sequential
/// substrates) or per worker thread (the stealing scheduler) — every
/// accumulator merges by order-free integer addition, so the grouping
/// never affects results.
struct ShardScratch {
  /// Per-label neighbor weight frequencies + touched-label list, reset in
  /// O(labels touched) between vertices (sparse scan) or by a flat clear
  /// (dense scan).
  std::vector<int64_t> freq;
  std::vector<PartitionId> touched;
  /// Block-local asynchronous load view (§IV.A.4 at block granularity)
  /// and its penalty table, restored to the global snapshot
  /// (projected_base / penalty_base) at every block boundary via the
  /// dirty-label list — O(moves in block), not O(k), per boundary.
  std::vector<int64_t> projected;
  std::vector<double> penalty;
  std::vector<PartitionId> async_dirty;
  /// Snapshots of the frozen global loads this superstep scores against
  /// and of the capacities, for the incremental async-penalty updates.
  std::vector<int64_t> projected_base;
  std::vector<double> capacity;
  /// Penalty table of the frozen global loads (lpa::FillPenalties),
  /// prepared once per ComputeScores call by PrepareScoresScratch.
  std::vector<double> penalty_base;
  /// Dense-scan per-label score buffer (lpa::PickLabelDense).
  std::vector<double> score_buf;
  /// Per-label migration probability table (Eq. 12–14), prepared once per
  /// ComputeMigrations call by PrepareMigrateScratch.
  std::vector<double> migrate_p;
  /// Migration counter partials m_s(l) for the current iteration.
  std::vector<int64_t> migrations;
  /// Per-label load delta of the block ranges processed since the last
  /// reset — BlocksInitialize / BlocksComputeMigrations accumulate here
  /// instead of writing shard loads, so stolen blocks of one shard can
  /// run on many threads; the caller applies the delta to the owning
  /// shard under its own synchronization.
  std::vector<int64_t> load_delta;
  /// Σ freq[current] partial (φ numerator).
  int64_t local_weight = 0;
  /// Vertices this executor migrated in the current superstep.
  int64_t migrated = 0;
  /// Label-update messages this executor sent in the current superstep.
  int64_t messages = 0;

  /// Sizes the per-label vectors for `num_partitions` labels.
  void Prepare(int num_partitions);

  /// Zeroes load_delta / migrated / messages before a block-range batch.
  void ResetDelta() {
    std::fill(load_delta.begin(), load_delta.end(), 0);
    migrated = 0;
    messages = 0;
  }

  /// Zeroes the ComputeScores partials (migrations / local_weight /
  /// messages) before a block-range batch of that phase.
  void ResetScores() {
    std::fill(migrations.begin(), migrations.end(), 0);
    local_weight = 0;
    messages = 0;
  }
};

/// Prepares the score tables for one ComputeScores superstep: the
/// penalty_base table from the frozen global loads and the async view
/// (projected + penalty) seeded from it. Pure function of
/// (global_loads, capacities), so every executor computes identical
/// tables.
void PrepareScoresScratch(const SpinnerConfig& config,
                          const std::vector<int64_t>& global_loads,
                          const std::vector<double>& capacities,
                          ShardScratch* scratch);

/// Prepares the per-label migration probability table for one
/// ComputeMigrations superstep (Eq. 12–14 hoisted out of the vertex loop).
void PrepareMigrateScratch(const SpinnerConfig& config,
                           const std::vector<int64_t>& global_loads,
                           const std::vector<double>& capacities,
                           const std::vector<int64_t>& migration_counts,
                           ShardScratch* scratch);

/// The load contribution of a vertex under the configured balance mode.
inline int64_t LoadUnitsOf(const SpinnerConfig& config,
                           int64_t weighted_degree) {
  return config.balance_mode == BalanceMode::kVertices ? 1 : weighted_degree;
}

// --- Block-range phase bodies -------------------------------------------
//
// Each processes the owned vertices in [begin, end) ⊆ [shard.begin,
// shard.end), where `begin` is kBlockSize-aligned relative to the block
// grid (i.e. begin − index_base divisible by kBlockSize, or == shard.begin)
// and `end` is block-aligned or shard.end. Distinct ranges touch disjoint
// state, so any assignment of ranges to threads is race-free; all float
// state is per-block, so any assignment is also bit-identical.

/// Initialize for a block range: assigns every vertex its caller-fixed
/// restart label (entries < initial_labels.size() that are not
/// kNoPartition) or a hash-drawn uniform label, accumulating initial loads
/// into scratch->load_delta and the label-advertisement message count
/// (== range arc count) into scratch->messages.
///
/// `index_base`: the global vertex id that maps to index 0 of `labels` and
/// `initial_labels`. The in-process substrate passes full global arrays
/// (base 0); a ShardWorker passes arrays covering only its owned range
/// (base = first owned vertex), keeping worker memory O(owned + boundary).
/// Hash decisions always use the *global* id, so results are identical
/// for every base.
void BlocksInitialize(const SpinnerConfig& config,
                      const ShardedGraphStore::Shard& shard, VertexId begin,
                      VertexId end, std::span<PartitionId> labels,
                      std::span<const PartitionId> initial_labels,
                      ShardScratch* scratch, VertexId index_base = 0);

/// ComputeScores for a block range: for every vertex scores the
/// neighborhood labels (Eq. 8) against the prepared penalty tables — with
/// the §IV.A.4 asynchronous view applied at fixed vertex-block
/// granularity — and records the migration candidate in `candidate`
/// (kNoPartition = stay). Fills the range's entries of `block_score` (the
/// per-block score partials the driver reduces in fixed block order) and
/// `block_candidates` (the per-block candidate counts ComputeMigrations
/// uses to skip settled blocks), and accumulates the scratch's
/// migrations/local_weight partials. Requires PrepareScoresScratch for
/// this superstep's loads first.
///
/// `index_base` shifts the owned-vertex indices of `labels`, `candidate`,
/// `block_score` and `block_candidates` (block granularity) as in
/// BlocksInitialize. Neighbor labels are read at `labels[target]`
/// verbatim: a caller with a compact array remaps the shard's CSR targets
/// to local slots first (dist/worker.h RemapTargetsToSlots).
void BlocksComputeScores(const SpinnerConfig& config,
                         const ShardedGraphStore::Shard& shard,
                         VertexId begin, VertexId end,
                         std::span<const PartitionId> labels,
                         int64_t superstep, std::span<PartitionId> candidate,
                         std::span<double> block_score,
                         std::span<int32_t> block_candidates,
                         ShardScratch* scratch, VertexId index_base = 0);

/// ComputeMigrations for a block range: applies the probabilistic moves
/// (coin per (seed, superstep, vertex) against the prepared migrate_p
/// table) for every vertex with a candidate, updating the range's label
/// slice in place and accumulating load deltas into scratch->load_delta.
/// Blocks whose `block_candidates` entry is zero are skipped whole. When
/// `moves` is non-null, every applied move is appended in ascending vertex
/// order — the label deltas the wire protocol broadcasts. Accumulates
/// scratch->migrated / scratch->messages. Requires PrepareMigrateScratch
/// first. `index_base` as in BlocksComputeScores; `moves` always carry
/// *global* vertex ids regardless of the base.
void BlocksComputeMigrations(const SpinnerConfig& config,
                             const ShardedGraphStore::Shard& shard,
                             VertexId begin, VertexId end,
                             std::span<PartitionId> labels, int64_t superstep,
                             std::span<const PartitionId> candidate,
                             std::span<const int32_t> block_candidates,
                             std::vector<LabelDelta>* moves,
                             ShardScratch* scratch, VertexId index_base = 0);

// --- Whole-shard wrappers (sequential substrates: dist/worker.cc) -------

/// Superstep 0 for one shard: BlocksInitialize over the full shard, with
/// the load delta applied to the shard's own counters (reset to k first).
/// Returns the label-advertisement message count (== shard arc count).
int64_t ShardInitialize(const SpinnerConfig& config,
                        ShardedGraphStore::Shard* shard,
                        std::span<PartitionId> labels,
                        std::span<const PartitionId> initial_labels,
                        VertexId index_base = 0);

/// ComputeScores for one shard: PrepareScoresScratch +
/// BlocksComputeScores over the full shard.
void ShardComputeScores(const SpinnerConfig& config,
                        const ShardedGraphStore::Shard& shard,
                        std::span<const PartitionId> labels,
                        const std::vector<int64_t>& global_loads,
                        const std::vector<double>& capacities,
                        int64_t superstep, std::span<PartitionId> candidate,
                        std::span<double> block_score,
                        std::span<int32_t> block_candidates,
                        ShardScratch* scratch, VertexId index_base = 0);

/// ComputeMigrations for one shard: PrepareMigrateScratch +
/// BlocksComputeMigrations over the full shard, with the load delta
/// applied to the shard's own counters.
void ShardComputeMigrations(const SpinnerConfig& config,
                            ShardedGraphStore::Shard* shard,
                            std::span<PartitionId> labels,
                            const std::vector<int64_t>& global_loads,
                            const std::vector<double>& capacities,
                            const std::vector<int64_t>& migration_counts,
                            int64_t superstep,
                            std::span<const PartitionId> candidate,
                            std::span<const int32_t> block_candidates,
                            std::vector<LabelDelta>* moves,
                            ShardScratch* scratch, VertexId index_base = 0);

}  // namespace spinner

#endif  // SPINNER_SPINNER_SHARD_SUPERSTEP_H_
