// The per-shard bodies of Spinner's three superstep phases (Initialize,
// ComputeScores, ComputeMigrations), factored out of the in-process loop so
// every execution substrate runs literally the same code over one
// ShardedGraphStore::Shard:
//  * in-process: RunShardedSpinner submits one call per shard to a
//    ThreadPool (spinner/sharded_program.cc);
//  * cross-process: each ShardWorker process calls them over the shard
//    slices it downloaded from the coordinator (dist/worker.cc).
// Bit-identical results across substrates follow by construction — the
// floating-point and hash-decision sequence per vertex is one function, not
// two copies that could drift.
//
// All functions take *global* views (the full label array, global/frozen
// load vectors, capacities) and touch only shard-owned state: the shard's
// label slice, its load counters and its blocks of the per-block score
// array. Nothing here synchronizes; the caller owns phase barriers and
// merges.
#ifndef SPINNER_SPINNER_SHARD_SUPERSTEP_H_
#define SPINNER_SPINNER_SHARD_SUPERSTEP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/sharded_store.h"
#include "graph/types.h"
#include "spinner/config.h"

namespace spinner {

/// One vertex's label change, the unit of cross-shard label traffic: the
/// in-process path applies these through the shared label array, the wire
/// protocol ships them as per-superstep label deltas.
struct LabelDelta {
  VertexId vertex = 0;
  PartitionId label = kNoPartition;

  friend bool operator==(const LabelDelta&, const LabelDelta&) = default;
};

/// Per-shard scratch reused across supersteps, so steady-state supersteps
/// allocate nothing.
struct ShardScratch {
  /// Per-label neighbor weight frequencies + touched-label list, reset in
  /// O(labels touched) between vertices.
  std::vector<int64_t> freq;
  std::vector<PartitionId> touched;
  /// Block-local asynchronous load view (§IV.A.4 at block granularity).
  std::vector<int64_t> projected;
  /// Migration counter partials m_s(l) for the current iteration.
  std::vector<int64_t> migrations;
  /// Σ freq[current] partial (φ numerator).
  int64_t local_weight = 0;
  /// Vertices this shard migrated in the current superstep.
  int64_t migrated = 0;
  /// Label-update messages this shard sent in the current superstep.
  int64_t messages = 0;

  /// Sizes the per-label vectors for `num_partitions` labels.
  void Prepare(int num_partitions) {
    freq.assign(static_cast<size_t>(num_partitions), 0);
    touched.clear();
    touched.reserve(static_cast<size_t>(num_partitions));
    migrations.assign(static_cast<size_t>(num_partitions), 0);
  }
};

/// The load contribution of a vertex under the configured balance mode.
inline int64_t LoadUnitsOf(const SpinnerConfig& config,
                           int64_t weighted_degree) {
  return config.balance_mode == BalanceMode::kVertices ? 1 : weighted_degree;
}

/// Superstep 0 for one shard: assigns every owned vertex its caller-fixed
/// restart label (entries < initial_labels.size() that are not kNoPartition)
/// or a hash-drawn uniform label, resets the shard's load counters to k and
/// accumulates the initial loads. Writes labels only in [begin, end).
/// Returns the label-advertisement message count (== shard arc count).
///
/// `index_base`: the global vertex id that maps to index 0 of `labels` and
/// `initial_labels`. The in-process substrate passes full global arrays
/// (base 0); a ShardWorker passes arrays covering only its owned range
/// (base = first owned vertex), keeping worker memory O(owned + boundary).
/// Hash decisions always use the *global* id, so results are identical
/// for every base.
int64_t ShardInitialize(const SpinnerConfig& config,
                        ShardedGraphStore::Shard* shard,
                        std::span<PartitionId> labels,
                        std::span<const PartitionId> initial_labels,
                        VertexId index_base = 0);

/// ComputeScores for one shard: for every owned vertex scores the
/// neighborhood labels (Eq. 8) against the frozen `global_loads` — with the
/// §IV.A.4 asynchronous view applied at fixed vertex-block granularity —
/// and records the migration candidate in `candidate` (global-sized,
/// kNoPartition = stay). Fills the shard's blocks of `block_score` (the
/// global per-block score partials, indexed by vertex block) and the
/// scratch's migrations/local_weight partials.
///
/// `index_base` shifts the owned-vertex indices of `labels`, `candidate`
/// and `block_score` (block granularity; must be kBlockSize-aligned) as in
/// ShardInitialize. Neighbor labels are read at `labels[target]` verbatim:
/// a caller with a compact array remaps the shard's CSR targets to local
/// slots first (dist/worker.h RemapTargetsToSlots).
void ShardComputeScores(const SpinnerConfig& config,
                        const ShardedGraphStore::Shard& shard,
                        std::span<const PartitionId> labels,
                        const std::vector<int64_t>& global_loads,
                        const std::vector<double>& capacities,
                        int64_t superstep, std::span<PartitionId> candidate,
                        std::span<double> block_score, ShardScratch* scratch,
                        VertexId index_base = 0);

/// ComputeMigrations for one shard: applies the probabilistic moves
/// (Eq. 12–14, coin per (seed, superstep, vertex)) for every owned vertex
/// with a candidate, updating the shard's label slice and load counters in
/// place. When `moves` is non-null, every applied move is appended in
/// ascending vertex order — the label deltas the wire protocol broadcasts.
/// Updates scratch->migrated / scratch->messages.
/// `index_base` as in ShardComputeScores; `moves` always carry *global*
/// vertex ids regardless of the base.
void ShardComputeMigrations(const SpinnerConfig& config,
                            ShardedGraphStore::Shard* shard,
                            std::span<PartitionId> labels,
                            const std::vector<int64_t>& global_loads,
                            const std::vector<double>& capacities,
                            const std::vector<int64_t>& migration_counts,
                            int64_t superstep,
                            std::span<const PartitionId> candidate,
                            std::vector<LabelDelta>* moves,
                            ShardScratch* scratch,
                            VertexId index_base = 0);

}  // namespace spinner

#endif  // SPINNER_SPINNER_SHARD_SUPERSTEP_H_
