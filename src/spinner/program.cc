#include "spinner/program.h"

#include <algorithm>

#include "common/random.h"
#include "spinner/lpa_kernel.h"

namespace spinner {

namespace {

/// Binary search for the edge pointing at `target`. Edges are kept sorted
/// by target from Initialize onwards (and arrive sorted from the CSR).
pregel::OutEdge<SpinnerEdgeValue>* FindEdge(
    std::vector<pregel::OutEdge<SpinnerEdgeValue>>& edges, VertexId target,
    size_t search_limit) {
  auto begin = edges.begin();
  auto end = begin + static_cast<ptrdiff_t>(search_limit);
  auto it = std::lower_bound(
      begin, end, target,
      [](const pregel::OutEdge<SpinnerEdgeValue>& e, VertexId t) {
        return e.target < t;
      });
  if (it == end || it->target != target) return nullptr;
  return &*it;
}

}  // namespace

SpinnerProgram::SpinnerProgram(const SpinnerConfig& config,
                               std::vector<PartitionId> initial_labels,
                               bool start_with_conversion)
    : config_(config),
      initial_labels_(std::move(initial_labels)),
      phase_(start_with_conversion ? kNeighborPropagation : kInitialize) {
  SPINNER_CHECK(config_.num_partitions >= 1);
  SPINNER_CHECK(config_.additional_capacity > 0.0);
  if (!config_.partition_weights.empty()) {
    SPINNER_CHECK(static_cast<int>(config_.partition_weights.size()) ==
                  config_.num_partitions)
        << "partition_weights must have one entry per partition";
    for (double w : config_.partition_weights) {
      SPINNER_CHECK(w > 0.0) << "partition weights must be positive";
    }
  }
}

int64_t SpinnerProgram::LoadUnits(const SpinnerVertexValue& value) const {
  return config_.balance_mode == BalanceMode::kVertices
             ? 1
             : value.weighted_degree;
}

void SpinnerProgram::RegisterAggregators(
    pregel::AggregatorRegistry* registry) {
  const auto k = static_cast<size_t>(config_.num_partitions);
  registry->Register(kPhaseAgg,
                     std::make_unique<pregel::LongBroadcastAggregator>(),
                     /*persistent=*/true);
  registry->Register(kLoadsAgg,
                     std::make_unique<pregel::VectorSumAggregator>(k),
                     /*persistent=*/true);
  registry->Register(kMigrationsAgg,
                     std::make_unique<pregel::VectorSumAggregator>(k),
                     /*persistent=*/false);
  registry->Register(kTotalLoadAgg,
                     std::make_unique<pregel::LongSumAggregator>(),
                     /*persistent=*/true);
  registry->Register(kScoreAgg,
                     std::make_unique<pregel::DoubleSumAggregator>(),
                     /*persistent=*/false);
  registry->Register(kLocalWeightAgg,
                     std::make_unique<pregel::LongSumAggregator>(),
                     /*persistent=*/false);
  registry->Register(kMigratedAgg,
                     std::make_unique<pregel::LongSumAggregator>(),
                     /*persistent=*/false);
  registry->Get<pregel::LongBroadcastAggregator>(kPhaseAgg)
      ->set_value(static_cast<int64_t>(phase_));
}

std::unique_ptr<pregel::WorkerContextBase>
SpinnerProgram::CreateWorkerContext() {
  return std::make_unique<SpinnerWorkerContext>();
}

void SpinnerProgram::PreSuperstep(pregel::WorkerContextBase* wc,
                                  pregel::WorkerApi& api) {
  auto* swc = static_cast<SpinnerWorkerContext*>(wc);
  swc->phase =
      api.Aggregated<pregel::LongBroadcastAggregator>(kPhaseAgg)->value();

  // Cache the typed partials once per superstep; Compute() then runs with
  // no registry lookups at all.
  swc->loads_partial = api.Partial<pregel::VectorSumAggregator>(kLoadsAgg);
  swc->migrations_partial =
      api.Partial<pregel::VectorSumAggregator>(kMigrationsAgg);
  swc->score_partial = api.Partial<pregel::DoubleSumAggregator>(kScoreAgg);
  swc->local_weight_partial =
      api.Partial<pregel::LongSumAggregator>(kLocalWeightAgg);
  swc->migrated_partial = api.Partial<pregel::LongSumAggregator>(kMigratedAgg);
  swc->total_load_partial =
      api.Partial<pregel::LongSumAggregator>(kTotalLoadAgg);

  const auto k = static_cast<size_t>(config_.num_partitions);
  if (swc->freq.size() != k) {
    swc->freq.assign(k, 0);
    swc->touched.reserve(k);
  }

  if (swc->phase == kComputeScores || swc->phase == kComputeMigrations) {
    const auto& loads =
        api.Aggregated<pregel::VectorSumAggregator>(kLoadsAgg)->values();
    swc->global_loads.assign(loads.begin(), loads.end());
    const int64_t total =
        api.Aggregated<pregel::LongSumAggregator>(kTotalLoadAgg)->value();
    const int k_parts = config_.num_partitions;
    swc->capacities.assign(k_parts, 0.0);
    if (config_.partition_weights.empty()) {
      const double uniform = config_.additional_capacity *
                             static_cast<double>(total) /
                             static_cast<double>(k_parts);
      swc->capacities.assign(k_parts, uniform);
    } else {
      double weight_sum = 0.0;
      for (double w : config_.partition_weights) weight_sum += w;
      for (int l = 0; l < k_parts; ++l) {
        swc->capacities[l] = config_.additional_capacity *
                             static_cast<double>(total) *
                             config_.partition_weights[l] / weight_sum;
      }
    }
    if (swc->phase == kComputeScores) {
      // Eq. 8's load penalty is vertex-independent: one table per load
      // view, not one division per (vertex, label).
      swc->global_penalty.assign(static_cast<size_t>(k_parts), 0.0);
      lpa::FillPenalties(swc->global_loads, swc->capacities,
                         swc->global_penalty);
      if (config_.per_worker_async) {
        // The asynchronous per-worker view starts from the global
        // snapshot; ComputeScoresPhase diverges it move by move.
        swc->projected_loads = swc->global_loads;
        swc->async_penalty = swc->global_penalty;
      }
    } else {
      swc->migration_counts =
          api.Aggregated<pregel::VectorSumAggregator>(kMigrationsAgg)
              ->values();
      swc->migrate_p.assign(static_cast<size_t>(k_parts), 0.0);
      lpa::FillMigrationProbabilities(swc->global_loads, swc->capacities,
                                      swc->migration_counts, swc->migrate_p);
    }
  }
}

void SpinnerProgram::Compute(SpinnerHandle& vertex,
                             std::span<const LabelMessage> messages) {
  auto* wc = static_cast<SpinnerWorkerContext*>(vertex.worker_context());
  switch (static_cast<Phase>(wc->phase)) {
    case kNeighborPropagation:
      ComputeNeighborPropagation(vertex);
      break;
    case kNeighborDiscovery:
      ComputeNeighborDiscovery(vertex, messages);
      break;
    case kInitialize:
      ComputeInitialize(vertex, wc);
      break;
    case kComputeScores:
      ComputeScoresPhase(vertex, wc, messages);
      break;
    case kComputeMigrations:
      ComputeMigrationsPhase(vertex, wc);
      break;
  }
}

void SpinnerProgram::ComputeNeighborPropagation(SpinnerHandle& vertex) {
  // §IV.A.1 step 1: advertise this vertex's id across its directed
  // out-edges so endpoints can discover incoming edges.
  vertex.SendMessageToAllEdges(LabelMessage{vertex.id(), kNoPartition});
}

void SpinnerProgram::ComputeNeighborDiscovery(
    SpinnerHandle& vertex, std::span<const LabelMessage> messages) {
  // §IV.A.1 step 2: a message from u means the directed edge u→v exists.
  // If v also has v→u, the pair is reciprocal: weight 2 (Eq. 3). Otherwise
  // v creates the reverse edge with weight 1, making the graph symmetric.
  auto& edges = vertex.mutable_edges();
  const size_t original_count = edges.size();  // CSR prefix stays sorted
  for (const LabelMessage& msg : messages) {
    auto* edge = FindEdge(edges, msg.source, original_count);
    if (edge != nullptr) {
      edge->value.weight = 2;
    } else {
      vertex.AddEdge(msg.source, SpinnerEdgeValue{1, kNoPartition});
    }
  }
}

void SpinnerProgram::ComputeInitialize(SpinnerHandle& vertex,
                                       SpinnerWorkerContext* wc) {
  auto& edges = vertex.mutable_edges();
  // NeighborDiscovery appends out of order; keep edges sorted by target so
  // message processing can binary-search.
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.target < b.target; });

  auto& value = vertex.value();
  value.weighted_degree = 0;
  for (const auto& e : edges) value.weighted_degree += e.value.weight;

  PartitionId label = kNoPartition;
  if (vertex.id() < static_cast<VertexId>(initial_labels_.size())) {
    label = initial_labels_[vertex.id()];
  }
  if (label == kNoPartition) {
    label = lpa::InitialLabel(config_.seed, vertex.id(),
                              config_.num_partitions);
  }
  SPINNER_DCHECK(label >= 0 && label < config_.num_partitions);
  value.label = label;

  const int64_t units = LoadUnits(value);
  wc->loads_partial->Add(static_cast<size_t>(label), units);
  wc->total_load_partial->Add(units);
  vertex.SendMessageToAllEdges(LabelMessage{vertex.id(), label});
}

void SpinnerProgram::ComputeScoresPhase(SpinnerHandle& vertex,
                                        SpinnerWorkerContext* wc,
                                        std::span<const LabelMessage> messages) {
  auto& value = vertex.value();
  auto& edges = vertex.mutable_edges();
  value.is_candidate = false;

  // (i) Fold neighbor label updates into edge values (§IV.A.2).
  for (const LabelMessage& msg : messages) {
    auto* edge = FindEdge(edges, msg.source, edges.size());
    SPINNER_DCHECK(edge != nullptr)
        << "message from non-neighbor " << msg.source;
    if (edge != nullptr) edge->value.neighbor_label = msg.label;
  }

  if (value.weighted_degree == 0) return;  // isolated vertex: nothing to do

  // (ii) Weighted label frequencies over the neighborhood (Eq. 4).
  for (const auto& e : edges) {
    const PartitionId l = e.value.neighbor_label;
    SPINNER_DCHECK(l >= 0) << "neighbor label not yet propagated";
    if (wc->freq[l] == 0) wc->touched.push_back(l);
    wc->freq[l] += e.value.weight;
  }

  const PartitionId current = value.label;
  const double inv_deg = 1.0 / static_cast<double>(value.weighted_degree);
  const std::vector<double>& penalty =
      config_.per_worker_async ? wc->async_penalty : wc->global_penalty;

  // Normalized score with load penalty (Eq. 8); candidate labels are the
  // neighborhood's labels plus the current one. Tie breaking is the
  // deterministic order-independent draw shared with the sharded path.
  const double current_score =
      lpa::Score(wc->freq[current], inv_deg, penalty[current]);
  const lpa::LabelChoice choice = lpa::PickLabelSparse(
      wc->freq, wc->touched, current, current_score, inv_deg, penalty,
      config_.seed, vertex.superstep(), vertex.id());

  // (iii)+(iv) Aggregate the global score contribution and flag candidacy.
  // The score uses the beginning-of-superstep global loads so that the
  // halting signal is independent of worker count.
  wc->score_partial->Add(
      lpa::Score(wc->freq[current], inv_deg, wc->global_penalty[current]));
  wc->local_weight_partial->Add(wc->freq[current]);

  if (choice.better) {
    value.is_candidate = true;
    value.candidate = choice.label;
    const int64_t units = LoadUnits(value);
    wc->migrations_partial->Add(static_cast<size_t>(choice.label), units);
    if (config_.per_worker_async) {
      // §IV.A.4: later vertices on this worker see the would-be move.
      wc->projected_loads[choice.label] += units;
      wc->projected_loads[current] -= units;
      // Same expression as lpa::FillPenalties, on the moved view.
      for (const PartitionId l : {choice.label, current}) {
        wc->async_penalty[l] =
            wc->capacities[l] > 0
                ? static_cast<double>(wc->projected_loads[l]) /
                      wc->capacities[l]
                : 0.0;
      }
    }
  }

  // Reset scratch in O(touched).
  for (const PartitionId l : wc->touched) wc->freq[l] = 0;
  wc->touched.clear();
}

void SpinnerProgram::ComputeMigrationsPhase(SpinnerHandle& vertex,
                                            SpinnerWorkerContext* wc) {
  auto& value = vertex.value();
  if (!value.is_candidate) return;
  value.is_candidate = false;

  const auto target = static_cast<size_t>(value.candidate);
  // Eq. 12–14 with b(l) frozen at the start of the iteration, as a lookup
  // into the table PreSuperstep prepared.
  if (!lpa::MigrationCoinAccepts(config_.seed, vertex.id(),
                                 vertex.superstep(), wc->migrate_p[target])) {
    return;  // migration deferred
  }

  const PartitionId old_label = value.label;
  const int64_t units = LoadUnits(value);
  value.label = value.candidate;
  wc->loads_partial->Add(target, units);
  wc->loads_partial->Add(static_cast<size_t>(old_label), -units);
  wc->migrated_partial->Add(1);
  vertex.SendMessageToAllEdges(LabelMessage{vertex.id(), value.label});
}

bool SpinnerProgram::MasterCompute(pregel::MasterContext& ctx) {
  const Phase executed = phase_;
  switch (executed) {
    case kNeighborPropagation:
      phase_ = kNeighborDiscovery;
      break;
    case kNeighborDiscovery:
      phase_ = kInitialize;
      break;
    case kInitialize:
      total_load_ = ctx.aggregators()
                        .Get<pregel::LongSumAggregator>(kTotalLoadAgg)
                        ->value();
      phase_ = kComputeScores;
      break;
    case kComputeScores: {
      ++iteration_;
      const double n = static_cast<double>(ctx.num_vertices());
      const double score =
          n == 0 ? 0.0
                 : ctx.aggregators()
                           .Get<pregel::DoubleSumAggregator>(kScoreAgg)
                           ->value() /
                       n;
      const bool observing = observer_ != nullptr && observer_->active();
      if (config_.record_history || observing) {
        IterationPoint pt;
        pt.iteration = iteration_;
        pt.score = score;
        pt.migrations = last_migrations_;
        const int64_t local = ctx.aggregators()
                                  .Get<pregel::LongSumAggregator>(
                                      kLocalWeightAgg)
                                  ->value();
        pt.phi = total_load_ == 0 ? 1.0
                                  : static_cast<double>(local) /
                                        static_cast<double>(total_load_);
        const auto& loads = ctx.aggregators()
                                .Get<pregel::VectorSumAggregator>(kLoadsAgg)
                                ->values();
        // rho relative to each partition's own ideal share (uniform for
        // homogeneous systems, proportional for heterogeneous ones).
        double weight_sum = 0.0;
        for (double w : config_.partition_weights) weight_sum += w;
        double rho = 0.0;
        for (size_t l = 0; l < loads.size(); ++l) {
          const double share =
              config_.partition_weights.empty()
                  ? 1.0 / static_cast<double>(config_.num_partitions)
                  : config_.partition_weights[l] / weight_sum;
          const double ideal = static_cast<double>(total_load_) * share;
          if (ideal > 0) {
            rho = std::max(rho, static_cast<double>(loads[l]) / ideal);
          }
        }
        pt.rho = rho == 0.0 ? 1.0 : rho;
        pt.loads = loads;
        if (observing) {
          // Observer decisions stop the run within this iteration.
          bool keep_going = true;
          if (observer_->on_iteration) keep_going = observer_->on_iteration(pt);
          if (observer_->cancel != nullptr &&
              observer_->cancel->IsCancelled()) {
            keep_going = false;
          }
          if (!keep_going) cancelled_ = true;
        }
        if (config_.record_history) history_.push_back(std::move(pt));
      }
      if (cancelled_) return false;

      // Halting heuristic (§III.C): a steady state is w consecutive
      // iterations that each improve the normalized score by less than ε.
      const double improvement = score - best_score_;
      best_score_ = std::max(best_score_, score);
      if (improvement < config_.halt_epsilon) {
        ++low_improvement_streak_;
      } else {
        low_improvement_streak_ = 0;
      }
      const bool steady = config_.use_halting && iteration_ > 1 &&
                          low_improvement_streak_ >= config_.halt_window;
      if (steady) {
        converged_ = true;
        return false;
      }
      if (iteration_ >= config_.max_iterations) {
        return false;
      }
      phase_ = kComputeMigrations;
      break;
    }
    case kComputeMigrations:
      last_migrations_ = ctx.aggregators()
                             .Get<pregel::LongSumAggregator>(kMigratedAgg)
                             ->value();
      phase_ = kComputeScores;
      break;
  }
  ctx.aggregators()
      .Get<pregel::LongBroadcastAggregator>(kPhaseAgg)
      ->set_value(static_cast<int64_t>(phase_));
  return true;
}

}  // namespace spinner
