// SpinnerProgram: the paper's algorithm as a Pregel vertex program.
//
// Superstep phases (paper Fig. 2), sequenced by MasterCompute through a
// broadcast aggregator:
//
//   NeighborPropagation ─► NeighborDiscovery ─► Initialize ─►
//        ┌───────────────────────────────────────────┐
//        ▼                                           │
//   ComputeScores ─► ComputeMigrations ──────────────┘
//
// The first two supersteps perform the directed→weighted-undirected
// conversion in-engine (§IV.A.1) and are skipped when the caller provides a
// pre-converted graph. One LPA iteration = ComputeScores +
// ComputeMigrations (§IV.A.2–3). Halting is evaluated by the master after
// every ComputeScores using the aggregated global score (§III.C).
#ifndef SPINNER_SPINNER_PROGRAM_H_
#define SPINNER_SPINNER_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "pregel/engine.h"
#include "spinner/config.h"
#include "spinner/observer.h"
#include "spinner/types.h"

namespace spinner {

/// Engine instantiation used by Spinner.
using SpinnerEngine =
    pregel::PregelEngine<SpinnerVertexValue, SpinnerEdgeValue, LabelMessage>;
using SpinnerHandle =
    pregel::VertexHandle<SpinnerVertexValue, SpinnerEdgeValue, LabelMessage>;

/// Per-worker shared state (§IV.A.4): the projected partition loads updated
/// asynchronously as candidates are discovered within the worker, plus
/// cached aggregator pointers and scratch buffers that make a vertex
/// computation allocation-free.
class SpinnerWorkerContext : public pregel::WorkerContextBase {
 public:
  /// Phase being executed this superstep.
  int64_t phase = 0;
  /// Per-partition capacities C_l (uniform c·|E|/k for homogeneous
  /// systems, weighted for heterogeneous ones); valid from the first
  /// ComputeScores on.
  std::vector<double> capacities;
  /// Global loads b(l) at the start of the superstep.
  std::vector<int64_t> global_loads;
  /// Worker-local projected loads (the asynchronous §IV.A.4 view).
  std::vector<int64_t> projected_loads;
  /// Migration counters m(l) (ComputeMigrations supersteps only).
  std::vector<int64_t> migration_counts;
  /// Per-label load penalties of Eq. 8 (lpa::FillPenalties), hoisted out
  /// of the vertex loop: the frozen-global table, and the asynchronous
  /// view's table maintained incrementally with projected_loads.
  std::vector<double> global_penalty;
  std::vector<double> async_penalty;
  /// Per-label migration probabilities (Eq. 12–14,
  /// lpa::FillMigrationProbabilities; ComputeMigrations supersteps only).
  std::vector<double> migrate_p;

  /// Scratch: per-label neighbor weight frequencies + touched-label list,
  /// reset in O(labels touched) between vertices.
  std::vector<int64_t> freq;
  std::vector<PartitionId> touched;

  /// Cached typed partial-aggregator pointers (valid for one superstep).
  pregel::VectorSumAggregator* loads_partial = nullptr;
  pregel::VectorSumAggregator* migrations_partial = nullptr;
  pregel::DoubleSumAggregator* score_partial = nullptr;
  pregel::LongSumAggregator* local_weight_partial = nullptr;
  pregel::LongSumAggregator* migrated_partial = nullptr;
  pregel::LongSumAggregator* total_load_partial = nullptr;
};

/// The Spinner vertex program. One instance drives one partitioning run.
class SpinnerProgram : public pregel::VertexProgram<SpinnerVertexValue,
                                                    SpinnerEdgeValue,
                                                    LabelMessage> {
 public:
  /// Phase identifiers broadcast through the "phase" aggregator.
  enum Phase : int64_t {
    kNeighborPropagation = 0,
    kNeighborDiscovery = 1,
    kInitialize = 2,
    kComputeScores = 3,
    kComputeMigrations = 4,
  };

  /// `initial_labels` has one entry per vertex: a fixed label in [0, k) for
  /// incremental/elastic restarts, or kNoPartition to draw a uniform random
  /// label at Initialize (partitioning from scratch).
  /// `start_with_conversion` enables the NeighborPropagation/Discovery
  /// supersteps (pass the raw *directed* graph to the engine then).
  SpinnerProgram(const SpinnerConfig& config,
                 std::vector<PartitionId> initial_labels,
                 bool start_with_conversion);

  /// Installs a per-iteration observer (not owned; may be null). Must be
  /// set before the engine run starts.
  void set_observer(const ProgressObserver* observer) {
    observer_ = observer;
  }

  // --- VertexProgram interface -------------------------------------------
  void RegisterAggregators(pregel::AggregatorRegistry* registry) override;
  std::unique_ptr<pregel::WorkerContextBase> CreateWorkerContext() override;
  void PreSuperstep(pregel::WorkerContextBase* wc,
                    pregel::WorkerApi& api) override;
  void Compute(SpinnerHandle& vertex,
               std::span<const LabelMessage> messages) override;
  bool MasterCompute(pregel::MasterContext& ctx) override;

  // --- Results (valid after the engine run) ------------------------------
  /// LPA iterations executed (ComputeScores supersteps).
  int iterations() const { return iteration_; }
  /// True iff the run halted via the score-convergence criterion rather
  /// than the max_iterations cap.
  bool converged() const { return converged_; }
  /// True iff the run was stopped by the observer or cancellation token.
  bool cancelled() const { return cancelled_; }
  /// Per-iteration φ/ρ/score/migrations curves (paper Fig. 4).
  const std::vector<IterationPoint>& history() const { return history_; }

  /// Aggregator names (exposed for tests).
  static constexpr const char* kPhaseAgg = "spinner.phase";
  static constexpr const char* kLoadsAgg = "spinner.loads";
  static constexpr const char* kMigrationsAgg = "spinner.migrations";
  static constexpr const char* kTotalLoadAgg = "spinner.total_load";
  static constexpr const char* kScoreAgg = "spinner.score";
  static constexpr const char* kLocalWeightAgg = "spinner.local_weight";
  static constexpr const char* kMigratedAgg = "spinner.migrated";

 private:
  /// The load contribution of a vertex under the configured balance mode:
  /// its weighted degree (edges) or 1 (vertices).
  int64_t LoadUnits(const SpinnerVertexValue& value) const;

  void ComputeNeighborPropagation(SpinnerHandle& vertex);
  void ComputeNeighborDiscovery(SpinnerHandle& vertex,
                                std::span<const LabelMessage> messages);
  void ComputeInitialize(SpinnerHandle& vertex, SpinnerWorkerContext* wc);
  void ComputeScoresPhase(SpinnerHandle& vertex, SpinnerWorkerContext* wc,
                          std::span<const LabelMessage> messages);
  void ComputeMigrationsPhase(SpinnerHandle& vertex,
                              SpinnerWorkerContext* wc);

  SpinnerConfig config_;
  std::vector<PartitionId> initial_labels_;
  Phase phase_;
  const ProgressObserver* observer_ = nullptr;

  // Master-side convergence tracking.
  int iteration_ = 0;
  bool converged_ = false;
  bool cancelled_ = false;
  double best_score_ = -1e300;
  int low_improvement_streak_ = 0;
  int64_t total_load_ = 0;
  int64_t last_migrations_ = 0;
  std::vector<IterationPoint> history_;
};

}  // namespace spinner

#endif  // SPINNER_SPINNER_PROGRAM_H_
