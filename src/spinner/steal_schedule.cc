#include "spinner/steal_schedule.h"

#include <algorithm>

#include "common/logging.h"

namespace spinner {

void StealSchedule::ResetPhase(std::span<const int64_t> blocks_per_shard,
                               int num_workers) {
  SPINNER_DCHECK(num_workers >= 1);
  if (cursors_.size() != blocks_per_shard.size()) {
    cursors_ = std::vector<Cursor>(blocks_per_shard.size());
  }
  limits_.assign(blocks_per_shard.begin(), blocks_per_shard.end());
  for (Cursor& c : cursors_) c.next.store(0, std::memory_order_relaxed);
  num_workers_ = num_workers;
}

int64_t StealSchedule::TryClaim(int s) {
  // The cursor may overshoot limits_[s] by one per losing contender; only
  // claims below the limit are real. Overshoot is bounded by the worker
  // count and never wraps within a phase.
  if (cursors_[s].next.load(std::memory_order_relaxed) >= limits_[s]) {
    return -1;
  }
  const int64_t block = cursors_[s].next.fetch_add(1, std::memory_order_relaxed);
  return block < limits_[s] ? block : -1;
}

bool StealSchedule::Claim(int worker, int* shard, int64_t* block,
                          bool* stolen) {
  const int num_shards = static_cast<int>(limits_.size());
  // Own shards first, in fixed order.
  for (int s = worker; s < num_shards; s += num_workers_) {
    const int64_t b = TryClaim(s);
    if (b >= 0) {
      *shard = s;
      *block = b;
      *stolen = false;
      tasks_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal from the shard with the most unclaimed blocks, retrying while
  // racing claimants drain the snapshot underneath us.
  while (true) {
    int victim = -1;
    int64_t victim_remaining = 0;
    for (int s = 0; s < num_shards; ++s) {
      const int64_t taken = std::min(
          cursors_[s].next.load(std::memory_order_relaxed), limits_[s]);
      const int64_t remaining = limits_[s] - taken;
      if (remaining > victim_remaining) {
        victim = s;
        victim_remaining = remaining;
      }
    }
    if (victim < 0) return false;  // every block claimed
    const int64_t b = TryClaim(victim);
    if (b < 0) continue;  // lost the race; re-scan
    *shard = victim;
    *block = b;
    *stolen = victim % num_workers_ != worker;
    tasks_.fetch_add(1, std::memory_order_relaxed);
    if (*stolen) stolen_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

}  // namespace spinner
