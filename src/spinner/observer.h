// Progress observation and cancellation for long partitioning runs.
//
// The master invokes the observer once per LPA iteration with the same
// φ/ρ/score point that record_history collects, so interactive consumers
// (progress bars, early-stopping policies, the session API) no longer need
// to wait for the run to finish and mine PartitionResult::history.
#ifndef SPINNER_SPINNER_OBSERVER_H_
#define SPINNER_SPINNER_OBSERVER_H_

#include <atomic>
#include <functional>

#include "spinner/types.h"

namespace spinner {

/// Cooperative cancellation flag, safe to set from another thread while a
/// run is in flight. The master checks it after every iteration, so a run
/// stops within one iteration of Cancel().
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-iteration progress callback plus an optional cancellation token.
/// Both are optional; an empty observer is a no-op.
struct ProgressObserver {
  /// Called by the master after every LPA iteration (single-threaded, so
  /// the callback needs no synchronization with the run itself). Return
  /// false to stop the run after this iteration.
  std::function<bool(const IterationPoint&)> on_iteration;

  /// Checked after every iteration when non-null; not owned.
  const CancellationToken* cancel = nullptr;

  /// True iff this observer needs per-iteration points computed.
  bool active() const {
    return static_cast<bool>(on_iteration) || cancel != nullptr;
  }
};

}  // namespace spinner

#endif  // SPINNER_SPINNER_OBSERVER_H_
