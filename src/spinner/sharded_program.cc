#include "spinner/sharded_program.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "spinner/shard_superstep.h"
#include "spinner/superstep_driver.h"

namespace spinner {

namespace {

int HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

/// The in-process SuperstepBackend: one ThreadPool task per shard executes
/// each phase body (spinner/shard_superstep.h) directly over the shared
/// store. Merges follow the determinism contract of the driver: the float
/// block-score array is handed over whole (the driver reduces it in fixed
/// block order), integer counters merge by order-free addition.
class InProcessBackend final : public SuperstepBackend {
 public:
  InProcessBackend(const SpinnerConfig& config, ShardedGraphStore* store,
                   ThreadPool* pool)
      : config_(config),
        store_(store),
        pool_(pool),
        scratch_(static_cast<size_t>(store->num_shards())),
        candidate_(static_cast<size_t>(store->NumVertices()), kNoPartition),
        block_score_(static_cast<size_t>(store->NumBlocks()), 0.0) {
    for (ShardScratch& sc : scratch_) sc.Prepare(config.num_partitions);
  }

  Status Initialize(const std::vector<PartitionId>& initial_labels,
                    InitOutcome* out) override {
    const int S = store_->num_shards();
    std::vector<PartitionId>& labels = store_->labels();
    for (int s = 0; s < S; ++s) {
      pool_->Submit([this, &labels, &initial_labels, s] {
        scratch_[s].messages = ShardInitialize(
            config_, &store_->mutable_shard(s), labels, initial_labels);
      });
    }
    pool_->Wait();
    out->messages_out.resize(S);
    for (int s = 0; s < S; ++s) {
      out->messages_out[s] = scratch_[s].messages;
    }
    return Status::OK();
  }

  Status ComputeScores(int64_t superstep,
                       const std::vector<int64_t>& global_loads,
                       const std::vector<double>& capacities,
                       ScoreOutcome* out) override {
    const int S = store_->num_shards();
    const std::vector<PartitionId>& labels = store_->labels();
    for (int s = 0; s < S; ++s) {
      pool_->Submit([this, &labels, &global_loads, &capacities, superstep,
                     s] {
        ShardComputeScores(config_, store_->shard(s), labels, global_loads,
                           capacities, superstep, candidate_, block_score_,
                           &scratch_[s]);
      });
    }
    pool_->Wait();
    out->block_score = block_score_;
    out->local_weight = 0;
    out->migration_counts.assign(
        static_cast<size_t>(config_.num_partitions), 0);
    for (const ShardScratch& sc : scratch_) {
      out->local_weight += sc.local_weight;
      for (size_t l = 0; l < out->migration_counts.size(); ++l) {
        out->migration_counts[l] += sc.migrations[l];
      }
    }
    return Status::OK();
  }

  Status ComputeMigrations(int64_t superstep,
                           const std::vector<int64_t>& global_loads,
                           const std::vector<double>& capacities,
                           const std::vector<int64_t>& migration_counts,
                           MigrateOutcome* out) override {
    const int S = store_->num_shards();
    std::vector<PartitionId>& labels = store_->labels();
    for (int s = 0; s < S; ++s) {
      pool_->Submit([this, &labels, &global_loads, &capacities,
                     &migration_counts, superstep, s] {
        ShardComputeMigrations(config_, &store_->mutable_shard(s), labels,
                               global_loads, capacities, migration_counts,
                               superstep, candidate_, /*moves=*/nullptr,
                               &scratch_[s]);
      });
    }
    pool_->Wait();
    out->migrated = 0;
    out->messages_out.resize(S);
    for (int s = 0; s < S; ++s) {
      out->migrated += scratch_[s].migrated;
      out->messages_out[s] = scratch_[s].messages;
    }
    return Status::OK();
  }

 private:
  const SpinnerConfig& config_;
  ShardedGraphStore* store_;
  ThreadPool* pool_;
  std::vector<ShardScratch> scratch_;
  /// Migration candidate per vertex (kNoPartition = none); written by the
  /// owning shard each ComputeScores, consumed by ComputeMigrations.
  std::vector<PartitionId> candidate_;
  /// Per-block global-score partials (see driver header).
  std::vector<double> block_score_;
};

}  // namespace

int ResolveNumShards(const SpinnerConfig& config, int64_t num_vertices) {
  if (config.num_shards > 0) return config.num_shards;
  if (config.num_workers > 0) return config.num_workers;
  const int64_t blocks =
      (num_vertices + ShardedGraphStore::kBlockSize - 1) /
      ShardedGraphStore::kBlockSize;
  return static_cast<int>(
      std::clamp<int64_t>(blocks, 1, HardwareThreads()));
}

int ResolveNumThreads(const SpinnerConfig& config, int num_shards) {
  if (config.num_threads > 0) return config.num_threads;
  return std::max(1, std::min(num_shards, HardwareThreads()));
}

Result<ShardedRunResult> RunShardedSpinner(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels, ThreadPool* pool,
    const ProgressObserver* observer) {
  SPINNER_CHECK(store != nullptr && pool != nullptr);
  SPINNER_RETURN_IF_ERROR(config.Validate());
  if (store->NumVertices() == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }
  InProcessBackend backend(config, store, pool);
  return DriveSpinnerSupersteps(config, store, std::move(initial_labels),
                                &backend, observer);
}

}  // namespace spinner
