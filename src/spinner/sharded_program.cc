#include "spinner/sharded_program.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "spinner/lpa_kernel.h"

namespace spinner {

namespace {

/// Per-shard scratch reused across supersteps, so steady-state supersteps
/// allocate nothing.
struct ShardScratch {
  /// Per-label neighbor weight frequencies + touched-label list, reset in
  /// O(labels touched) between vertices.
  std::vector<int64_t> freq;
  std::vector<PartitionId> touched;
  /// Block-local asynchronous load view (§IV.A.4 at block granularity).
  std::vector<int64_t> projected;
  /// Migration counter partials m_s(l) for the current iteration.
  std::vector<int64_t> migrations;
  /// Σ freq[current] partial (φ numerator).
  int64_t local_weight = 0;
  /// Vertices this shard migrated in the current superstep.
  int64_t migrated = 0;
  /// Label-update messages this shard sent in the current superstep.
  int64_t messages = 0;
};

/// The load contribution of a vertex under the configured balance mode.
int64_t LoadUnitsOf(const SpinnerConfig& config, int64_t weighted_degree) {
  return config.balance_mode == BalanceMode::kVertices ? 1 : weighted_degree;
}

int HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

int ResolveNumShards(const SpinnerConfig& config, int64_t num_vertices) {
  if (config.num_shards > 0) return config.num_shards;
  if (config.num_workers > 0) return config.num_workers;
  const int64_t blocks =
      (num_vertices + ShardedGraphStore::kBlockSize - 1) /
      ShardedGraphStore::kBlockSize;
  return static_cast<int>(
      std::clamp<int64_t>(blocks, 1, HardwareThreads()));
}

int ResolveNumThreads(const SpinnerConfig& config, int num_shards) {
  if (config.num_threads > 0) return config.num_threads;
  return std::max(1, std::min(num_shards, HardwareThreads()));
}

Result<ShardedRunResult> RunShardedSpinner(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels, ThreadPool* pool,
    const ProgressObserver* observer) {
  SPINNER_CHECK(store != nullptr && pool != nullptr);
  SPINNER_RETURN_IF_ERROR(config.Validate());
  const int64_t n = store->NumVertices();
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }
  const int k = config.num_partitions;
  const int S = store->num_shards();
  constexpr int64_t kBlock = ShardedGraphStore::kBlockSize;

  store->ResetLoads(k);
  std::vector<PartitionId>& labels = store->labels();
  labels.assign(static_cast<size_t>(n), kNoPartition);

  std::vector<ShardScratch> scratch(static_cast<size_t>(S));
  for (ShardScratch& sc : scratch) {
    sc.freq.assign(static_cast<size_t>(k), 0);
    sc.touched.reserve(static_cast<size_t>(k));
    sc.migrations.assign(static_cast<size_t>(k), 0);
  }
  /// Migration candidate per vertex (kNoPartition = none); written by the
  /// owning shard each ComputeScores, consumed by ComputeMigrations.
  std::vector<PartitionId> candidate(static_cast<size_t>(n), kNoPartition);
  /// Per-block global-score partials, reduced in fixed block order so the
  /// floating-point sum is independent of S and scheduling.
  std::vector<double> block_score(static_cast<size_t>(store->NumBlocks()),
                                  0.0);

  ShardedRunResult out;
  pregel::RunStats& stats = out.run_stats;
  WallTimer total_timer;

  // Superstep stats mirroring the engine's layout: one "worker" per shard;
  // every vertex computes every superstep (Spinner never votes to halt).
  auto NewStepStats = [&](int64_t step) {
    pregel::SuperstepStats ss;
    ss.superstep = step;
    ss.active_vertices = n;
    ss.worker_messages_in.assign(S, 0);
    ss.worker_remote_messages_in.assign(S, 0);
    ss.worker_vertices_computed.assign(S, 0);
    ss.worker_edges_scanned.assign(S, 0);
    ss.worker_messages_out.assign(S, 0);
    for (int s = 0; s < S; ++s) {
      ss.worker_vertices_computed[s] = store->shard(s).NumOwnedVertices();
      ss.worker_edges_scanned[s] = store->shard(s).NumArcs();
    }
    return ss;
  };
  auto FinishStep = [&](pregel::SuperstepStats ss, WallTimer& timer,
                        int64_t messages) {
    ss.messages_sent = messages;
    ss.messages_remote = messages;  // per-edge locality is engine-only
    ss.wall_seconds = timer.ElapsedSeconds();
    stats.per_superstep.push_back(std::move(ss));
    ++stats.supersteps;
  };

  // --- Superstep 0: Initialize (shard-parallel). Labels are the caller's
  // fixed restart labels or hash-drawn; loads accumulate shard-locally.
  {
    WallTimer step_timer;
    pregel::SuperstepStats ss = NewStepStats(0);
    const auto initial_size = static_cast<int64_t>(initial_labels.size());
    for (int s = 0; s < S; ++s) {
      pool->Submit([&, s] {
        ShardedGraphStore::Shard& shard = store->mutable_shard(s);
        for (VertexId v = shard.begin; v < shard.end; ++v) {
          PartitionId label =
              v < initial_size ? initial_labels[v] : kNoPartition;
          if (label == kNoPartition) {
            label = lpa::InitialLabel(config.seed, v, k);
          }
          SPINNER_DCHECK(label >= 0 && label < k);
          labels[v] = label;
          shard.loads[label] +=
              LoadUnitsOf(config, shard.WeightedDegreeOf(v));
        }
        // Every vertex advertises its initial label along its edges.
        scratch[s].messages = shard.NumArcs();
      });
    }
    pool->Wait();
    int64_t messages = 0;
    for (int s = 0; s < S; ++s) {
      ss.worker_messages_out[s] = scratch[s].messages;
      messages += scratch[s].messages;
    }
    FinishStep(std::move(ss), step_timer, messages);
  }

  std::vector<int64_t> global_loads = store->MergedLoads();
  int64_t total_load = 0;
  for (const int64_t l : global_loads) total_load += l;

  // Per-partition capacities C_l (Eq. 5 / §III.B); total load is invariant
  // over the run, so these are too.
  std::vector<double> capacities(static_cast<size_t>(k), 0.0);
  if (config.partition_weights.empty()) {
    capacities.assign(static_cast<size_t>(k),
                      config.additional_capacity *
                          static_cast<double>(total_load) /
                          static_cast<double>(k));
  } else {
    double weight_sum = 0.0;
    for (const double w : config.partition_weights) weight_sum += w;
    for (int l = 0; l < k; ++l) {
      capacities[l] = config.additional_capacity *
                      static_cast<double>(total_load) *
                      config.partition_weights[l] / weight_sum;
    }
  }

  const bool observing = observer != nullptr && observer->active();
  double best_score = -1e300;
  int low_improvement_streak = 0;
  int64_t last_migrations = 0;

  for (;;) {
    // --- ComputeScores superstep (index 2·it − 1, matching the engine's
    // numbering so hash streams line up across substrates).
    const int64_t score_step = 2 * static_cast<int64_t>(out.iterations) + 1;
    WallTimer step_timer;
    pregel::SuperstepStats ss = NewStepStats(score_step);
    for (int s = 0; s < S; ++s) {
      pool->Submit([&, s, score_step] {
        ShardScratch& sc = scratch[s];
        const ShardedGraphStore::Shard& shard = store->shard(s);
        sc.local_weight = 0;
        sc.messages = 0;
        std::fill(sc.migrations.begin(), sc.migrations.end(), 0);
        for (VertexId block_begin = shard.begin; block_begin < shard.end;
             block_begin += kBlock) {
          const VertexId block_end =
              std::min<VertexId>(block_begin + kBlock, shard.end);
          double score_sum = 0.0;
          // The asynchronous view resets to the frozen global snapshot at
          // every block boundary: blocks are independent of S, so the
          // penalty each vertex sees is too.
          if (config.per_worker_async) sc.projected = global_loads;
          const std::vector<int64_t>& penalty =
              config.per_worker_async ? sc.projected : global_loads;
          for (VertexId v = block_begin; v < block_end; ++v) {
            const int64_t deg_w = shard.WeightedDegreeOf(v);
            if (deg_w == 0) {  // isolated vertex: nothing to do
              candidate[v] = kNoPartition;
              continue;
            }
            // Weighted label frequencies over the neighborhood (Eq. 4),
            // reading neighbor labels from the previous-superstep array.
            const auto neighbors = shard.Neighbors(v);
            const auto weights = shard.WeightsOf(v);
            for (size_t j = 0; j < neighbors.size(); ++j) {
              const PartitionId l = labels[neighbors[j]];
              SPINNER_DCHECK(l >= 0) << "neighbor label not initialized";
              if (sc.freq[l] == 0) sc.touched.push_back(l);
              sc.freq[l] += weights[j];
            }
            const PartitionId current = labels[v];
            const double deg = static_cast<double>(deg_w);
            const lpa::LabelChoice choice = lpa::PickLabel(
                sc.freq, sc.touched, current, deg, capacities, penalty,
                config.seed, score_step, v);
            // The global score uses the frozen global loads so the halting
            // signal is independent of shard count.
            score_sum += lpa::ScoreTerm(sc.freq[current], deg,
                                        global_loads[current],
                                        capacities[current]);
            sc.local_weight += sc.freq[current];
            if (choice.better) {
              candidate[v] = choice.label;
              const int64_t units = LoadUnitsOf(config, deg_w);
              sc.migrations[choice.label] += units;
              if (config.per_worker_async) {
                // Later vertices in this block see the would-be move.
                sc.projected[choice.label] += units;
                sc.projected[current] -= units;
              }
            } else {
              candidate[v] = kNoPartition;
            }
            for (const PartitionId l : sc.touched) sc.freq[l] = 0;
            sc.touched.clear();
          }
          block_score[block_begin / kBlock] = score_sum;
        }
      });
    }
    pool->Wait();
    ++out.iterations;
    const int iteration = out.iterations;

    double score_total = 0.0;  // fixed block-order reduction
    for (const double b : block_score) score_total += b;
    const double score = score_total / static_cast<double>(n);
    FinishStep(std::move(ss), step_timer, /*messages=*/0);

    // --- Master logic after ComputeScores, mirroring
    // SpinnerProgram::MasterCompute exactly.
    if (config.record_history || observing) {
      IterationPoint pt;
      pt.iteration = iteration;
      pt.score = score;
      pt.migrations = last_migrations;
      int64_t local = 0;
      for (const ShardScratch& sc : scratch) local += sc.local_weight;
      pt.phi = total_load == 0 ? 1.0
                               : static_cast<double>(local) /
                                     static_cast<double>(total_load);
      double weight_sum = 0.0;
      for (const double w : config.partition_weights) weight_sum += w;
      double rho = 0.0;
      for (size_t l = 0; l < global_loads.size(); ++l) {
        const double share =
            config.partition_weights.empty()
                ? 1.0 / static_cast<double>(k)
                : config.partition_weights[l] / weight_sum;
        const double ideal = static_cast<double>(total_load) * share;
        if (ideal > 0) {
          rho = std::max(rho,
                         static_cast<double>(global_loads[l]) / ideal);
        }
      }
      pt.rho = rho == 0.0 ? 1.0 : rho;
      pt.loads = global_loads;
      if (observing) {
        bool keep_going = true;
        if (observer->on_iteration) keep_going = observer->on_iteration(pt);
        if (observer->cancel != nullptr && observer->cancel->IsCancelled()) {
          keep_going = false;
        }
        if (!keep_going) out.cancelled = true;
      }
      if (config.record_history) out.history.push_back(std::move(pt));
    }
    if (out.cancelled) break;

    // Halting heuristic (§III.C).
    const double improvement = score - best_score;
    best_score = std::max(best_score, score);
    if (improvement < config.halt_epsilon) {
      ++low_improvement_streak;
    } else {
      low_improvement_streak = 0;
    }
    if (config.use_halting && iteration > 1 &&
        low_improvement_streak >= config.halt_window) {
      out.converged = true;
      break;
    }
    if (iteration >= config.max_iterations) break;

    // --- ComputeMigrations superstep (index 2·it). Migration counters
    // merge in fixed shard order before the probabilistic moves.
    std::vector<int64_t> migration_counts(static_cast<size_t>(k), 0);
    for (const ShardScratch& sc : scratch) {
      for (int l = 0; l < k; ++l) migration_counts[l] += sc.migrations[l];
    }
    const int64_t migration_step = 2 * static_cast<int64_t>(iteration);
    WallTimer mig_timer;
    pregel::SuperstepStats ms = NewStepStats(migration_step);
    for (int s = 0; s < S; ++s) {
      pool->Submit([&, s, migration_step] {
        ShardScratch& sc = scratch[s];
        ShardedGraphStore::Shard& shard = store->mutable_shard(s);
        sc.migrated = 0;
        sc.messages = 0;
        for (VertexId v = shard.begin; v < shard.end; ++v) {
          const PartitionId target = candidate[v];
          if (target == kNoPartition) continue;
          // Eq. 12–14 with b(l) frozen at the start of the iteration.
          const double remaining =
              capacities[target] -
              static_cast<double>(global_loads[target]);
          const double wanting =
              static_cast<double>(migration_counts[target]);
          const double p = lpa::MigrationProbability(remaining, wanting);
          if (!lpa::MigrationCoinAccepts(config.seed, v, migration_step,
                                         p)) {
            continue;  // migration deferred
          }
          const PartitionId old_label = labels[v];
          const int64_t units =
              LoadUnitsOf(config, shard.WeightedDegreeOf(v));
          labels[v] = target;
          shard.loads[target] += units;
          shard.loads[old_label] -= units;
          ++sc.migrated;
          sc.messages += shard.OutDegree(v);  // label update to neighbors
        }
      });
    }
    pool->Wait();
    global_loads = store->MergedLoads();
    last_migrations = 0;
    int64_t messages = 0;
    for (int s = 0; s < S; ++s) {
      last_migrations += scratch[s].migrated;
      ms.worker_messages_out[s] = scratch[s].messages;
      messages += scratch[s].messages;
    }
    FinishStep(std::move(ms), mig_timer, messages);
  }

  stats.total_wall_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace spinner
