#include "spinner/sharded_program.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "spinner/shard_superstep.h"
#include "spinner/steal_schedule.h"
#include "spinner/superstep_driver.h"

namespace spinner {

namespace {

constexpr int64_t kBlock = ShardedGraphStore::kBlockSize;

int HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

/// The in-process SuperstepBackend: every phase is dealt out as kBlockSize
/// vertex blocks through the work-stealing scheduler, executed by one
/// persistent ThreadPool task per worker running the block-range phase
/// bodies (spinner/shard_superstep.h) directly over the shared store.
/// Merges follow the determinism contract of the driver: the float
/// per-block arrays are single-writer and handed over whole (the driver
/// reduces them in fixed block order), integer counters merge by
/// order-free addition — per worker for run-global sums, under the owning
/// shard's mutex for shard loads touched by stolen blocks.
class InProcessBackend final : public SuperstepBackend {
 public:
  InProcessBackend(const SpinnerConfig& config, ShardedGraphStore* store,
                   ThreadPool* pool)
      : config_(config),
        store_(store),
        pool_(pool),
        num_workers_(pool->num_threads()),
        scratch_(static_cast<size_t>(num_workers_)),
        shard_mutex_(
            std::make_unique<std::mutex[]>(store->num_shards())),
        shard_messages_(static_cast<size_t>(store->num_shards()), 0),
        blocks_per_shard_(static_cast<size_t>(store->num_shards()), 0),
        candidate_(static_cast<size_t>(store->NumVertices()), kNoPartition),
        block_score_(static_cast<size_t>(store->NumBlocks()), 0.0),
        block_candidates_(static_cast<size_t>(store->NumBlocks()), 0) {
    for (ShardScratch& sc : scratch_) sc.Prepare(config.num_partitions);
    for (int s = 0; s < store->num_shards(); ++s) {
      const ShardedGraphStore::Shard& shard = store->shard(s);
      blocks_per_shard_[s] = (shard.end - shard.begin + kBlock - 1) / kBlock;
    }
  }

  Status Initialize(const std::vector<PartitionId>& initial_labels,
                    InitOutcome* out) override {
    const int S = store_->num_shards();
    const int k = config_.num_partitions;
    for (int s = 0; s < S; ++s) {
      store_->mutable_shard(s).loads.assign(static_cast<size_t>(k), 0);
    }
    std::vector<PartitionId>& labels = store_->labels();
    RunPhase([&](int worker, int s, VertexId begin, VertexId end) {
      ShardScratch& sc = scratch_[worker];
      BlocksInitialize(config_, store_->shard(s), begin, end, labels,
                       initial_labels, &sc);
      ApplyLoadDelta(s, &sc);
    });
    // Initialize's message count per shard is exactly its arc count (every
    // vertex advertises its label along its edges).
    out->messages_out.resize(S);
    for (int s = 0; s < S; ++s) {
      out->messages_out[s] = store_->shard(s).NumArcs();
    }
    return Status::OK();
  }

  Status ComputeScores(int64_t superstep,
                       const std::vector<int64_t>& global_loads,
                       const std::vector<double>& capacities,
                       ScoreOutcome* out) override {
    const std::vector<PartitionId>& labels = store_->labels();
    for (ShardScratch& sc : scratch_) {
      PrepareScoresScratch(config_, global_loads, capacities, &sc);
      sc.ResetScores();
    }
    RunPhase([&](int worker, int s, VertexId begin, VertexId end) {
      BlocksComputeScores(config_, store_->shard(s), begin, end, labels,
                          superstep, candidate_, block_score_,
                          block_candidates_, &scratch_[worker]);
    });
    out->block_score = block_score_;
    out->local_weight = 0;
    out->migration_counts.assign(
        static_cast<size_t>(config_.num_partitions), 0);
    for (const ShardScratch& sc : scratch_) {
      out->local_weight += sc.local_weight;
      for (size_t l = 0; l < out->migration_counts.size(); ++l) {
        out->migration_counts[l] += sc.migrations[l];
      }
    }
    return Status::OK();
  }

  Status ComputeMigrations(int64_t superstep,
                           const std::vector<int64_t>& global_loads,
                           const std::vector<double>& capacities,
                           const std::vector<int64_t>& migration_counts,
                           MigrateOutcome* out) override {
    std::vector<PartitionId>& labels = store_->labels();
    for (ShardScratch& sc : scratch_) {
      PrepareMigrateScratch(config_, global_loads, capacities,
                            migration_counts, &sc);
      sc.ResetDelta();
    }
    std::fill(shard_messages_.begin(), shard_messages_.end(), 0);
    RunPhase([&](int worker, int s, VertexId begin, VertexId end) {
      ShardScratch& sc = scratch_[worker];
      BlocksComputeMigrations(config_, store_->shard(s), begin, end, labels,
                              superstep, candidate_, block_candidates_,
                              /*moves=*/nullptr, &sc);
      ApplyLoadDelta(s, &sc);
    });
    out->migrated = 0;
    for (const ShardScratch& sc : scratch_) out->migrated += sc.migrated;
    out->messages_out.assign(shard_messages_.begin(), shard_messages_.end());
    return Status::OK();
  }

  void CollectScheduleStats(ScheduleStats* out) override {
    const StealSchedule::Stats stats = schedule_.stats();
    out->tasks = stats.tasks;
    out->stolen_tasks = stats.stolen;
    out->phases = phases_;
  }

 private:
  /// Deals the store's blocks out to num_workers_ pool tasks; `body`
  /// receives (worker, shard, vertex_begin, vertex_end) for every claimed
  /// block and must only touch block-owned state plus that worker's
  /// scratch. Blocks until the phase is drained.
  template <typename Body>
  void RunPhase(const Body& body) {
    schedule_.ResetPhase(blocks_per_shard_, num_workers_);
    ++phases_;
    for (int w = 0; w < num_workers_; ++w) {
      pool_->Submit([this, w, &body] {
        int s = 0;
        int64_t block = 0;
        bool stolen = false;
        while (schedule_.Claim(w, &s, &block, &stolen)) {
          const ShardedGraphStore::Shard& shard = store_->shard(s);
          const VertexId begin = shard.begin + block * kBlock;
          const VertexId end = std::min<VertexId>(begin + kBlock, shard.end);
          body(w, s, begin, end);
        }
      });
    }
    pool_->Wait();
  }

  /// Applies one block's scratch deltas (loads, message count) to the
  /// owning shard under its mutex, then rearms the scratch for the next
  /// block. Order-free integer sums: the claim order never shows in the
  /// merged loads.
  void ApplyLoadDelta(int s, ShardScratch* sc) {
    {
      std::lock_guard<std::mutex> lock(shard_mutex_[s]);
      std::vector<int64_t>& loads = store_->mutable_shard(s).loads;
      for (size_t l = 0; l < loads.size(); ++l) {
        loads[l] += sc->load_delta[l];
      }
      shard_messages_[s] += sc->messages;
    }
    std::fill(sc->load_delta.begin(), sc->load_delta.end(), 0);
    sc->messages = 0;
  }

  const SpinnerConfig& config_;
  ShardedGraphStore* store_;
  ThreadPool* pool_;
  const int num_workers_;
  /// One scratch per worker (not per shard): stealing moves workers
  /// across shards, and every scratch accumulator is grouping-invariant.
  std::vector<ShardScratch> scratch_;
  StealSchedule schedule_;
  int64_t phases_ = 0;
  /// Serializes load/message application for blocks of the same shard.
  std::unique_ptr<std::mutex[]> shard_mutex_;
  std::vector<int64_t> shard_messages_;
  std::vector<int64_t> blocks_per_shard_;
  /// Migration candidate per vertex (kNoPartition = none); written by the
  /// owning block each ComputeScores, consumed by ComputeMigrations.
  std::vector<PartitionId> candidate_;
  /// Per-block global-score partials (see driver header) and candidate
  /// counts (lets ComputeMigrations skip settled blocks).
  std::vector<double> block_score_;
  std::vector<int32_t> block_candidates_;
};

}  // namespace

int ResolveNumShards(const SpinnerConfig& config, int64_t num_vertices) {
  if (config.num_shards > 0) return config.num_shards;
  if (config.num_workers > 0) return config.num_workers;
  const int64_t blocks =
      (num_vertices + ShardedGraphStore::kBlockSize - 1) /
      ShardedGraphStore::kBlockSize;
  return static_cast<int>(
      std::clamp<int64_t>(blocks, 1, HardwareThreads()));
}

int ResolveNumThreads(const SpinnerConfig& config, int num_shards) {
  if (config.num_threads > 0) return config.num_threads;
  // Work stealing decouples threads from shards: extra threads drain
  // blocks of whatever shard has the most left, so the shard count no
  // longer caps useful parallelism.
  (void)num_shards;
  return HardwareThreads();
}

Result<ShardedRunResult> RunShardedSpinner(
    const SpinnerConfig& config, ShardedGraphStore* store,
    std::vector<PartitionId> initial_labels, ThreadPool* pool,
    const ProgressObserver* observer) {
  SPINNER_CHECK(store != nullptr && pool != nullptr);
  SPINNER_RETURN_IF_ERROR(config.Validate());
  if (store->NumVertices() == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }
  InProcessBackend backend(config, store, pool);
  return DriveSpinnerSupersteps(config, store, std::move(initial_labels),
                                &backend, observer);
}

}  // namespace spinner
