// PartitioningSession: the stateful, maintained-partitioning API.
//
// The paper's central claim is that Spinner is not a one-shot partitioner
// but a partitioning that is *kept* good as the graph changes (§III.D) and
// the cluster resizes (§III.E). This class owns that lifecycle: the raw
// edge list, the converted graph — held as a ShardedGraphStore whose
// shard-local CSRs the shard-parallel LPA runs over — and the current
// assignment live here, so callers express intent ("the graph changed",
// "we have 4 more machines") instead of re-wiring delta application,
// conversion and label threading by hand.
//
//   PartitioningSession session(config,
//                               SessionOptions{.num_shards = 8,
//                                              .num_threads = 4});
//   SPINNER_CHECK_OK(session.Open(n, edges, /*directed=*/true));
//   ...
//   GraphDelta delta;                                  // graph changed
//   delta.AddVertex(200).AddEdge(5, n + 10);
//   SPINNER_CHECK_OK(session.ApplyDelta(delta));       // adapt, not redo
//   ...
//   SPINNER_CHECK_OK(session.Rescale(40));             // cluster grew
//   SPINNER_CHECK_OK(session.Snapshot("state.spns"));  // persist
//
// Sharding is a pure parallelism knob: the partitioning computed by a
// session is bit-identical for every {num_shards, num_threads} choice
// (see spinner/sharded_program.h for why). Deltas that do not grow the
// vertex range re-slice only the shards owning a touched vertex.
//
// Every mutation runs label propagation from the previous assignment and
// commits atomically: on error the session keeps its pre-call state.
#ifndef SPINNER_SPINNER_SESSION_H_
#define SPINNER_SPINNER_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/threadpool.h"
#include "graph/binary_io.h"
#include "graph/csr_graph.h"
#include "graph/delta.h"
#include "graph/sharded_store.h"
#include "graph/types.h"
#include "spinner/config.h"
#include "spinner/metrics.h"
#include "spinner/observer.h"
#include "spinner/partitioner.h"

namespace spinner {

namespace dist {
class WorkerRegistry;
}  // namespace dist

/// Execution-shape knobs of a session, orthogonal to the algorithm
/// configuration. The nested `execution` struct (ExecutionOptions, shared
/// with SpinnerConfig and PartitionerOptions) is the one source of truth;
/// the flat fields are DEPRECATED shims kept one release so existing
/// call sites compile unmodified. Precedence per field:
/// session `execution` > session flat fields > config `execution` >
/// config flat fields. No value here ever changes the partitioning a
/// session computes — both bit-identity and the float histories hold
/// across every mode.
struct SessionOptions {
  /// DEPRECATED — use execution.num_shards.
  int num_shards = 0;
  /// DEPRECATED — use execution.num_threads.
  int num_threads = 0;
  /// DEPRECATED — use execution.mode.
  ExecutionMode execution_mode = ExecutionMode::kInProcess;
  /// DEPRECATED — use execution.num_workers.
  int num_workers = 0;
  /// DEPRECATED — use execution.wire_max_payload.
  uint64_t wire_max_payload = 0;
  /// Where and how wide the session's label propagation executes,
  /// including the kTcp endpoint config (listen_address, handshake
  /// timeout, worker store directory). See spinner/execution_options.h.
  ExecutionOptions execution = {};
};

/// Owns one graph and its maintained partitioning. Not thread-safe; one
/// session per partitioned graph.
class PartitioningSession {
 public:
  /// `config.num_partitions` is the initial k; Rescale() changes it.
  /// `options` fixes the session's shard/thread counts (non-zero values
  /// win over the equivalent SpinnerConfig fields). An invalid config is
  /// reported by the first lifecycle call rather than by crashing the
  /// constructor.
  explicit PartitioningSession(const SpinnerConfig& config,
                               SessionOptions options = {});
  ~PartitioningSession();  // out-of-line: owns a forward-declared registry

  // --- Lifecycle ---------------------------------------------------------

  /// Takes ownership of `edges` over `num_vertices` vertices and computes
  /// the initial partitioning from scratch. `directed` selects the
  /// conversion: true applies the paper's Eq. 3 weighting, false treats
  /// `edges` as an undirected edge list (each edge listed once).
  /// Fails (FailedPrecondition) if the session is already open.
  Status Open(int64_t num_vertices, EdgeList edges, bool directed = true);

  /// Applies `delta` to the owned edge list, reconverts, and adapts the
  /// partitioning incrementally (§III.D): existing vertices keep their
  /// labels as the starting point, new vertices join the least-loaded
  /// partition, then label propagation re-optimizes. A delta that does
  /// not add vertices re-slices only the store shards owning an endpoint
  /// of a changed edge.
  Status ApplyDelta(const GraphDelta& delta);

  /// Elastic adaptation (§III.E) to `new_k` partitions. The probabilistic
  /// expand/shrink re-labeling seeds label propagation; after success
  /// num_partitions() == new_k.
  Status Rescale(int new_k);

  /// Runs additional label-propagation iterations from the current
  /// assignment without changing the graph or k — e.g. after a cancelled
  /// run or to tighten a restored snapshot.
  Status Refine();

  /// Elastic worker-fleet resize for the off-thread modes: the next
  /// lifecycle call runs with `num_workers` workers. Under kTcp this also
  /// drains surplus pooled registry connections immediately (the drained
  /// dial-in workers see EOF and exit 0); growing the fleet needs no
  /// registry action — the next Acquire waits for additional dial-ins.
  /// Worker count never affects the computed partitioning (bit-identity
  /// across shapes), so no re-partitioning happens here.
  /// FailedPrecondition under kInProcess, where there is no fleet.
  Status ResizeWorkers(int num_workers);

  /// The worker count the next off-thread lifecycle call will use.
  int num_workers() const { return config_.num_processes; }

  // --- Persistence -------------------------------------------------------

  /// Writes graph + assignment + k to `path` (binary SPNS format).
  Status Snapshot(const std::string& path) const;

  /// Replaces the session state with a snapshot, without re-running label
  /// propagation. A session can Restore() whether or not it was open.
  Status Restore(const std::string& path);

  /// Restore() from an in-memory snapshot — the entry point of the
  /// incremental (base + delta-log) checkpoint path
  /// (stream/checkpoint_log.h), which replays a log into a snapshot and
  /// installs it here without a temp-file round trip.
  Status RestoreSnapshot(graph_io::SessionSnapshot snapshot);

  // --- Observation -------------------------------------------------------

  /// Installs a per-iteration observer (φ/ρ/score callback + cancellation
  /// token) used by every subsequent lifecycle call. Pass {} to clear.
  void SetProgressObserver(ProgressObserver observer);

  // --- Introspection -----------------------------------------------------

  /// True after a successful Open() or Restore().
  bool is_open() const { return open_; }

  /// Current partition count (k). Tracks Rescale().
  int num_partitions() const { return current_k_; }

  /// Shard count of the graph store (0 until the session is open).
  int num_shards() const { return store_.num_shards(); }

  int64_t num_vertices() const { return num_vertices_; }

  /// True if the owned edge list is directed (the conversion applied the
  /// paper's Eq. 3 weighting). Fixed by Open()/Restore().
  bool directed() const { return directed_; }

  const EdgeList& edges() const { return edges_; }
  const CsrGraph& converted() const { return converted_; }

  /// The sharded graph store label propagation runs over. Valid while the
  /// session is open; exposes shard ranges, per-shard loads and rebuild
  /// counts (observability for the owning-shards-only delta contract).
  const ShardedGraphStore& store() const { return store_; }

  /// The execution-shape options the session was constructed with.
  const SessionOptions& options() const { return options_; }

  /// The fully merged execution options this session runs with (session
  /// options folded over the config, shims resolved).
  const ExecutionOptions& execution() const { return execution_; }

  /// The effective execution mode (any layer's options or a config-driven
  /// num_processes can select an off-thread mode).
  ExecutionMode execution_mode() const { return execution_.mode; }

  /// kTcp only: the "host:port" dial-in workers must connect to. Binds
  /// the session's worker registry on first call (so workers can be
  /// launched before Open()). The registry — and its pooled worker
  /// connections — persists across lifecycle calls: a worker that stays
  /// connected keeps its shard slices and resumes without re-downloading.
  Result<std::string> TcpAddress();

  /// The maintained assignment: one label in [0, num_partitions()) per
  /// vertex.
  const std::vector<PartitionId>& assignment() const { return assignment_; }

  /// Full result (iterations, history, run stats, metrics) of the last
  /// lifecycle call that ran label propagation. Empty default after
  /// Restore() — quality is available via Metrics().
  const PartitionResult& last_result() const { return last_result_; }

  /// Quality of the current assignment, computed on demand.
  Result<PartitionMetrics> Metrics() const;

  /// The session's configuration (num_partitions reflects the current k).
  const SpinnerConfig& config() const { return config_; }

 private:
  /// Builds the converted graph for the owned edge list.
  Result<CsrGraph> Convert(int64_t num_vertices,
                           const EdgeList& edges) const;

  /// Fails unless the session is open and the config is valid.
  Status CheckReady() const;

  /// Slices `converted` into the session's shard count.
  Result<ShardedGraphStore> BuildStore(const CsrGraph& converted) const;

  /// Creates the thread pool on first use (after the shard count is known).
  void EnsurePool();

  /// kTcp only: binds the persistent WorkerRegistry on first use.
  Status EnsureRegistry();

  /// Runs shard-parallel label propagation over store_ from
  /// `initial_labels` with `k` partitions and fills `out` (metrics are
  /// computed against `metrics_graph`). On success store_.labels() is the
  /// new assignment.
  Status RunLpa(const CsrGraph& metrics_graph,
                std::vector<PartitionId> initial_labels, int k,
                PartitionResult* out);

  SpinnerConfig config_;   // num_partitions kept equal to current_k_
  SessionOptions options_;
  ExecutionOptions execution_;  // merged across session + config layers
  Status init_status_;     // config validation outcome, reported lazily
  /// kTcp: the listener + pooled worker connections, shared by every
  /// lifecycle call of this session.
  std::unique_ptr<dist::WorkerRegistry> registry_;
  bool open_ = false;
  bool directed_ = false;
  int current_k_ = 0;
  int64_t num_vertices_ = 0;
  EdgeList edges_;
  CsrGraph converted_;
  ShardedGraphStore store_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<PartitionId> assignment_;
  PartitionResult last_result_;
  ProgressObserver observer_;
};

}  // namespace spinner

#endif  // SPINNER_SPINNER_SESSION_H_
