#include "spinner/execution_options.h"

#include "common/string_util.h"

namespace spinner {

Status ExecutionOptions::Validate() const {
  if (num_shards < 0 || num_threads < 0 || num_workers < 0) {
    return Status::InvalidArgument(StrFormat(
        "execution.num_shards/num_threads/num_workers must be >= 0 "
        "(0 = auto; got %d/%d/%d)",
        num_shards, num_threads, num_workers));
  }
  // 64 = dist/transport.h kMinFramePayload (spinner/ cannot include
  // dist/; a static_assert in transport.cc keeps the literal in sync).
  if (wire_max_payload != 0 && wire_max_payload < 64) {
    return Status::InvalidArgument(StrFormat(
        "execution.wire_max_payload must be 0 (transport default) or "
        ">= 64 bytes (got %llu)",
        static_cast<unsigned long long>(wire_max_payload)));
  }
  if (handshake_timeout_ms <= 0) {
    return Status::InvalidArgument(StrFormat(
        "execution.handshake_timeout_ms must be > 0 (got %lld)",
        static_cast<long long>(handshake_timeout_ms)));
  }
  if (rpc_timeout_ms <= 0) {
    return Status::InvalidArgument(StrFormat(
        "execution.rpc_timeout_ms must be > 0 (got %lld): every blocking "
        "coordinator recv needs a finite deadline",
        static_cast<long long>(rpc_timeout_ms)));
  }
  if (heartbeat_period_ms <= 0) {
    return Status::InvalidArgument(StrFormat(
        "execution.heartbeat_period_ms must be > 0 (got %lld)",
        static_cast<long long>(heartbeat_period_ms)));
  }
  if (max_recovery_attempts < 0) {
    return Status::InvalidArgument(StrFormat(
        "execution.max_recovery_attempts must be >= 0 (0 = recovery "
        "disabled; got %d)",
        max_recovery_attempts));
  }
  if (mode == ExecutionMode::kTcp && num_workers <= 0) {
    return Status::InvalidArgument(
        "execution.mode = kTcp requires an explicit num_workers: the "
        "coordinator must know how many dial-in workers to wait for");
  }
  return Status::OK();
}

ExecutionOptions MergedExecution(const ExecutionOptions& primary,
                                 const ExecutionOptions& fallback) {
  const ExecutionOptions defaults;
  ExecutionOptions merged = primary;
  if (merged.mode == defaults.mode) merged.mode = fallback.mode;
  if (merged.num_shards == defaults.num_shards) {
    merged.num_shards = fallback.num_shards;
  }
  if (merged.num_threads == defaults.num_threads) {
    merged.num_threads = fallback.num_threads;
  }
  if (merged.num_workers == defaults.num_workers) {
    merged.num_workers = fallback.num_workers;
  }
  if (merged.wire_max_payload == defaults.wire_max_payload) {
    merged.wire_max_payload = fallback.wire_max_payload;
  }
  if (merged.listen_address == defaults.listen_address) {
    merged.listen_address = fallback.listen_address;
  }
  if (merged.worker_connect == defaults.worker_connect) {
    merged.worker_connect = fallback.worker_connect;
  }
  if (merged.worker_store_dir == defaults.worker_store_dir) {
    merged.worker_store_dir = fallback.worker_store_dir;
  }
  if (merged.handshake_timeout_ms == defaults.handshake_timeout_ms) {
    merged.handshake_timeout_ms = fallback.handshake_timeout_ms;
  }
  if (merged.rpc_timeout_ms == defaults.rpc_timeout_ms) {
    merged.rpc_timeout_ms = fallback.rpc_timeout_ms;
  }
  if (merged.heartbeat_period_ms == defaults.heartbeat_period_ms) {
    merged.heartbeat_period_ms = fallback.heartbeat_period_ms;
  }
  if (merged.max_recovery_attempts == defaults.max_recovery_attempts) {
    merged.max_recovery_attempts = fallback.max_recovery_attempts;
  }
  return merged;
}

}  // namespace spinner
