// SpinnerGraphPartitioner: Spinner behind the uniform GraphPartitioner
// interface, so benches, the CLI and the registry treat it exactly like
// the Table I baselines — with the adapt/rescale capabilities the
// baselines (restreaming aside) lack.
//
//   auto p = PartitionerRegistry::Create("spinner", options);
//   auto labels = (*p)->Partition(converted, k);
//   auto adapted = (*p)->Repartition(grown, k, *labels);
#ifndef SPINNER_SPINNER_SPINNER_GRAPH_PARTITIONER_H_
#define SPINNER_SPINNER_SPINNER_GRAPH_PARTITIONER_H_

#include "baselines/partitioner_interface.h"
#include "spinner/partitioner.h"

namespace spinner {

/// Adapter over SpinnerPartitioner. The k passed to the interface methods
/// overrides config.num_partitions per call; everything else (c, ε, seed,
/// workers, balance mode) comes from the config given at construction.
class SpinnerGraphPartitioner : public GraphPartitioner {
 public:
  explicit SpinnerGraphPartitioner(SpinnerConfig config = {})
      : config_(config) {}

  std::string name() const override { return "spinner"; }

  Result<std::vector<PartitionId>> Partition(const CsrGraph& converted,
                                             int k) const override;

  bool SupportsRepartition() const override { return true; }
  Result<std::vector<PartitionId>> Repartition(
      const CsrGraph& converted, int k,
      std::span<const PartitionId> previous) const override;

  bool SupportsRescale() const override { return true; }
  Result<std::vector<PartitionId>> Rescale(
      const CsrGraph& converted, std::span<const PartitionId> previous,
      int old_k, int new_k) const override;

  const SpinnerConfig& config() const { return config_; }

 private:
  SpinnerConfig config_;
};

/// Registry hook: adds "spinner". Called by PartitionerRegistry.
bool RegisterSpinnerGraphPartitioner();

}  // namespace spinner

#endif  // SPINNER_SPINNER_SPINNER_GRAPH_PARTITIONER_H_
