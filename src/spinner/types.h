// Vertex/edge/message types of the Spinner Pregel program.
#ifndef SPINNER_SPINNER_TYPES_H_
#define SPINNER_SPINNER_TYPES_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace spinner {

/// Per-vertex state (paper §IV.A): current label, plus the migration
/// candidacy chosen by ComputeScores and consumed by ComputeMigrations.
struct SpinnerVertexValue {
  /// Current partition label α(v).
  PartitionId label = kNoPartition;
  /// Label this vertex wants to migrate to (valid iff is_candidate).
  PartitionId candidate = kNoPartition;
  /// Flagged by ComputeScores when a better label was found.
  bool is_candidate = false;
  /// Cached weighted degree Σ_u w(v,u): the load this vertex contributes to
  /// its partition. Computed once at initialization.
  int64_t weighted_degree = 0;
};

/// Per-edge state: the conversion weight w(u,v) ∈ {1,2} (Eq. 3) and the
/// last known label of the neighbor, updated via messages — "each vertex
/// stores the label of a neighbor in the value of the edge" (§IV.A.2).
struct SpinnerEdgeValue {
  EdgeWeight weight = 1;
  PartitionId neighbor_label = kNoPartition;
};

/// The only message Spinner exchanges: "vertex `source` now has `label`".
/// Also reused (with label unused) for NeighborPropagation.
struct LabelMessage {
  VertexId source = 0;
  PartitionId label = kNoPartition;
};

/// One point of the per-iteration evolution curves (paper Fig. 4).
struct IterationPoint {
  int iteration = 0;
  /// Weighted ratio of local (intra-partition) edges φ.
  double phi = 0.0;
  /// Maximum normalized load ρ.
  double rho = 0.0;
  /// Normalized global score: score(G)/|V| (Eq. 10 scaled to [-1, 1]).
  double score = 0.0;
  /// Vertices that migrated in this iteration's ComputeMigrations step.
  int64_t migrations = 0;
  /// Snapshot of the per-partition loads b(l) at this iteration — the load
  /// vector x_t of the paper's convergence analysis (§III.C); consumed by
  /// spinner/theory.h.
  std::vector<int64_t> loads;
};

}  // namespace spinner

#endif  // SPINNER_SPINNER_TYPES_H_
