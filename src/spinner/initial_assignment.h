// Initial label assignment policies for the three partitioning modes:
// scratch (§III.A: uniform random), incremental (§III.D: keep previous
// labels, new vertices join the least-loaded partition) and elastic
// (§III.E: probabilistic migration to added partitions / evacuation of
// removed ones). Pure functions — unit-tested in isolation, then fed to
// SpinnerProgram as the initial_labels vector.
#ifndef SPINNER_SPINNER_INITIAL_ASSIGNMENT_H_
#define SPINNER_SPINNER_INITIAL_ASSIGNMENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace spinner {

/// Uniform random label in [0, k) per vertex, deterministic in seed.
std::vector<PartitionId> RandomAssignment(int64_t num_vertices, int k,
                                          uint64_t seed);

/// Incremental restart: vertices [0, previous.size()) keep their previous
/// label; each new vertex joins the currently least-loaded partition (by
/// weighted degree over `new_graph`), processed in id order with loads
/// updated as it goes. Fails if previous labels fall outside [0, k) or the
/// graph has fewer vertices than `previous`.
Result<std::vector<PartitionId>> ExtendForNewVertices(
    const CsrGraph& new_graph, std::span<const PartitionId> previous, int k);

/// Elastic scale-out (§III.E): with n = new_k − old_k added partitions,
/// each vertex migrates with probability n/(old_k+n) to one of the new
/// partitions chosen uniformly at random (Eq. 11). Fails unless
/// new_k > old_k and previous labels lie in [0, old_k).
Result<std::vector<PartitionId>> ElasticExpand(
    std::span<const PartitionId> previous, int old_k, int new_k,
    uint64_t seed);

/// Elastic scale-in (§III.E): partitions [new_k, old_k) are removed; their
/// vertices pick a remaining partition uniformly at random. Fails unless
/// 0 < new_k < old_k and previous labels lie in [0, old_k).
Result<std::vector<PartitionId>> ElasticShrink(
    std::span<const PartitionId> previous, int old_k, int new_k,
    uint64_t seed);

}  // namespace spinner

#endif  // SPINNER_SPINNER_INITIAL_ASSIGNMENT_H_
