// FENNEL streaming partitioner (Tsourakakis et al., WSDM 2014) — the
// "[28]" row of paper Table I.
//
// Each streamed vertex v is placed on the partition maximizing
//   |N(v) ∩ P_i| − α·γ/2 · |P_i|^(γ−1)
// with the paper's recommended γ = 1.5 and α = √k·m / n^1.5, under a hard
// balance cap of ν·n/k vertices per partition.
#ifndef SPINNER_BASELINES_FENNEL_PARTITIONER_H_
#define SPINNER_BASELINES_FENNEL_PARTITIONER_H_

#include "baselines/partitioner_interface.h"

namespace spinner {

/// One-pass Fennel with the standard parameterization.
class FennelPartitioner : public GraphPartitioner {
 public:
  /// `gamma` and `balance_cap` (ν) follow the FENNEL paper defaults
  /// (γ=1.5, ν=1.1); `stream_seed` shuffles arrival order (0 = id order);
  /// `balance_on_edges` caps weighted degree instead of vertex count (the
  /// quantity the paper's ρ measures).
  explicit FennelPartitioner(double gamma = 1.5, double balance_cap = 1.1,
                             uint64_t stream_seed = 0,
                             bool balance_on_edges = false)
      : gamma_(gamma),
        balance_cap_(balance_cap),
        stream_seed_(stream_seed),
        balance_on_edges_(balance_on_edges) {}
  std::string name() const override { return "fennel"; }
  Result<std::vector<PartitionId>> Partition(const CsrGraph& converted,
                                             int k) const override;

 private:
  double gamma_;
  double balance_cap_;
  uint64_t stream_seed_;
  bool balance_on_edges_;
};

/// Registry hook: adds "fennel". Called by PartitionerRegistry.
bool RegisterFennelPartitioner();

}  // namespace spinner

#endif  // SPINNER_BASELINES_FENNEL_PARTITIONER_H_
