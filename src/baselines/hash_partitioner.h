// Hash partitioning: the de-facto default the paper sets out to replace.
// Vertex v goes to h(v) mod k. No locality, but perfect scalability and —
// on hub-free graphs — decent vertex balance.
#ifndef SPINNER_BASELINES_HASH_PARTITIONER_H_
#define SPINNER_BASELINES_HASH_PARTITIONER_H_

#include "baselines/partitioner_interface.h"

namespace spinner {

/// h(v) mod k with a mixing hash (matches Giraph's default placement).
class HashPartitioner : public GraphPartitioner {
 public:
  std::string name() const override { return "hash"; }
  Result<std::vector<PartitionId>> Partition(const CsrGraph& converted,
                                             int k) const override;
};

/// Uniform random assignment with a seed; the "random partitioning"
/// initial state of paper Fig. 4.
class RandomPartitioner : public GraphPartitioner {
 public:
  explicit RandomPartitioner(uint64_t seed = 42) : seed_(seed) {}
  std::string name() const override { return "random"; }
  Result<std::vector<PartitionId>> Partition(const CsrGraph& converted,
                                             int k) const override;

 private:
  uint64_t seed_;
};

/// Registry hook: adds "hash" and "random". Called by PartitionerRegistry.
bool RegisterHashPartitioners();

}  // namespace spinner

#endif  // SPINNER_BASELINES_HASH_PARTITIONER_H_
