// The single polymorphic interface every partitioner in the library
// implements — the Table I baselines and Spinner itself — so benches, the
// CLI and the registry can sweep them uniformly. Construct implementations
// by name through PartitionerRegistry (partitioner_registry.h).
#ifndef SPINNER_BASELINES_PARTITIONER_INTERFACE_H_
#define SPINNER_BASELINES_PARTITIONER_INTERFACE_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"
#include "spinner/config.h"

namespace spinner {

/// Typed construction options understood by the registry factories. One
/// struct covers every implementation (RocksDB options idiom); each factory
/// reads only the fields it understands and ignores the rest, so a single
/// options value can drive a uniform sweep across all partitioners.
struct PartitionerOptions {
  /// Seed for the label-drawing partitioners (random, spinner, multilevel
  /// matching order). Stream arrival order is controlled separately by
  /// `stream_seed` because "no shuffle" is its meaningful default.
  uint64_t seed = 42;

  /// Streaming partitioners (ldg/fennel/restreaming): shuffle the arrival
  /// order with this seed; 0 = natural vertex-id order (the common
  /// evaluation setting, and the default even when `seed` is set).
  uint64_t stream_seed = 0;

  /// Streaming partitioners: cap weighted degree (edge balance, the
  /// quantity the paper's ρ measures) instead of vertex counts. Defaults to
  /// edge balance so sweeps compare against Spinner's objective.
  bool balance_on_edges = true;

  /// DEPRECATED — use execution.num_shards / num_threads / num_workers.
  /// Parallel partitioners (spinner): shards of the graph store, OS
  /// threads driving them in-process, and worker processes for the
  /// cross-process execution mode (num_processes > 0 drives that many
  /// ShardWorkers speaking the dist wire protocol; 0 = in-process). Pure
  /// execution-shape knobs — results never depend on them. Sequential
  /// baselines ignore all three.
  int num_shards = 0;
  int num_threads = 0;
  int num_processes = 0;

  /// DEPRECATED — use execution.wire_max_payload. Cross-process wire
  /// transport: per-frame payload ceiling in bytes (larger messages
  /// stream across chunk frames). 0 = transport default
  /// (SPINNER_WIRE_MAX_PAYLOAD env override, or 1 GiB). Ignored
  /// in-process.
  uint64_t wire_max_payload = 0;

  /// The execution shape (mode, widths, wire and endpoint config) shared
  /// with SpinnerConfig and SessionOptions; non-default fields win over
  /// the deprecated flat knobs above and over the equivalent fields of
  /// `spinner`. See spinner/execution_options.h.
  ExecutionOptions execution = {};

  /// Fennel: γ exponent and ν balance cap (WSDM'14 defaults).
  double fennel_gamma = 1.5;
  double fennel_balance_cap = 1.1;

  /// Restreaming: number of LDG passes.
  int restream_passes = 10;

  /// Multilevel: coarsening stop factor, balance slack, FM passes per
  /// level (mirrors MultilevelOptions; kept flat so this header does not
  /// depend on the concrete implementation).
  int multilevel_coarsen_until_factor = 8;
  double multilevel_balance = 1.03;
  int multilevel_refine_passes = 10;

  /// Spinner: the full algorithm configuration. `spinner.num_partitions`
  /// is overridden by the k passed to Partition(); `spinner.seed` follows
  /// `seed` unless explicitly diverged.
  SpinnerConfig spinner;
};

/// A k-way partitioner over a converted (symmetric, weighted) graph.
///
/// All implementations support one-shot Partition(). The adapt/rescale
/// lifecycle entry points (paper §III.D/§III.E) are optional capabilities:
/// probe SupportsRepartition()/SupportsRescale() before calling them, or
/// handle the Unimplemented status they return by default.
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;

  /// Human-readable name for reports ("hash", "fennel", ...).
  virtual std::string name() const = 0;

  /// Computes a label in [0, k) for every vertex.
  virtual Result<std::vector<PartitionId>> Partition(
      const CsrGraph& converted, int k) const = 0;

  /// True iff Repartition() is implemented (incremental adaptation).
  virtual bool SupportsRepartition() const { return false; }

  /// True iff Rescale() is implemented (elastic adaptation).
  virtual bool SupportsRescale() const { return false; }

  /// Incremental adaptation: recompute a k-way partitioning of `converted`
  /// starting from `previous` (which may cover fewer vertices than the
  /// graph if it grew). Returns Unimplemented unless SupportsRepartition().
  virtual Result<std::vector<PartitionId>> Repartition(
      const CsrGraph& converted, int k,
      std::span<const PartitionId> previous) const {
    (void)converted;
    (void)k;
    (void)previous;
    return Status::Unimplemented(name() +
                                 " does not support incremental adaptation");
  }

  /// Elastic adaptation from `old_k` to `new_k` partitions starting from
  /// `previous` (which must cover every vertex with a label in [0, old_k)).
  /// Returns Unimplemented unless SupportsRescale().
  virtual Result<std::vector<PartitionId>> Rescale(
      const CsrGraph& converted, std::span<const PartitionId> previous,
      int old_k, int new_k) const {
    (void)converted;
    (void)previous;
    (void)old_k;
    (void)new_k;
    return Status::Unimplemented(name() +
                                 " does not support elastic adaptation");
  }
};

}  // namespace spinner

#endif  // SPINNER_BASELINES_PARTITIONER_INTERFACE_H_
