// Common interface for the baseline partitioners the paper compares against
// in Table I, so benches can sweep them uniformly.
#ifndef SPINNER_BASELINES_PARTITIONER_INTERFACE_H_
#define SPINNER_BASELINES_PARTITIONER_INTERFACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace spinner {

/// A k-way partitioner over a converted (symmetric, weighted) graph.
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;

  /// Human-readable name for reports ("hash", "fennel", ...).
  virtual std::string name() const = 0;

  /// Computes a label in [0, k) for every vertex.
  virtual Result<std::vector<PartitionId>> Partition(
      const CsrGraph& converted, int k) const = 0;
};

}  // namespace spinner

#endif  // SPINNER_BASELINES_PARTITIONER_INTERFACE_H_
