#include "baselines/fennel_partitioner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "baselines/partitioner_registry.h"
#include "common/random.h"

namespace spinner {

Result<std::vector<PartitionId>> FennelPartitioner::Partition(
    const CsrGraph& converted, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (gamma_ <= 1.0) return Status::InvalidArgument("gamma must be > 1");
  if (balance_cap_ < 1.0) {
    return Status::InvalidArgument("balance_cap must be >= 1");
  }
  const int64_t n = converted.NumVertices();
  if (n == 0) return std::vector<PartitionId>{};
  // m = undirected edge count; the converted graph stores each edge twice.
  const double m = static_cast<double>(converted.NumArcs()) / 2.0;
  const double alpha = std::sqrt(static_cast<double>(k)) * m /
                       std::pow(static_cast<double>(n), 1.5);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  if (stream_seed_ != 0) {
    Rng rng(SplitMix64(stream_seed_));
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.Uniform(i + 1)]);
    }
  }

  const double total_units =
      balance_on_edges_ ? static_cast<double>(converted.TotalArcWeight())
                        : static_cast<double>(n);
  const double max_size = balance_cap_ * total_units / static_cast<double>(k);
  std::vector<PartitionId> labels(n, kNoPartition);
  std::vector<int64_t> sizes(k, 0);
  std::vector<int64_t> neighbor_count(k, 0);

  for (VertexId v : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (VertexId u : converted.Neighbors(v)) {
      if (labels[u] != kNoPartition) ++neighbor_count[labels[u]];
    }
    const int64_t unit =
        balance_on_edges_ ? converted.WeightedDegree(v) : 1;
    double best = -1e300;
    PartitionId best_part = -1;
    for (PartitionId p = 0; p < k; ++p) {
      if (static_cast<double>(sizes[p] + unit) > max_size) continue;
      // In edge mode, rescale the load to "equivalent vertices" so the
      // alpha calibration from the Fennel paper still applies.
      const double load =
          balance_on_edges_
              ? static_cast<double>(sizes[p]) * static_cast<double>(n) /
                    total_units
              : static_cast<double>(sizes[p]);
      const double cost =
          alpha * gamma_ / 2.0 * std::pow(load, gamma_ - 1.0);
      const double score = static_cast<double>(neighbor_count[p]) - cost;
      if (score > best ||
          (score == best && best_part >= 0 && sizes[p] < sizes[best_part])) {
        best = score;
        best_part = p;
      }
    }
    if (best_part < 0) {
      // All partitions at the cap (can happen only via rounding): fall
      // back to the smallest.
      best_part = static_cast<PartitionId>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    }
    labels[v] = best_part;
    sizes[best_part] += unit;
  }
  return labels;
}

bool RegisterFennelPartitioner() {
  return PartitionerRegistry::Register(
      "fennel",
      [](const PartitionerOptions& options)
          -> Result<std::unique_ptr<GraphPartitioner>> {
        return std::unique_ptr<GraphPartitioner>(
            std::make_unique<FennelPartitioner>(
                options.fennel_gamma, options.fennel_balance_cap,
                options.stream_seed, options.balance_on_edges));
      });
}

}  // namespace spinner
