// PartitionerRegistry: constructs any partitioner in the library by name,
// so benches and the CLI sweep implementations uniformly:
//
//   auto p = PartitionerRegistry::Create("fennel", options);
//   if (p.ok()) auto labels = (*p)->Partition(graph, k);
//
// Built-in names: "hash", "random", "ldg", "fennel", "restreaming",
// "multilevel", "spinner". Each implementation registers itself (its .cc
// file defines a Register<Name>Partitioner() hook the registry triggers on
// first use); user code can add factories with Register().
#ifndef SPINNER_BASELINES_PARTITIONER_REGISTRY_H_
#define SPINNER_BASELINES_PARTITIONER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/partitioner_interface.h"
#include "common/result.h"

namespace spinner {

/// Process-wide name → factory map. Thread-safe; factories run with no
/// lock held.
class PartitionerRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<GraphPartitioner>>(
      const PartitionerOptions&)>;

  /// Instantiates the partitioner registered under `name`. Returns
  /// NotFound (message lists the known names) for unknown names, or
  /// whatever error the factory reports for bad options.
  static Result<std::unique_ptr<GraphPartitioner>> Create(
      const std::string& name, const PartitionerOptions& options = {});

  /// Adds a factory. Returns false (and leaves the registry unchanged) if
  /// the name is already taken.
  static bool Register(const std::string& name, Factory factory);

  /// All registered names, sorted — the sweep order of the benches.
  static std::vector<std::string> Names();
};

}  // namespace spinner

#endif  // SPINNER_BASELINES_PARTITIONER_REGISTRY_H_
