#include "baselines/hash_partitioner.h"

#include <memory>

#include "baselines/partitioner_registry.h"
#include "common/random.h"
#include "spinner/initial_assignment.h"

namespace spinner {

Result<std::vector<PartitionId>> HashPartitioner::Partition(
    const CsrGraph& converted, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  std::vector<PartitionId> labels(converted.NumVertices());
  for (VertexId v = 0; v < converted.NumVertices(); ++v) {
    labels[v] = static_cast<PartitionId>(
        SplitMix64(static_cast<uint64_t>(v)) % static_cast<uint64_t>(k));
  }
  return labels;
}

Result<std::vector<PartitionId>> RandomPartitioner::Partition(
    const CsrGraph& converted, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  return RandomAssignment(converted.NumVertices(), k, seed_);
}

bool RegisterHashPartitioners() {
  const bool hash_ok = PartitionerRegistry::Register(
      "hash",
      [](const PartitionerOptions&)
          -> Result<std::unique_ptr<GraphPartitioner>> {
        return std::unique_ptr<GraphPartitioner>(
            std::make_unique<HashPartitioner>());
      });
  const bool random_ok = PartitionerRegistry::Register(
      "random",
      [](const PartitionerOptions& options)
          -> Result<std::unique_ptr<GraphPartitioner>> {
        return std::unique_ptr<GraphPartitioner>(
            std::make_unique<RandomPartitioner>(options.seed));
      });
  return hash_ok && random_ok;
}

}  // namespace spinner
