// Restreaming partitioning (Nishimura & Ugander, KDD 2013 — the paper's
// reference [19]): run a streaming partitioner repeatedly, each pass
// seeing the assignment computed by the previous one. Several passes of
// restreamed LDG approach offline quality while staying one-pass-simple.
// Included as the closest streaming competitor to Spinner's iterative
// refinement.
#ifndef SPINNER_BASELINES_RESTREAMING_PARTITIONER_H_
#define SPINNER_BASELINES_RESTREAMING_PARTITIONER_H_

#include "baselines/partitioner_interface.h"

namespace spinner {

/// Iterated LDG ("ReLDG"): on pass p > 0, a vertex's score counts
/// neighbors by their pass-(p−1) labels (full neighborhood knowledge,
/// like Spinner's edge-value cache), under the same capacity rule as LDG.
class RestreamingPartitioner : public GraphPartitioner {
 public:
  explicit RestreamingPartitioner(int num_passes = 10,
                                  uint64_t stream_seed = 0,
                                  bool balance_on_edges = true)
      : num_passes_(num_passes),
        stream_seed_(stream_seed),
        balance_on_edges_(balance_on_edges) {}

  std::string name() const override { return "restreaming-ldg"; }
  Result<std::vector<PartitionId>> Partition(const CsrGraph& converted,
                                             int k) const override;

  /// Incremental adaptation capability: restreams from `previous`, padding
  /// vertices beyond its range (graph growth) with kNoPartition so the
  /// first pass places them greedily.
  bool SupportsRepartition() const override { return true; }
  Result<std::vector<PartitionId>> Repartition(
      const CsrGraph& converted, int k,
      std::span<const PartitionId> previous) const override;

  /// Restream starting from an existing assignment (the incremental
  /// adaptation usage; compare SpinnerPartitioner::Repartition).
  Result<std::vector<PartitionId>> Restream(
      const CsrGraph& converted, int k,
      const std::vector<PartitionId>& previous, int num_passes) const;

 private:
  int num_passes_;
  uint64_t stream_seed_;
  bool balance_on_edges_;
};

/// Registry hook: adds "restreaming". Called by PartitionerRegistry.
bool RegisterRestreamingPartitioner();

}  // namespace spinner

#endif  // SPINNER_BASELINES_RESTREAMING_PARTITIONER_H_
