#include "baselines/ldg_partitioner.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "baselines/partitioner_registry.h"
#include "common/random.h"

namespace spinner {

Result<std::vector<PartitionId>> LdgPartitioner::Partition(
    const CsrGraph& converted, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const int64_t n = converted.NumVertices();

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  if (stream_seed_ != 0) {
    Rng rng(SplitMix64(stream_seed_));
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.Uniform(i + 1)]);
    }
  }

  // Capacity with the canonical slack of one unit per partition. In
  // vertex mode a unit is a vertex; in edge mode it is the total weighted
  // degree divided by k (so `sizes` accumulates weighted degrees).
  const double total_units =
      balance_on_edges_ ? static_cast<double>(converted.TotalArcWeight())
                        : static_cast<double>(n);
  const double capacity = total_units / static_cast<double>(k) +
                          (balance_on_edges_ ? 0.05 * total_units / k : 1.0);
  std::vector<PartitionId> labels(n, kNoPartition);
  std::vector<int64_t> sizes(k, 0);
  std::vector<int64_t> neighbor_count(k, 0);

  for (VertexId v : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (VertexId u : converted.Neighbors(v)) {
      if (labels[u] != kNoPartition) ++neighbor_count[labels[u]];
    }
    const int64_t unit =
        balance_on_edges_ ? converted.WeightedDegree(v) : 1;
    double best = -1.0;
    PartitionId best_part = 0;
    for (PartitionId p = 0; p < k; ++p) {
      if (static_cast<double>(sizes[p] + unit) > capacity) continue;
      const double score =
          static_cast<double>(neighbor_count[p]) *
          (1.0 - static_cast<double>(sizes[p]) / capacity);
      // Ties go to the smaller partition, then lower index: deterministic.
      if (score > best ||
          (score == best && sizes[p] < sizes[best_part])) {
        best = score;
        best_part = p;
      }
    }
    // All partitions at capacity (possible when a hub exceeds the slack):
    // fall back to the least-loaded one.
    if (best < 0.0) {
      best_part = static_cast<PartitionId>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    }
    labels[v] = best_part;
    sizes[best_part] += unit;
  }
  return labels;
}

bool RegisterLdgPartitioner() {
  return PartitionerRegistry::Register(
      "ldg",
      [](const PartitionerOptions& options)
          -> Result<std::unique_ptr<GraphPartitioner>> {
        return std::unique_ptr<GraphPartitioner>(
            std::make_unique<LdgPartitioner>(options.stream_seed,
                                             options.balance_on_edges));
      });
}

}  // namespace spinner
