// Linear Deterministic Greedy streaming partitioner
// (Stanton & Kleinberg, KDD 2012) — the "[24]" row of paper Table I.
//
// Vertices arrive in a stream; each is placed on the partition maximizing
//   |N(v) ∩ P_i| · (1 − |P_i| / C_i)
// where C_i is the per-partition vertex capacity. Neighbors seen later in
// the stream contribute nothing at placement time (one pass).
#ifndef SPINNER_BASELINES_LDG_PARTITIONER_H_
#define SPINNER_BASELINES_LDG_PARTITIONER_H_

#include "baselines/partitioner_interface.h"

namespace spinner {

/// One-pass LDG. `stream_seed` shuffles the arrival order (0 = vertex id
/// order, matching the common "natural order" evaluation setting).
/// `balance_on_edges` switches the capacity from vertex counts (the
/// original formulation) to weighted degrees — the balance objective the
/// paper measures ρ against; without it, hub-heavy graphs blow up edge
/// balance even though vertex counts are capped.
class LdgPartitioner : public GraphPartitioner {
 public:
  explicit LdgPartitioner(uint64_t stream_seed = 0,
                          bool balance_on_edges = false)
      : stream_seed_(stream_seed), balance_on_edges_(balance_on_edges) {}
  std::string name() const override { return "ldg"; }
  Result<std::vector<PartitionId>> Partition(const CsrGraph& converted,
                                             int k) const override;

 private:
  uint64_t stream_seed_;
  bool balance_on_edges_;
};

/// Registry hook: adds "ldg". Called by PartitionerRegistry.
bool RegisterLdgPartitioner();

}  // namespace spinner

#endif  // SPINNER_BASELINES_LDG_PARTITIONER_H_
