#include "baselines/multilevel_partitioner.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "baselines/partitioner_registry.h"
#include "common/logging.h"
#include "common/random.h"

namespace spinner {

namespace {

/// Internal weighted-graph level representation.
struct Level {
  int64_t n = 0;
  std::vector<int64_t> vweight;
  // Adjacency with merged parallel edges: (neighbor, edge weight).
  std::vector<std::vector<std::pair<VertexId, int64_t>>> adj;
  // Mapping from this level's vertices to the coarser level's vertices
  // (filled when the next level is built).
  std::vector<VertexId> coarse_of;
};

Level FromCsr(const CsrGraph& g) {
  Level lv;
  lv.n = g.NumVertices();
  lv.vweight.resize(lv.n);
  lv.adj.resize(lv.n);
  for (VertexId v = 0; v < lv.n; ++v) {
    lv.vweight[v] = g.WeightedDegree(v);
    auto nbrs = g.Neighbors(v);
    auto wts = g.Weights(v);
    lv.adj[v].reserve(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      lv.adj[v].emplace_back(nbrs[i], static_cast<int64_t>(wts[i]));
    }
  }
  return lv;
}

/// Heavy-edge matching: each unmatched vertex pairs with its unmatched
/// neighbor of maximum edge weight. Returns the number of coarse vertices
/// and fills level->coarse_of.
int64_t HeavyEdgeMatch(Level* level, uint64_t seed) {
  const int64_t n = level->n;
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  Rng rng(SplitMix64(seed));
  for (int64_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Uniform(i + 1)]);
  }

  std::vector<VertexId> match(n, -1);
  for (VertexId v : order) {
    if (match[v] != -1) continue;
    VertexId best = -1;
    int64_t best_w = -1;
    for (const auto& [u, w] : level->adj[v]) {
      if (u == v || match[u] != -1) continue;
      if (w > best_w || (w == best_w && u < best)) {
        best_w = w;
        best = u;
      }
    }
    if (best != -1) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  level->coarse_of.assign(n, -1);
  int64_t next_id = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level->coarse_of[v] != -1) continue;
    level->coarse_of[v] = next_id;
    if (match[v] != v) level->coarse_of[match[v]] = next_id;
    ++next_id;
  }
  return next_id;
}

/// Builds the coarser level from `fine` using fine.coarse_of.
Level Coarsen(const Level& fine, int64_t coarse_n) {
  Level coarse;
  coarse.n = coarse_n;
  coarse.vweight.assign(coarse_n, 0);
  coarse.adj.resize(coarse_n);
  for (VertexId v = 0; v < fine.n; ++v) {
    coarse.vweight[fine.coarse_of[v]] += fine.vweight[v];
  }
  // Merge parallel edges with a per-vertex hash map.
  std::unordered_map<VertexId, int64_t> acc;
  for (VertexId cv = 0; cv < coarse_n; ++cv) {
    coarse.adj[cv].reserve(4);
  }
  std::vector<std::vector<VertexId>> members(coarse_n);
  for (VertexId v = 0; v < fine.n; ++v) {
    members[fine.coarse_of[v]].push_back(v);
  }
  for (VertexId cv = 0; cv < coarse_n; ++cv) {
    acc.clear();
    for (VertexId v : members[cv]) {
      for (const auto& [u, w] : fine.adj[v]) {
        const VertexId cu = fine.coarse_of[u];
        if (cu == cv) continue;  // internal edge disappears
        acc[cu] += w;
      }
    }
    auto& out = coarse.adj[cv];
    out.assign(acc.begin(), acc.end());
    std::sort(out.begin(), out.end());
  }
  return coarse;
}

/// Induced subgraph of `vertices` (ids of `level`), with local ids
/// 0..vertices.size(). Edges leaving the subset are dropped.
Level InducedSubgraph(const Level& level,
                      const std::vector<VertexId>& vertices) {
  Level sub;
  sub.n = static_cast<int64_t>(vertices.size());
  sub.vweight.reserve(sub.n);
  sub.adj.resize(sub.n);
  std::vector<VertexId> to_local(level.n, -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    to_local[vertices[i]] = static_cast<VertexId>(i);
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    sub.vweight.push_back(level.vweight[v]);
    for (const auto& [u, w] : level.adj[v]) {
      const VertexId lu = to_local[u];
      if (lu != -1) sub.adj[i].emplace_back(lu, w);
    }
  }
  return sub;
}

/// Greedy graph growing bisection: grows side 0 from the heaviest vertex
/// along maximum-connectivity frontiers until it reaches `target0` weight;
/// the remainder is side 1.
std::vector<PartitionId> GrowBisection(const Level& level, int64_t target0) {
  const int64_t n = level.n;
  std::vector<PartitionId> side(n, 1);
  std::vector<int64_t> conn(n, 0);
  std::vector<uint8_t> taken(n, 0);

  VertexId seed_v = -1;
  for (VertexId v = 0; v < n; ++v) {
    if (seed_v == -1 || level.vweight[v] > level.vweight[seed_v]) seed_v = v;
  }
  int64_t grown = 0;
  VertexId next = seed_v;
  while (next != -1 && grown < target0) {
    side[next] = 0;
    taken[next] = 1;
    grown += level.vweight[next];
    for (const auto& [u, w] : level.adj[next]) {
      if (!taken[u]) conn[u] += w;
    }
    VertexId frontier_best = -1;
    int64_t best_conn = 0;
    VertexId heaviest = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (taken[v]) continue;
      if (conn[v] > best_conn ||
          (conn[v] == best_conn && frontier_best != -1 && conn[v] > 0 &&
           level.vweight[v] > level.vweight[frontier_best])) {
        best_conn = conn[v];
        frontier_best = v;
      }
      if (heaviest == -1 || level.vweight[v] > level.vweight[heaviest]) {
        heaviest = v;
      }
    }
    next = frontier_best != -1 ? frontier_best : heaviest;
  }
  return side;
}

void RefineCapacities(const Level& level,
                      const std::vector<double>& capacity, int passes,
                      std::vector<PartitionId>* labels);

/// Recursive bisection (the classic METIS initial-partitioning scheme):
/// split `vertices` into k1 = ⌊k/2⌋ and k−k1 shares by weight, refine the
/// 2-way cut, recurse. Writes final labels base..base+k−1.
void RecursiveBisect(const Level& level,
                     const std::vector<VertexId>& vertices, int k,
                     PartitionId base, double balance, int passes,
                     std::vector<PartitionId>* labels) {
  if (k == 1 || vertices.empty()) {
    for (VertexId v : vertices) (*labels)[v] = base;
    return;
  }
  Level sub = InducedSubgraph(level, vertices);
  const int k1 = k / 2;
  const int k2 = k - k1;
  const int64_t total =
      std::accumulate(sub.vweight.begin(), sub.vweight.end(), int64_t{0});
  const int64_t target0 = total * k1 / k;

  std::vector<PartitionId> side = GrowBisection(sub, target0);
  const std::vector<double> caps = {
      balance * static_cast<double>(total) * k1 / k,
      balance * static_cast<double>(total) * k2 / k};
  RefineCapacities(sub, caps, passes, &side);

  std::vector<VertexId> part0;
  std::vector<VertexId> part1;
  for (size_t i = 0; i < vertices.size(); ++i) {
    (side[i] == 0 ? part0 : part1).push_back(vertices[i]);
  }
  // Degenerate splits (tiny subsets): keep both sides non-empty whenever
  // there is something to split.
  if (part0.empty() && part1.size() > 1) {
    part0.push_back(part1.back());
    part1.pop_back();
  } else if (part1.empty() && part0.size() > 1) {
    part1.push_back(part0.back());
    part0.pop_back();
  }
  RecursiveBisect(level, part0, k1, base, balance, passes, labels);
  RecursiveBisect(level, part1, k2, base + k1, balance, passes, labels);
}

/// FM-style greedy boundary refinement: move vertices to the adjacent
/// partition with maximal cut gain, subject to per-partition capacities.
/// Moves are applied eagerly; passes repeat until no move or the budget
/// ends.
void RefineCapacities(const Level& level,
                      const std::vector<double>& capacity, int passes,
                      std::vector<PartitionId>* labels) {
  const int64_t n = level.n;
  const auto k = static_cast<int>(capacity.size());
  std::vector<int64_t> loads(k, 0);
  for (VertexId v = 0; v < n; ++v) loads[(*labels)[v]] += level.vweight[v];

  std::vector<int64_t> conn(k, 0);
  std::vector<PartitionId> touched;
  touched.reserve(k);

  for (int pass = 0; pass < passes; ++pass) {
    bool moved_any = false;
    for (VertexId v = 0; v < n; ++v) {
      const PartitionId cur = (*labels)[v];
      // Connectivity to each adjacent partition.
      for (const auto& [u, w] : level.adj[v]) {
        const PartitionId lu = (*labels)[u];
        if (conn[lu] == 0) touched.push_back(lu);
        conn[lu] += w;
      }
      PartitionId best = cur;
      int64_t best_gain = 0;
      for (const PartitionId p : touched) {
        if (p == cur) continue;
        const int64_t gain = conn[p] - conn[cur];
        const bool fits =
            static_cast<double>(loads[p] + level.vweight[v]) <= capacity[p];
        // Positive gain moves, or zero-gain moves that improve balance.
        const bool balance_gain =
            gain == 0 && loads[p] + level.vweight[v] < loads[cur];
        if (fits && (gain > best_gain ||
                     (gain == best_gain && gain > 0 && p < best) ||
                     (best == cur && balance_gain))) {
          best = p;
          best_gain = gain;
        }
      }
      if (best != cur) {
        loads[cur] -= level.vweight[v];
        loads[best] += level.vweight[v];
        (*labels)[v] = best;
        moved_any = true;
      }
      for (const PartitionId p : touched) conn[p] = 0;
      touched.clear();
    }
    if (!moved_any) break;
  }
}

/// Uniform-capacity wrapper: capacity = balance·(total/k) per partition.
void Refine(const Level& level, int k, double balance, int passes,
            std::vector<PartitionId>* labels) {
  const int64_t total =
      std::accumulate(level.vweight.begin(), level.vweight.end(),
                      int64_t{0});
  const std::vector<double> caps(
      k, balance * static_cast<double>(total) / static_cast<double>(k));
  RefineCapacities(level, caps, passes, labels);
}

}  // namespace

Result<std::vector<PartitionId>> MultilevelPartitioner::Partition(
    const CsrGraph& converted, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const int64_t n = converted.NumVertices();
  if (n == 0) return std::vector<PartitionId>{};
  if (k == 1) return std::vector<PartitionId>(n, 0);

  // --- Stage 1: coarsen. ---
  std::vector<Level> levels;
  levels.push_back(FromCsr(converted));
  const int64_t stop_at = std::max<int64_t>(
      64, static_cast<int64_t>(options_.coarsen_until_factor) * k);
  while (levels.back().n > stop_at) {
    Level& fine = levels.back();
    const int64_t coarse_n =
        HeavyEdgeMatch(&fine, options_.seed + levels.size());
    // Matching stalled (e.g. star graphs): stop coarsening.
    if (coarse_n > fine.n * 9 / 10) break;
    levels.push_back(Coarsen(fine, coarse_n));
  }

  // --- Stage 2: initial partition of the coarsest level via recursive
  // bisection, then k-way refinement. ---
  std::vector<PartitionId> labels(levels.back().n, 0);
  std::vector<VertexId> all(levels.back().n);
  std::iota(all.begin(), all.end(), VertexId{0});
  RecursiveBisect(levels.back(), all, k, 0, options_.balance,
                  options_.refine_passes, &labels);
  Refine(levels.back(), k, options_.balance, options_.refine_passes,
         &labels);

  // --- Stage 3: project back and refine at every level. ---
  for (auto i = static_cast<int64_t>(levels.size()) - 2; i >= 0; --i) {
    const Level& fine = levels[i];
    std::vector<PartitionId> fine_labels(fine.n);
    for (VertexId v = 0; v < fine.n; ++v) {
      fine_labels[v] = labels[fine.coarse_of[v]];
    }
    labels = std::move(fine_labels);
    Refine(fine, k, options_.balance, options_.refine_passes, &labels);
  }
  return labels;
}

bool RegisterMultilevelPartitioner() {
  return PartitionerRegistry::Register(
      "multilevel",
      [](const PartitionerOptions& options)
          -> Result<std::unique_ptr<GraphPartitioner>> {
        MultilevelOptions ml;
        ml.coarsen_until_factor = options.multilevel_coarsen_until_factor;
        ml.balance = options.multilevel_balance;
        ml.refine_passes = options.multilevel_refine_passes;
        ml.seed = options.seed;
        return std::unique_ptr<GraphPartitioner>(
            std::make_unique<MultilevelPartitioner>(ml));
      });
}

}  // namespace spinner
