#include "baselines/restreaming_partitioner.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "baselines/partitioner_registry.h"
#include "common/random.h"

namespace spinner {

namespace {

/// One restream pass: every vertex is (re)assigned in stream order, scoring
/// partitions by neighbor counts under `labels` (previous pass for unseen
/// vertices, current pass for already-restreamed ones — the standard
/// restreaming semantics) with LDG's capacity-discounted score.
void RestreamPass(const CsrGraph& g, int k, double capacity,
                  bool balance_on_edges, const std::vector<VertexId>& order,
                  std::vector<PartitionId>* labels,
                  std::vector<int64_t>* sizes) {
  std::vector<int64_t> neighbor_count(k, 0);
  for (VertexId v : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (VertexId u : g.Neighbors(v)) {
      if ((*labels)[u] != kNoPartition) ++neighbor_count[(*labels)[u]];
    }
    const int64_t unit = balance_on_edges ? g.WeightedDegree(v) : 1;
    // Moving v: free its capacity first so it can stay put.
    if ((*labels)[v] != kNoPartition) (*sizes)[(*labels)[v]] -= unit;

    double best = -1.0;
    PartitionId best_part = 0;
    for (PartitionId p = 0; p < k; ++p) {
      if (static_cast<double>((*sizes)[p] + unit) > capacity) continue;
      const double score =
          static_cast<double>(neighbor_count[p]) *
          (1.0 - static_cast<double>((*sizes)[p]) / capacity);
      if (score > best ||
          (score == best && (*sizes)[p] < (*sizes)[best_part])) {
        best = score;
        best_part = p;
      }
    }
    if (best < 0.0) {
      best_part = static_cast<PartitionId>(
          std::min_element(sizes->begin(), sizes->end()) - sizes->begin());
    }
    (*labels)[v] = best_part;
    (*sizes)[best_part] += unit;
  }
}

}  // namespace

Result<std::vector<PartitionId>> RestreamingPartitioner::Partition(
    const CsrGraph& converted, int k) const {
  std::vector<PartitionId> empty(converted.NumVertices(), kNoPartition);
  return Restream(converted, k, empty, num_passes_);
}

Result<std::vector<PartitionId>> RestreamingPartitioner::Restream(
    const CsrGraph& converted, int k,
    const std::vector<PartitionId>& previous, int num_passes) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (num_passes < 1) {
    return Status::InvalidArgument("need at least one pass");
  }
  const int64_t n = converted.NumVertices();
  if (static_cast<int64_t>(previous.size()) != n) {
    return Status::InvalidArgument(
        "previous assignment must cover every vertex");
  }
  for (PartitionId l : previous) {
    if (l != kNoPartition && (l < 0 || l >= k)) {
      return Status::InvalidArgument("previous label out of range");
    }
  }

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  if (stream_seed_ != 0) {
    Rng rng(SplitMix64(stream_seed_));
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.Uniform(i + 1)]);
    }
  }

  const double total_units =
      balance_on_edges_ ? static_cast<double>(converted.TotalArcWeight())
                        : static_cast<double>(n);
  const double capacity =
      1.05 * total_units / static_cast<double>(k) + 1.0;

  std::vector<PartitionId> labels = previous;
  std::vector<int64_t> sizes(k, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (labels[v] == kNoPartition) continue;
    sizes[labels[v]] +=
        balance_on_edges_ ? converted.WeightedDegree(v) : 1;
  }

  for (int pass = 0; pass < num_passes; ++pass) {
    const std::vector<PartitionId> before = labels;
    RestreamPass(converted, k, capacity, balance_on_edges_, order, &labels,
                 &sizes);
    if (labels == before) break;  // converged
  }
  return labels;
}

Result<std::vector<PartitionId>> RestreamingPartitioner::Repartition(
    const CsrGraph& converted, int k,
    std::span<const PartitionId> previous) const {
  if (static_cast<int64_t>(previous.size()) > converted.NumVertices()) {
    return Status::InvalidArgument(
        "previous assignment covers more vertices than the graph");
  }
  std::vector<PartitionId> padded(previous.begin(), previous.end());
  padded.resize(converted.NumVertices(), kNoPartition);
  return Restream(converted, k, padded, num_passes_);
}

bool RegisterRestreamingPartitioner() {
  return PartitionerRegistry::Register(
      "restreaming",
      [](const PartitionerOptions& options)
          -> Result<std::unique_ptr<GraphPartitioner>> {
        return std::unique_ptr<GraphPartitioner>(
            std::make_unique<RestreamingPartitioner>(
                options.restream_passes, options.stream_seed,
                options.balance_on_edges));
      });
}

}  // namespace spinner
