// Multilevel k-way partitioner in the METIS family (Karypis & Kumar) — the
// offline, global-view baseline of paper Table I.
//
// Three classic stages:
//   1. Coarsening: repeated heavy-edge matching merges endpoint pairs of
//      heavy edges until the graph is small;
//   2. Initial partitioning: greedy graph growing on the coarsest graph;
//   3. Uncoarsening: the partition is projected back level by level, with
//      FM-style boundary refinement (gain-driven local moves under a
//      balance cap) after every projection.
//
// Vertex weight is the weighted degree in the input graph, so balance is on
// edges — the same objective as Spinner — and ρ lands near the paper's
// METIS row (~1.03).
#ifndef SPINNER_BASELINES_MULTILEVEL_PARTITIONER_H_
#define SPINNER_BASELINES_MULTILEVEL_PARTITIONER_H_

#include "baselines/partitioner_interface.h"

namespace spinner {

/// Options for the multilevel partitioner.
struct MultilevelOptions {
  /// Stop coarsening below max(coarsen_until_factor·k, 64) vertices.
  /// Deep coarsening (small factor) gives the greedy initial partitioning
  /// an easier problem and more refinement levels on the way back up.
  int coarsen_until_factor = 8;
  /// Balance slack: per-partition capacity is balance·(total/k).
  double balance = 1.03;
  /// Refinement passes per level.
  int refine_passes = 10;
  /// Seed for matching order.
  uint64_t seed = 42;
};

/// The offline baseline. Not distributed, needs the whole graph in memory:
/// exactly the practicality gap Spinner addresses.
class MultilevelPartitioner : public GraphPartitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options = {})
      : options_(options) {}
  std::string name() const override { return "multilevel"; }
  Result<std::vector<PartitionId>> Partition(const CsrGraph& converted,
                                             int k) const override;

 private:
  MultilevelOptions options_;
};

/// Registry hook: adds "multilevel". Called by PartitionerRegistry.
bool RegisterMultilevelPartitioner();

}  // namespace spinner

#endif  // SPINNER_BASELINES_MULTILEVEL_PARTITIONER_H_
