#include "baselines/partitioner_registry.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "baselines/fennel_partitioner.h"
#include "baselines/hash_partitioner.h"
#include "baselines/ldg_partitioner.h"
#include "baselines/multilevel_partitioner.h"
#include "baselines/restreaming_partitioner.h"
#include "common/string_util.h"
#include "spinner/spinner_graph_partitioner.h"

namespace spinner {

namespace {

struct RegistryState {
  std::mutex mu;
  std::map<std::string, PartitionerRegistry::Factory> factories;
};

RegistryState& State() {
  static auto* state = new RegistryState();
  return *state;
}

/// Triggers the self-registration hook of every built-in module exactly
/// once. Explicit calls (instead of static initializers in each .cc) keep
/// registration immune to static-library dead-stripping.
void EnsureBuiltins() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterHashPartitioners();
    RegisterLdgPartitioner();
    RegisterFennelPartitioner();
    RegisterRestreamingPartitioner();
    RegisterMultilevelPartitioner();
    RegisterSpinnerGraphPartitioner();
  });
}

}  // namespace

Result<std::unique_ptr<GraphPartitioner>> PartitionerRegistry::Create(
    const std::string& name, const PartitionerOptions& options) {
  EnsureBuiltins();
  Factory factory;
  {
    RegistryState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    auto it = state.factories.find(name);
    if (it == state.factories.end()) {
      std::string known;
      for (const auto& [known_name, unused] : state.factories) {
        if (!known.empty()) known += ", ";
        known += known_name;
      }
      return Status::NotFound("no partitioner named \"" + name +
                              "\" (known: " + known + ")");
    }
    factory = it->second;
  }
  return factory(options);
}

bool PartitionerRegistry::Register(const std::string& name, Factory factory) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.factories.emplace(name, std::move(factory)).second;
}

std::vector<std::string> PartitionerRegistry::Names() {
  EnsureBuiltins();
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.factories.size());
  for (const auto& [name, unused] : state.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace spinner
