// Reproduces paper FIGURE 5: the impact of the additional-capacity
// parameter c on (a) the achieved balance ρ and (b) convergence speed, on
// the LiveJournal stand-in for k ∈ {8,16,32,64} and c ∈
// {1.02, 1.05, 1.10, 1.20}, averaged over repeated runs.
//
// Expected shapes: (a) ρ tracks and stays below c on average (ρ ≈ c line);
// (b) larger c converges in fewer iterations (more migrations allowed per
// iteration).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

void Run() {
  PrintBanner("FIGURE 5 — impact of additional capacity c",
              "(a) rho <= c on average with small excursions; (b) iterations "
              "to converge drop as c grows");
  StandIn lj = MakeStandIn("LJ");
  CsrGraph g = Convert(lj.graph);
  PrintStandIn(lj, g);

  const std::vector<double> cs = {1.02, 1.05, 1.10, 1.20};
  const std::vector<int> ks = {8, 16, 32, 64};
  const int kRepetitions = 5;

  std::printf("\nFig 5(a): rho vs c (avg [min..max] over %d seeds, all k)\n",
              kRepetitions);
  std::printf("%-6s %-10s %-24s\n", "c", "avg rho", "[min..max]");
  for (double c : cs) {
    SampleStats rho;
    for (int k : ks) {
      for (int rep = 0; rep < kRepetitions; ++rep) {
        SpinnerConfig config;
        config.num_partitions = k;
        config.additional_capacity = c;
        config.seed = 100 + rep;
        SpinnerPartitioner partitioner(config);
        auto result = partitioner.Partition(g);
        SPINNER_CHECK(result.ok());
        rho.Add(result->metrics.rho);
      }
    }
    std::printf("%-6.2f %-10.3f [%.3f..%.3f]%s\n", c, rho.Mean(), rho.Min(),
                rho.Max(), rho.Mean() <= c ? "" : "   (exceeds c)");
  }

  std::printf("\nFig 5(b): iterations to converge vs c, per k (avg over %d "
              "seeds)\n",
              kRepetitions);
  std::printf("%-6s", "c");
  for (int k : ks) std::printf("   k=%-5d", k);
  std::printf("\n");
  for (double c : cs) {
    std::printf("%-6.2f", c);
    for (int k : ks) {
      SampleStats iterations;
      for (int rep = 0; rep < kRepetitions; ++rep) {
        SpinnerConfig config;
        config.num_partitions = k;
        config.additional_capacity = c;
        config.seed = 100 + rep;
        SpinnerPartitioner partitioner(config);
        auto result = partitioner.Partition(g);
        SPINNER_CHECK(result.ok());
        iterations.Add(static_cast<double>(result->iterations));
      }
      std::printf("   %-7.1f", iterations.Mean());
    }
    std::printf("\n");
  }
  std::printf("\n(shape check: each k column should decrease downward)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
