// Reproduces paper FIGURE 7: adapting to dynamic graph changes on the
// Tuenti stand-in. For a growing percentage of new edges, compares
// incremental adaptation against re-partitioning from scratch on
//   (a) savings in processing time and messages, and
//   (b) partitioning stability (% vertices that must move).
//
// Expected shapes: (a) savings stay high (paper: 86% time / 92% messages
// at 0.5% new edges, still ~80% time at 30%); (b) adaptation moves ~8-11%
// of vertices, scratch ~95-98%.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "graph/delta.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

void Run() {
  PrintBanner(
      "FIGURE 7 — adapting to dynamic graph changes (Tuenti stand-in)",
      "(a) incremental adaptation saves most time/messages vs scratch; "
      "(b) adaptation moves ~10% of vertices, scratch ~95%+");
  StandIn tu = MakeStandIn("TU");
  CsrGraph g = Convert(tu.graph);
  PrintStandIn(tu, g);
  const int k = 32;

  SpinnerConfig config;
  config.num_partitions = k;
  SpinnerPartitioner partitioner(config);
  auto initial = partitioner.Partition(g);
  SPINNER_CHECK(initial.ok());
  std::printf("initial partitioning: phi=%.3f rho=%.3f iterations=%d\n",
              initial->metrics.phi, initial->metrics.rho,
              initial->iterations);

  const std::vector<double> percentages = {0.01, 0.1, 0.5, 1, 2.5,
                                           5,    10,  30};
  std::printf("\n%-9s | %-12s %-12s | %-12s %-12s | %-8s %-8s\n",
              "% new", "time save%", "msg save%", "moved adpt%",
              "moved scr%", "phi adpt", "phi scr");
  for (double pct : percentages) {
    const auto num_new = static_cast<int64_t>(
        static_cast<double>(tu.graph.edges.size()) * pct / 100.0);
    auto delta = RandomEdgeAdditions(tu.graph.num_vertices, tu.graph.edges,
                                     std::max<int64_t>(1, num_new), 1234);
    auto new_edges =
        ApplyDelta(tu.graph.num_vertices, tu.graph.edges, delta);
    SPINNER_CHECK(new_edges.ok());
    auto new_graph = BuildSymmetric(tu.graph.num_vertices, *new_edges);
    SPINNER_CHECK(new_graph.ok());

    auto adapted = partitioner.Repartition(*new_graph, initial->assignment);
    SPINNER_CHECK(adapted.ok());

    // A scratch re-partitioning is a fresh random run: new seed.
    SpinnerConfig scratch_config = config;
    scratch_config.seed = 4242;
    SpinnerPartitioner scratch_partitioner(scratch_config);
    auto scratch = scratch_partitioner.Partition(*new_graph);
    SPINNER_CHECK(scratch.ok());

    const double time_save =
        100.0 * (1.0 - adapted->run_stats.total_wall_seconds /
                           scratch->run_stats.total_wall_seconds);
    const double msg_save =
        100.0 * (1.0 - static_cast<double>(
                           adapted->run_stats.TotalMessages()) /
                           static_cast<double>(
                               scratch->run_stats.TotalMessages()));
    auto moved_adapted =
        PartitioningDifference(initial->assignment, adapted->assignment);
    auto moved_scratch =
        PartitioningDifference(initial->assignment, scratch->assignment);
    SPINNER_CHECK(moved_adapted.ok() && moved_scratch.ok());

    std::printf("%-9.2f | %-12.1f %-12.1f | %-12.1f %-12.1f | %-8.3f %-8.3f\n",
                pct, time_save, msg_save, 100.0 * *moved_adapted,
                100.0 * *moved_scratch, adapted->metrics.phi,
                scratch->metrics.phi);
  }
  std::printf("\n(shape check: both savings columns positive and high; "
              "moved-adaptive far below moved-scratch; phi comparable)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
