// Reproduces paper FIGURE 7: adapting to dynamic graph changes on the
// Tuenti stand-in. For a growing percentage of new edges, compares
// incremental adaptation against re-partitioning from scratch on
//   (a) savings in processing time and messages, and
//   (b) partitioning stability (% vertices that must move).
//
// Driven end-to-end by PartitioningSession: the baseline state is captured
// once with Snapshot() and each percentage restores it and applies its
// delta — exactly the operational loop of a maintained partitioning.
//
// Expected shapes: (a) savings stay high (paper: 86% time / 92% messages
// at 0.5% new edges, still ~80% time at 30%); (b) adaptation moves ~8-11%
// of vertices, scratch ~95-98%.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/delta.h"
#include "spinner/session.h"

namespace spinner::bench {
namespace {

void Run() {
  // Per-process path: concurrent runs (or other users' leftovers) must
  // not collide on the checkpoint file.
  const std::string snapshot_path =
      "/tmp/spinner_bench_fig7." + std::to_string(getpid()) + ".spns";
  PrintBanner(
      "FIGURE 7 — adapting to dynamic graph changes (Tuenti stand-in)",
      "(a) incremental adaptation saves most time/messages vs scratch; "
      "(b) adaptation moves ~10% of vertices, scratch ~95%+");
  StandIn tu = MakeStandIn("TU");
  const int k = 32;

  SpinnerConfig config;
  config.num_partitions = k;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(session.Open(tu.graph.num_vertices, tu.graph.edges,
                                tu.graph.directed));
  PrintStandIn(tu, session.converted());
  const std::vector<PartitionId> initial = session.assignment();
  std::printf("initial partitioning: phi=%.3f rho=%.3f iterations=%d\n",
              session.last_result().metrics.phi,
              session.last_result().metrics.rho,
              session.last_result().iterations);
  SPINNER_CHECK_OK(session.Snapshot(snapshot_path));

  const std::vector<double> percentages = {0.01, 0.1, 0.5, 1, 2.5,
                                           5,    10,  30};
  std::printf("\n%-9s | %-12s %-12s | %-12s %-12s | %-8s %-8s\n",
              "% new", "time save%", "msg save%", "moved adpt%",
              "moved scr%", "phi adpt", "phi scr");
  for (double pct : percentages) {
    // Rewind to the day-0 state, then apply this percentage's churn.
    SPINNER_CHECK_OK(session.Restore(snapshot_path));
    const auto num_new = static_cast<int64_t>(
        static_cast<double>(session.edges().size()) * pct / 100.0);
    auto delta =
        RandomEdgeAdditions(session.num_vertices(), session.edges(),
                            std::max<int64_t>(1, num_new), 1234);
    SPINNER_CHECK_OK(session.ApplyDelta(delta));
    const PartitionResult& adapted = session.last_result();

    // A scratch re-partitioning is a fresh session on the changed graph
    // with a new seed.
    SpinnerConfig scratch_config = config;
    scratch_config.seed = 4242;
    PartitioningSession scratch_session(scratch_config);
    SPINNER_CHECK_OK(scratch_session.Open(
        session.num_vertices(), session.edges(), tu.graph.directed));
    const PartitionResult& scratch = scratch_session.last_result();

    const double time_save =
        100.0 * (1.0 - adapted.run_stats.total_wall_seconds /
                           scratch.run_stats.total_wall_seconds);
    const double msg_save =
        100.0 * (1.0 - static_cast<double>(
                           adapted.run_stats.TotalMessages()) /
                           static_cast<double>(
                               scratch.run_stats.TotalMessages()));
    auto moved_adapted =
        PartitioningDifference(initial, adapted.assignment);
    auto moved_scratch =
        PartitioningDifference(initial, scratch.assignment);
    SPINNER_CHECK(moved_adapted.ok() && moved_scratch.ok());

    std::printf("%-9.2f | %-12.1f %-12.1f | %-12.1f %-12.1f | %-8.3f %-8.3f\n",
                pct, time_save, msg_save, 100.0 * *moved_adapted,
                100.0 * *moved_scratch, adapted.metrics.phi,
                scratch.metrics.phi);
  }
  std::printf("\n(shape check: both savings columns positive and high; "
              "moved-adaptive far below moved-scratch; phi comparable)\n");
  std::remove(snapshot_path.c_str());
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
