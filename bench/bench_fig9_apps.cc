// Reproduces paper FIGURE 9: runtime improvement of real analytics —
// Shortest Paths (SP/BFS), PageRank (PR), Weakly Connected Components (CC)
// — when Giraph places vertices by Spinner's partitioning instead of hash
// partitioning. LJ runs with 16 partitions, TU with 32, TW with 64
// (paper's setup), on the simulated cluster.
//
// Expected shape: positive improvement everywhere; Twitter (denser,
// harder) improves ~25-35%, LJ/TU up to ~50%.
#include <cstdio>
#include <vector>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "bench_util.h"
#include "simulator/cluster_simulator.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

struct AppResult {
  double sp_improvement;
  double pr_improvement;
  double cc_improvement;
};

double Improvement(double hash_seconds, double spinner_seconds) {
  return 100.0 * (hash_seconds - spinner_seconds) / hash_seconds;
}

AppResult RunGraph(const std::string& key, int k) {
  StandIn stand_in = MakeStandIn(key);
  CsrGraph g = Convert(stand_in.graph);
  PrintStandIn(stand_in, g);

  SpinnerConfig config;
  config.num_partitions = k;
  SpinnerPartitioner partitioner(config);
  auto partition = partitioner.Partition(g);
  SPINNER_CHECK(partition.ok());
  std::printf("  spinner: phi=%.3f rho=%.3f (k=%d)\n",
              partition->metrics.phi, partition->metrics.rho, k);

  auto hash_placement = pregel::HashPlacement(k);
  auto spinner_placement =
      pregel::LabelPlacement(partition->assignment, k);

  auto run_sp = [&](pregel::Placement placement) {
    apps::SsspProgram program(0);
    return sim::RunOnCluster<apps::SsspVertex, char, int64_t>(
               g, k, std::move(placement), program,
               [](VertexId) { return apps::SsspVertex{}; },
               [](VertexId, VertexId, EdgeWeight) { return char{}; })
        .simulation.total_seconds;
  };
  auto run_pr = [&](pregel::Placement placement) {
    apps::PageRankProgram program(20);
    return sim::RunOnCluster<apps::PageRankVertex, char, double>(
               g, k, std::move(placement), program,
               [](VertexId) { return apps::PageRankVertex{}; },
               [](VertexId, VertexId, EdgeWeight) { return char{}; })
        .simulation.total_seconds;
  };
  auto run_cc = [&](pregel::Placement placement) {
    apps::WccProgram program;
    return sim::RunOnCluster<apps::WccVertex, char, VertexId>(
               g, k, std::move(placement), program,
               [](VertexId) { return apps::WccVertex{}; },
               [](VertexId, VertexId, EdgeWeight) { return char{}; })
        .simulation.total_seconds;
  };

  AppResult result;
  result.sp_improvement =
      Improvement(run_sp(hash_placement), run_sp(spinner_placement));
  result.pr_improvement =
      Improvement(run_pr(hash_placement), run_pr(spinner_placement));
  result.cc_improvement =
      Improvement(run_cc(hash_placement), run_cc(spinner_placement));
  return result;
}

void Run() {
  PrintBanner(
      "FIGURE 9 — application runtime improvement, Spinner vs hash "
      "placement",
      "positive improvement for SP/PR/CC on all graphs (paper: TW 25-35%, "
      "LJ/TU up to ~50%)");
  struct Setup {
    const char* key;
    int k;
  };
  const std::vector<Setup> setups = {{"LJ", 16}, {"TU", 32}, {"TW", 64}};

  std::vector<AppResult> results;
  for (const Setup& setup : setups) {
    results.push_back(RunGraph(setup.key, setup.k));
  }

  std::printf("\n%% runtime improvement (simulated cluster):\n");
  std::printf("%-6s %-8s %-8s %-8s\n", "graph", "SP", "PR", "CC");
  for (size_t i = 0; i < setups.size(); ++i) {
    std::printf("%-6s %-8.1f %-8.1f %-8.1f\n", setups[i].key,
                results[i].sp_improvement, results[i].pr_improvement,
                results[i].cc_improvement);
  }
  std::printf("\n(shape check: all entries positive)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
