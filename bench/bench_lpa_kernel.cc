// Superstep-kernel microbenchmark: the seed scalar ComputeScores /
// ComputeMigrations loop (embedded verbatim below as `namespace seed`)
// against the current kernel — hoisted penalty/probability tables, the
// O(moves) async-view restore, the masked dense label scan (SPINNER_SIMD)
// — and against the full work-stealing run. Three topology classes vary
// the degree skew: uniform small-world, power-law hubs, and power-law
// with a celebrity overlay.
//
// The JSON artifact's hot metric is the *within-run* speedup ratio
// (seed ms / new ms on the same machine, same graph, same iteration
// count), which tools/bench_compare.py gates: unlike wall-times, the
// ratio is comparable across machines of different speeds.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/threadpool.h"
#include "graph/sharded_store.h"
#include "spinner/config.h"
#include "spinner/lpa_kernel.h"
#include "spinner/shard_superstep.h"
#include "spinner/sharded_program.h"

namespace spinner::bench {
namespace seed {

// --- The growth seed's kernel, kept verbatim as the baseline ------------
// (git history: src/spinner/lpa_kernel.h + shard_superstep.cc at the v0
// seed commit). Two divisions per scored label, a reservoir tie draw per
// tied label, and a full k-sized copy of the global loads at every block
// boundary of the asynchronous view.

inline double ScoreTerm(int64_t freq, double weighted_degree, int64_t load,
                        double capacity) {
  const double locality = static_cast<double>(freq) / weighted_degree;
  const double penalty =
      capacity > 0 ? static_cast<double>(load) / capacity : 0.0;
  return locality - penalty;
}

inline lpa::LabelChoice PickLabel(std::span<const int64_t> freq,
                                  std::span<const PartitionId> touched,
                                  PartitionId current, double weighted_degree,
                                  std::span<const double> capacities,
                                  std::span<const int64_t> penalty_loads,
                                  uint64_t rng_seed, int64_t superstep,
                                  VertexId v) {
  auto score_of = [&](PartitionId l) {
    return ScoreTerm(freq[l], weighted_degree, penalty_loads[l],
                     capacities[l]);
  };
  const double current_score = score_of(current);
  double best_score = current_score;
  bool current_is_best = true;
  int num_best = 0;
  PartitionId chosen = current;
  for (const PartitionId l : touched) {
    if (l == current) continue;
    const double s = score_of(l);
    if (s > best_score) {
      best_score = s;
      current_is_best = false;
      num_best = 1;
      chosen = l;
    } else if (!current_is_best && s == best_score) {
      ++num_best;
      const uint64_t key = HashCombine(
          HashCombine(rng_seed, lpa::kTieDomain, static_cast<uint64_t>(v)),
          static_cast<uint64_t>(superstep), static_cast<uint64_t>(l));
      if (HashUniform(key, static_cast<uint64_t>(num_best)) == 0) {
        chosen = l;
      }
    }
  }
  return lpa::LabelChoice{chosen, !current_is_best};
}

struct Scratch {
  std::vector<int64_t> freq;
  std::vector<PartitionId> touched;
  std::vector<int64_t> projected;
  std::vector<int64_t> migrations;
  int64_t local_weight = 0;
  int64_t migrated = 0;

  void Prepare(int k) {
    freq.assign(static_cast<size_t>(k), 0);
    touched.clear();
    touched.reserve(static_cast<size_t>(k));
    projected.assign(static_cast<size_t>(k), 0);
    migrations.assign(static_cast<size_t>(k), 0);
  }
};

void ComputeScores(const SpinnerConfig& config,
                   const ShardedGraphStore::Shard& shard,
                   std::span<const PartitionId> labels,
                   const std::vector<int64_t>& global_loads,
                   const std::vector<double>& capacities, int64_t superstep,
                   std::span<PartitionId> candidate, Scratch* scratch) {
  constexpr int64_t kBlock = ShardedGraphStore::kBlockSize;
  Scratch& sc = *scratch;
  sc.local_weight = 0;
  std::fill(sc.migrations.begin(), sc.migrations.end(), 0);
  for (VertexId block_begin = shard.begin; block_begin < shard.end;
       block_begin += kBlock) {
    const VertexId block_end =
        std::min<VertexId>(block_begin + kBlock, shard.end);
    if (config.per_worker_async) sc.projected = global_loads;
    const std::vector<int64_t>& penalty =
        config.per_worker_async ? sc.projected : global_loads;
    for (VertexId v = block_begin; v < block_end; ++v) {
      const int64_t deg_w = shard.WeightedDegreeOf(v);
      if (deg_w == 0) {
        candidate[v] = kNoPartition;
        continue;
      }
      const auto neighbors = shard.Neighbors(v);
      const auto weights = shard.WeightsOf(v);
      for (size_t j = 0; j < neighbors.size(); ++j) {
        const PartitionId l = labels[neighbors[j]];
        if (sc.freq[l] == 0) sc.touched.push_back(l);
        sc.freq[l] += weights[j];
      }
      const PartitionId current = labels[v];
      const double deg = static_cast<double>(deg_w);
      const lpa::LabelChoice choice =
          PickLabel(sc.freq, sc.touched, current, deg, capacities, penalty,
                    config.seed, superstep, v);
      sc.local_weight += sc.freq[current];
      if (choice.better) {
        candidate[v] = choice.label;
        const int64_t units = LoadUnitsOf(config, deg_w);
        sc.migrations[choice.label] += units;
        if (config.per_worker_async) {
          sc.projected[choice.label] += units;
          sc.projected[current] -= units;
        }
      } else {
        candidate[v] = kNoPartition;
      }
      for (const PartitionId l : sc.touched) sc.freq[l] = 0;
      sc.touched.clear();
    }
  }
}

void ComputeMigrations(const SpinnerConfig& config,
                       ShardedGraphStore::Shard* shard,
                       std::span<PartitionId> labels,
                       const std::vector<int64_t>& global_loads,
                       const std::vector<double>& capacities,
                       const std::vector<int64_t>& migration_counts,
                       int64_t superstep,
                       std::span<const PartitionId> candidate,
                       Scratch* scratch) {
  Scratch& sc = *scratch;
  sc.migrated = 0;
  for (VertexId v = shard->begin; v < shard->end; ++v) {
    const PartitionId target = candidate[v];
    if (target == kNoPartition) continue;
    const double remaining =
        capacities[target] - static_cast<double>(global_loads[target]);
    const double wanting = static_cast<double>(migration_counts[target]);
    const double p = lpa::MigrationProbability(remaining, wanting);
    if (!lpa::MigrationCoinAccepts(config.seed, v, superstep, p)) continue;
    const PartitionId old_label = labels[v];
    const int64_t units = LoadUnitsOf(config, shard->WeightedDegreeOf(v));
    labels[v] = target;
    shard->loads[target] += units;
    shard->loads[old_label] -= units;
    ++sc.migrated;
  }
}

}  // namespace seed

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Eq. 5 capacities, as the superstep driver computes them.
std::vector<double> CapacitiesOf(const SpinnerConfig& config,
                                 const std::vector<int64_t>& loads) {
  int64_t total = 0;
  for (const int64_t l : loads) total += l;
  return std::vector<double>(
      static_cast<size_t>(config.num_partitions),
      config.additional_capacity * static_cast<double>(total) /
          static_cast<double>(config.num_partitions));
}

struct CaseResult {
  std::string name;
  std::string recipe;
  int64_t vertices = 0;
  int64_t arcs = 0;
  double seed_ms = 0.0;       // seed kernel, ms per iteration
  double kernel_ms = 0.0;     // new kernel, single-thread, ms per iteration
  double stealing_ms = 0.0;   // full stealing run, ms per iteration
  double kernel_speedup = 0.0;
  double stealing_speedup = 0.0;
  int64_t tasks = 0;
  int64_t stolen_tasks = 0;
};

/// One iteration-loop harness shared by both single-thread paths: copies
/// the post-Initialize snapshot, then runs `iters` score+migrate rounds
/// with the driver's frozen-loads masterwork in between.
template <typename ScoresFn, typename MigrateFn>
double TimeIterations(const SpinnerConfig& config, ShardedGraphStore* store,
                      const std::vector<PartitionId>& labels0,
                      const std::vector<int64_t>& loads0, int iters,
                      ScoresFn&& scores, MigrateFn&& migrate) {
  ShardedGraphStore::Shard* shard = &store->mutable_shard(0);
  store->labels() = labels0;
  shard->loads = loads0;
  const std::vector<double> capacities = CapacitiesOf(config, loads0);
  std::vector<PartitionId> candidate(labels0.size(), kNoPartition);
  const Clock::time_point t0 = Clock::now();
  for (int it = 0; it < iters; ++it) {
    const std::vector<int64_t> global_loads = shard->loads;  // frozen b(l)
    const std::vector<int64_t> migration_counts =
        scores(*shard, global_loads, capacities, 2 * it + 1, candidate);
    migrate(shard, global_loads, capacities, migration_counts, 2 * it + 2,
            candidate);
  }
  return MsSince(t0) / iters;
}

CaseResult RunCase(const std::string& name, const std::string& recipe,
                   GeneratedGraph graph, const SpinnerConfig& config,
                   int iters, int stealing_shards) {
  CaseResult result;
  result.name = name;
  result.recipe = recipe;
  auto converted = BuildSymmetric(graph.num_vertices, graph.edges);
  SPINNER_CHECK(converted.ok());
  const CsrGraph& g = *converted;
  result.vertices = g.NumVertices();
  result.arcs = g.NumArcs();

  // Single-shard store: one Initialize fixes the starting labels/loads
  // both kernels replay from, so they do identical per-iteration work.
  auto store = ShardedGraphStore::Build(g, 1);
  SPINNER_CHECK(store.ok());
  {
    ShardScratch init_scratch;
    init_scratch.Prepare(config.num_partitions);
    ShardInitialize(config, &store->mutable_shard(0), store->labels(), {});
  }
  const std::vector<PartitionId> labels0 = store->labels();
  const std::vector<int64_t> loads0 = store->shard(0).loads;

  seed::Scratch seed_scratch;
  seed_scratch.Prepare(config.num_partitions);
  auto seed_scores = [&](const ShardedGraphStore::Shard& shard,
                         const std::vector<int64_t>& global_loads,
                         const std::vector<double>& capacities, int64_t step,
                         std::span<PartitionId> candidate) {
    seed::ComputeScores(config, shard, store->labels(), global_loads,
                        capacities, step, candidate, &seed_scratch);
    return seed_scratch.migrations;
  };
  auto seed_migrate = [&](ShardedGraphStore::Shard* shard,
                          const std::vector<int64_t>& global_loads,
                          const std::vector<double>& capacities,
                          const std::vector<int64_t>& migration_counts,
                          int64_t step, std::span<PartitionId> candidate) {
    seed::ComputeMigrations(config, shard, store->labels(), global_loads,
                            capacities, migration_counts, step, candidate,
                            &seed_scratch);
  };

  ShardScratch kernel_scratch;
  kernel_scratch.Prepare(config.num_partitions);
  std::vector<double> block_score(static_cast<size_t>(store->NumBlocks()));
  std::vector<int32_t> block_candidates(
      static_cast<size_t>(store->NumBlocks()));
  auto kernel_scores = [&](const ShardedGraphStore::Shard& shard,
                           const std::vector<int64_t>& global_loads,
                           const std::vector<double>& capacities,
                           int64_t step, std::span<PartitionId> candidate) {
    ShardComputeScores(config, shard, store->labels(), global_loads,
                       capacities, step, candidate, block_score,
                       block_candidates, &kernel_scratch);
    return kernel_scratch.migrations;
  };
  auto kernel_migrate = [&](ShardedGraphStore::Shard* shard,
                            const std::vector<int64_t>& global_loads,
                            const std::vector<double>& capacities,
                            const std::vector<int64_t>& migration_counts,
                            int64_t step,
                            std::span<PartitionId> candidate) {
    ShardComputeMigrations(config, shard, store->labels(), global_loads,
                           capacities, migration_counts, step, candidate,
                           block_candidates, nullptr, &kernel_scratch);
  };

  // Warm-up pass of each path (page in the CSR, size the scratch), then
  // timed replays from the identical snapshot. Each path is replayed
  // kRepeats times and scored by its fastest run — the usual microbench
  // defense against scheduler noise on a shared machine.
  constexpr int kRepeats = 3;
  TimeIterations(config, &*store, labels0, loads0, 1, seed_scores,
                 seed_migrate);
  TimeIterations(config, &*store, labels0, loads0, 1, kernel_scores,
                 kernel_migrate);
  result.seed_ms = 1e300;
  result.kernel_ms = 1e300;
  for (int rep = 0; rep < kRepeats; ++rep) {
    result.seed_ms = std::min(
        result.seed_ms, TimeIterations(config, &*store, labels0, loads0,
                                       iters, seed_scores, seed_migrate));
    result.kernel_ms = std::min(
        result.kernel_ms, TimeIterations(config, &*store, labels0, loads0,
                                         iters, kernel_scores,
                                         kernel_migrate));
  }

  // The full stealing run: same graph and iteration count, shards dealt
  // out block-by-block to a hardware-sized pool.
  {
    SpinnerConfig run_config = config;
    run_config.max_iterations = iters;
    run_config.use_halting = false;
    run_config.record_history = false;
    ThreadPool pool(ResolveNumThreads(run_config, stealing_shards));
    result.stealing_ms = 1e300;
    for (int rep = 0; rep < kRepeats; ++rep) {
      auto steal_store = ShardedGraphStore::Build(g, stealing_shards);
      SPINNER_CHECK(steal_store.ok());
      const Clock::time_point t0 = Clock::now();
      auto run =
          RunShardedSpinner(run_config, &*steal_store, {}, &pool, nullptr);
      SPINNER_CHECK(run.ok()) << run.status();
      result.stealing_ms = std::min(result.stealing_ms, MsSince(t0) / iters);
      result.tasks = run->schedule.tasks;
      result.stolen_tasks = run->schedule.stolen_tasks;
    }
  }

  result.kernel_speedup = result.seed_ms / result.kernel_ms;
  result.stealing_speedup = result.seed_ms / result.stealing_ms;
  return result;
}

void WriteJson(const std::string& path, bool smoke, int k, int iters,
               const std::vector<CaseResult>& cases) {
  std::FILE* json = std::fopen(path.c_str(), "w");
  SPINNER_CHECK(json != nullptr) << "cannot write " << path;
  std::fprintf(json, "{\n  \"bench\": \"lpa_kernel\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
#if defined(SPINNER_SIMD)
  std::fprintf(json, "  \"simd\": true,\n");
#else
  std::fprintf(json, "  \"simd\": false,\n");
#endif
  std::fprintf(json, "  \"k\": %d,\n  \"iterations\": %d,\n", k, iters);
  std::fprintf(json, "  \"cases\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(
        json,
        "    {\"case\": \"%s\", \"vertices\": %lld, \"arcs\": %lld,\n"
        "     \"seed_ms_per_iter\": %.4f, \"kernel_ms_per_iter\": %.4f,\n"
        "     \"stealing_ms_per_iter\": %.4f, \"kernel_speedup\": %.4f,\n"
        "     \"stealing_speedup\": %.4f, \"tasks\": %lld, "
        "\"stolen_tasks\": %lld}%s\n",
        c.name.c_str(), static_cast<long long>(c.vertices),
        static_cast<long long>(c.arcs), c.seed_ms, c.kernel_ms,
        c.stealing_ms, c.kernel_speedup, c.stealing_speedup,
        static_cast<long long>(c.tasks),
        static_cast<long long>(c.stolen_tasks),
        i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

void Run(bool smoke, const std::string& out_path, int n, int k, int iters) {
  PrintBanner(
      "LPA kernel — seed scalar loop vs SIMD + work-stealing superstep",
      "kernel_speedup >= 1.5 on the skewed (power-law) case; stealing at "
      "least matches the kernel when threads > 1");
  if (n <= 0) n = smoke ? 4000 : 24000;
  if (k <= 0) k = smoke ? 8 : 16;
  if (iters <= 0) iters = smoke ? 4 : 10;
  SpinnerConfig config;
  config.num_partitions = k;
  config.seed = 42;

  // Degree-skew sweep: the dense masked scan only engages where
  // OutDegree >= k, so uniform graphs exercise the sparse path and the
  // power-law cases mix in hub vertices that hit the dense path hard.
  auto uniform = WattsStrogatz(n, 8, 0.3, 42);
  SPINNER_CHECK(uniform.ok());
  auto skewed = BarabasiAlbert(n, 8, 8, 42);
  SPINNER_CHECK(skewed.ok());
  StandIn hubs = MakeStandIn("TW+hubs");
  if (smoke) {
    hubs.graph = std::move(skewed).value();
    auto reskew = BarabasiAlbert(n, 8, 8, 42);
    SPINNER_CHECK(reskew.ok());
    skewed = std::move(reskew);
    Rng rng(SplitMix64(42 ^ 0xCE1EBULL));
    for (VertexId hub = 0; hub < 4; ++hub) {
      for (int i = 0; i < 1500; ++i) {
        const auto follower =
            static_cast<VertexId>(rng.Uniform(hubs.graph.num_vertices));
        if (follower != hub) hubs.graph.edges.push_back({follower, hub});
      }
    }
  }

  const int stealing_shards = 7;
  std::vector<CaseResult> cases;
  cases.push_back(RunCase("uniform", "WattsStrogatz(deg=16, beta=0.3)",
                          std::move(uniform).value(), config, iters,
                          stealing_shards));
  cases.push_back(RunCase("skewed", "BarabasiAlbert(m=8) power-law",
                          std::move(skewed).value(), config, iters,
                          stealing_shards));
  cases.push_back(RunCase("hubs", "power-law + celebrity overlay",
                          std::move(hubs.graph), config, iters,
                          stealing_shards));

  std::printf("\n%-10s %9s %10s | %10s %10s %10s | %8s %8s | %7s\n", "case",
              "vertices", "arcs", "seed ms", "kernel ms", "steal ms",
              "k-spd", "s-spd", "stolen");
  for (const CaseResult& c : cases) {
    std::printf(
        "%-10s %9lld %10lld | %10.2f %10.2f %10.2f | %7.2fx %7.2fx | "
        "%7lld\n",
        c.name.c_str(), static_cast<long long>(c.vertices),
        static_cast<long long>(c.arcs), c.seed_ms, c.kernel_ms,
        c.stealing_ms, c.kernel_speedup, c.stealing_speedup,
        static_cast<long long>(c.stolen_tasks));
  }
  WriteJson(out_path, smoke, k, iters, cases);
}

}  // namespace
}  // namespace spinner::bench

int main(int argc, char** argv) {
  const bool smoke = spinner::bench::ConsumeSmokeFlag(&argc, argv);
  spinner::CommandLine cli;
  SPINNER_CHECK(cli.Parse(argc, argv).ok());
  spinner::bench::Run(smoke, cli.GetString("out", "BENCH_lpa_kernel.json"),
                      static_cast<int>(cli.GetInt("n", 0)),
                      static_cast<int>(cli.GetInt("k", 0)),
                      static_cast<int>(cli.GetInt("iters", 0)));
  return 0;
}
