// Reproduces paper TABLE IV: the impact of partitioning balance on worker
// load while running 20 PageRank supersteps on the hub-heavy Twitter
// stand-in — random (hash) placement vs Spinner placement, on the
// simulated cluster.
//
// Expected shape: with Spinner placement both the mean and especially the
// max (slowest worker, the superstep duration in a synchronous engine)
// drop, and the idle fraction (1 − mean/max) shrinks — paper: idle 31%
// (random) vs 19% (Spinner), mean 5.8s→4.7s, max 8.4s→5.8s.
#include <cstdio>

#include "apps/pagerank.h"
#include "bench_util.h"
#include "simulator/cluster_simulator.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

struct Outcome {
  double mean;
  double mean_sd;
  double max;
  double max_sd;
  double min;
  double min_sd;
  double idle_pct;
};

Outcome Summarize(const sim::SimulationResult& simulation) {
  Outcome o;
  o.mean = simulation.mean_stats.Mean();
  o.mean_sd = simulation.mean_stats.StdDev();
  o.max = simulation.max_stats.Mean();
  o.max_sd = simulation.max_stats.StdDev();
  o.min = simulation.min_stats.Mean();
  o.min_sd = simulation.min_stats.StdDev();
  o.idle_pct = o.max == 0 ? 0 : 100.0 * (1.0 - o.mean / o.max);
  return o;
}

void Run() {
  PrintBanner(
      "TABLE IV — impact of partitioning balance on worker load (PageRank, "
      "Twitter stand-in)",
      "Spinner placement lowers mean and max superstep time and shrinks "
      "worker idling (paper: idle 31% -> 19%)");
  StandIn tw = MakeStandIn("TW+hubs");
  CsrGraph g = Convert(tw.graph);
  PrintStandIn(tw, g);
  const int workers = 32;  // paper: 256 workers / 256 partitions

  SpinnerConfig config;
  config.num_partitions = workers;
  SpinnerPartitioner partitioner(config);
  auto partition = partitioner.Partition(g);
  SPINNER_CHECK(partition.ok());
  std::printf("spinner partitioning: phi=%.3f rho=%.3f\n",
              partition->metrics.phi, partition->metrics.rho);

  auto run_placement = [&](pregel::Placement placement) {
    apps::PageRankProgram program(20);
    return sim::RunOnCluster<apps::PageRankVertex, char, double>(
        g, workers, std::move(placement), program,
        [](VertexId) { return apps::PageRankVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
  };

  auto random_run = run_placement(pregel::HashPlacement(workers));
  auto spinner_run =
      run_placement(pregel::LabelPlacement(partition->assignment, workers));

  const Outcome random = Summarize(random_run.simulation);
  const Outcome spinner = Summarize(spinner_run.simulation);

  std::printf("\nSimulated per-superstep worker time (ms), 20 PageRank "
              "supersteps, %d workers:\n", workers);
  std::printf("%-10s %-18s %-18s %-18s %-8s\n", "Approach", "Mean",
              "Max.", "Min.", "idle%");
  std::printf("%-10s %7.2f +/- %-6.2f %7.2f +/- %-6.2f %7.2f +/- %-6.2f %-8.1f\n",
              "Random", random.mean * 1e3, random.mean_sd * 1e3,
              random.max * 1e3, random.max_sd * 1e3, random.min * 1e3,
              random.min_sd * 1e3, random.idle_pct);
  std::printf("%-10s %7.2f +/- %-6.2f %7.2f +/- %-6.2f %7.2f +/- %-6.2f %-8.1f\n",
              "Spinner", spinner.mean * 1e3, spinner.mean_sd * 1e3,
              spinner.max * 1e3, spinner.max_sd * 1e3, spinner.min * 1e3,
              spinner.min_sd * 1e3, spinner.idle_pct);
  std::printf("\nremote messages: random=%lld spinner=%lld (%.1fx fewer)\n",
              static_cast<long long>(random_run.simulation.remote_messages),
              static_cast<long long>(
                  spinner_run.simulation.remote_messages),
              static_cast<double>(random_run.simulation.remote_messages) /
                  static_cast<double>(
                      std::max<int64_t>(1,
                          spinner_run.simulation.remote_messages)));
  std::printf("(paper Table IV: Random 5.8/8.4/3.4 s, Spinner 4.7/5.8/3.1 "
              "s; idling 31%% vs 19%%)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
