// Reproduces paper FIGURE 4: per-iteration evolution of φ, ρ and score(G)
// while partitioning (a) the Twitter stand-in and (b) the Yahoo!-web
// stand-in, with the halting condition disabled (as the paper does for
// Twitter: 115 iterations, halting would have fired at 41).
//
// Expected shapes: ρ drops fast from the unbalanced random start (Twitter
// starts ~1.67 in the paper) and flattens near 1.05 while φ climbs
// steadily; score(G) first rises with balance, then follows φ. The web
// graph converges in far fewer iterations with higher final φ.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

/// Returns the iteration at which the halting rule (ε, w) would have
/// fired, or -1 if it never would.
int HaltingIteration(const std::vector<IterationPoint>& history,
                     double epsilon, int window) {
  double best = -1e300;
  int streak = 0;
  for (size_t i = 0; i < history.size(); ++i) {
    const double improvement = history[i].score - best;
    best = std::max(best, history[i].score);
    if (improvement < epsilon) {
      ++streak;
    } else {
      streak = 0;
    }
    if (i > 0 && streak >= window) return static_cast<int>(i + 1);
  }
  return -1;
}

void RunOne(const char* title, const std::string& key, int k,
            int iterations) {
  StandIn stand_in = MakeStandIn(key);
  CsrGraph g = Convert(stand_in.graph);
  std::printf("\n--- %s: k=%d, %d iterations, halting disabled ---\n", title,
              k, iterations);
  PrintStandIn(stand_in, g);

  SpinnerConfig config;
  config.num_partitions = k;
  config.use_halting = false;
  config.max_iterations = iterations;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  SPINNER_CHECK(result.ok());

  std::printf("%-5s %-8s %-8s %-10s %-10s\n", "iter", "phi", "rho",
              "score(G)", "migrations");
  for (const IterationPoint& pt : result->history) {
    // Print every iteration early on, then every 5th (long flat tail).
    if (pt.iteration > 20 && pt.iteration % 5 != 0 &&
        pt.iteration != static_cast<int>(result->history.size())) {
      continue;
    }
    std::printf("%-5d %-8.3f %-8.3f %-10.4f %-10lld\n", pt.iteration, pt.phi,
                pt.rho, pt.score,
                static_cast<long long>(pt.migrations));
  }
  const int halt_at = HaltingIteration(result->history, config.halt_epsilon,
                                       config.halt_window);
  std::printf("halting rule (eps=%.3f, w=%d) would stop at iteration: %d\n",
              config.halt_epsilon, config.halt_window, halt_at);
  std::printf("final: phi=%.3f rho=%.3f\n", result->metrics.phi,
              result->metrics.rho);
}

void Run() {
  PrintBanner("FIGURE 4 — metric evolution across iterations",
              "rho drops fast to ~c while phi climbs; score rises with "
              "balance first, then tracks phi; web graph converges faster "
              "with higher final phi (paper: 73% at iteration 42)");
  RunOne("Fig 4(a) Twitter stand-in", "TW", 64, 115);
  RunOne("Fig 4(b) Yahoo! web stand-in", "Y!", 32, 60);
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
