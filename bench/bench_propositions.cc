// Empirical reproduction of the paper's analytical claims (§III.C and
// Appendix A):
//
//  Proposition 1 — exponentially fast convergence to the even balancing:
//     we print the imbalance trajectory ‖x_t − x*‖∞/‖x_0‖∞ and the fitted
//     per-iteration decay factor μ (must be < 1).
//  Proposition 2 — bounded-time convergence: the halting iteration.
//  Proposition 3 — the probability of overshooting partition capacity in
//     one iteration is exponentially small: we report how often loads
//     exceeded C = c·|E|/k across all (iteration, partition) pairs and the
//     worst overshoot ratio (paper's example bounds: ≤ 0.2 for ε = 0.2).
#include <cstdio>

#include "bench_util.h"
#include "spinner/partitioner.h"
#include "spinner/theory.h"

namespace spinner::bench {
namespace {

void Run() {
  PrintBanner("PROPOSITIONS 1-3 — empirical convergence behaviour",
              "imbalance decays exponentially (mu < 1); capacity "
              "violations rare and small");
  StandIn lj = MakeStandIn("LJ");
  CsrGraph g = Convert(lj.graph);
  PrintStandIn(lj, g);

  // Proposition 1 needs an unbalanced start (a uniform random assignment
  // is already near the even balancing): pile half the vertices onto the
  // last partition, spread the rest uniformly.
  const int k = 16;
  std::vector<PartitionId> skewed(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint64_t key = HashCombine(99, static_cast<uint64_t>(v));
    skewed[v] = HashUniformDouble(key) < 0.5
                    ? k - 1
                    : static_cast<PartitionId>(
                          HashUniform(SplitMix64(key), k));
  }

  SpinnerConfig config;
  config.num_partitions = k;
  config.use_halting = false;
  config.max_iterations = 40;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Repartition(g, skewed);
  SPINNER_CHECK(result.ok());

  const auto trajectory = theory::ImbalanceTrajectory(result->history);
  std::printf("\nProposition 1: imbalance trajectory "
              "||x_t - x*||inf / ||x_0||inf\n");
  std::printf("%-6s %-12s\n", "iter", "imbalance");
  for (size_t t = 0; t < trajectory.size(); ++t) {
    if (t < 12 || t % 5 == 0 || t + 1 == trajectory.size()) {
      std::printf("%-6zu %-12.5f\n", t + 1, trajectory[t]);
    }
  }
  const double mu = theory::FitDecayRate(trajectory);
  std::printf("fitted decay factor mu = %.3f (exponential iff < 1)\n", mu);

  std::printf("\nProposition 2: bounded-time convergence\n");
  SpinnerConfig halting_config = config;
  halting_config.use_halting = true;
  halting_config.max_iterations = 1000;
  SpinnerPartitioner halting_partitioner(halting_config);
  auto halted = halting_partitioner.Partition(g);
  SPINNER_CHECK(halted.ok());
  std::printf("halted at iteration %d of a 1000-iteration budget "
              "(converged=%s)\n",
              halted->iterations, halted->converged ? "yes" : "no");

  std::printf("\nProposition 3: capacity violations (c = %.2f)\n",
              config.additional_capacity);
  // Skip the first iterations: the deliberately skewed start is overfull
  // by construction; the proposition bounds overshoot caused by
  // *migrations* once the system operates near capacity.
  const std::vector<IterationPoint> steady(
      result->history.begin() + 10, result->history.end());
  const auto stats = theory::CountCapacityViolations(
      steady, config.additional_capacity);
  std::printf("observations=%lld violations=%lld rate=%.4f worst "
              "b(l)/C=%.4f (after the skewed-start transient)\n",
              static_cast<long long>(stats.observations),
              static_cast<long long>(stats.violations),
              stats.ViolationRate(), stats.worst_ratio);
  std::printf("(paper's example: overshoot by 20%% of remaining capacity "
              "has probability < 0.2; by 40%%, < 0.0016)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
