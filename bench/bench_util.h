// Shared helpers for the reproduction benches: topology-matched stand-ins
// for the paper's proprietary/huge datasets (Table II), scaled to
// workstation size, plus small table-printing utilities.
//
// Stand-in rationale (DESIGN.md §2): the evaluation's shapes depend on
// topology class — hubs (Twitter), small-world social graphs (LiveJournal,
// Tuenti, Friendster), skewed web-like graphs (Google+, Yahoo!) — not on
// the exact datasets. Every bench prints the stand-in's stats next to its
// results so the mapping stays explicit.
#ifndef SPINNER_BENCH_BENCH_UTIL_H_
#define SPINNER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/random.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace spinner::bench {

/// CI smoke mode: strips a `--smoke` flag from argv (also honored via the
/// SPINNER_BENCH_SMOKE environment variable) and returns whether it was
/// requested. Benches use it to shrink graph sizes and sweep ranges so the
/// bench-smoke CI job *executes* them in seconds instead of minutes; the
/// numbers it prints are meaningless as measurements.
inline bool ConsumeSmokeFlag(int* argc, char** argv) {
  bool smoke = std::getenv("SPINNER_BENCH_SMOKE") != nullptr;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return smoke;
}

/// A named stand-in dataset.
struct StandIn {
  std::string name;        // paper dataset it stands in for
  std::string description; // generator recipe
  GeneratedGraph graph;
};

/// Builds the stand-in for a paper dataset key: "LJ", "G+", "TU", "TW",
/// "FR", "Y!". CHECK-fails on unknown keys.
inline StandIn MakeStandIn(const std::string& key, uint64_t seed = 42) {
  if (key == "LJ") {
    // LiveJournal: directed social graph, communities + moderate degree.
    auto g = WattsStrogatz(20000, 8, 0.3, seed);
    SPINNER_CHECK(g.ok());
    return {"LJ", "WattsStrogatz(n=20k, deg=16, beta=0.3)",
            std::move(g).value()};
  }
  if (key == "G+") {
    // Google+: directed, skewed follower graph.
    auto g = RMat(14, 6, 0.55, 0.2, 0.15, seed);
    SPINNER_CHECK(g.ok());
    return {"G+", "RMat(scale=14, ef=6, a=.55 b=.2 c=.15) directed",
            std::move(g).value()};
  }
  if (key == "TU") {
    // Tuenti: undirected friendship graph, strong clustering.
    auto g = WattsStrogatz(24000, 10, 0.2, seed);
    SPINNER_CHECK(g.ok());
    return {"TU", "WattsStrogatz(n=24k, deg=20, beta=0.2)",
            std::move(g).value()};
  }
  if (key == "TW") {
    // Twitter: hub-dominated power-law graph ("denser and harder").
    auto g = BarabasiAlbert(24000, 8, 8, seed);
    SPINNER_CHECK(g.ok());
    return {"TW", "BarabasiAlbert(n=24k, m=8) power-law hubs",
            std::move(g).value()};
  }
  if (key == "TW+hubs") {
    // Twitter with a celebrity overlay, used by the load-balance
    // experiment (Table IV): real Twitter's top accounts carry a load
    // comparable to half a worker's share (degree ~3M vs ~6M arcs/worker
    // in the paper's 256-worker setup), which is exactly what makes
    // random placement unbalanced (paper Fig. 4a starts at rho = 1.67).
    // Quality benches use the plain "TW": a single celebrity exceeding a
    // partition's ideal load makes rho <= c unattainable at large k (the
    // vertex is atomic), which is a granularity artifact of the scaled-
    // down graph, not an algorithmic effect.
    auto g = BarabasiAlbert(24000, 8, 8, seed);
    SPINNER_CHECK(g.ok());
    Rng rng(SplitMix64(seed ^ 0xCE1EBULL));
    for (VertexId hub = 0; hub < 8; ++hub) {
      for (int i = 0; i < 6000; ++i) {
        const auto follower =
            static_cast<VertexId>(rng.Uniform(g->num_vertices));
        if (follower != hub) g->edges.push_back({follower, hub});
      }
    }
    return {"TW+hubs",
            "BarabasiAlbert(n=24k, m=8) + 8 celebrity hubs (~6k followers "
            "each)",
            std::move(g).value()};
  }
  if (key == "FR") {
    // Friendster: large social graph, weaker locality.
    auto g = WattsStrogatz(30000, 8, 0.45, seed);
    SPINNER_CHECK(g.ok());
    return {"FR", "WattsStrogatz(n=30k, deg=16, beta=0.45)",
            std::move(g).value()};
  }
  if (key == "Y!") {
    // Yahoo! web graph: very high intrinsic locality.
    auto g = WattsStrogatz(40000, 6, 0.05, seed);
    SPINNER_CHECK(g.ok());
    return {"Y!", "WattsStrogatz(n=40k, deg=12, beta=0.05)",
            std::move(g).value()};
  }
  SPINNER_CHECK(false) << "unknown stand-in key: " << key;
  return {};
}

/// Converts a stand-in to the weighted symmetric form Spinner consumes.
inline CsrGraph Convert(const GeneratedGraph& g) {
  auto converted =
      g.directed ? ConvertToWeightedUndirected(g.num_vertices, g.edges)
                 : BuildSymmetric(g.num_vertices, g.edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

/// Prints the bench banner: what paper artifact this reproduces and which
/// stand-ins it runs on.
inline void PrintBanner(const char* artifact, const char* expectation) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("Paper expectation: %s\n", expectation);
  std::printf("==============================================================================\n");
}

inline void PrintStandIn(const StandIn& s, const CsrGraph& converted) {
  std::printf("dataset %-3s <- %s\n        %s\n", s.name.c_str(),
              s.description.c_str(),
              ToString(ComputeGraphStats(converted)).c_str());
}

}  // namespace spinner::bench

#endif  // SPINNER_BENCH_BENCH_UTIL_H_
