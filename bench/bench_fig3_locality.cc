// Reproduces paper FIGURE 3: (a) locality φ as a function of the number of
// partitions for the five real-graph stand-ins, and (b) the improvement in
// φ relative to hash partitioning.
//
// Expected shapes: φ decays slowly with k and stays high even at large k;
// hash partitioning's φ ≈ 1/k, so the relative improvement grows roughly
// linearly with k (paper: up to 250× at k=512).
#include <cstdio>
#include <vector>

#include "baselines/hash_partitioner.h"
#include "bench_util.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

void Run() {
  PrintBanner(
      "FIGURE 3 — locality vs number of partitions (a), improvement over "
      "hash (b)",
      "phi decays slowly with k; improvement over hash grows ~linearly in "
      "k (paper: up to 250x at k=512)");
  const std::vector<std::string> keys = {"LJ", "G+", "TU", "TW", "FR"};
  const std::vector<int> ks = {2, 4, 8, 16, 32, 64, 128, 256};

  std::printf("\nFig 3(a): phi per (graph, k)\n%-5s", "k");
  for (const auto& key : keys) std::printf(" %8s", key.c_str());
  std::printf("\n");

  // phi[graph][k]
  std::vector<std::vector<double>> phis(keys.size());
  std::vector<std::vector<double>> hash_phis(keys.size());
  for (size_t gi = 0; gi < keys.size(); ++gi) {
    StandIn stand_in = MakeStandIn(keys[gi]);
    CsrGraph g = Convert(stand_in.graph);
    for (int k : ks) {
      SpinnerConfig config;
      config.num_partitions = k;
      SpinnerPartitioner partitioner(config);
      auto result = partitioner.Partition(g);
      SPINNER_CHECK(result.ok());
      phis[gi].push_back(result->metrics.phi);

      HashPartitioner hash;
      auto hash_labels = hash.Partition(g, k);
      SPINNER_CHECK(hash_labels.ok());
      auto hash_metrics = ComputeMetrics(g, *hash_labels, k, 1.05);
      SPINNER_CHECK(hash_metrics.ok());
      hash_phis[gi].push_back(hash_metrics->phi);
    }
  }

  for (size_t ki = 0; ki < ks.size(); ++ki) {
    std::printf("%-5d", ks[ki]);
    for (size_t gi = 0; gi < keys.size(); ++gi) {
      std::printf(" %8.3f", phis[gi][ki]);
    }
    std::printf("\n");
  }

  std::printf("\nFig 3(b): phi improvement over hash partitioning "
              "(phi_spinner / phi_hash)\n%-5s", "k");
  for (const auto& key : keys) std::printf(" %8s", key.c_str());
  std::printf("\n");
  for (size_t ki = 0; ki < ks.size(); ++ki) {
    std::printf("%-5d", ks[ki]);
    for (size_t gi = 0; gi < keys.size(); ++gi) {
      std::printf(" %8.1f", phis[gi][ki] / hash_phis[gi][ki]);
    }
    std::printf("\n");
  }
  std::printf("\n(shape check: column values in (b) should grow with k)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
