// Reproduces paper TABLE I: φ and ρ of Spinner vs the streaming baselines
// (LDG [24], Fennel [28]) and the offline multilevel baseline (METIS [12])
// on the Twitter graph for k ∈ {2,4,8,16,32}. Hash partitioning is added
// as the reference floor (φ ≈ 1/k), restreaming-LDG as the closest
// streaming competitor.
//
// Every row is constructed through PartitionerRegistry::Create(name): one
// loop sweeps all implementations uniformly through the GraphPartitioner
// interface — exactly what an operator comparing partitioners would run.
//
// Expected shape (paper): multilevel best on φ with ρ ≈ 1.03; Spinner
// within ~2-12% of it with ρ ≈ 1.02-1.05; streaming partitioners below or
// comparable to Spinner on φ.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/partitioner_registry.h"
#include "bench_util.h"
#include "spinner/metrics.h"

namespace spinner::bench {
namespace {

struct Row {
  std::string registry_name;   // PartitionerRegistry key
  std::string display;         // Table I row label
  std::vector<double> phi;
  std::vector<double> rho;
};

void Run(bool smoke) {
  PrintBanner(
      "TABLE I — comparison with state-of-the-art on the Twitter stand-in",
      "multilevel(METIS) best phi, Spinner within ~2-12% of it, both ~1.05 "
      "balance; streaming below; hash floor at 1/k");
  // Smoke mode (CI): a small stand-in and short k sweep, so the job
  // proves every registry row executes without paying bench-grade sizes.
  StandIn tw = MakeStandIn("TW");
  if (smoke) {
    auto small = BarabasiAlbert(2000, 6, 6, 42);
    SPINNER_CHECK(small.ok());
    tw = StandIn{"TW", "BarabasiAlbert(n=2k, m=6) smoke stand-in",
                 std::move(small).value()};
  }
  CsrGraph g = Convert(tw.graph);
  PrintStandIn(tw, g);

  const std::vector<int> ks =
      smoke ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 8, 16, 32};
  std::vector<Row> rows = {
      {"ldg", "LDG (Stanton et al.)", {}, {}},
      {"fennel", "Fennel", {}, {}},
      {"restreaming", "Restreaming LDG", {}, {}},
      {"multilevel", "Multilevel (METIS-like)", {}, {}},
      {"spinner", "Spinner", {}, {}},
      {"hash", "Hash", {}, {}},
  };

  // Streaming baselines run in edge-balance mode (the options default):
  // the paper's ρ measures edge balance, and these are the variants one
  // would deploy alongside an edge-balancing partitioner.
  const PartitionerOptions options;

  for (Row& row : rows) {
    auto partitioner = PartitionerRegistry::Create(row.registry_name,
                                                   options);
    SPINNER_CHECK(partitioner.ok()) << partitioner.status();
    for (int k : ks) {
      auto labels = (*partitioner)->Partition(g, k);
      SPINNER_CHECK(labels.ok()) << labels.status();
      auto m = ComputeMetrics(g, *labels, k, 1.05);
      SPINNER_CHECK(m.ok());
      row.phi.push_back(m->phi);
      row.rho.push_back(m->rho);
    }
  }

  std::printf("\n%-26s", "Approach");
  for (int k : ks) std::printf("     k=%-3d      ", k);
  std::printf("\n%-26s", "");
  for (size_t i = 0; i < ks.size(); ++i) std::printf("   phi    rho   ");
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-26s", row.display.c_str());
    for (size_t i = 0; i < ks.size(); ++i) {
      std::printf("  %5.2f  %5.2f  ", row.phi[i], row.rho[i]);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(paper Table I, Twitter: Spinner phi 0.85/0.69/0.51/0.39/0.31,\n"
      " rho ~1.02-1.05; Metis phi 0.88/0.76/0.64/0.46/0.37, rho 1.02-1.03)\n");
}

}  // namespace
}  // namespace spinner::bench

int main(int argc, char** argv) {
  spinner::bench::Run(spinner::bench::ConsumeSmokeFlag(&argc, argv));
  return 0;
}
