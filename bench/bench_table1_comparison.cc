// Reproduces paper TABLE I: φ and ρ of Spinner vs the streaming baselines
// (LDG [24], Fennel [28]) and the offline multilevel baseline (METIS [12])
// on the Twitter graph for k ∈ {2,4,8,16,32}. Hash partitioning is added
// as the reference floor (φ ≈ 1/k).
//
// Expected shape (paper): multilevel best on φ with ρ ≈ 1.03; Spinner
// within ~2-12% of it with ρ ≈ 1.02-1.05; streaming partitioners below or
// comparable to Spinner on φ.
#include <cstdio>
#include <vector>

#include "baselines/fennel_partitioner.h"
#include "baselines/hash_partitioner.h"
#include "baselines/ldg_partitioner.h"
#include "baselines/multilevel_partitioner.h"
#include "bench_util.h"
#include "common/timer.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

struct Row {
  std::string approach;
  std::vector<double> phi;
  std::vector<double> rho;
};

void Run() {
  PrintBanner(
      "TABLE I — comparison with state-of-the-art on the Twitter stand-in",
      "multilevel(METIS) best phi, Spinner within ~2-12% of it, both ~1.05 "
      "balance; streaming below; hash floor at 1/k");
  StandIn tw = MakeStandIn("TW");
  CsrGraph g = Convert(tw.graph);
  PrintStandIn(tw, g);

  const std::vector<int> ks = {2, 4, 8, 16, 32};
  std::vector<Row> rows;

  auto eval = [&](const std::string& name,
                  const std::vector<PartitionId>& labels, int k, Row* row) {
    auto m = ComputeMetrics(g, labels, k, 1.05);
    SPINNER_CHECK(m.ok());
    row->phi.push_back(m->phi);
    row->rho.push_back(m->rho);
    (void)name;
  };

  Row ldg_row{"LDG (Stanton et al.)", {}, {}};
  Row fennel_row{"Fennel", {}, {}};
  Row ml_row{"Multilevel (METIS-like)", {}, {}};
  Row spinner_row{"Spinner", {}, {}};
  Row hash_row{"Hash", {}, {}};

  for (int k : ks) {
    // Streaming baselines in edge-balance mode: the paper's ρ measures
    // edge balance, and these are the variants one would deploy alongside
    // an edge-balancing partitioner.
    LdgPartitioner ldg(/*stream_seed=*/0, /*balance_on_edges=*/true);
    eval("ldg", *ldg.Partition(g, k), k, &ldg_row);
    FennelPartitioner fennel(1.5, 1.1, /*stream_seed=*/0,
                             /*balance_on_edges=*/true);
    eval("fennel", *fennel.Partition(g, k), k, &fennel_row);
    MultilevelPartitioner ml;
    eval("multilevel", *ml.Partition(g, k), k, &ml_row);
    HashPartitioner hash;
    eval("hash", *hash.Partition(g, k), k, &hash_row);

    SpinnerConfig config;
    config.num_partitions = k;
    SpinnerPartitioner partitioner(config);
    auto result = partitioner.Partition(g);
    SPINNER_CHECK(result.ok());
    spinner_row.phi.push_back(result->metrics.phi);
    spinner_row.rho.push_back(result->metrics.rho);
  }
  rows = {ldg_row, fennel_row, ml_row, spinner_row, hash_row};

  std::printf("\n%-26s", "Approach");
  for (int k : ks) std::printf("     k=%-3d      ", k);
  std::printf("\n%-26s", "");
  for (size_t i = 0; i < ks.size(); ++i) std::printf("   phi    rho   ");
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-26s", row.approach.c_str());
    for (size_t i = 0; i < ks.size(); ++i) {
      std::printf("  %5.2f  %5.2f  ", row.phi[i], row.rho[i]);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(paper Table I, Twitter: Spinner phi 0.85/0.69/0.51/0.39/0.31,\n"
      " rho ~1.02-1.05; Metis phi 0.88/0.76/0.64/0.46/0.37, rho 1.02-1.03)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
