// Reproduces paper TABLE I: φ and ρ of Spinner vs the streaming baselines
// (LDG [24], Fennel [28]) and the offline multilevel baseline (METIS [12])
// on the Twitter graph for k ∈ {2,4,8,16,32}. Hash partitioning is added
// as the reference floor (φ ≈ 1/k), restreaming-LDG as the closest
// streaming competitor.
//
// Every row is constructed through PartitionerRegistry::Create(name): one
// loop sweeps all implementations uniformly through the GraphPartitioner
// interface — exactly what an operator comparing partitioners would run.
//
// Expected shape (paper): multilevel best on φ with ρ ≈ 1.03; Spinner
// within ~2-12% of it with ρ ≈ 1.02-1.05; streaming partitioners below or
// comparable to Spinner on φ.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/partitioner_registry.h"
#include "bench_util.h"
#include "common/cli.h"
#include "spinner/metrics.h"

namespace spinner::bench {
namespace {

struct Row {
  std::string registry_name;   // PartitionerRegistry key
  std::string display;         // Table I row label
  std::vector<double> phi;
  std::vector<double> rho;
};

/// Writes the sweep as a JSON artifact (CI archives BENCH_*.json; the
/// console table is for humans).
void WriteJson(const std::string& path, bool smoke,
               const std::vector<int>& ks, const std::vector<Row>& rows) {
  std::FILE* json = std::fopen(path.c_str(), "w");
  SPINNER_CHECK(json != nullptr) << "cannot write " << path;
  std::fprintf(json, "{\n  \"bench\": \"table1_comparison\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"k\": [");
  for (size_t i = 0; i < ks.size(); ++i) {
    std::fprintf(json, "%s%d", i ? ", " : "", ks[i]);
  }
  std::fprintf(json, "],\n  \"rows\": [\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(json, "    {\"partitioner\": \"%s\", \"phi\": [",
                 rows[r].registry_name.c_str());
    for (size_t i = 0; i < rows[r].phi.size(); ++i) {
      std::fprintf(json, "%s%.6f", i ? ", " : "", rows[r].phi[i]);
    }
    std::fprintf(json, "], \"rho\": [");
    for (size_t i = 0; i < rows[r].rho.size(); ++i) {
      std::fprintf(json, "%s%.6f", i ? ", " : "", rows[r].rho[i]);
    }
    std::fprintf(json, "]}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

void Run(bool smoke, const std::string& out_path) {
  PrintBanner(
      "TABLE I — comparison with state-of-the-art on the Twitter stand-in",
      "multilevel(METIS) best phi, Spinner within ~2-12% of it, both ~1.05 "
      "balance; streaming below; hash floor at 1/k");
  // Smoke mode (CI): a small stand-in and short k sweep, so the job
  // proves every registry row executes without paying bench-grade sizes.
  StandIn tw = MakeStandIn("TW");
  if (smoke) {
    auto small = BarabasiAlbert(2000, 6, 6, 42);
    SPINNER_CHECK(small.ok());
    tw = StandIn{"TW", "BarabasiAlbert(n=2k, m=6) smoke stand-in",
                 std::move(small).value()};
  }
  CsrGraph g = Convert(tw.graph);
  PrintStandIn(tw, g);

  const std::vector<int> ks =
      smoke ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 8, 16, 32};
  std::vector<Row> rows = {
      {"ldg", "LDG (Stanton et al.)", {}, {}},
      {"fennel", "Fennel", {}, {}},
      {"restreaming", "Restreaming LDG", {}, {}},
      {"multilevel", "Multilevel (METIS-like)", {}, {}},
      {"spinner", "Spinner", {}, {}},
      {"hash", "Hash", {}, {}},
  };

  // Streaming baselines run in edge-balance mode (the options default):
  // the paper's ρ measures edge balance, and these are the variants one
  // would deploy alongside an edge-balancing partitioner.
  const PartitionerOptions options;

  for (Row& row : rows) {
    auto partitioner = PartitionerRegistry::Create(row.registry_name,
                                                   options);
    SPINNER_CHECK(partitioner.ok()) << partitioner.status();
    for (int k : ks) {
      auto labels = (*partitioner)->Partition(g, k);
      SPINNER_CHECK(labels.ok()) << labels.status();
      auto m = ComputeMetrics(g, *labels, k, 1.05);
      SPINNER_CHECK(m.ok());
      row.phi.push_back(m->phi);
      row.rho.push_back(m->rho);
    }
  }

  std::printf("\n%-26s", "Approach");
  for (int k : ks) std::printf("     k=%-3d      ", k);
  std::printf("\n%-26s", "");
  for (size_t i = 0; i < ks.size(); ++i) std::printf("   phi    rho   ");
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-26s", row.display.c_str());
    for (size_t i = 0; i < ks.size(); ++i) {
      std::printf("  %5.2f  %5.2f  ", row.phi[i], row.rho[i]);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(paper Table I, Twitter: Spinner phi 0.85/0.69/0.51/0.39/0.31,\n"
      " rho ~1.02-1.05; Metis phi 0.88/0.76/0.64/0.46/0.37, rho 1.02-1.03)\n");
  WriteJson(out_path, smoke, ks, rows);
}

}  // namespace
}  // namespace spinner::bench

int main(int argc, char** argv) {
  const bool smoke = spinner::bench::ConsumeSmokeFlag(&argc, argv);
  spinner::CommandLine cli;
  SPINNER_CHECK(cli.Parse(argc, argv).ok());
  spinner::bench::Run(smoke,
                      cli.GetString("out", "BENCH_table1_comparison.json"));
  return 0;
}
