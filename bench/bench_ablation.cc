// Ablation bench (beyond the paper's figures; DESIGN.md §6 milestone 8):
// quantifies the design choices the paper argues for qualitatively:
//   1. per-worker asynchronous counters (§IV.A.4) — convergence speedup;
//   2. the balance penalty term of Eq. 8 — what happens to ρ without it
//      (approximated by a huge c, which flattens the penalty);
//   3. in-engine vs offline conversion — setup cost of the two extra
//      supersteps;
//   4. halting window w — iterations saved vs quality lost.
#include <cstdio>

#include "bench_util.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

void Run() {
  PrintBanner("ABLATIONS — design choices of the Spinner algorithm",
              "async counters speed convergence; penalty term is what "
              "creates balance; conversion phases cost 2 supersteps; "
              "larger w trades iterations for certainty");
  StandIn lj = MakeStandIn("LJ");
  CsrGraph g = Convert(lj.graph);
  PrintStandIn(lj, g);
  const int k = 32;

  // --- 1. per-worker asynchronous counters --------------------------------
  std::printf("\n[1] per-worker async counters (k=%d, 8 workers):\n", k);
  for (bool async : {true, false}) {
    SpinnerConfig config;
    config.num_partitions = k;
    config.num_workers = 8;
    config.per_worker_async = async;
    SpinnerPartitioner partitioner(config);
    auto result = partitioner.Partition(g);
    SPINNER_CHECK(result.ok());
    std::printf("  async=%-5s iterations=%-4d phi=%.3f rho=%.3f\n",
                async ? "on" : "off", result->iterations,
                result->metrics.phi, result->metrics.rho);
  }

  // --- 2. penalty term ------------------------------------------------------
  std::printf("\n[2] balance penalty (c -> inf flattens the penalty term):\n");
  for (double c : {1.05, 2.0, 100.0}) {
    SpinnerConfig config;
    config.num_partitions = k;
    config.additional_capacity = c;
    SpinnerPartitioner partitioner(config);
    auto result = partitioner.Partition(g);
    SPINNER_CHECK(result.ok());
    std::printf("  c=%-7.2f iterations=%-4d phi=%.3f rho=%.3f\n", c,
                result->iterations, result->metrics.phi,
                result->metrics.rho);
  }

  // --- 3. conversion path ----------------------------------------------------
  std::printf("\n[3] conversion path (directed G+ stand-in):\n");
  StandIn gp = MakeStandIn("G+");
  for (bool in_engine : {false, true}) {
    SpinnerConfig config;
    config.num_partitions = k;
    config.in_engine_conversion = in_engine;
    SpinnerPartitioner partitioner(config);
    auto result =
        partitioner.PartitionDirected(gp.graph.num_vertices, gp.graph.edges);
    SPINNER_CHECK(result.ok());
    std::printf(
        "  conversion=%-9s supersteps=%-5lld wall=%.2fs phi=%.3f rho=%.3f\n",
        in_engine ? "in-engine" : "offline",
        static_cast<long long>(result->run_stats.supersteps),
        result->run_stats.total_wall_seconds, result->metrics.phi,
        result->metrics.rho);
  }

  // --- 4. halting window ------------------------------------------------------
  std::printf("\n[4] halting window w (eps=0.001):\n");
  for (int w : {1, 3, 5, 10}) {
    SpinnerConfig config;
    config.num_partitions = k;
    config.halt_window = w;
    SpinnerPartitioner partitioner(config);
    auto result = partitioner.Partition(g);
    SPINNER_CHECK(result.ok());
    std::printf("  w=%-3d iterations=%-4d phi=%.3f rho=%.3f\n", w,
                result->iterations, result->metrics.phi,
                result->metrics.rho);
  }

  // --- 5. balance objective (extension: §II.A "our approach is general") ---
  std::printf("\n[5] balance objective on the hub-heavy TW stand-in "
              "(k=%d):\n", k);
  StandIn tw = MakeStandIn("TW");
  CsrGraph tw_graph = Convert(tw.graph);
  for (BalanceMode mode : {BalanceMode::kEdges, BalanceMode::kVertices}) {
    SpinnerConfig config;
    config.num_partitions = k;
    config.balance_mode = mode;
    SpinnerPartitioner partitioner(config);
    auto result = partitioner.Partition(tw_graph);
    SPINNER_CHECK(result.ok());
    // Cross-measure: how balanced is the result under the *other* metric?
    BalanceSpec other;
    other.mode = mode == BalanceMode::kEdges ? BalanceMode::kVertices
                                             : BalanceMode::kEdges;
    auto cross = ComputeMetricsEx(tw_graph, result->assignment, k, 1.05,
                                  other);
    SPINNER_CHECK(cross.ok());
    std::printf("  balance=%-8s phi=%.3f rho(objective)=%.3f "
                "rho(other metric)=%.3f\n",
                mode == BalanceMode::kEdges ? "edges" : "vertices",
                result->metrics.phi, result->metrics.rho, cross->rho);
  }

  // --- 6. heterogeneous capacities (extension: mixed clusters) ------------
  std::printf("\n[6] heterogeneous capacities (k=4, one double machine):\n");
  {
    SpinnerConfig config;
    config.num_partitions = 4;
    config.partition_weights = {2.0, 1.0, 1.0, 1.0};
    SpinnerPartitioner partitioner(config);
    auto result = partitioner.Partition(g);
    SPINNER_CHECK(result.ok());
    const double total =
        static_cast<double>(g.TotalArcWeight());
    std::printf("  load shares:");
    for (int64_t load : result->metrics.loads) {
      std::printf(" %.3f", static_cast<double>(load) / total);
    }
    std::printf("  (target 0.4/0.2/0.2/0.2)  rho=%.3f phi=%.3f\n",
                result->metrics.rho, result->metrics.phi);
  }
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
