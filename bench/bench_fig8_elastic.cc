// Reproduces paper FIGURE 8: adapting to resource (partition-count)
// changes on the Tuenti stand-in, starting from k=32 and adding 1..8
// partitions. Compares elastic adaptation against re-partitioning from
// scratch on (a) time/message savings and (b) partitioning stability.
//
// Driven end-to-end by PartitioningSession: the k=32 steady state is
// captured once with Snapshot() and every resize restores it and calls
// Rescale(new_k) — the session tracks the current k itself.
//
// Expected shapes: savings positive but shrinking as more partitions are
// added (paper: 74% faster for +1); vertices moved grows with the number
// of added partitions (probabilistic migration rate n/(k+n)) but stays far
// below scratch (paper: <17% vs 96% for +1).
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "spinner/session.h"

namespace spinner::bench {
namespace {

void Run() {
  // Per-process path: concurrent runs (or other users' leftovers) must
  // not collide on the checkpoint file.
  const std::string snapshot_path =
      "/tmp/spinner_bench_fig8." + std::to_string(getpid()) + ".spns";
  PrintBanner(
      "FIGURE 8 — adapting to resource changes (Tuenti stand-in, k=32)",
      "elastic adaptation cheaper and far more stable than scratch; "
      "stability cost grows with #new partitions");
  StandIn tu = MakeStandIn("TU");
  const int k = 32;

  SpinnerConfig config;
  config.num_partitions = k;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(session.Open(tu.graph.num_vertices, tu.graph.edges,
                                tu.graph.directed));
  PrintStandIn(tu, session.converted());
  const std::vector<PartitionId> initial = session.assignment();
  std::printf("initial partitioning (k=32): phi=%.3f rho=%.3f\n",
              session.last_result().metrics.phi,
              session.last_result().metrics.rho);
  SPINNER_CHECK_OK(session.Snapshot(snapshot_path));

  std::printf("\n%-6s | %-12s %-12s | %-12s %-12s | %-9s %-9s\n",
              "+parts", "time save%", "msg save%", "moved adpt%",
              "moved scr%", "rho adpt", "phi adpt");
  for (int added : {1, 2, 4, 8}) {
    const int new_k = k + added;
    SPINNER_CHECK_OK(session.Restore(snapshot_path));
    SPINNER_CHECK_OK(session.Rescale(new_k));
    const PartitionResult& adapted = session.last_result();

    SpinnerConfig scratch_config = config;
    scratch_config.num_partitions = new_k;
    scratch_config.seed = 4242;
    PartitioningSession scratch_session(scratch_config);
    SPINNER_CHECK_OK(scratch_session.Open(
        tu.graph.num_vertices, tu.graph.edges, tu.graph.directed));
    const PartitionResult& scratch = scratch_session.last_result();

    const double time_save =
        100.0 * (1.0 - adapted.run_stats.total_wall_seconds /
                           scratch.run_stats.total_wall_seconds);
    const double msg_save =
        100.0 * (1.0 - static_cast<double>(
                           adapted.run_stats.TotalMessages()) /
                           static_cast<double>(
                               scratch.run_stats.TotalMessages()));
    auto moved_adapted =
        PartitioningDifference(initial, adapted.assignment);
    auto moved_scratch =
        PartitioningDifference(initial, scratch.assignment);
    SPINNER_CHECK(moved_adapted.ok() && moved_scratch.ok());

    std::printf("%-6d | %-12.1f %-12.1f | %-12.1f %-12.1f | %-9.3f %-9.3f\n",
                added, time_save, msg_save, 100.0 * *moved_adapted,
                100.0 * *moved_scratch, adapted.metrics.rho,
                adapted.metrics.phi);
  }
  std::printf("\n(shape check: moved-adaptive grows with +parts but stays "
              "well below moved-scratch; balance recovered at new k)\n");
  std::remove(snapshot_path.c_str());
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
