// Reproduces paper FIGURE 8 (adapting to resource changes) and extends it
// into the closed-loop elasticity gauge.
//
// Part A — the paper's experiment: starting from the k=32 steady state on
// the Tuenti stand-in, add 1..8 partitions and compare elastic Rescale
// against re-partitioning from scratch on time/message savings and
// stability. Expected shapes: savings positive but shrinking as more
// partitions are added (paper: 74% faster for +1); vertices moved grows
// with the number of added partitions but stays far below scratch
// (paper: <17% vs 96% for +1).
//
// Part B — the policy sweep the paper stops short of: WHO calls Rescale?
// A synthetic growth trace (new vertices + hotspot edges + a mid-trace
// capacity grant) is replayed through the real IngestionService +
// ElasticController under each autoscaling policy, and the scorecards —
// φ trajectory, ρ violations, rescale count, modeled migration cost —
// are published to BENCH_fig8_elastic.json. Every scorecard field except
// wall time is deterministic (ManualClock + event-count windows), so CI
// hard-gates them via tools/bench_compare.py.
//
//   ./bench_fig8_elastic [--smoke] [--out=BENCH_fig8_elastic.json]
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"

#include "bench_util.h"
#include "common/cli.h"
#include "simulator/cluster_simulator.h"
#include "spinner/session.h"

namespace spinner::bench {
namespace {

struct PolicyRow {
  std::string label;
  sim::PolicyReplayResult replay;
  double moved_pct = 0.0;
};

/// Part A: the paper's rescale-vs-scratch comparison.
void RunRescaleVsScratch(const StandIn& tu, int k,
                         const std::vector<int>& added_list,
                         const std::string& snapshot_path) {
  SpinnerConfig config;
  config.num_partitions = k;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(session.Open(tu.graph.num_vertices, tu.graph.edges,
                                tu.graph.directed));
  PrintStandIn(tu, session.converted());
  const std::vector<PartitionId> initial = session.assignment();
  std::printf("initial partitioning (k=%d): phi=%.3f rho=%.3f\n", k,
              session.last_result().metrics.phi,
              session.last_result().metrics.rho);
  SPINNER_CHECK_OK(session.Snapshot(snapshot_path));

  std::printf("\n%-6s | %-12s %-12s | %-12s %-12s | %-9s %-9s\n",
              "+parts", "time save%", "msg save%", "moved adpt%",
              "moved scr%", "rho adpt", "phi adpt");
  for (int added : added_list) {
    const int new_k = k + added;
    SPINNER_CHECK_OK(session.Restore(snapshot_path));
    SPINNER_CHECK_OK(session.Rescale(new_k));
    const PartitionResult& adapted = session.last_result();

    SpinnerConfig scratch_config = config;
    scratch_config.num_partitions = new_k;
    scratch_config.seed = 4242;
    PartitioningSession scratch_session(scratch_config);
    SPINNER_CHECK_OK(scratch_session.Open(
        tu.graph.num_vertices, tu.graph.edges, tu.graph.directed));
    const PartitionResult& scratch = scratch_session.last_result();

    const double time_save =
        100.0 * (1.0 - adapted.run_stats.total_wall_seconds /
                           scratch.run_stats.total_wall_seconds);
    const double msg_save =
        100.0 * (1.0 - static_cast<double>(
                           adapted.run_stats.TotalMessages()) /
                           static_cast<double>(
                               scratch.run_stats.TotalMessages()));
    auto moved_adapted =
        PartitioningDifference(initial, adapted.assignment);
    auto moved_scratch =
        PartitioningDifference(initial, scratch.assignment);
    SPINNER_CHECK(moved_adapted.ok() && moved_scratch.ok());

    std::printf("%-6d | %-12.1f %-12.1f | %-12.1f %-12.1f | %-9.3f %-9.3f\n",
                added, time_save, msg_save, 100.0 * *moved_adapted,
                100.0 * *moved_scratch, adapted.metrics.rho,
                adapted.metrics.phi);
  }
  std::printf("\n(shape check: moved-adaptive grows with +parts but stays "
              "well below moved-scratch; balance recovered at new k)\n");
  std::remove(snapshot_path.c_str());
}

/// Part-B substrate config (identical for every policy, so scorecards
/// differ only by what the policy decided).
SpinnerConfig LabConfig(int k) {
  SpinnerConfig config;
  config.num_partitions = k;
  return config;
}

}  // namespace
}  // namespace spinner::bench

int main(int argc, char** argv) {
  using namespace spinner;
  using namespace spinner::bench;

  const bool smoke = ConsumeSmokeFlag(&argc, argv);
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const std::string out_path =
      cli.GetString("out", "BENCH_fig8_elastic.json");
  const std::string snapshot_path =
      "/tmp/spinner_bench_fig8." + std::to_string(getpid()) + ".spns";

  PrintBanner(
      "FIGURE 8 — adapting to resource changes, and the policies that "
      "decide to",
      "elastic adaptation cheaper and far more stable than scratch; "
      "closed-loop policies trade migration cost against quality");

  // --- Part A: rescale vs scratch (the paper's figure) -------------------
  if (smoke) {
    StandIn tiny{"TU", "WattsStrogatz(n=2k, deg=12, beta=0.2) [smoke]",
                 WattsStrogatz(2000, 6, 0.2, 42).value()};
    RunRescaleVsScratch(tiny, /*k=*/8, {1, 2}, snapshot_path);
  } else {
    RunRescaleVsScratch(MakeStandIn("TU"), /*k=*/32, {1, 2, 4, 8},
                        snapshot_path);
  }

  // --- Part B: the policy sweep ------------------------------------------
  std::printf("\n--- policy sweep: growth trace through the real "
              "IngestionService + ElasticController ---\n");
  const GeneratedGraph lab_graph =
      smoke ? WattsStrogatz(2000, 6, 0.3, 42).value()
            : MakeStandIn("LJ").graph;
  const int lab_k = smoke ? 8 : 16;

  sim::SyntheticTraceOptions trace_options;
  trace_options.num_vertices = lab_graph.num_vertices;
  trace_options.num_bursts = smoke ? 6 : 10;
  trace_options.events_per_burst = smoke ? 300 : 1200;
  trace_options.vertices_per_burst = smoke ? 100 : 400;
  trace_options.remove_fraction = 0.05;
  trace_options.hotspot_fraction = 0.30;
  trace_options.hotspot_span = 64;
  trace_options.seed = 9;
  trace_options.initial_capacity = lab_k + 2;
  trace_options.capacity_change_burst = trace_options.num_bursts / 2;
  trace_options.changed_capacity = lab_k + 8;
  const sim::LoadTrace trace = sim::SyntheticLoadTrace(trace_options);
  std::printf("trace: %d bursts, %lld events, capacity %d -> %d at burst "
              "%d%s\n",
              trace_options.num_bursts,
              static_cast<long long>(trace.num_events()),
              trace_options.initial_capacity,
              trace_options.changed_capacity,
              trace_options.capacity_change_burst,
              smoke ? "  [smoke sizes: numbers are not measurements]" : "");

  // The physical watermark (utilization = max_load / machine_capacity)
  // needs a machine size; derive it from the substrate's own steady state
  // so the trace's growth pushes the hottest machine past 100%.
  int64_t machine_capacity = 0;
  {
    PartitioningSession probe(LabConfig(lab_k));
    SPINNER_CHECK_OK(probe.Open(lab_graph.num_vertices, lab_graph.edges,
                                lab_graph.directed));
    for (int64_t load : probe.last_result().metrics.loads) {
      machine_capacity = std::max(machine_capacity, load);
    }
    machine_capacity = machine_capacity + machine_capacity / 20;  // +5%
  }

  struct Sweep {
    std::string label;
    std::string spec;
  };
  const std::vector<Sweep> sweeps = {
      {"none", "none"},
      {"watermark",
       StrFormat("watermark:high=1.0,low=0.5,machine-capacity=%lld",
                 static_cast<long long>(machine_capacity))},
      {"cut", "cut:budget=0.005,window=6"},
      {"watermark+hc",
       StrFormat("watermark:high=1.0,low=0.5,machine-capacity=%lld,"
                 "hysteresis=2,cooldown-ms=2500",
                 static_cast<long long>(machine_capacity))},
  };

  std::printf("\n%-14s | %-8s %-8s %-8s | %-8s %-8s %-8s | %-6s %-9s %-9s\n",
              "policy", "final k", "rescale", "windows", "phi end",
              "phi min", "rho max", "rho>c", "moved%", "migr s");
  std::vector<PolicyRow> rows;
  for (const Sweep& sweep : sweeps) {
    PartitioningSession session(LabConfig(lab_k));
    SPINNER_CHECK_OK(session.Open(lab_graph.num_vertices, lab_graph.edges,
                                  lab_graph.directed));
    sim::ReplayOptions replay_options;
    replay_options.policy_spec = sweep.spec;
    replay_options.events_per_window = smoke ? 150 : 400;
    auto replay = sim::ReplayTrace(&session, trace, replay_options);
    SPINNER_CHECK(replay.ok()) << sweep.spec << ": " << replay.status();

    PolicyRow row;
    row.label = sweep.label;
    row.replay = std::move(replay).value();
    row.moved_pct = session.num_vertices() > 0
                        ? 100.0 * static_cast<double>(
                                      row.replay.moved_vertices) /
                              static_cast<double>(session.num_vertices())
                        : 0.0;
    std::printf(
        "%-14s | %-8d %-8d %-8lld | %-8.3f %-8.3f %-8.3f | %-6d %-9.2f "
        "%-9.3f\n",
        row.label.c_str(), row.replay.final_k, row.replay.rescales,
        static_cast<long long>(row.replay.windows_applied),
        row.replay.final_phi, row.replay.min_phi, row.replay.max_rho,
        row.replay.rho_violations, row.moved_pct,
        row.replay.migration_seconds);
    rows.push_back(std::move(row));
  }
  std::printf("\n(shape check: 'none' holds k and degrades; active policies "
              "spend migration to hold quality; hysteresis+cooldown spends "
              "fewer rescales than the raw watermark)\n");

  // --- JSON gauge ---------------------------------------------------------
  std::FILE* json = std::fopen(out_path.c_str(), "w");
  SPINNER_CHECK(json != nullptr) << "cannot write " << out_path;
  std::fprintf(json, "{\n  \"bench\": \"fig8_elastic\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json,
               "  \"substrate\": {\"vertices\": %lld, \"edges\": %zu, "
               "\"k\": %d},\n",
               static_cast<long long>(lab_graph.num_vertices),
               lab_graph.edges.size(), lab_k);
  std::fprintf(json,
               "  \"trace\": {\"bursts\": %d, \"events\": %lld, "
               "\"machine_capacity\": %lld},\n",
               trace_options.num_bursts,
               static_cast<long long>(trace.num_events()),
               static_cast<long long>(machine_capacity));
  std::fprintf(json, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PolicyRow& row = rows[i];
    const sim::PolicyReplayResult& r = row.replay;
    std::fprintf(
        json,
        "    {\"policy\": \"%s\", \"final_k\": %d, \"rescales\": %d, "
        "\"windows\": %lld, \"evaluations\": %d, \"phi_final\": %.4f, "
        "\"phi_min\": %.4f, \"phi_mean\": %.4f, \"rho_max\": %.4f, "
        "\"rho_violations\": %d, \"moved_pct\": %.2f, "
        "\"migration_seconds\": %.4f, \"replay_wall_seconds\": %.3f}%s\n",
        row.label.c_str(), r.final_k, r.rescales,
        static_cast<long long>(r.windows_applied), r.evaluations,
        r.final_phi, r.min_phi, r.mean_phi, r.max_rho, r.rho_violations,
        row.moved_pct, r.migration_seconds, r.replay_wall_seconds,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
