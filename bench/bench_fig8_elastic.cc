// Reproduces paper FIGURE 8: adapting to resource (partition-count)
// changes on the Tuenti stand-in, starting from k=32 and adding 1..8
// partitions. Compares elastic adaptation against re-partitioning from
// scratch on (a) time/message savings and (b) partitioning stability.
//
// Expected shapes: savings positive but shrinking as more partitions are
// added (paper: 74% faster for +1); vertices moved grows with the number
// of added partitions (probabilistic migration rate n/(k+n)) but stays far
// below scratch (paper: <17% vs 96% for +1).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

void Run() {
  PrintBanner(
      "FIGURE 8 — adapting to resource changes (Tuenti stand-in, k=32)",
      "elastic adaptation cheaper and far more stable than scratch; "
      "stability cost grows with #new partitions");
  StandIn tu = MakeStandIn("TU");
  CsrGraph g = Convert(tu.graph);
  PrintStandIn(tu, g);
  const int k = 32;

  SpinnerConfig config;
  config.num_partitions = k;
  SpinnerPartitioner partitioner(config);
  auto initial = partitioner.Partition(g);
  SPINNER_CHECK(initial.ok());
  std::printf("initial partitioning (k=32): phi=%.3f rho=%.3f\n",
              initial->metrics.phi, initial->metrics.rho);

  std::printf("\n%-6s | %-12s %-12s | %-12s %-12s | %-9s %-9s\n",
              "+parts", "time save%", "msg save%", "moved adpt%",
              "moved scr%", "rho adpt", "phi adpt");
  for (int added : {1, 2, 4, 8}) {
    const int new_k = k + added;
    auto adapted = partitioner.Rescale(g, initial->assignment, new_k);
    SPINNER_CHECK(adapted.ok());

    SpinnerConfig scratch_config = config;
    scratch_config.num_partitions = new_k;
    scratch_config.seed = 4242;
    SpinnerPartitioner scratch_partitioner(scratch_config);
    auto scratch = scratch_partitioner.Partition(g);
    SPINNER_CHECK(scratch.ok());

    const double time_save =
        100.0 * (1.0 - adapted->run_stats.total_wall_seconds /
                           scratch->run_stats.total_wall_seconds);
    const double msg_save =
        100.0 * (1.0 - static_cast<double>(
                           adapted->run_stats.TotalMessages()) /
                           static_cast<double>(
                               scratch->run_stats.TotalMessages()));
    auto moved_adapted =
        PartitioningDifference(initial->assignment, adapted->assignment);
    auto moved_scratch =
        PartitioningDifference(initial->assignment, scratch->assignment);
    SPINNER_CHECK(moved_adapted.ok() && moved_scratch.ok());

    std::printf("%-6d | %-12.1f %-12.1f | %-12.1f %-12.1f | %-9.3f %-9.3f\n",
                added, time_save, msg_save, 100.0 * *moved_adapted,
                100.0 * *moved_scratch, adapted->metrics.rho,
                adapted->metrics.phi);
  }
  std::printf("\n(shape check: moved-adaptive grows with +parts but stays "
              "well below moved-scratch; balance recovered at new k)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
