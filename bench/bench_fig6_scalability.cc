// Reproduces paper FIGURE 6 (google-benchmark): runtime of one LPA
// iteration (ComputeScores + ComputeMigrations, the most expensive and
// deterministic iteration) as a function of
//   (a) graph size        — Watts-Strogatz, deg 40, beta 0.3, k=64;
//   (b) number of workers — fixed graph, workers 1..hardware;
//   (c) number of partitions k — fixed graph, k 2..512.
//
// Expected shapes: (a) near-linear in |V| (loglog-linear in the paper);
// (b) runtime drops with added workers (paper: 7.6× speedup with 7.6×
// workers); (c) near-linear growth with k (per-vertex work and counter
// management are proportional to k).
//
// Scale note: the paper runs 2M..1024M vertices on 115 machines; this
// harness runs 16k..256k vertices on one machine — the *trend* is the
// reproduction target.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

/// Cached converted Watts-Strogatz graphs (paper §V.B setup, scaled).
const CsrGraph& CachedWsGraph(int64_t n) {
  static std::map<int64_t, std::unique_ptr<CsrGraph>>* cache =
      new std::map<int64_t, std::unique_ptr<CsrGraph>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto ws = WattsStrogatz(n, /*neighbors_per_side=*/20, 0.3, 42);
    SPINNER_CHECK(ws.ok());
    auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
    SPINNER_CHECK(converted.ok());
    it = cache
             ->emplace(n, std::make_unique<CsrGraph>(
                               std::move(converted).value()))
             .first;
  }
  return *it->second;
}

/// Runs two LPA iterations and returns the wall time of the first full
/// iteration (supersteps 1 and 2: the first ComputeScores and
/// ComputeMigrations after Initialize).
double FirstIterationSeconds(const CsrGraph& g, int k, int workers) {
  SpinnerConfig config;
  config.num_partitions = k;
  config.num_workers = workers;
  config.max_iterations = 2;
  config.use_halting = false;
  config.record_history = false;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  SPINNER_CHECK(result.ok());
  const auto& steps = result->run_stats.per_superstep;
  SPINNER_CHECK(steps.size() >= 3);
  return steps[1].wall_seconds + steps[2].wall_seconds;
}

void BM_IterationTime_GraphSize(benchmark::State& state) {
  const int64_t n = state.range(0);
  const CsrGraph& g = CachedWsGraph(n);
  for (auto _ : state) {
    state.SetIterationTime(FirstIterationSeconds(g, 64, 0));
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["arcs"] = static_cast<double>(g.NumArcs());
}
BENCHMARK(BM_IterationTime_GraphSize)
    ->RangeMultiplier(2)
    ->Range(16384, 262144)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_IterationTime_Workers(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const CsrGraph& g = CachedWsGraph(131072);
  for (auto _ : state) {
    state.SetIterationTime(FirstIterationSeconds(g, 64, workers));
  }
  state.counters["workers"] = workers;
}
BENCHMARK(BM_IterationTime_Workers)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_IterationTime_Partitions(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const CsrGraph& g = CachedWsGraph(131072);
  for (auto _ : state) {
    state.SetIterationTime(FirstIterationSeconds(g, k, 0));
  }
  state.counters["k"] = k;
}
BENCHMARK(BM_IterationTime_Partitions)
    ->RangeMultiplier(4)
    ->Range(2, 512)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace spinner::bench

BENCHMARK_MAIN();
