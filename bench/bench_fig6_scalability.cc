// Reproduces paper FIGURE 6 (google-benchmark): runtime of one LPA
// iteration (ComputeScores + ComputeMigrations, the most expensive and
// deterministic iteration) as a function of
//   (a) graph size        — Watts-Strogatz, deg 40, beta 0.3, k=64;
//   (b) number of workers — fixed graph, workers 1..hardware;
//   (c) number of partitions k — fixed graph, k 2..512;
//   (d) number of shards  — fixed graph, shard-parallel store, S 1..64;
//   (e) number of worker processes — fixed graph, the cross-process
//       execution mode (forked ShardWorkers + wire protocol), P 1..4 —
//       measuring what the per-superstep message passing costs relative
//       to the in-process substrate for the identical assignment.
//
// Expected shapes: (a) near-linear in |V| (loglog-linear in the paper);
// (b) runtime drops with added workers (paper: 7.6× speedup with 7.6×
// workers); (c) near-linear growth with k (per-vertex work and counter
// management are proportional to k); (d) like (b) up to the hardware
// thread count, then flat with mild oversharding overhead — shard count
// is a pure parallelism knob, the assignment is bit-identical for all S.
//
// Scale note: the paper runs 2M..1024M vertices on 115 machines; this
// harness runs 16k..256k vertices on one machine — the *trend* is the
// reproduction target. Pass --smoke (CI) to shrink sizes so the bench
// merely proves it executes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

/// Cached converted Watts-Strogatz graphs (paper §V.B setup, scaled).
const CsrGraph& CachedWsGraph(int64_t n) {
  static std::map<int64_t, std::unique_ptr<CsrGraph>>* cache =
      new std::map<int64_t, std::unique_ptr<CsrGraph>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto ws = WattsStrogatz(n, /*neighbors_per_side=*/20, 0.3, 42);
    SPINNER_CHECK(ws.ok());
    auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
    SPINNER_CHECK(converted.ok());
    it = cache
             ->emplace(n, std::make_unique<CsrGraph>(
                               std::move(converted).value()))
             .first;
  }
  return *it->second;
}

/// Runs two LPA iterations and returns the wall time of the first full
/// iteration (supersteps 1 and 2: the first ComputeScores and
/// ComputeMigrations after Initialize). `shards` maps to num_shards of
/// the sharded substrate (0 = auto).
double FirstIterationSeconds(const CsrGraph& g, int k, int workers,
                             int shards = 0, int processes = 0) {
  SpinnerConfig config;
  config.num_partitions = k;
  config.num_workers = workers;
  config.num_shards = shards;
  config.num_processes = processes;
  config.max_iterations = 2;
  config.use_halting = false;
  config.record_history = false;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  SPINNER_CHECK(result.ok());
  const auto& steps = result->run_stats.per_superstep;
  SPINNER_CHECK(steps.size() >= 3);
  return steps[1].wall_seconds + steps[2].wall_seconds;
}

void BM_IterationTime_GraphSize(benchmark::State& state) {
  const int64_t n = state.range(0);
  const CsrGraph& g = CachedWsGraph(n);
  for (auto _ : state) {
    state.SetIterationTime(FirstIterationSeconds(g, 64, 0));
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["arcs"] = static_cast<double>(g.NumArcs());
}

void BM_IterationTime_Workers(benchmark::State& state, int64_t n) {
  const int workers = static_cast<int>(state.range(0));
  const CsrGraph& g = CachedWsGraph(n);
  for (auto _ : state) {
    state.SetIterationTime(FirstIterationSeconds(g, 64, workers));
  }
  state.counters["workers"] = workers;
}

void BM_IterationTime_Partitions(benchmark::State& state, int64_t n) {
  const int k = static_cast<int>(state.range(0));
  const CsrGraph& g = CachedWsGraph(n);
  for (auto _ : state) {
    state.SetIterationTime(FirstIterationSeconds(g, k, 0));
  }
  state.counters["k"] = k;
}

void BM_IterationTime_Shards(benchmark::State& state, int64_t n) {
  const int shards = static_cast<int>(state.range(0));
  const CsrGraph& g = CachedWsGraph(n);
  for (auto _ : state) {
    state.SetIterationTime(
        FirstIterationSeconds(g, 64, /*workers=*/0, shards));
  }
  state.counters["shards"] = shards;
}

void BM_IterationTime_Processes(benchmark::State& state, int64_t n) {
  const int processes = static_cast<int>(state.range(0));
  const CsrGraph& g = CachedWsGraph(n);
  for (auto _ : state) {
    state.SetIterationTime(FirstIterationSeconds(
        g, 64, /*workers=*/0, /*shards=*/0, processes));
  }
  state.counters["processes"] = processes;
}

/// Smoke-mode wire report: runs the cross-process mode over the fixed
/// graph and prints the coordinator's wire counters — total and
/// per-superstep bytes — so the CI bench artifact tracks the
/// O(V·workers) → O(boundary) label-traffic trajectory across PRs.
void PrintWireReport(int64_t n) {
  const CsrGraph& g = CachedWsGraph(n);
  for (const int processes : {1, 2}) {
    SpinnerConfig config;
    config.num_partitions = 64;
    config.num_processes = processes;
    // Pin the shard count so the reported boundary sizes and byte counts
    // are comparable across runners (auto-resolution follows the host's
    // core count).
    config.num_shards = 8;
    config.max_iterations = 3;
    config.use_halting = false;
    config.record_history = false;
    SpinnerPartitioner partitioner(config);
    auto result = partitioner.Partition(g);
    SPINNER_CHECK(result.ok());
    const WireTraffic& wire = result->wire;
    std::printf(
        "wire_traffic processes=%d vertices=%lld bytes_sent=%lld "
        "bytes_received=%lld frames_sent=%lld chunked_messages=%lld "
        "subscribed_vertices=%lld label_values_sent=%lld "
        "delta_entries_sent=%lld\n",
        processes, static_cast<long long>(n),
        static_cast<long long>(wire.bytes_sent),
        static_cast<long long>(wire.bytes_received),
        static_cast<long long>(wire.frames_sent),
        static_cast<long long>(wire.chunked_messages),
        static_cast<long long>(wire.subscribed_vertices),
        static_cast<long long>(wire.label_values_sent),
        static_cast<long long>(wire.delta_entries_sent));
    for (size_t step = 0; step < wire.per_superstep_bytes.size(); ++step) {
      std::printf("wire_superstep processes=%d step=%zu bytes=%lld\n",
                  processes, step,
                  static_cast<long long>(wire.per_superstep_bytes[step]));
    }
  }
}

void RegisterAll(bool smoke) {
  // Smoke mode shrinks everything so CI executes every curve in seconds.
  const int64_t n_min = smoke ? 2048 : 16384;
  const int64_t n_max = smoke ? 8192 : 262144;
  const int64_t n_fixed = smoke ? 8192 : 131072;
  const int64_t k_max = smoke ? 32 : 512;
  const int64_t shards_max = smoke ? 8 : 64;
  const int64_t workers_max = smoke ? 4 : 16;

  benchmark::RegisterBenchmark("BM_IterationTime_GraphSize",
                               BM_IterationTime_GraphSize)
      ->RangeMultiplier(2)
      ->Range(n_min, n_max)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke ? 1 : 3);
  benchmark::RegisterBenchmark(
      "BM_IterationTime_Workers",
      [n_fixed](benchmark::State& s) { BM_IterationTime_Workers(s, n_fixed); })
      ->RangeMultiplier(2)
      ->Range(1, workers_max)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke ? 1 : 3);
  benchmark::RegisterBenchmark(
      "BM_IterationTime_Partitions",
      [n_fixed](benchmark::State& s) {
        BM_IterationTime_Partitions(s, n_fixed);
      })
      ->RangeMultiplier(4)
      ->Range(2, k_max)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke ? 1 : 3);
  benchmark::RegisterBenchmark(
      "BM_IterationTime_Shards",
      [n_fixed](benchmark::State& s) { BM_IterationTime_Shards(s, n_fixed); })
      ->RangeMultiplier(2)
      ->Range(1, shards_max)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke ? 1 : 3);
  benchmark::RegisterBenchmark(
      "BM_IterationTime_Processes",
      [n_fixed](benchmark::State& s) {
        BM_IterationTime_Processes(s, n_fixed);
      })
      ->RangeMultiplier(2)
      ->Range(1, smoke ? 2 : 4)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke ? 1 : 3);
}

}  // namespace
}  // namespace spinner::bench

int main(int argc, char** argv) {
  const bool smoke = spinner::bench::ConsumeSmokeFlag(&argc, argv);
  spinner::bench::RegisterAll(smoke);
  // Publish the google-benchmark JSON artifact by default — CI archives
  // BENCH_*.json and this bench used to print to the console only. An
  // explicit --benchmark_out on the command line wins.
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_fig6_scalability.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  args.push_back(nullptr);
  int args_count = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The wire report rides the smoke artifact so the perf trajectory
  // includes per-superstep wire bytes, not just wall times.
  if (smoke) spinner::bench::PrintWireReport(/*n=*/8192);
  return 0;
}
