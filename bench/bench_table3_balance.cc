// Reproduces paper TABLE III: average maximum normalized load ρ per graph
// (LJ, G+, TU, TW, FR) with the default configuration (c = 1.05).
//
// Expected shape: ρ stays within c for every graph (paper: 1.042-1.059).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "spinner/partitioner.h"

namespace spinner::bench {
namespace {

void Run() {
  PrintBanner("TABLE III — partitioning balance (average rho per graph)",
              "rho <= c = 1.05 (+probabilistic slack) on all graphs; paper "
              "reports 1.042..1.059");
  const std::vector<std::string> keys = {"LJ", "G+", "TU", "TW", "FR"};
  const int kRepetitions = 3;

  std::printf("\n%-5s %-12s %-12s %-12s\n", "Graph", "avg rho", "min rho",
              "max rho");
  for (const auto& key : keys) {
    StandIn stand_in = MakeStandIn(key);
    CsrGraph g = Convert(stand_in.graph);
    SampleStats rho;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      SpinnerConfig config;
      config.num_partitions = 32;
      config.seed = 42 + rep;
      SpinnerPartitioner partitioner(config);
      auto result = partitioner.Partition(g);
      SPINNER_CHECK(result.ok());
      rho.Add(result->metrics.rho);
    }
    std::printf("%-5s %-12.3f %-12.3f %-12.3f\n", key.c_str(), rho.Mean(),
                rho.Min(), rho.Max());
  }
  std::printf(
      "\n(paper Table III: LJ 1.053, G+ 1.042, TU 1.052, TW 1.059, FR "
      "1.047)\n");
}

}  // namespace
}  // namespace spinner::bench

int main() {
  spinner::bench::Run();
  return 0;
}
