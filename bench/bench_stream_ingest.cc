// Streaming ingestion throughput/latency bench: how fast can the
// IngestionService absorb a live edge stream while keeping the
// partitioning maintained, and what does the watermark (events per
// window) buy? Large windows amortize ApplyDelta over more events
// (throughput), small windows keep the partitioning fresh (staleness).
// This is the SLO knob of real-time dynamic partitioning; the paper's
// dynamic experiment (Fig. 7) batches by percentage, a service batches by
// watermark.
//
// Reports events/sec end-to-end, p50/p99 per-window apply latency and the
// worst observed staleness per watermark, and writes the rows as JSON to
// BENCH_stream_ingest.json (override with --out=...) so CI can archive
// machine-readable numbers.
//
//   ./bench_stream_ingest [--smoke] [--out=BENCH_stream_ingest.json]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/timer.h"
#include "graph/delta.h"
#include "spinner/session.h"
#include "stream/ingestion_service.h"

using namespace spinner;

namespace {

struct Row {
  int64_t watermark = 0;
  int64_t events = 0;
  int64_t windows = 0;
  int64_t coalesced = 0;
  double events_per_sec = 0;
  double p50_apply_ms = 0;
  double p99_apply_ms = 0;
  double max_staleness_ms = 0;
  double phi = 0;
  double rho = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

/// One full run: stream `events` through a fresh session at `watermark`.
Row RunOnce(const GeneratedGraph& g, const std::vector<stream::EdgeEvent>&
            events, int64_t watermark) {
  SpinnerConfig config;
  config.num_partitions = 16;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(session.Open(g.num_vertices, g.edges, g.directed));

  // Per-window apply latencies, collected on the ingestion thread (the
  // on_apply callback is never concurrent with itself).
  std::vector<double> apply_ms;
  stream::IngestionOptions options;
  options.policy = std::make_unique<stream::EventCountPolicy>(watermark);
  options.queue_capacity = 8192;
  options.on_apply = [&apply_ms](const stream::IngestStats& stats) {
    apply_ms.push_back(static_cast<double>(stats.last_apply_micros) /
                       1000.0);
    return true;
  };
  stream::IngestionService service(&session, std::move(options));
  SPINNER_CHECK_OK(service.Start());

  WallTimer timer;
  for (const stream::EdgeEvent& event : events) {
    SPINNER_CHECK_OK(service.Submit(event));
  }
  SPINNER_CHECK_OK(service.Stop());
  const double seconds = timer.ElapsedSeconds();

  const stream::IngestStats stats = service.stats();
  Row row;
  row.watermark = watermark;
  row.events = stats.events_ingested;
  row.windows = stats.windows_applied;
  row.coalesced = stats.events_coalesced;
  row.events_per_sec =
      seconds > 0 ? static_cast<double>(stats.events_ingested) / seconds : 0;
  row.p50_apply_ms = Percentile(apply_ms, 0.50);
  row.p99_apply_ms = Percentile(apply_ms, 0.99);
  row.max_staleness_ms =
      static_cast<double>(stats.max_staleness_micros) / 1000.0;
  row.phi = stats.last_phi;
  row.rho = stats.last_rho;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::ConsumeSmokeFlag(&argc, argv);
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const std::string out_path =
      cli.GetString("out", "BENCH_stream_ingest.json");

  bench::PrintBanner(
      "Streaming ingestion: live edge stream -> maintained partitioning",
      "larger watermarks amortize ApplyDelta (higher events/sec), smaller "
      "ones bound staleness");

  // The LiveJournal stand-in (small-world social graph), shrunk in smoke
  // mode so CI executes the full pipeline in seconds.
  auto g = smoke ? WattsStrogatz(2000, 6, 0.3, 42).value()
                 : bench::MakeStandIn("LJ").graph;
  std::printf("substrate: |V|=%lld |E|=%zu%s\n",
              static_cast<long long>(g.num_vertices), g.edges.size(),
              smoke ? "  [smoke sizes: numbers are not measurements]" : "");

  // The stream: fresh edges plus the churn a real feed carries — retries
  // (duplicate adds) and transient edges (added then removed), which the
  // service coalesces away before they cost an ApplyDelta.
  const int64_t num_fresh = smoke ? 400 : 6000;
  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, num_fresh, /*seed=*/7);
  std::vector<stream::EdgeEvent> events;
  events.reserve(static_cast<size_t>(num_fresh) * 2);
  for (size_t i = 0; i < fresh.added_edges.size(); ++i) {
    const Edge& e = fresh.added_edges[i];
    events.push_back(stream::EdgeEvent::AddEdge(e.src, e.dst));
    if (i % 10 == 0) {  // retry
      events.push_back(stream::EdgeEvent::AddEdge(e.src, e.dst));
    }
    if (i % 25 == 0) {  // transient
      events.push_back(stream::EdgeEvent::AddEdge(e.dst, e.src));
      events.push_back(stream::EdgeEvent::RemoveEdge(e.dst, e.src));
    }
  }

  const std::vector<int64_t> watermarks =
      smoke ? std::vector<int64_t>{128} : std::vector<int64_t>{64, 256,
                                                               1024};
  std::printf("\n%-10s %10s %8s %10s %12s %12s %12s %14s\n", "watermark",
              "events", "windows", "coalesced", "events/sec", "p50 apply",
              "p99 apply", "max staleness");
  std::vector<Row> rows;
  for (const int64_t watermark : watermarks) {
    Row row = RunOnce(g, events, watermark);
    std::printf("%-10lld %10lld %8lld %10lld %12.0f %10.1fms %10.1fms "
                "%12.1fms\n",
                static_cast<long long>(row.watermark),
                static_cast<long long>(row.events),
                static_cast<long long>(row.windows),
                static_cast<long long>(row.coalesced), row.events_per_sec,
                row.p50_apply_ms, row.p99_apply_ms, row.max_staleness_ms);
    rows.push_back(row);
  }

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  SPINNER_CHECK(json != nullptr) << "cannot write " << out_path;
  std::fprintf(json, "{\n  \"bench\": \"stream_ingest\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"substrate\": {\"vertices\": %lld, \"edges\": "
                     "%zu},\n",
               static_cast<long long>(g.num_vertices), g.edges.size());
  std::fprintf(json, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        json,
        "    {\"watermark\": %lld, \"events\": %lld, \"windows\": %lld, "
        "\"events_coalesced\": %lld, \"events_per_sec\": %.1f, "
        "\"p50_apply_ms\": %.3f, \"p99_apply_ms\": %.3f, "
        "\"max_staleness_ms\": %.3f, \"phi\": %.4f, \"rho\": %.4f}%s\n",
        static_cast<long long>(r.watermark),
        static_cast<long long>(r.events),
        static_cast<long long>(r.windows),
        static_cast<long long>(r.coalesced), r.events_per_sec,
        r.p50_apply_ms, r.p99_apply_ms, r.max_staleness_ms, r.phi, r.rho,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
