#include "graph/conversion.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace spinner {
namespace {

TEST(ConversionTest, PaperFigure1Semantics) {
  // One single-direction edge and one reciprocal pair:
  //   0 -> 1            (one direction: weight 1)
  //   1 -> 2, 2 -> 1    (reciprocal: weight 2)
  auto g = ConvertToWeightedUndirected(3, {{0, 1}, {1, 2}, {2, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsSymmetric());
  EXPECT_EQ(g->NumArcs(), 4);  // 2 undirected edges, stored both ways
  // Arc 0->1 weight 1, arcs 1<->2 weight 2.
  ASSERT_EQ(g->OutDegree(0), 1);
  EXPECT_EQ(g->Weights(0)[0], 1u);
  ASSERT_EQ(g->OutDegree(2), 1);
  EXPECT_EQ(g->Weights(2)[0], 2u);
  EXPECT_EQ(g->WeightedDegree(1), 3);  // 1 (to 0) + 2 (to 2)
}

TEST(ConversionTest, TotalWeightEqualsTwiceDirectedEdges) {
  // Every directed edge contributes exactly 2 to the total arc weight:
  // singles give two weight-1 arcs; reciprocal pairs two weight-2 arcs.
  const EdgeList directed = {{0, 1}, {1, 0}, {1, 2}, {3, 2}, {0, 3}};
  auto g = ConvertToWeightedUndirected(4, directed);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->TotalArcWeight(),
            2 * static_cast<int64_t>(directed.size()));
}

TEST(ConversionTest, DropsSelfLoops) {
  auto g = ConvertToWeightedUndirected(2, {{0, 0}, {0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumArcs(), 2);
  EXPECT_FALSE(g->HasArc(0, 0));
}

TEST(ConversionTest, DuplicateDirectedEdgesCollapse) {
  auto g = ConvertToWeightedUndirected(2, {{0, 1}, {0, 1}, {0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumArcs(), 2);
  EXPECT_EQ(g->Weights(0)[0], 1u);  // still one-directional
}

TEST(ConversionTest, RejectsOutOfRange) {
  EXPECT_FALSE(ConvertToWeightedUndirected(2, {{0, 5}}).ok());
}

TEST(ConversionTest, EmptyGraph) {
  auto g = ConvertToWeightedUndirected(4, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumArcs(), 0);
  EXPECT_EQ(g->NumVertices(), 4);
}

TEST(BuildSymmetricTest, DoublesUndirectedEdges) {
  auto g = BuildSymmetric(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsSymmetric());
  EXPECT_EQ(g->NumArcs(), 4);
  EXPECT_EQ(g->TotalArcWeight(), 4);
}

TEST(BuildSymmetricTest, DedupsAndDropsLoops) {
  auto g = BuildSymmetric(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumArcs(), 2);  // single undirected edge 0-1
}

TEST(ConversionTest, AllReciprocalMatchesBuildSymmetricTimesTwo) {
  // For a graph listed with both directions, conversion gives weight-2 arcs
  // over the same adjacency BuildSymmetric produces with weight 1.
  const EdgeList both = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  auto conv = ConvertToWeightedUndirected(3, both);
  auto sym = BuildSymmetric(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(conv.ok() && sym.ok());
  ASSERT_EQ(conv->NumArcs(), sym->NumArcs());
  for (VertexId v = 0; v < 3; ++v) {
    auto cn = conv->Neighbors(v);
    auto sn = sym->Neighbors(v);
    ASSERT_EQ(cn.size(), sn.size());
    for (size_t i = 0; i < cn.size(); ++i) {
      EXPECT_EQ(cn[i], sn[i]);
      EXPECT_EQ(conv->Weights(v)[i], 2u * sym->Weights(v)[i]);
    }
  }
}

TEST(ConversionTest, RandomDirectedGraphInvariants) {
  auto rmat = RMat(8, 4, 0.45, 0.2, 0.2, /*seed=*/7);
  ASSERT_TRUE(rmat.ok());
  auto g = ConvertToWeightedUndirected(rmat->num_vertices, rmat->edges);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsSymmetric());
  // Weights are only ever 1 or 2.
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (EdgeWeight w : g->Weights(v)) {
      EXPECT_TRUE(w == 1 || w == 2);
    }
  }
}

}  // namespace
}  // namespace spinner
