#include "common/string_util.h"

#include <gtest/gtest.h>

namespace spinner {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, NoSeparatorYieldsWhole) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespaceTest, DropsRuns) {
  auto parts = SplitWhitespace("  12\t 34  56 ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "12");
  EXPECT_EQ(parts[1], "34");
  EXPECT_EQ(parts[2], "56");
}

TEST(SplitWhitespaceTest, AllWhitespaceIsEmpty) {
  EXPECT_TRUE(SplitWhitespace(" \t ").empty());
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_TRUE(ParseInt64("  42  ", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
}

TEST(ParseInt64Test, RejectsMalformed) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));  // overflow
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
  EXPECT_FALSE(ParseDouble("1.5junk", &v));
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(WithCommasTest, GroupsThousands) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace spinner
