// The work-stealing superstep schedule: every block is claimed exactly
// once, stealing actually happens on skewed inputs, and — the load-bearing
// guarantee — the schedule never shows in the results: assignments AND the
// float φ/ρ/score histories are bit-identical for every {shards, threads}
// shape, because all float state is per-block and all integer merges are
// order-free (spinner/steal_schedule.h).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "graph/sharded_store.h"
#include "spinner/partitioner.h"
#include "spinner/sharded_program.h"
#include "spinner/steal_schedule.h"

namespace spinner {
namespace {

/// A deliberately skewed converted graph: Barabási-Albert preferential
/// attachment parks the high-degree hubs at the low vertex ids, so the
/// first shard carries far more edge work than the rest.
CsrGraph SkewedConverted(int64_t n, uint64_t seed = 5) {
  auto ba = BarabasiAlbert(n, /*m0=*/8, /*m=*/6, seed);
  SPINNER_CHECK(ba.ok());
  auto converted = BuildSymmetric(ba->num_vertices, ba->edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

TEST(StealScheduleTest, EveryBlockClaimedExactlyOnce) {
  StealSchedule schedule;
  const std::vector<int64_t> blocks = {5, 0, 3, 1};
  schedule.ResetPhase(blocks, /*num_workers=*/2);
  std::set<std::pair<int, int64_t>> claimed;
  int shard = 0;
  int64_t block = 0;
  bool stolen = false;
  for (int w : {0, 1, 0, 0, 1, 1, 0, 1, 0}) {
    ASSERT_TRUE(schedule.Claim(w, &shard, &block, &stolen));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, static_cast<int>(blocks.size()));
    ASSERT_GE(block, 0);
    ASSERT_LT(block, blocks[shard]);
    ASSERT_TRUE(claimed.emplace(shard, block).second)
        << "block claimed twice: shard " << shard << " block " << block;
  }
  EXPECT_FALSE(schedule.Claim(0, &shard, &block, &stolen));
  EXPECT_FALSE(schedule.Claim(1, &shard, &block, &stolen));
  EXPECT_EQ(claimed.size(), 9u);
  EXPECT_EQ(schedule.stats().tasks, 9);
}

TEST(StealScheduleTest, SoloClaimantStealsEveryForeignShard) {
  StealSchedule schedule;
  const std::vector<int64_t> blocks = {2, 4, 1};
  schedule.ResetPhase(blocks, /*num_workers=*/2);
  // Worker 0 drains the whole phase alone: shards 0 and 2 are its own
  // (s % 2 == 0), shard 1's four blocks must all count as stolen.
  int shard = 0;
  int64_t block = 0;
  bool stolen = false;
  int64_t seen_stolen = 0;
  while (schedule.Claim(0, &shard, &block, &stolen)) {
    if (stolen) {
      EXPECT_EQ(shard, 1);
      ++seen_stolen;
    }
  }
  EXPECT_EQ(seen_stolen, 4);
  EXPECT_EQ(schedule.stats().tasks, 7);
  EXPECT_EQ(schedule.stats().stolen, 4);
}

TEST(StealScheduleTest, ConcurrentClaimsNeverDuplicateABlock) {
  StealSchedule schedule;
  const std::vector<int64_t> blocks = {64, 3, 128, 0, 17};
  const int workers = 4;
  schedule.ResetPhase(blocks, workers);
  std::vector<std::vector<std::pair<int, int64_t>>> claims(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      int shard = 0;
      int64_t block = 0;
      bool stolen = false;
      while (schedule.Claim(w, &shard, &block, &stolen)) {
        claims[w].emplace_back(shard, block);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::set<std::pair<int, int64_t>> unique;
  int64_t total = 0;
  for (const auto& per_worker : claims) {
    for (const auto& claim : per_worker) {
      EXPECT_TRUE(unique.insert(claim).second)
          << "duplicate claim of shard " << claim.first << " block "
          << claim.second;
      ++total;
    }
  }
  EXPECT_EQ(total, 64 + 3 + 128 + 17);
  EXPECT_EQ(schedule.stats().tasks, total);
}

TEST(StealingSupersteps, BitIdenticalAcrossShapesOnSkewedInput) {
  // The acceptance matrix of the stealing scheduler: a hub-skewed graph
  // partitioned under {shards 1,2,7} × {threads 1,4} must produce the
  // same assignment AND the same float φ/ρ/score history, bit for bit.
  const CsrGraph g = SkewedConverted(1900);
  SpinnerConfig config;
  config.num_partitions = 8;
  config.seed = 13;
  config.max_iterations = 15;
  config.use_halting = false;

  std::vector<PartitionId> ref_assignment;
  std::vector<IterationPoint> ref_history;
  for (const int shards : {1, 2, 7}) {
    for (const int threads : {1, 4}) {
      SpinnerConfig run_config = config;
      run_config.num_shards = shards;
      run_config.num_threads = threads;
      auto result = SpinnerPartitioner(run_config).Partition(g);
      ASSERT_TRUE(result.ok()) << "S=" << shards << " T=" << threads;
      if (ref_assignment.empty()) {
        ref_assignment = result->assignment;
        ref_history = result->history;
        ASSERT_FALSE(ref_history.empty());
        continue;
      }
      EXPECT_EQ(result->assignment, ref_assignment)
          << "S=" << shards << " T=" << threads;
      ASSERT_EQ(result->history.size(), ref_history.size());
      for (size_t i = 0; i < ref_history.size(); ++i) {
        // Exact float equality: the reduction order is fixed by block
        // index, never by the claim schedule.
        EXPECT_EQ(result->history[i].score, ref_history[i].score)
            << "S=" << shards << " T=" << threads << " it=" << i;
        EXPECT_EQ(result->history[i].phi, ref_history[i].phi);
        EXPECT_EQ(result->history[i].rho, ref_history[i].rho);
        EXPECT_EQ(result->history[i].migrations, ref_history[i].migrations);
        EXPECT_EQ(result->history[i].loads, ref_history[i].loads);
      }
    }
  }
}

TEST(StealingSupersteps, StealingOccursOnSkewedShards) {
  // 7 shards × 4 workers: ownership is s % 4, so any worker finishing its
  // own shards early must cross over. The hub shard (low ids) has the
  // most edge work per block, guaranteeing an imbalance to steal from.
  const CsrGraph g = SkewedConverted(7 * ShardedGraphStore::kBlockSize);
  SpinnerConfig config;
  config.num_partitions = 8;
  config.seed = 99;
  config.num_shards = 7;
  config.num_threads = 4;
  config.max_iterations = 10;
  config.use_halting = false;
  auto result = SpinnerPartitioner(config).Partition(g);
  ASSERT_TRUE(result.ok());
  // Initialize + 10 score phases + 9 migrate phases (the driver skips the
  // final migrate after the iteration cap).
  EXPECT_EQ(result->schedule.phases, 1 + 10 + 9);
  // Every phase deals out every block exactly once.
  const int64_t blocks =
      (g.NumVertices() + ShardedGraphStore::kBlockSize - 1) /
      ShardedGraphStore::kBlockSize;
  EXPECT_EQ(result->schedule.tasks, result->schedule.phases * blocks);
  EXPECT_GT(result->schedule.stolen_tasks, 0)
      << "4 workers over 7 skewed shards never crossed shard boundaries";
}

TEST(StealingSupersteps, ShardLoadsConsistentAfterStolenRun) {
  // After a run where blocks of one shard were processed by many workers,
  // every shard's load counters must still equal a from-scratch recount
  // of its labels — the mutex-merged deltas lost nothing.
  const CsrGraph g = SkewedConverted(1500, 17);
  SpinnerConfig config;
  config.num_partitions = 5;
  config.seed = 3;
  config.max_iterations = 8;
  config.use_halting = false;
  auto store = ShardedGraphStore::Build(g, 6);
  ASSERT_TRUE(store.ok());
  ThreadPool pool(4);
  auto run = RunShardedSpinner(config, &*store, {}, &pool, nullptr);
  ASSERT_TRUE(run.ok());
  const std::vector<PartitionId>& labels = store->labels();
  for (int s = 0; s < store->num_shards(); ++s) {
    const ShardedGraphStore::Shard& shard = store->shard(s);
    std::vector<int64_t> want(static_cast<size_t>(config.num_partitions), 0);
    for (VertexId v = shard.begin; v < shard.end; ++v) {
      want[labels[v]] += shard.WeightedDegreeOf(v);
    }
    EXPECT_EQ(shard.loads, want) << "shard " << s;
  }
}

}  // namespace
}  // namespace spinner
