// The elasticity loop: ScalingPolicy units (watermark gauges, the
// φ-degradation trigger, hysteresis and cooldown wrappers — all under a
// ManualClock, so every sequence is deterministic), the strict policy-spec
// grammar, LoadTrace text round-trips, the ElasticController's
// execute/dry-run bookkeeping, and the policy lab's two headline
// invariants: policy=none reproduces a controller-free streaming run
// byte-for-byte, and a controller-driven rescale mid-stream is
// bit-identical between the streaming and blocking replay paths at every
// {num_shards, num_threads} shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "elastic/elastic_controller.h"
#include "elastic/policy_spec.h"
#include "elastic/scaling_policy.h"
#include "graph/generators.h"
#include "simulator/cluster_simulator.h"
#include "spinner/session.h"
#include "stream/clock.h"
#include "stream/ingestion_service.h"
#include "stream/trigger_policy.h"

namespace spinner {
namespace {

using elastic::CapacityWatermarkPolicy;
using elastic::CooldownPolicy;
using elastic::CutDegradationPolicy;
using elastic::ElasticController;
using elastic::HysteresisPolicy;
using elastic::MakePolicy;
using elastic::ScalingAction;
using elastic::ScalingDecision;
using elastic::ScalingPolicy;
using elastic::ScalingSignals;

ScalingSignals Signals(int k, double rho, int64_t max_load = 0,
                       int capacity = 0, int64_t now_micros = 0) {
  ScalingSignals signals;
  signals.current_k = k;
  signals.rho = rho;
  signals.max_load = max_load;
  signals.available_capacity = capacity;
  signals.now_micros = now_micros;
  return signals;
}

/// Replays a fixed decision sequence — lets the wrapper tests control the
/// inner policy's proposals exactly.
class ScriptedPolicy final : public ScalingPolicy {
 public:
  explicit ScriptedPolicy(std::vector<ScalingDecision> script)
      : script_(std::move(script)) {}

  ScalingDecision Decide(const ScalingSignals&) override {
    if (next_ >= script_.size()) {
      return ScalingDecision::Hold("script exhausted");
    }
    return script_[next_++];
  }
  std::string name() const override { return "scripted"; }

 private:
  std::vector<ScalingDecision> script_;
  size_t next_ = 0;
};

// --- Policies --------------------------------------------------------------

TEST(ScalingPolicyTest, NullPolicyNeverActs) {
  elastic::NullPolicy policy;
  EXPECT_EQ(policy.name(), "none");
  for (double rho : {0.1, 1.0, 9.0}) {
    EXPECT_FALSE(policy.Decide(Signals(4, rho)).acts());
  }
}

TEST(ScalingPolicyTest, ClampTargetKHonorsBoundsAndCapacity) {
  EXPECT_EQ(elastic::ClampTargetK(10, 2, 8, 0), 8);   // max_k caps
  EXPECT_EQ(elastic::ClampTargetK(10, 2, 0, 6), 6);   // capacity caps
  EXPECT_EQ(elastic::ClampTargetK(1, 2, 0, 0), 2);    // min_k floors
  EXPECT_EQ(elastic::ClampTargetK(5, 2, 0, 0), 5);    // unbounded
  EXPECT_EQ(elastic::ClampTargetK(10, 2, 8, 6), 6);   // tightest wins
}

TEST(ScalingPolicyTest, WatermarkRhoGaugeScalesOutAndIn) {
  CapacityWatermarkPolicy policy(
      {.high = 1.15, .low = 0.55, .step = 1, .min_k = 2});
  EXPECT_EQ(policy.name(), "watermark");

  ScalingDecision out = policy.Decide(Signals(4, 1.20));
  EXPECT_EQ(out.action, ScalingAction::kScaleOut);
  EXPECT_EQ(out.target_k, 5);
  EXPECT_NE(out.reason.find("rho"), std::string::npos);

  ScalingDecision in = policy.Decide(Signals(4, 0.40));
  EXPECT_EQ(in.action, ScalingAction::kScaleIn);
  EXPECT_EQ(in.target_k, 3);

  EXPECT_FALSE(policy.Decide(Signals(4, 1.00)).acts());  // between marks

  // Capacity caps scale-out into a hold; min_k floors scale-in into one.
  EXPECT_FALSE(policy.Decide(Signals(4, 1.20, 0, /*capacity=*/4)).acts());
  EXPECT_FALSE(policy.Decide(Signals(2, 0.40)).acts());
}

TEST(ScalingPolicyTest, WatermarkUtilizationGaugeSeesAbsoluteGrowth) {
  // ρ is flat at 1.0 in both probes — only the absolute-load gauge can
  // tell the growing graph from the shrinking one.
  CapacityWatermarkPolicy policy({.high = 1.15,
                                  .low = 0.55,
                                  .step = 2,
                                  .min_k = 2,
                                  .machine_capacity = 1000});
  ScalingDecision out = policy.Decide(Signals(4, 1.0, /*max_load=*/1500));
  EXPECT_EQ(out.action, ScalingAction::kScaleOut);
  EXPECT_EQ(out.target_k, 6);
  EXPECT_NE(out.reason.find("utilization"), std::string::npos);

  ScalingDecision in = policy.Decide(Signals(4, 1.0, /*max_load=*/400));
  EXPECT_EQ(in.action, ScalingAction::kScaleIn);
  EXPECT_EQ(in.target_k, 2);

  EXPECT_FALSE(policy.Decide(Signals(4, 1.0, /*max_load=*/900)).acts());
}

TEST(ScalingPolicyTest, CutPolicyTriggersOnPhiDropWithinWindow) {
  CutDegradationPolicy policy({.budget = 0.05, .window = 3, .step = 1,
                               .min_k = 2});
  EXPECT_EQ(policy.name(), "cut");
  auto with_phi = [](int k, double phi) {
    ScalingSignals s = Signals(k, 1.0);
    s.phi = phi;
    return s;
  };

  EXPECT_FALSE(policy.Decide(with_phi(4, 0.80)).acts());
  EXPECT_FALSE(policy.Decide(with_phi(4, 0.78)).acts());  // drop 0.02
  ScalingDecision out = policy.Decide(with_phi(4, 0.70));  // drop 0.10
  EXPECT_EQ(out.action, ScalingAction::kScaleOut);
  EXPECT_EQ(out.target_k, 5);

  // Triggering cleared the window: the same low φ is now the baseline.
  EXPECT_FALSE(policy.Decide(with_phi(4, 0.70)).acts());
}

TEST(ScalingPolicyTest, CutPolicyResetsItsWindowWhenKChanges) {
  CutDegradationPolicy policy({.budget = 0.05, .window = 4, .step = 1,
                               .min_k = 2});
  auto with_phi = [](int k, double phi) {
    ScalingSignals s = Signals(k, 1.0);
    s.phi = phi;
    return s;
  };
  EXPECT_FALSE(policy.Decide(with_phi(4, 0.90)).acts());
  // k moved (someone rescaled): the 0.90 sample belongs to the old
  // regime; a φ of 0.60 at the new k must not read as a 0.30 drop.
  EXPECT_FALSE(policy.Decide(with_phi(5, 0.60)).acts());
}

TEST(ScalingPolicyTest, HysteresisRequiresConsecutiveIdenticalProposals) {
  auto out5 = ScalingDecision::ScaleOut(5, "probe");
  auto in3 = ScalingDecision::ScaleIn(3, "probe");
  auto hold = ScalingDecision::Hold("probe");
  HysteresisPolicy policy(
      std::make_unique<ScriptedPolicy>(std::vector<ScalingDecision>{
          out5, out5,        // streak completes -> acts
          in3, out5, out5,   // direction change resets the streak
          out5, hold, out5,  // a hold resets it too
      }),
      /*consecutive=*/2);
  EXPECT_EQ(policy.name(), "scripted+hysteresis");

  const ScalingSignals s = Signals(4, 1.0);
  EXPECT_FALSE(policy.Decide(s).acts());               // out streak 1/2
  EXPECT_EQ(policy.Decide(s).action, ScalingAction::kScaleOut);
  EXPECT_FALSE(policy.Decide(s).acts());               // in streak 1/2
  EXPECT_FALSE(policy.Decide(s).acts());               // out streak 1/2
  EXPECT_EQ(policy.Decide(s).action, ScalingAction::kScaleOut);
  EXPECT_FALSE(policy.Decide(s).acts());               // out streak 1/2
  EXPECT_FALSE(policy.Decide(s).acts());               // hold: reset
  ScalingDecision suppressed = policy.Decide(s);       // out streak 1/2
  EXPECT_FALSE(suppressed.acts());
  EXPECT_NE(suppressed.reason.find("hysteresis"), std::string::npos);
}

TEST(ScalingPolicyTest, CooldownSuppressesActionsByControllerClockTime) {
  auto out5 = ScalingDecision::ScaleOut(5, "probe");
  CooldownPolicy policy(
      std::make_unique<ScriptedPolicy>(
          std::vector<ScalingDecision>(4, out5)),
      /*cooldown_micros=*/2'000'000);
  EXPECT_EQ(policy.name(), "scripted+cooldown");

  EXPECT_TRUE(policy.Decide(Signals(4, 1.0, 0, 0, 1'000'000)).acts());
  ScalingDecision cooled = policy.Decide(Signals(4, 1.0, 0, 0, 2'000'000));
  EXPECT_FALSE(cooled.acts());
  EXPECT_NE(cooled.reason.find("cooldown"), std::string::npos);
  // Exactly at the cooldown boundary the window has elapsed.
  EXPECT_TRUE(policy.Decide(Signals(4, 1.0, 0, 0, 3'000'000)).acts());
}

// --- The spec grammar ------------------------------------------------------

TEST(PolicySpecTest, ParsesEveryPolicyAndTheWrapperKeys) {
  auto none = MakePolicy("none");
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_EQ((*none)->name(), "none");

  auto watermark = MakePolicy(
      "watermark:high=1.2,low=0.5,step=2,min-k=3,max-k=16,"
      "machine-capacity=5000");
  ASSERT_TRUE(watermark.ok()) << watermark.status();
  EXPECT_EQ((*watermark)->name(), "watermark");

  auto cut = MakePolicy("cut:budget=0.02,window=4");
  ASSERT_TRUE(cut.ok()) << cut.status();
  EXPECT_EQ((*cut)->name(), "cut");

  // Wrappers compose hysteresis-inside, cooldown-outside — visible in
  // the name chain.
  auto wrapped = MakePolicy("watermark:hysteresis=2,cooldown-ms=500");
  ASSERT_TRUE(wrapped.ok()) << wrapped.status();
  EXPECT_EQ((*wrapped)->name(), "watermark+hysteresis+cooldown");

  // Whitespace is tolerated around names, keys and values.
  EXPECT_TRUE(MakePolicy("  cut : budget = 0.1 , window = 2 ").ok());
}

TEST(PolicySpecTest, RejectsEveryMalformedSpec) {
  const char* bad[] = {
      "",                          // empty
      "autoscale",                 // unknown policy
      "watermark:hgih=1.2",        // typo'd key must not become a default
      "none:high=1.2",             // none takes no keys
      "watermark:high",            // not key=value
      "watermark:high=fast",       // not a number
      "watermark:high=1.2,high=1.3",  // duplicate key
      "watermark:high=0.5,low=0.9",   // needs low < high
      "watermark:step=0",          // step >= 1
      "watermark:max-k=-1",        // 0 = unbounded, negatives rejected
      "cut:budget=0",              // budget > 0
      "cut:window=0",              // window >= 1
      "watermark:hysteresis=-2",   // wrapper keys >= 0
  };
  for (const char* spec : bad) {
    auto policy = MakePolicy(spec);
    EXPECT_FALSE(policy.ok()) << "spec '" << spec << "' parsed";
    EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument) << spec;
  }
}

// --- Load traces -----------------------------------------------------------

TEST(LoadTraceTest, TextFormatRoundTrips) {
  sim::LoadTrace trace;
  trace.initial_capacity = 3;
  sim::TraceBurst first;
  first.at_micros = 1'000'000;
  first.events.push_back(stream::EdgeEvent::AddEdge(1, 2));
  first.events.push_back(stream::EdgeEvent::AddVertices(16));
  sim::TraceBurst second;
  second.at_micros = 2'500'000;
  second.capacity = 9;
  second.events.push_back(stream::EdgeEvent::RemoveEdge(1, 2));
  trace.bursts = {first, second};

  const std::string text = sim::FormatLoadTrace(trace);
  auto parsed = sim::ParseLoadTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->initial_capacity, 3);
  ASSERT_EQ(parsed->bursts.size(), 2u);
  EXPECT_EQ(parsed->bursts[0].at_micros, 1'000'000);
  EXPECT_EQ(parsed->bursts[1].capacity, 9);
  EXPECT_EQ(parsed->num_events(), 3);
  // Fixed point: formatting the parse reproduces the text.
  EXPECT_EQ(sim::FormatLoadTrace(*parsed), text);
}

TEST(LoadTraceTest, ParserIsStrict) {
  EXPECT_FALSE(sim::ParseLoadTrace("add 1 2\n").ok());  // outside a burst
  EXPECT_FALSE(
      sim::ParseLoadTrace("burst 5\nburst 3\n").ok());  // time reversed
  EXPECT_FALSE(sim::ParseLoadTrace("burst 1\nfrob 1 2\n").ok());
  EXPECT_FALSE(sim::ParseLoadTrace("burst banana\n").ok());
  EXPECT_FALSE(sim::ParseLoadTrace("burst 1\nadd 1\n").ok());
  // Comments and blank lines are fine.
  auto ok = sim::ParseLoadTrace("# a comment\n\nburst 1\nadd 1 2\n");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->num_events(), 1);
}

TEST(LoadTraceTest, SyntheticGeneratorIsDeterministic) {
  sim::SyntheticTraceOptions options;
  options.num_vertices = 200;
  options.num_bursts = 3;
  options.events_per_burst = 50;
  options.vertices_per_burst = 20;
  options.remove_fraction = 0.2;
  options.hotspot_fraction = 0.3;
  options.seed = 7;
  options.initial_capacity = 5;
  options.capacity_change_burst = 1;
  options.changed_capacity = 9;

  const sim::LoadTrace a = sim::SyntheticLoadTrace(options);
  const sim::LoadTrace b = sim::SyntheticLoadTrace(options);
  EXPECT_EQ(sim::FormatLoadTrace(a), sim::FormatLoadTrace(b));
  ASSERT_EQ(a.bursts.size(), 3u);
  EXPECT_EQ(a.initial_capacity, 5);
  EXPECT_EQ(a.bursts[1].capacity, 9);
  // Removals only ever target previously-added edges, so the trace is
  // replayable against any base graph: check it parses its own format
  // and replays below (the lab tests) without InvalidArgument.
  EXPECT_GT(a.num_events(), 0);
}

// --- Controller ------------------------------------------------------------

SpinnerConfig LabConfig(int k = 4) {
  SpinnerConfig config;
  config.num_partitions = k;
  config.seed = 5;
  config.max_iterations = 8;
  config.use_halting = false;
  return config;
}

GeneratedGraph LabWorld(uint64_t seed = 9) {
  auto ws = WattsStrogatz(400, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  return std::move(ws).value();
}

TEST(ElasticControllerTest, ExecutesDecisionsAndKeepsADeterministicLog) {
  const GeneratedGraph g = LabWorld();
  PartitioningSession session(LabConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  auto clock = std::make_shared<stream::ManualClock>(42);
  auto policy = MakePolicy("watermark:high=1.0,low=0.1,machine-capacity=1");
  ASSERT_TRUE(policy.ok()) << policy.status();
  ElasticController controller(&session, std::move(*policy),
                               {.clock = clock});

  ScalingSignals signals = Signals(session.num_partitions(), 1.0,
                                   /*max_load=*/100);
  const elastic::DecisionRecord& record =
      controller.EvaluateSignals(signals);
  EXPECT_EQ(record.action, ScalingAction::kScaleOut);
  EXPECT_TRUE(record.executed);
  EXPECT_EQ(record.at_micros, 42);
  EXPECT_EQ(record.from_k, 4);
  EXPECT_EQ(record.target_k, 5);
  EXPECT_EQ(session.num_partitions(), 5);
  EXPECT_EQ(controller.rescales_executed(), 1);
  EXPECT_TRUE(controller.status().ok());

  // Evaluate() builds the signals itself from session->Metrics().
  clock->SetMicros(43);
  ASSERT_TRUE(controller.Evaluate().ok());
  EXPECT_EQ(session.num_partitions(), 6);

  const std::string log = controller.FormatLog();
  EXPECT_NE(log.find("[1 @42us] k=4 scale-out -> k=5 executed"),
            std::string::npos)
      << log;
  EXPECT_NE(log.find("[2 @43us]"), std::string::npos) << log;
}

TEST(ElasticControllerTest, DryRunModeLogsButNeverTouchesTheSession) {
  const GeneratedGraph g = LabWorld();
  PartitioningSession session(LabConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();

  auto policy = MakePolicy("watermark:high=1.0,low=0.1,machine-capacity=1");
  ASSERT_TRUE(policy.ok());
  ElasticController controller(
      &session, std::move(*policy),
      {.clock = std::make_shared<stream::ManualClock>(0),
       .execute = false});
  const elastic::DecisionRecord& record = controller.EvaluateSignals(
      Signals(session.num_partitions(), 1.0, /*max_load=*/100));
  EXPECT_TRUE(record.action == ScalingAction::kScaleOut);
  EXPECT_FALSE(record.executed);
  EXPECT_EQ(record.outcome, "dry-run");
  EXPECT_EQ(controller.rescales_executed(), 0);
  EXPECT_EQ(session.num_partitions(), 4);
  EXPECT_EQ(session.assignment(), before);
}

TEST(ElasticControllerTest, ResizeWorkersIsAnOffThreadModeVerb) {
  const GeneratedGraph g = LabWorld();
  PartitioningSession session(LabConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  // In-process has no worker fleet to resize.
  Status in_process = session.ResizeWorkers(2);
  EXPECT_EQ(in_process.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.ResizeWorkers(0).code(), StatusCode::kInvalidArgument);
}

// --- The policy lab --------------------------------------------------------

sim::LoadTrace LabTrace() {
  sim::SyntheticTraceOptions options;
  options.num_vertices = 400;
  options.num_bursts = 4;
  options.events_per_burst = 120;
  options.vertices_per_burst = 60;
  options.remove_fraction = 0.05;
  options.hotspot_fraction = 0.3;
  options.seed = 5;
  options.initial_capacity = 10;
  return sim::SyntheticLoadTrace(options);
}

TEST(PolicyLabTest, PolicyNoneReproducesAControllerFreeRunByteForByte) {
  const GeneratedGraph g = LabWorld();
  const sim::LoadTrace trace = LabTrace();

  // Today's behavior: the ingestion service with no controller at all,
  // driven on the identical clock/burst/drain schedule the lab uses.
  PartitioningSession baseline(LabConfig());
  ASSERT_TRUE(baseline.Open(g.num_vertices, g.edges, g.directed).ok());
  std::vector<double> phis;
  std::vector<double> rhos;
  auto clock = std::make_shared<stream::ManualClock>(0);
  stream::IngestionOptions ingest;
  ingest.clock = clock;
  ingest.policy = std::make_unique<stream::EventCountPolicy>(100);
  ingest.on_apply = [&](const stream::IngestStats& stats) {
    phis.push_back(stats.last_phi);
    rhos.push_back(stats.last_rho);
    return true;
  };
  stream::IngestionService service(&baseline, std::move(ingest));
  ASSERT_TRUE(service.Start().ok());
  for (const sim::TraceBurst& burst : trace.bursts) {
    clock->SetMicros(burst.at_micros);
    for (const stream::EdgeEvent& event : burst.events) {
      ASSERT_TRUE(service.Submit(event).ok());
    }
    ASSERT_TRUE(service.Drain().ok());
  }
  ASSERT_TRUE(service.Stop().ok());

  PartitioningSession replayed(LabConfig());
  ASSERT_TRUE(replayed.Open(g.num_vertices, g.edges, g.directed).ok());
  sim::ReplayOptions options;
  options.policy_spec = "none";
  options.events_per_window = 100;
  auto replay = sim::ReplayTrace(&replayed, trace, options);
  ASSERT_TRUE(replay.ok()) << replay.status();

  EXPECT_EQ(replay->rescales, 0);
  EXPECT_EQ(replay->final_k, 4);
  EXPECT_EQ(replay->evaluations,
            static_cast<int>(replay->phi_history.size()));
  // Byte-for-byte: same assignment, same float quality trajectory.
  EXPECT_EQ(replay->final_assignment, baseline.assignment());
  EXPECT_EQ(replay->phi_history, phis);
  EXPECT_EQ(replay->rho_history, rhos);
}

TEST(PolicyLabTest, StreamingAndBlockingReplayBitIdenticalAcrossShapes) {
  const GeneratedGraph g = LabWorld();
  const sim::LoadTrace trace = LabTrace();

  // Calibrate the watermark off a probe of the steady state so the
  // policy genuinely rescales mid-stream.
  int64_t steady_max_load = 0;
  {
    PartitioningSession probe(LabConfig());
    ASSERT_TRUE(probe.Open(g.num_vertices, g.edges, g.directed).ok());
    for (int64_t load : probe.last_result().metrics.loads) {
      steady_max_load = std::max(steady_max_load, load);
    }
  }
  sim::ReplayOptions options;
  options.policy_spec = StrFormat(
      "watermark:high=1.05,low=0.2,machine-capacity=%lld",
      static_cast<long long>(steady_max_load));
  options.events_per_window = 100;

  // Reference: the streaming replay at the default shape.
  PartitioningSession reference_session(LabConfig());
  ASSERT_TRUE(
      reference_session.Open(g.num_vertices, g.edges, g.directed).ok());
  auto reference = sim::ReplayTrace(&reference_session, trace, options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_GE(reference->rescales, 1)
      << "watermark never fired; the test is vacuous\n"
      << reference->decision_log;

  for (const int num_shards : {1, 2, 7}) {
    for (const int num_threads : {1, 4}) {
      for (const bool streaming : {true, false}) {
        SessionOptions session_options;
        session_options.execution.num_shards = num_shards;
        session_options.execution.num_threads = num_threads;
        PartitioningSession session(LabConfig(), session_options);
        ASSERT_TRUE(
            session.Open(g.num_vertices, g.edges, g.directed).ok());
        sim::ReplayOptions shaped = options;
        shaped.streaming = streaming;
        auto replay = sim::ReplayTrace(&session, trace, shaped);
        const std::string shape =
            StrFormat("S=%d T=%d %s", num_shards, num_threads,
                      streaming ? "streaming" : "blocking");
        ASSERT_TRUE(replay.ok()) << shape << ": " << replay.status();
        EXPECT_EQ(replay->decision_log, reference->decision_log) << shape;
        EXPECT_EQ(replay->final_k, reference->final_k) << shape;
        EXPECT_EQ(replay->rescales, reference->rescales) << shape;
        EXPECT_EQ(replay->moved_vertices, reference->moved_vertices)
            << shape;
        EXPECT_EQ(replay->final_assignment, reference->final_assignment)
            << shape;
        EXPECT_EQ(replay->phi_history, reference->phi_history) << shape;
        EXPECT_EQ(replay->rho_history, reference->rho_history) << shape;
      }
    }
  }
}

}  // namespace
}  // namespace spinner
