#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace spinner {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(uf.Find(v), v);
    EXPECT_EQ(uf.SetSize(v), 1);
  }
}

TEST(UnionFindTest, UnionMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));  // already merged
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 3);
  EXPECT_EQ(uf.SetSize(1), 2);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(0), 4);
  EXPECT_EQ(uf.NumSets(), 3);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFindTest, ChainCollapsesToOneSet) {
  const int n = 1000;
  UnionFind uf(n);
  for (VertexId v = 0; v + 1 < n; ++v) uf.Union(v, v + 1);
  EXPECT_EQ(uf.NumSets(), 1);
  EXPECT_EQ(uf.SetSize(0), n);
  EXPECT_TRUE(uf.Connected(0, n - 1));
}

}  // namespace
}  // namespace spinner
