#include "baselines/restreaming_partitioner.h"

#include <gtest/gtest.h>

#include "baselines/ldg_partitioner.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/metrics.h"

namespace spinner {
namespace {

CsrGraph CommunityGraph() {
  auto pp = PlantedPartition(8, 50, 0.25, 0.01, 31);
  SPINNER_CHECK(pp.ok());
  auto g = BuildSymmetric(pp->num_vertices, pp->edges);
  SPINNER_CHECK(g.ok());
  return std::move(g).value();
}

TEST(RestreamingTest, ValidAssignment) {
  CsrGraph g = CommunityGraph();
  RestreamingPartitioner restream(5);
  auto labels = restream.Partition(g, 8);
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), 400u);
  for (PartitionId l : *labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 8);
  }
}

TEST(RestreamingTest, ImprovesOverSinglePassLdg) {
  CsrGraph g = CommunityGraph();
  const int k = 8;
  LdgPartitioner single(/*stream_seed=*/0, /*balance_on_edges=*/true);
  RestreamingPartitioner multi(10, /*stream_seed=*/0,
                               /*balance_on_edges=*/true);
  auto single_m = ComputeMetrics(g, *single.Partition(g, k), k, 1.05);
  auto multi_m = ComputeMetrics(g, *multi.Partition(g, k), k, 1.05);
  ASSERT_TRUE(single_m.ok() && multi_m.ok());
  // The whole point of restreaming ([19]): later passes see full
  // neighborhoods and improve locality.
  EXPECT_GT(multi_m->phi, single_m->phi);
}

TEST(RestreamingTest, KeepsBalance) {
  CsrGraph g = CommunityGraph();
  RestreamingPartitioner restream(10);
  auto labels = restream.Partition(g, 8);
  ASSERT_TRUE(labels.ok());
  auto m = ComputeMetrics(g, *labels, 8, 1.05);
  ASSERT_TRUE(m.ok());
  EXPECT_LE(m->rho, 1.15);
}

TEST(RestreamingTest, RestreamFromPreviousIsStable) {
  CsrGraph g = CommunityGraph();
  RestreamingPartitioner restream(10);
  auto initial = restream.Partition(g, 8);
  ASSERT_TRUE(initial.ok());
  // One more pass from the converged state barely changes anything.
  auto again = restream.Restream(g, 8, *initial, 1);
  ASSERT_TRUE(again.ok());
  auto diff = PartitioningDifference(*initial, *again);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(*diff, 0.10);
}

TEST(RestreamingTest, Validation) {
  CsrGraph g = CommunityGraph();
  RestreamingPartitioner restream;
  EXPECT_FALSE(restream.Partition(g, 0).ok());
  std::vector<PartitionId> wrong_size(10, 0);
  EXPECT_FALSE(restream.Restream(g, 8, wrong_size, 3).ok());
  std::vector<PartitionId> bad_label(g.NumVertices(), 0);
  bad_label[0] = 99;
  EXPECT_FALSE(restream.Restream(g, 8, bad_label, 3).ok());
  std::vector<PartitionId> ok_labels(g.NumVertices(), 0);
  EXPECT_FALSE(restream.Restream(g, 8, ok_labels, 0).ok());
}

}  // namespace
}  // namespace spinner
