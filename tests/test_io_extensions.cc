// Id remapping and the binary graph format, including corruption paths —
// plus the delta-log record codec and incremental (base + delta-log)
// checkpoint equivalence with full snapshots.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include "graph/binary_io.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/remap.h"
#include "spinner/session.h"
#include "stream/checkpoint_log.h"

namespace spinner {
namespace {

TEST(CompactVertexIdsTest, DensifiesSparseIds) {
  EdgeList edges = {{100, 7}, {7, 100000}, {100000, 100}};
  auto mapping = CompactVertexIds(&edges);
  ASSERT_EQ(mapping.num_vertices(), 3);
  // Dense ids assigned by ascending original id: 7→0, 100→1, 100000→2.
  EXPECT_EQ(mapping.original_id, (std::vector<VertexId>{7, 100, 100000}));
  EXPECT_EQ(edges, (EdgeList{{1, 0}, {0, 2}, {2, 1}}));
}

TEST(CompactVertexIdsTest, AlreadyDenseIsIdentity) {
  EdgeList edges = {{0, 1}, {1, 2}};
  auto mapping = CompactVertexIds(&edges);
  EXPECT_EQ(mapping.num_vertices(), 3);
  EXPECT_EQ(edges, (EdgeList{{0, 1}, {1, 2}}));
}

TEST(CompactVertexIdsTest, EmptyEdgeList) {
  EdgeList edges;
  auto mapping = CompactVertexIds(&edges);
  EXPECT_EQ(mapping.num_vertices(), 0);
}

TEST(MapToOriginalIdsTest, RoundTripsAssignments) {
  EdgeList edges = {{50, 10}, {10, 90}};
  auto mapping = CompactVertexIds(&edges);
  // Dense: 10→0, 50→1, 90→2.
  const std::vector<PartitionId> assignment = {2, 0, 1};
  auto pairs = MapToOriginalIds(mapping, assignment);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (std::pair<VertexId, PartitionId>{10, 2}));
  EXPECT_EQ(pairs[1], (std::pair<VertexId, PartitionId>{50, 0}));
  EXPECT_EQ(pairs[2], (std::pair<VertexId, PartitionId>{90, 1}));
}

class BinaryIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(BinaryIoTest, RoundTrip) {
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 0}, {3, 1}};
  const std::string path = TempPath("graph.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 4, edges).ok());
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices, 4);
  EXPECT_EQ(read->edges, edges);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, EmptyGraphRoundTrip) {
  const std::string path = TempPath("empty.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 0, {}).ok());
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices, 0);
  EXPECT_TRUE(read->edges.empty());
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, WriteRejectsOutOfRangeEdges) {
  EXPECT_FALSE(
      graph_io::WriteBinaryGraph(TempPath("x.spnb"), 2, {{0, 5}}).ok());
  EXPECT_FALSE(graph_io::WriteBinaryGraph(TempPath("x.spnb"), -1, {}).ok());
}

TEST_F(BinaryIoTest, MissingFileIsIOError) {
  auto read = graph_io::ReadBinaryGraph("/nonexistent/g.spnb");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(BinaryIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.spnb");
  std::ofstream(path, std::ios::binary) << "NOPE garbage";
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, TruncatedFileRejected) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  const std::string path = TempPath("trunc.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 3, edges).ok());
  // Chop the last 8 bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 8));
  out.close();
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, SessionSnapshotRoundTrip) {
  graph_io::SessionSnapshot snapshot;
  snapshot.num_vertices = 4;
  snapshot.edges = {{0, 1}, {1, 2}, {2, 3}};
  snapshot.directed = true;
  snapshot.num_partitions = 2;
  snapshot.assignment = {0, 0, 1, 1};
  const std::string path = TempPath("session.spns");
  ASSERT_TRUE(graph_io::WriteSessionSnapshot(path, snapshot).ok());
  auto read = graph_io::ReadSessionSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->num_vertices, 4);
  EXPECT_EQ(read->edges, snapshot.edges);
  EXPECT_TRUE(read->directed);
  EXPECT_EQ(read->num_partitions, 2);
  EXPECT_EQ(read->assignment, snapshot.assignment);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, SessionSnapshotRejectsInconsistentAssignment) {
  graph_io::SessionSnapshot snapshot;
  snapshot.num_vertices = 3;
  snapshot.edges = {{0, 1}};
  snapshot.num_partitions = 2;
  snapshot.assignment = {0, 1};  // covers 2 of 3 vertices
  EXPECT_FALSE(
      graph_io::WriteSessionSnapshot(TempPath("bad1.spns"), snapshot).ok());
  snapshot.assignment = {0, 1, 2};  // label 2 out of range for k=2
  EXPECT_FALSE(
      graph_io::WriteSessionSnapshot(TempPath("bad2.spns"), snapshot).ok());
}

TEST_F(BinaryIoTest, SessionSnapshotRejectsGraphMagic) {
  // A SPNB graph file is not a SPNS snapshot; the magic keeps the two
  // formats from being confused for one another.
  const std::string path = TempPath("graph_as_session.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 2, {{0, 1}}).ok());
  auto read = graph_io::ReadSessionSnapshot(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, CorruptEdgeRangeRejected) {
  const std::string path = TempPath("corrupt_edge.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 3, {{0, 1}}).ok());
  // Overwrite the edge target with an out-of-range id (offset: 4 magic +
  // 4 version + 8 n + 8 m + 8 src = 32).
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(32);
  const int64_t bogus = 999;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- Delta-log record codec ----------------------------------------------

TEST(DeltaLogRecordTest, RoundTripsConsecutiveRecords) {
  graph_io::DeltaLogRecord first;
  first.delta = GraphDelta{}.AddVertex(2).AddEdge(0, 5).RemoveEdge(1, 2);
  first.new_k = 4;
  first.label_updates = {{0, 3}, {4, 1}, {5, 0}};
  graph_io::DeltaLogRecord second;
  second.new_k = 7;  // a pure rescale: empty delta, relabeled vertices
  second.label_updates = {{2, 6}};

  std::vector<uint8_t> bytes;
  graph_io::AppendDeltaLogRecord(first, &bytes);
  const size_t first_size = bytes.size();
  graph_io::AppendDeltaLogRecord(second, &bytes);

  size_t pos = 0;
  auto decoded = graph_io::DecodeDeltaLogRecord(bytes, &pos);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(pos, first_size);
  EXPECT_EQ(decoded->delta.num_new_vertices, 2);
  EXPECT_EQ(decoded->delta.added_edges, (EdgeList{{0, 5}}));
  EXPECT_EQ(decoded->delta.removed_edges, (EdgeList{{1, 2}}));
  EXPECT_EQ(decoded->new_k, 4);
  EXPECT_EQ(decoded->label_updates, first.label_updates);

  auto next = graph_io::DecodeDeltaLogRecord(bytes, &pos);
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(next->new_k, 7);
  EXPECT_TRUE(next->delta.added_edges.empty());
  EXPECT_EQ(next->label_updates, second.label_updates);
}

TEST(DeltaLogRecordTest, TruncationIsIOErrorBadMagicIsInvalidArgument) {
  graph_io::DeltaLogRecord record;
  record.delta = GraphDelta{}.AddEdge(0, 1);
  record.new_k = 2;
  record.label_updates = {{1, 1}};
  std::vector<uint8_t> bytes;
  graph_io::AppendDeltaLogRecord(record, &bytes);

  for (size_t keep : {size_t{0}, size_t{2}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(keep));
    size_t pos = 0;
    auto decoded = graph_io::DecodeDeltaLogRecord(cut, &pos);
    ASSERT_FALSE(decoded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);
  }

  bytes[0] = 'X';  // not SPDR
  size_t pos = 0;
  auto decoded = graph_io::DecodeDeltaLogRecord(bytes, &pos);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// --- Incremental checkpoint equivalence ----------------------------------

class IncrementalCheckpointTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  /// Registers a base path (and its .dlog) for removal.
  std::string Register(const std::string& path) {
    cleanup_.push_back(path);
    cleanup_.push_back(path + ".dlog");
    return path;
  }

  static SpinnerConfig Config(int k = 4) {
    SpinnerConfig config;
    config.num_partitions = k;
    config.num_workers = 2;
    return config;
  }

  /// A session over a small-world graph, plus a scripted stream of deltas
  /// checkpointed through `checkpointer` after each apply.
  static void Stream(PartitioningSession* session,
                     stream::IncrementalCheckpointer* checkpointer,
                     int num_deltas, uint64_t seed) {
    for (int i = 0; i < num_deltas; ++i) {
      GraphDelta delta = RandomEdgeAdditions(
          session->num_vertices(), session->edges(), 4, seed + 10 * i);
      if (i % 3 == 1) delta.AddVertex(2).AddEdge(0, session->num_vertices());
      ASSERT_TRUE(session->ApplyDelta(delta).ok());
      ASSERT_TRUE(checkpointer->Append(*session, delta).ok());
    }
  }

  static int64_t FileSize(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    SPINNER_CHECK(static_cast<bool>(in));
    return static_cast<int64_t>(in.tellg());
  }

  std::vector<std::string> cleanup_;
};

TEST_F(IncrementalCheckpointTest, BasePlusLogRestoreIsByteIdenticalToFull) {
  auto g = WattsStrogatz(400, 3, 0.3, /*seed=*/9);
  ASSERT_TRUE(g.ok());
  PartitioningSession session(Config());
  ASSERT_TRUE(session.Open(g->num_vertices, g->edges, g->directed).ok());

  const std::string base = Register(TempPath("incr.spns"));
  stream::IncrementalCheckpointer checkpointer(base);
  ASSERT_TRUE(checkpointer.WriteBase(session).ok());
  Stream(&session, &checkpointer, /*num_deltas=*/6, /*seed=*/21);
  ASSERT_TRUE(session.Rescale(6).ok());
  ASSERT_TRUE(checkpointer.Append(session, GraphDelta{}).ok());
  EXPECT_EQ(checkpointer.records_since_base(), 7);
  EXPECT_EQ(checkpointer.bases_written(), 1);

  // Replaying base+log and re-serializing must produce the exact bytes of
  // a full Snapshot taken now — not merely an equivalent state.
  auto replayed = stream::IncrementalCheckpointer::Load(base);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  const std::string replay_path = Register(TempPath("replayed.spns"));
  ASSERT_TRUE(
      graph_io::WriteSessionSnapshot(replay_path, *replayed).ok());
  const std::string full_path = Register(TempPath("full.spns"));
  ASSERT_TRUE(session.Snapshot(full_path).ok());

  std::ifstream replay_in(replay_path, std::ios::binary);
  std::ifstream full_in(full_path, std::ios::binary);
  const std::vector<char> replay_bytes(
      (std::istreambuf_iterator<char>(replay_in)),
      std::istreambuf_iterator<char>());
  const std::vector<char> full_bytes(
      (std::istreambuf_iterator<char>(full_in)),
      std::istreambuf_iterator<char>());
  ASSERT_FALSE(full_bytes.empty());
  EXPECT_EQ(replay_bytes, full_bytes);

  // And RestoreSession lands a fresh session on the same state.
  PartitioningSession restored(Config());
  ASSERT_TRUE(stream::IncrementalCheckpointer::RestoreSession(
                  base, &restored)
                  .ok());
  EXPECT_EQ(restored.num_vertices(), session.num_vertices());
  EXPECT_EQ(restored.num_partitions(), 6);
  EXPECT_EQ(restored.assignment(), session.assignment());
  EXPECT_EQ(restored.edges(), session.edges());
}

TEST_F(IncrementalCheckpointTest, AppendCostIsODeltaNotOEdges) {
  // The whole point of the delta log: checkpointing a 4-edge delta on a
  // ~12k-edge graph must cost bytes proportional to the delta (plus the
  // moved labels), nowhere near the O(E) base image.
  auto g = WattsStrogatz(4000, 3, 0.3, /*seed=*/5);
  ASSERT_TRUE(g.ok());
  PartitioningSession session(Config(8));
  ASSERT_TRUE(session.Open(g->num_vertices, g->edges, g->directed).ok());

  const std::string base = Register(TempPath("cost.spns"));
  stream::IncrementalCheckpointer checkpointer(base);
  ASSERT_TRUE(checkpointer.WriteBase(session).ok());
  const int64_t base_size = FileSize(base);
  const int64_t log_header_size = FileSize(checkpointer.log_path());

  GraphDelta delta = RandomEdgeAdditions(session.num_vertices(),
                                         session.edges(), 4, /*seed=*/31);
  ASSERT_TRUE(session.ApplyDelta(delta).ok());
  ASSERT_TRUE(checkpointer.Append(session, delta).ok());
  const int64_t record_size =
      FileSize(checkpointer.log_path()) - log_header_size;

  EXPECT_GT(record_size, 0);
  // A full snapshot re-serializes every edge; the record must be far
  // smaller — an order of magnitude is a loose floor, the typical ratio
  // here is ~100x.
  EXPECT_LT(record_size, base_size / 10);
  EXPECT_EQ(FileSize(base), base_size);  // the base was not rewritten
}

TEST_F(IncrementalCheckpointTest, CompactionFoldsLogIntoAFreshBase) {
  auto g = WattsStrogatz(400, 3, 0.3, /*seed=*/9);
  ASSERT_TRUE(g.ok());
  PartitioningSession session(Config());
  ASSERT_TRUE(session.Open(g->num_vertices, g->edges, g->directed).ok());

  const std::string base = Register(TempPath("compact.spns"));
  stream::IncrementalCheckpointer::Options options;
  options.compact_after_records = 3;
  stream::IncrementalCheckpointer checkpointer(base, options);
  Stream(&session, &checkpointer, /*num_deltas=*/8, /*seed=*/41);

  // 8 appends at threshold 3: base (first append), 3 records, compaction
  // base, 3 records, then another record.
  EXPECT_EQ(checkpointer.bases_written(), 2);
  EXPECT_EQ(checkpointer.records_since_base(), 3);

  PartitioningSession restored(Config());
  ASSERT_TRUE(stream::IncrementalCheckpointer::RestoreSession(
                  base, &restored)
                  .ok());
  EXPECT_EQ(restored.assignment(), session.assignment());
  EXPECT_EQ(restored.edges(), session.edges());
  EXPECT_EQ(restored.num_vertices(), session.num_vertices());
}

TEST_F(IncrementalCheckpointTest, TruncatedLogTailIsRejectedCleanly) {
  auto g = WattsStrogatz(400, 3, 0.3, /*seed=*/9);
  ASSERT_TRUE(g.ok());
  PartitioningSession session(Config());
  ASSERT_TRUE(session.Open(g->num_vertices, g->edges, g->directed).ok());

  const std::string base = Register(TempPath("trunc.spns"));
  stream::IncrementalCheckpointer checkpointer(base);
  ASSERT_TRUE(checkpointer.WriteBase(session).ok());
  Stream(&session, &checkpointer, /*num_deltas=*/3, /*seed=*/51);
  ASSERT_TRUE(stream::IncrementalCheckpointer::Load(base).ok());

  // A crash mid-append leaves a torn record at the tail.
  const std::string log = checkpointer.log_path();
  const int64_t full_size = FileSize(log);
  std::filesystem::resize_file(log, static_cast<uintmax_t>(full_size - 5));
  auto torn = stream::IncrementalCheckpointer::Load(base);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kIOError);
}

TEST_F(IncrementalCheckpointTest, CorruptRecordByteFailsTheChecksum) {
  auto g = WattsStrogatz(400, 3, 0.3, /*seed=*/9);
  ASSERT_TRUE(g.ok());
  PartitioningSession session(Config());
  ASSERT_TRUE(session.Open(g->num_vertices, g->edges, g->directed).ok());

  const std::string base = Register(TempPath("corrupt.spns"));
  stream::IncrementalCheckpointer checkpointer(base);
  ASSERT_TRUE(checkpointer.WriteBase(session).ok());
  Stream(&session, &checkpointer, /*num_deltas=*/2, /*seed=*/61);

  const std::string log = checkpointer.log_path();
  const int64_t size = FileSize(log);
  std::fstream f(log, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(size - 12);  // inside the last record's payload
  const char bogus = '\xee';
  f.write(&bogus, 1);
  f.close();
  auto corrupt = stream::IncrementalCheckpointer::Load(base);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IncrementalCheckpointTest, LogBoundToADifferentBaseIsRejected) {
  auto g = WattsStrogatz(400, 3, 0.3, /*seed=*/9);
  ASSERT_TRUE(g.ok());
  PartitioningSession session(Config());
  ASSERT_TRUE(session.Open(g->num_vertices, g->edges, g->directed).ok());

  const std::string base = Register(TempPath("rebased.spns"));
  stream::IncrementalCheckpointer checkpointer(base);
  ASSERT_TRUE(checkpointer.WriteBase(session).ok());
  Stream(&session, &checkpointer, /*num_deltas=*/2, /*seed=*/71);

  // Overwrite the base image out-of-band (as a concurrent full Snapshot
  // to the same path would): the log's fingerprint no longer matches.
  ASSERT_TRUE(session.Snapshot(base).ok());
  auto mismatched = stream::IncrementalCheckpointer::Load(base);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IncrementalCheckpointTest, MissingLogRestoresTheBareBase) {
  auto g = WattsStrogatz(400, 3, 0.3, /*seed=*/9);
  ASSERT_TRUE(g.ok());
  PartitioningSession session(Config());
  ASSERT_TRUE(session.Open(g->num_vertices, g->edges, g->directed).ok());

  const std::string base = Register(TempPath("bare.spns"));
  ASSERT_TRUE(session.Snapshot(base).ok());  // a plain snapshot, no log
  auto loaded = stream::IncrementalCheckpointer::Load(base);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->assignment, session.assignment());
}

}  // namespace
}  // namespace spinner
