// Id remapping and the binary graph format, including corruption paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/binary_io.h"
#include "graph/remap.h"

namespace spinner {
namespace {

TEST(CompactVertexIdsTest, DensifiesSparseIds) {
  EdgeList edges = {{100, 7}, {7, 100000}, {100000, 100}};
  auto mapping = CompactVertexIds(&edges);
  ASSERT_EQ(mapping.num_vertices(), 3);
  // Dense ids assigned by ascending original id: 7→0, 100→1, 100000→2.
  EXPECT_EQ(mapping.original_id, (std::vector<VertexId>{7, 100, 100000}));
  EXPECT_EQ(edges, (EdgeList{{1, 0}, {0, 2}, {2, 1}}));
}

TEST(CompactVertexIdsTest, AlreadyDenseIsIdentity) {
  EdgeList edges = {{0, 1}, {1, 2}};
  auto mapping = CompactVertexIds(&edges);
  EXPECT_EQ(mapping.num_vertices(), 3);
  EXPECT_EQ(edges, (EdgeList{{0, 1}, {1, 2}}));
}

TEST(CompactVertexIdsTest, EmptyEdgeList) {
  EdgeList edges;
  auto mapping = CompactVertexIds(&edges);
  EXPECT_EQ(mapping.num_vertices(), 0);
}

TEST(MapToOriginalIdsTest, RoundTripsAssignments) {
  EdgeList edges = {{50, 10}, {10, 90}};
  auto mapping = CompactVertexIds(&edges);
  // Dense: 10→0, 50→1, 90→2.
  const std::vector<PartitionId> assignment = {2, 0, 1};
  auto pairs = MapToOriginalIds(mapping, assignment);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (std::pair<VertexId, PartitionId>{10, 2}));
  EXPECT_EQ(pairs[1], (std::pair<VertexId, PartitionId>{50, 0}));
  EXPECT_EQ(pairs[2], (std::pair<VertexId, PartitionId>{90, 1}));
}

class BinaryIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(BinaryIoTest, RoundTrip) {
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 0}, {3, 1}};
  const std::string path = TempPath("graph.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 4, edges).ok());
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices, 4);
  EXPECT_EQ(read->edges, edges);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, EmptyGraphRoundTrip) {
  const std::string path = TempPath("empty.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 0, {}).ok());
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices, 0);
  EXPECT_TRUE(read->edges.empty());
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, WriteRejectsOutOfRangeEdges) {
  EXPECT_FALSE(
      graph_io::WriteBinaryGraph(TempPath("x.spnb"), 2, {{0, 5}}).ok());
  EXPECT_FALSE(graph_io::WriteBinaryGraph(TempPath("x.spnb"), -1, {}).ok());
}

TEST_F(BinaryIoTest, MissingFileIsIOError) {
  auto read = graph_io::ReadBinaryGraph("/nonexistent/g.spnb");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(BinaryIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.spnb");
  std::ofstream(path, std::ios::binary) << "NOPE garbage";
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, TruncatedFileRejected) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  const std::string path = TempPath("trunc.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 3, edges).ok());
  // Chop the last 8 bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 8));
  out.close();
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, SessionSnapshotRoundTrip) {
  graph_io::SessionSnapshot snapshot;
  snapshot.num_vertices = 4;
  snapshot.edges = {{0, 1}, {1, 2}, {2, 3}};
  snapshot.directed = true;
  snapshot.num_partitions = 2;
  snapshot.assignment = {0, 0, 1, 1};
  const std::string path = TempPath("session.spns");
  ASSERT_TRUE(graph_io::WriteSessionSnapshot(path, snapshot).ok());
  auto read = graph_io::ReadSessionSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->num_vertices, 4);
  EXPECT_EQ(read->edges, snapshot.edges);
  EXPECT_TRUE(read->directed);
  EXPECT_EQ(read->num_partitions, 2);
  EXPECT_EQ(read->assignment, snapshot.assignment);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, SessionSnapshotRejectsInconsistentAssignment) {
  graph_io::SessionSnapshot snapshot;
  snapshot.num_vertices = 3;
  snapshot.edges = {{0, 1}};
  snapshot.num_partitions = 2;
  snapshot.assignment = {0, 1};  // covers 2 of 3 vertices
  EXPECT_FALSE(
      graph_io::WriteSessionSnapshot(TempPath("bad1.spns"), snapshot).ok());
  snapshot.assignment = {0, 1, 2};  // label 2 out of range for k=2
  EXPECT_FALSE(
      graph_io::WriteSessionSnapshot(TempPath("bad2.spns"), snapshot).ok());
}

TEST_F(BinaryIoTest, SessionSnapshotRejectsGraphMagic) {
  // A SPNB graph file is not a SPNS snapshot; the magic keeps the two
  // formats from being confused for one another.
  const std::string path = TempPath("graph_as_session.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 2, {{0, 1}}).ok());
  auto read = graph_io::ReadSessionSnapshot(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(BinaryIoTest, CorruptEdgeRangeRejected) {
  const std::string path = TempPath("corrupt_edge.spnb");
  ASSERT_TRUE(graph_io::WriteBinaryGraph(path, 3, {{0, 1}}).ok());
  // Overwrite the edge target with an out-of-range id (offset: 4 magic +
  // 4 version + 8 n + 8 m + 8 src = 32).
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(32);
  const int64_t bogus = 999;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  auto read = graph_io::ReadBinaryGraph(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spinner
