// Streaming and trivial baselines: validity, balance caps, determinism,
// and the locality ordering the paper's Table I rests on.
#include <gtest/gtest.h>

#include <set>

#include "baselines/fennel_partitioner.h"
#include "baselines/hash_partitioner.h"
#include "baselines/ldg_partitioner.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/metrics.h"

namespace spinner {
namespace {

CsrGraph CommunityGraph() {
  auto pp = PlantedPartition(8, 50, 0.25, 0.01, 31);
  SPINNER_CHECK(pp.ok());
  auto g = BuildSymmetric(pp->num_vertices, pp->edges);
  SPINNER_CHECK(g.ok());
  return std::move(g).value();
}

std::vector<int64_t> PartitionSizes(const std::vector<PartitionId>& labels,
                                    int k) {
  std::vector<int64_t> sizes(k, 0);
  for (PartitionId l : labels) ++sizes[l];
  return sizes;
}

TEST(HashPartitionerTest, ValidBalancedDeterministic) {
  CsrGraph g = CommunityGraph();
  HashPartitioner hash;
  auto a = hash.Partition(g, 8);
  auto b = hash.Partition(g, 8);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  auto sizes = PartitionSizes(*a, 8);
  for (int64_t s : sizes) EXPECT_NEAR(s, 50, 25);
  EXPECT_FALSE(hash.Partition(g, 0).ok());
}

TEST(RandomPartitionerTest, SeedControlsResult) {
  CsrGraph g = CommunityGraph();
  RandomPartitioner r1(1);
  RandomPartitioner r2(2);
  auto a = r1.Partition(g, 4);
  auto b = r2.Partition(g, 4);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST(LdgPartitionerTest, RespectsVertexCapacity) {
  CsrGraph g = CommunityGraph();  // 400 vertices
  LdgPartitioner ldg;
  auto labels = ldg.Partition(g, 8);
  ASSERT_TRUE(labels.ok());
  auto sizes = PartitionSizes(*labels, 8);
  for (int64_t s : sizes) {
    EXPECT_LE(s, 400 / 8 + 1);  // capacity n/k + 1
  }
}

TEST(LdgPartitionerTest, LocalityAboveHash) {
  CsrGraph g = CommunityGraph();
  LdgPartitioner ldg;
  HashPartitioner hash;
  auto ldg_labels = ldg.Partition(g, 8);
  auto hash_labels = hash.Partition(g, 8);
  ASSERT_TRUE(ldg_labels.ok() && hash_labels.ok());
  auto ldg_m = ComputeMetrics(g, *ldg_labels, 8, 1.05);
  auto hash_m = ComputeMetrics(g, *hash_labels, 8, 1.05);
  ASSERT_TRUE(ldg_m.ok() && hash_m.ok());
  EXPECT_GT(ldg_m->phi, 1.5 * hash_m->phi);
}

TEST(LdgPartitionerTest, StreamOrderChangesResult) {
  CsrGraph g = CommunityGraph();
  LdgPartitioner natural(0);
  LdgPartitioner shuffled(77);
  auto a = natural.Partition(g, 4);
  auto b = shuffled.Partition(g, 4);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST(FennelPartitionerTest, ValidAndWithinBalanceCap) {
  CsrGraph g = CommunityGraph();
  FennelPartitioner fennel;
  auto labels = fennel.Partition(g, 8);
  ASSERT_TRUE(labels.ok());
  auto sizes = PartitionSizes(*labels, 8);
  for (int64_t s : sizes) {
    EXPECT_LE(static_cast<double>(s), 1.1 * 400.0 / 8.0 + 1.0);
  }
}

TEST(FennelPartitionerTest, LocalityAboveHash) {
  CsrGraph g = CommunityGraph();
  FennelPartitioner fennel;
  HashPartitioner hash;
  auto f_labels = fennel.Partition(g, 8);
  auto h_labels = hash.Partition(g, 8);
  ASSERT_TRUE(f_labels.ok() && h_labels.ok());
  auto f_m = ComputeMetrics(g, *f_labels, 8, 1.05);
  auto h_m = ComputeMetrics(g, *h_labels, 8, 1.05);
  ASSERT_TRUE(f_m.ok() && h_m.ok());
  EXPECT_GT(f_m->phi, 2.0 * h_m->phi);
}

TEST(LdgPartitionerTest, EdgeBalanceModeCapsWeightedLoad) {
  // Hub-heavy graph: vertex-balanced LDG blows up edge balance; the
  // edge-balance variant must keep rho near 1.
  auto ba = BarabasiAlbert(2000, 6, 6, 55);
  ASSERT_TRUE(ba.ok());
  auto g = BuildSymmetric(ba->num_vertices, ba->edges);
  ASSERT_TRUE(g.ok());
  LdgPartitioner vertex_mode(0, /*balance_on_edges=*/false);
  LdgPartitioner edge_mode(0, /*balance_on_edges=*/true);
  auto vm = ComputeMetrics(*g, *vertex_mode.Partition(*g, 8), 8, 1.05);
  auto em = ComputeMetrics(*g, *edge_mode.Partition(*g, 8), 8, 1.05);
  ASSERT_TRUE(vm.ok() && em.ok());
  EXPECT_LT(em->rho, 1.25);
  EXPECT_LT(em->rho, vm->rho);
}

TEST(FennelPartitionerTest, EdgeBalanceModeCapsWeightedLoad) {
  auto ba = BarabasiAlbert(2000, 6, 6, 55);
  ASSERT_TRUE(ba.ok());
  auto g = BuildSymmetric(ba->num_vertices, ba->edges);
  ASSERT_TRUE(g.ok());
  FennelPartitioner edge_mode(1.5, 1.1, 0, /*balance_on_edges=*/true);
  auto em = ComputeMetrics(*g, *edge_mode.Partition(*g, 8), 8, 1.05);
  ASSERT_TRUE(em.ok());
  EXPECT_LT(em->rho, 1.30);
}

TEST(FennelPartitionerTest, ParameterValidation) {
  CsrGraph g = CommunityGraph();
  EXPECT_FALSE(FennelPartitioner(1.0).Partition(g, 4).ok());   // gamma
  EXPECT_FALSE(FennelPartitioner(1.5, 0.9).Partition(g, 4).ok());  // cap
  EXPECT_FALSE(FennelPartitioner().Partition(g, 0).ok());      // k
}

TEST(BaselinesTest, EmptyGraphHandled) {
  auto g = CsrGraph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(HashPartitioner().Partition(*g, 4)->empty());
  EXPECT_TRUE(LdgPartitioner().Partition(*g, 4)->empty());
  EXPECT_TRUE(FennelPartitioner().Partition(*g, 4)->empty());
}

TEST(BaselinesTest, SinglePartitionAssignsZero) {
  CsrGraph g = CommunityGraph();
  LdgPartitioner ldg;
  auto labels = ldg.Partition(g, 1);
  ASSERT_TRUE(labels.ok());
  for (PartitionId l : *labels) EXPECT_EQ(l, 0);
  FennelPartitioner fennel;
  auto f = fennel.Partition(g, 1);
  ASSERT_TRUE(f.ok());
  for (PartitionId l : *f) EXPECT_EQ(l, 0);
}

}  // namespace
}  // namespace spinner
