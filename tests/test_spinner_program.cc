// SpinnerProgram internals: the in-engine conversion phases must reproduce
// the offline conversion exactly, initialization must respect provided
// labels and aggregate loads correctly, and the per-iteration history must
// reflect a hill-climbing run.
#include "spinner/program.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "pregel/topology.h"
#include "spinner/partitioner.h"

namespace spinner {
namespace {

/// Runs SpinnerProgram on the raw directed graph with in-engine conversion
/// and returns each vertex's final (target, weight) edge set.
std::map<VertexId, std::vector<std::pair<VertexId, EdgeWeight>>>
RunInEngineConversion(int64_t n, const EdgeList& directed, int k) {
  auto raw = CsrGraph::FromEdges(n, directed);
  SPINNER_CHECK(raw.ok());
  pregel::EngineConfig config;
  config.num_workers = 3;
  SpinnerEngine engine(
      *raw, config, pregel::HashPlacement(3),
      [](VertexId) { return SpinnerVertexValue{}; },
      [](VertexId, VertexId, EdgeWeight w) {
        return SpinnerEdgeValue{w, kNoPartition};
      });
  SpinnerConfig sc;
  sc.num_partitions = k;
  sc.max_iterations = 1;
  sc.use_halting = false;
  SpinnerProgram program(sc, std::vector<PartitionId>(n, kNoPartition),
                         /*start_with_conversion=*/true);
  engine.Run(program);

  std::map<VertexId, std::vector<std::pair<VertexId, EdgeWeight>>> result;
  for (VertexId v = 0; v < n; ++v) {
    for (const auto& e : engine.EdgesOf(v)) {
      result[v].emplace_back(e.target, e.value.weight);
    }
    std::sort(result[v].begin(), result[v].end());
  }
  return result;
}

TEST(SpinnerConversionTest, InEngineMatchesOfflineConversion) {
  auto rmat = RMat(7, 6, 0.5, 0.2, 0.2, /*seed=*/3);
  ASSERT_TRUE(rmat.ok());
  EdgeList directed = rmat->edges;
  RemoveSelfLoops(&directed);
  SortAndDedup(&directed);

  auto offline = ConvertToWeightedUndirected(rmat->num_vertices, directed);
  ASSERT_TRUE(offline.ok());
  auto in_engine = RunInEngineConversion(rmat->num_vertices, directed, 4);

  for (VertexId v = 0; v < rmat->num_vertices; ++v) {
    auto nbrs = offline->Neighbors(v);
    auto wts = offline->Weights(v);
    const auto& got = in_engine[v];
    ASSERT_EQ(got.size(), nbrs.size()) << "vertex " << v;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(got[i].first, nbrs[i]) << "vertex " << v;
      EXPECT_EQ(got[i].second, wts[i]) << "vertex " << v;
    }
  }
}

TEST(SpinnerConversionTest, ReciprocalPairGetsWeightTwoBothSides) {
  auto edges = RunInEngineConversion(2, {{0, 1}, {1, 0}}, 2);
  ASSERT_EQ(edges[0].size(), 1u);
  ASSERT_EQ(edges[1].size(), 1u);
  EXPECT_EQ(edges[0][0], (std::pair<VertexId, EdgeWeight>{1, 2}));
  EXPECT_EQ(edges[1][0], (std::pair<VertexId, EdgeWeight>{0, 2}));
}

TEST(SpinnerConversionTest, SingleDirectionCreatesReverseWeightOne) {
  auto edges = RunInEngineConversion(2, {{0, 1}}, 2);
  ASSERT_EQ(edges[0].size(), 1u);
  ASSERT_EQ(edges[1].size(), 1u);  // reverse edge materialized
  EXPECT_EQ(edges[0][0], (std::pair<VertexId, EdgeWeight>{1, 1}));
  EXPECT_EQ(edges[1][0], (std::pair<VertexId, EdgeWeight>{0, 1}));
}

TEST(SpinnerProgramTest, InitializationRespectsProvidedLabels) {
  auto ring = Ring(8);
  auto g = BuildSymmetric(ring.num_vertices, ring.edges);
  ASSERT_TRUE(g.ok());
  pregel::EngineConfig config;
  config.num_workers = 2;
  SpinnerEngine engine(
      *g, config, pregel::HashPlacement(2),
      [](VertexId) { return SpinnerVertexValue{}; },
      [](VertexId, VertexId, EdgeWeight w) {
        return SpinnerEdgeValue{w, kNoPartition};
      });
  SpinnerConfig sc;
  sc.num_partitions = 4;
  sc.max_iterations = 1;  // stop right after the first ComputeScores
  sc.use_halting = false;
  std::vector<PartitionId> fixed = {3, 3, 2, 2, 1, 1, 0, 0};
  SpinnerProgram program(sc, fixed, /*start_with_conversion=*/false);
  engine.Run(program);

  // After Initialize + one ComputeScores (no migrations yet), labels are
  // exactly the provided ones and the loads aggregator reflects them.
  engine.ForEachVertex([&](VertexId v, const SpinnerVertexValue& val) {
    EXPECT_EQ(val.label, fixed[v]);
    EXPECT_EQ(val.weighted_degree, 2);
  });
  const auto& loads =
      engine.aggregators()
          .Get<pregel::VectorSumAggregator>(SpinnerProgram::kLoadsAgg)
          ->values();
  EXPECT_EQ(loads, (std::vector<int64_t>{4, 4, 4, 4}));
}

TEST(SpinnerProgramTest, HistoryTracksHillClimb) {
  auto pp = PlantedPartition(4, 32, 0.3, 0.01, 11);
  ASSERT_TRUE(pp.ok());
  auto g = BuildSymmetric(pp->num_vertices, pp->edges);
  ASSERT_TRUE(g.ok());

  SpinnerConfig sc;
  sc.num_partitions = 4;
  sc.max_iterations = 60;
  sc.use_halting = false;
  sc.num_workers = 4;
  SpinnerPartitioner partitioner(sc);
  auto result = partitioner.Partition(*g);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(static_cast<int>(result->history.size()), result->iterations);
  EXPECT_EQ(result->iterations, 60);
  // Hill climbing: late iterations must beat the random start decisively.
  const auto& h = result->history;
  EXPECT_GT(h.back().phi, h.front().phi);
  EXPECT_GT(h.back().score, h.front().score);
  // Final history point agrees with the final metrics within one
  // migration step (history φ is computed from the last ComputeScores).
  EXPECT_NEAR(h.back().phi, result->metrics.phi, 0.05);
}

TEST(SpinnerProgramTest, ScoreAggregationIndependentOfWorkerCount) {
  // The halting signal (global score) must not depend on how vertices are
  // spread across workers, even though per-worker async decisions do.
  auto ws = WattsStrogatz(200, 3, 0.2, 6);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  auto first_iteration_score = [&](int workers) {
    SpinnerConfig sc;
    sc.num_partitions = 8;
    sc.max_iterations = 1;  // single ComputeScores, no migrations yet
    sc.use_halting = false;
    sc.num_workers = workers;
    SpinnerPartitioner partitioner(sc);
    auto result = partitioner.Partition(*g);
    SPINNER_CHECK(result.ok());
    return result->history.front().score;
  };
  EXPECT_DOUBLE_EQ(first_iteration_score(1), first_iteration_score(7));
}

}  // namespace
}  // namespace spinner
