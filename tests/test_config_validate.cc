// SpinnerConfig::Validate: each rejection the session/partitioner relies
// on, plus propagation through the run entry points.
#include <gtest/gtest.h>

#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"
#include "spinner/session.h"

namespace spinner {
namespace {

TEST(ConfigValidateTest, DefaultConfigIsValid) {
  EXPECT_TRUE(SpinnerConfig{}.Validate().ok());
}

TEST(ConfigValidateTest, RejectsNonPositivePartitionCount) {
  SpinnerConfig config;
  config.num_partitions = 0;
  Status s = config.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  config.num_partitions = -3;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsCapacityNotAboveOne) {
  SpinnerConfig config;
  config.additional_capacity = 1.0;  // Eq. 5 needs spare capacity
  EXPECT_FALSE(config.Validate().ok());
  config.additional_capacity = 0.9;
  EXPECT_FALSE(config.Validate().ok());
  config.additional_capacity = 1.0001;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsNegativeEpsilon) {
  SpinnerConfig config;
  config.halt_epsilon = -0.001;
  EXPECT_FALSE(config.Validate().ok());
  config.halt_epsilon = 0.0;  // "never improve" halting is legal
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsNonPositiveHaltWindowAndIterationCap) {
  SpinnerConfig config;
  config.halt_window = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.halt_window = 5;
  config.max_iterations = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsNonPositivePartitionWeights) {
  SpinnerConfig config;
  config.num_partitions = 2;
  config.partition_weights = {1.0, 0.0};
  EXPECT_FALSE(config.Validate().ok());
  config.partition_weights = {1.0, -2.0};
  EXPECT_FALSE(config.Validate().ok());
  config.partition_weights = {1.0, 2.0};
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsWeightsSizeMismatch) {
  SpinnerConfig config;
  config.num_partitions = 4;
  config.partition_weights = {1.0, 1.0};
  Status s = config.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ConfigValidateTest, PartitionerRejectsInvalidConfigAtRunTime) {
  auto ring = Ring(24);
  auto g = BuildSymmetric(ring.num_vertices, ring.edges);
  ASSERT_TRUE(g.ok());
  SpinnerConfig config;
  config.additional_capacity = 0.5;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(*g);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigValidateTest, SessionReportsInvalidConfigOnFirstUse) {
  SpinnerConfig config;
  config.num_partitions = 0;
  PartitioningSession session(config);
  auto ring = Ring(24);
  Status s = session.Open(ring.num_vertices, ring.edges, ring.directed);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(session.is_open());
}

}  // namespace
}  // namespace spinner
